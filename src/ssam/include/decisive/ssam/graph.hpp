// Component connectivity graph used by the automated FMEA on SSAM models
// (paper Algorithm 1: a loss-of-function failure mode of a subcomponent is a
// single-point failure iff the subcomponent lies on every input→output path
// of its parent component).
//
// Vertices are IONodes. Edges are the explicit ComponentRelationships plus
// an implicit "through" edge inside every subcomponent from each of its
// input IONodes to each of its output IONodes (the signal path the
// component provides while healthy — exactly what a loss-of-function
// failure removes).
#pragma once

#include <map>
#include <vector>

#include "decisive/ssam/model.hpp"

namespace decisive::ssam {

struct ComponentGraph {
  /// All IONode vertices (parent boundary + subcomponent nodes).
  std::vector<ObjectId> nodes;
  /// Directed adjacency: wire edges and through-component edges.
  std::map<ObjectId, std::vector<ObjectId>> edges;
  /// Boundary IONodes of the parent component.
  std::vector<ObjectId> inputs;
  std::vector<ObjectId> outputs;
  /// Owning subcomponent of each IONode (absent for parent-boundary nodes).
  std::map<ObjectId, ObjectId> owner;
};

/// Extracts the connectivity graph of a composite component.
/// Throws AnalysisError when the component has no boundary IONodes.
ComponentGraph build_graph(const SsamModel& ssam, ObjectId component);

/// Enumerates all simple paths from any input to any output, as sequences of
/// IONodes. Throws AnalysisError when more than `max_paths` exist (guards
/// against combinatorial blow-up on dense graphs).
std::vector<std::vector<ObjectId>> enumerate_paths(const ComponentGraph& graph,
                                                   size_t max_paths = 100000);

/// True when `subcomponent` owns at least one IONode on *every* path.
bool on_all_paths(const ComponentGraph& graph,
                  const std::vector<std::vector<ObjectId>>& paths, ObjectId subcomponent);

}  // namespace decisive::ssam
