// Component connectivity graph used by the automated FMEA on SSAM models
// (paper Algorithm 1: a loss-of-function failure mode of a subcomponent is a
// single-point failure iff the subcomponent lies on every input→output path
// of its parent component).
//
// Vertices are IONodes. Edges are the explicit ComponentRelationships plus
// an implicit "through" edge inside every subcomponent from each of its
// input IONodes to each of its output IONodes (the signal path the
// component provides while healthy — exactly what a loss-of-function
// failure removes).
//
// The decision procedure is SinglePointAnalysis: a dominator/cut analysis on
// the flow graph (virtual super-source over the inputs, super-sink over the
// outputs) that answers "does removing this subcomponent's IONodes sever
// every input→output connection?" for *all* subcomponents in one pass.
// enumerate_paths/on_all_paths materialise every simple path and are kept
// only as a brute-force oracle (property tests) and for cut-set synthesis;
// they throw on dense graphs where the path count explodes.
#pragma once

#include <map>
#include <optional>
#include <string_view>
#include <vector>

#include "decisive/ssam/model.hpp"

namespace decisive::ssam {

/// Validated IONode `direction` attribute. An `inout` node acts as both an
/// input and an output of its component.
enum class NodeDirection { In, Out, InOut };

/// Parses a raw `direction` attribute value: "in" / "out" / "inout" (case
/// insensitive, surrounding whitespace ignored; the AADL spelling "in out"
/// is accepted as InOut). Returns nullopt for anything else — including the
/// empty string — so callers can report *which* node carries the bad value.
std::optional<NodeDirection> parse_direction(std::string_view raw);

struct ComponentGraph {
  /// All IONode vertices (parent boundary + subcomponent nodes).
  std::vector<ObjectId> nodes;
  /// Directed adjacency: wire edges and through-component edges.
  std::map<ObjectId, std::vector<ObjectId>> edges;
  /// Boundary IONodes of the parent component (an `inout` boundary node
  /// appears in both vectors).
  std::vector<ObjectId> inputs;
  std::vector<ObjectId> outputs;
  /// Owning subcomponent of each IONode (absent for parent-boundary nodes).
  std::map<ObjectId, ObjectId> owner;
  /// Validated direction of every vertex.
  std::map<ObjectId, NodeDirection> direction;
};

/// Extracts the connectivity graph of a composite component.
/// Throws AnalysisError when the component has no boundary IONodes or when
/// any IONode carries an unknown `direction` value.
ComponentGraph build_graph(const SsamModel& ssam, ObjectId component);

/// Decides, for every subcomponent of the graph at once, whether the
/// subcomponent is a single point of failure: whether the set of surviving
/// super-source→super-sink connections is empty after removing the
/// subcomponent's IONodes.
///
/// The engine never materialises paths. It computes the reachable-and-
/// co-reachable ("live") subgraph with iterative traversals (no recursion, so
/// 10k-deep chains cannot overflow the stack), contracts each subcomponent's
/// live IONodes into one supervertex, and reads the verdicts off the
/// dominator chain of the super-sink — one dominator-tree computation for the
/// whole component instead of one DFS per subcomponent. On graphs with
/// irregular wiring (edges leaving an input-role node or entering an
/// output-role node, where contraction could over-connect), the affected
/// negative verdicts are re-checked exactly with per-subcomponent
/// reachability, so the result equals the brute-force oracle on every input.
class SinglePointAnalysis {
 public:
  explicit SinglePointAnalysis(const ComponentGraph& graph);

  /// True when at least one input→output connection exists. When false, no
  /// subcomponent is a single point (matching on_all_paths on an empty path
  /// set).
  [[nodiscard]] bool has_path() const noexcept { return has_path_; }

  /// True when removing `subcomponent`'s IONodes severs every connection.
  /// Unknown ids (not an owner in the graph) are never single points.
  [[nodiscard]] bool is_single_point(ObjectId subcomponent) const;

  /// Number of vertices both reachable from the super-source and
  /// co-reachable to the super-sink (diagnostics / benchmarks).
  [[nodiscard]] size_t live_node_count() const noexcept { return live_nodes_; }

 private:
  bool has_path_ = false;
  size_t live_nodes_ = 0;
  std::map<ObjectId, bool> verdict_;  ///< per owning subcomponent
};

/// Enumerates all simple paths from any input to any output, as sequences of
/// IONodes. Throws AnalysisError when more than `max_paths` exist (guards
/// against combinatorial blow-up on dense graphs). Retained as the oracle for
/// SinglePointAnalysis and for minimal-cut-set synthesis — not a decision
/// procedure for the FMEA.
std::vector<std::vector<ObjectId>> enumerate_paths(const ComponentGraph& graph,
                                                   size_t max_paths = 100000);

/// True when `subcomponent` owns at least one IONode on *every* path.
bool on_all_paths(const ComponentGraph& graph,
                  const std::vector<std::vector<ObjectId>>& paths, ObjectId subcomponent);

}  // namespace decisive::ssam
