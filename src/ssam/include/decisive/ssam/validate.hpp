// Structural well-formedness validation of SSAM models.
//
// The graphical SAME editor prevents many malformed constructs by
// construction; the headless library offers the same guarantees as an
// explicit validation pass run before analysis. Each finding carries the
// offending element and a stable rule id, so tooling can filter or gate on
// specific rules.
#pragma once

#include <string>
#include <vector>

#include "decisive/ssam/model.hpp"

namespace decisive::ssam {

struct ValidationFinding {
  std::string rule;      ///< stable id, e.g. "fm-distribution-sum"
  ObjectId element = model::kNullObject;
  std::string message;
};

/// Validation rules:
///   comp-fit-negative          Component.fit must be >= 0
///   fm-distribution-range      FailureMode.distribution must be in [0,1]
///   fm-distribution-sum        a component's mode distributions must sum <= 1
///   sm-coverage-range          SafetyMechanism.coverage must be in [0,1]
///   sm-covers-foreign          an SM must only cover its own component's modes
///   rel-endpoint-missing       ComponentRelationship needs both endpoints
///   rel-endpoint-scope         endpoints must be IONodes of the component or
///                              of one of its direct subcomponents
///   io-direction               IONode.direction must be "in", "out" or "inout"
///   composite-io               a component with subcomponents and
///                              relationships should expose boundary IONodes
///   name-collision             sibling components should have unique names
std::vector<ValidationFinding> validate(const SsamModel& ssam);

/// Renders findings as one line each.
std::string to_text(const SsamModel& ssam, const std::vector<ValidationFinding>& findings);

}  // namespace decisive::ssam
