// SsamModel — typed facade over a repository of SSAM objects.
//
// Wraps the reflective model framework with creation/navigation helpers for
// the SSAM metamodel, plus the external-model federation entry point
// (ExternalReference + extraction rule -> query result), paper Section IV-B6.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/model/repository.hpp"
#include "decisive/query/query.hpp"
#include "decisive/ssam/metamodel.hpp"

namespace decisive::ssam {

using model::ObjectId;

class SsamModel {
 public:
  explicit SsamModel(size_t memory_budget_bytes = static_cast<size_t>(-1));

  [[nodiscard]] const model::MetaPackage& meta() const { return metamodel(); }
  [[nodiscard]] model::FullLoadRepository& repo() noexcept { return repo_; }
  [[nodiscard]] const model::FullLoadRepository& repo() const noexcept { return repo_; }

  /// Shorthand object access.
  [[nodiscard]] model::ModelObject& obj(ObjectId id) { return repo_.get(id); }
  [[nodiscard]] const model::ModelObject& obj(ObjectId id) const { return repo_.get(id); }

  /// The (lazily created) MBSAPackage root.
  ObjectId mbsa_root();

  // -- package creation ------------------------------------------------------
  ObjectId create_requirement_package(std::string_view name);
  ObjectId create_hazard_package(std::string_view name);
  ObjectId create_component_package(std::string_view name);

  // -- requirements ----------------------------------------------------------
  ObjectId create_requirement(ObjectId package, std::string_view name, std::string_view text,
                              std::string_view integrity_level);
  ObjectId create_safety_requirement(ObjectId package, std::string_view name,
                                     std::string_view text, std::string_view integrity_level,
                                     std::string_view functional_part);
  /// Adds a relationship (kind: "derives"/"refines"/"conflicts").
  ObjectId relate_requirements(ObjectId package, std::string_view kind, ObjectId source,
                               ObjectId target);

  // -- hazards ---------------------------------------------------------------
  ObjectId create_hazard(ObjectId package, std::string_view name, std::string_view severity,
                         double probability, std::string_view integrity_level);
  ObjectId add_cause(ObjectId hazard, std::string_view name, std::string_view mechanism);
  ObjectId add_control_measure(ObjectId hazard, std::string_view name,
                               double effectiveness_of_verification);

  // -- architecture ----------------------------------------------------------
  /// Creates a component inside a ComponentPackage or as a subcomponent of
  /// another Component (the paper's nested Components).
  ObjectId create_component(ObjectId parent, std::string_view name);

  ObjectId add_io_node(ObjectId component, std::string_view name, std::string_view direction);

  /// Wires two IONodes inside `component` (a ComponentRelationship).
  ObjectId connect(ObjectId component, ObjectId source_node, ObjectId target_node);

  /// nature: "lossOfFunction" / "degraded" / "erroneous".
  ObjectId add_failure_mode(ObjectId component, std::string_view name, double distribution,
                            std::string_view nature);

  /// coverage in [0,1]; `covers_failure_mode` may be kNullObject for a
  /// component-wide mechanism.
  ObjectId add_safety_mechanism(ObjectId component, std::string_view name, double coverage,
                                double cost_hours, ObjectId covers_failure_mode);

  ObjectId add_function(ObjectId component, std::string_view name,
                        std::string_view tolerance_type);

  // -- base-module utilities ---------------------------------------------------
  /// Attaches an ExternalReference with a machine-executable extraction rule
  /// to any ModelElement.
  ObjectId add_external_reference(ObjectId element, std::string_view location,
                                  std::string_view model_type, std::string_view extraction_rule);

  /// "cite" traceability between any two elements.
  void cite(ObjectId from, ObjectId to);

  // -- navigation --------------------------------------------------------------
  /// Direct subcomponents of a component / components of a package.
  [[nodiscard]] std::vector<ObjectId> components_of(ObjectId parent) const;

  /// All components in the containment subtree (excluding `root` itself when
  /// it is a Component).
  [[nodiscard]] std::vector<ObjectId> all_components_under(ObjectId root) const;

  /// First element of a class with the given name attribute, or kNullObject.
  [[nodiscard]] ObjectId find_by_name(std::string_view class_name, std::string_view name) const;

  /// Total element count in the repository.
  [[nodiscard]] size_t size() const noexcept { return repo_.size(); }

 private:
  ObjectId create_named(std::string_view class_name, std::string_view name);

  model::FullLoadRepository repo_;
  ObjectId mbsa_root_ = model::kNullObject;
  std::uint64_t next_uid_ = 1;
};

/// Executes the extraction rule of an ExternalReference: opens the referenced
/// external model through the driver registry, binds it into a fresh query
/// environment, and evaluates the rule. This is the federation mechanism of
/// REQ2. Throws on missing rule/driver or rule errors.
query::Value run_extraction(const SsamModel& ssam, ObjectId external_reference);

}  // namespace decisive::ssam
