// The Structured System Architecture Metamodel (SSAM), paper Section IV-B.
//
// Modules (each extending the Base module):
//   Base         — ModelElement, ImplementationConstraint, ExternalReference
//   Requirement  — RequirementPackage, Requirement, SafetyRequirement, ...
//   Hazard       — HazardPackage, HazardousSituation, Cause, ControlMeasure, ...
//   Architecture — ComponentPackage, Component, IONode, FailureMode,
//                  FailureEffect, SafetyMechanism, Function, Relationship
//   MBSA         — MBSAPackage federating the above
//
// The metamodel is expressed with the reflective framework in
// decisive::model; class/feature names below are the stable string API.
#pragma once

#include "decisive/model/meta.hpp"

namespace decisive::ssam {

/// The process-wide SSAM metamodel instance.
const model::MetaPackage& metamodel();

// Class names (stable strings; use with metamodel().get(...)).
namespace cls {
inline constexpr const char* ModelElement = "ModelElement";
inline constexpr const char* ImplementationConstraint = "ImplementationConstraint";
inline constexpr const char* ExternalReference = "ExternalReference";

inline constexpr const char* RequirementElement = "RequirementElement";
inline constexpr const char* Requirement = "Requirement";
inline constexpr const char* SafetyRequirement = "SafetyRequirement";
inline constexpr const char* RequirementRelationship = "RequirementRelationship";
inline constexpr const char* RequirementPackage = "RequirementPackage";
inline constexpr const char* RequirementPackageInterface = "RequirementPackageInterface";

inline constexpr const char* HazardElement = "HazardElement";
inline constexpr const char* HazardousSituation = "HazardousSituation";
inline constexpr const char* Cause = "Cause";
inline constexpr const char* ControlMeasure = "ControlMeasure";
inline constexpr const char* SafetyDecision = "SafetyDecision";
inline constexpr const char* Validation = "Validation";
inline constexpr const char* HazardPackage = "HazardPackage";
inline constexpr const char* HazardPackageInterface = "HazardPackageInterface";

inline constexpr const char* ComponentElement = "ComponentElement";
inline constexpr const char* Component = "Component";
inline constexpr const char* ComponentRelationship = "ComponentRelationship";
inline constexpr const char* Function = "Function";
inline constexpr const char* IONode = "IONode";
inline constexpr const char* FailureMode = "FailureMode";
inline constexpr const char* FailureEffect = "FailureEffect";
inline constexpr const char* SafetyMechanism = "SafetyMechanism";
inline constexpr const char* ComponentPackage = "ComponentPackage";
inline constexpr const char* ComponentPackageInterface = "ComponentPackageInterface";

inline constexpr const char* MBSAPackage = "MBSAPackage";
}  // namespace cls

}  // namespace decisive::ssam
