#include "decisive/ssam/model.hpp"

#include "decisive/base/error.hpp"
#include "decisive/drivers/datasource.hpp"

namespace decisive::ssam {

using model::kNullObject;
using model::ModelObject;

SsamModel::SsamModel(size_t memory_budget_bytes) : repo_(memory_budget_bytes) {}

ObjectId SsamModel::create_named(std::string_view class_name, std::string_view name) {
  ModelObject& o = repo_.create(meta().get(class_name));
  o.set_string("uid", "ssam-" + std::to_string(next_uid_++));
  o.set_string("name", std::string(name));
  return o.id();
}

ObjectId SsamModel::mbsa_root() {
  if (mbsa_root_ == kNullObject) {
    mbsa_root_ = create_named(cls::MBSAPackage, "mbsa");
  }
  return mbsa_root_;
}

ObjectId SsamModel::create_requirement_package(std::string_view name) {
  const ObjectId id = create_named(cls::RequirementPackage, name);
  obj(mbsa_root()).add_ref("requirementPackages", id);
  return id;
}

ObjectId SsamModel::create_hazard_package(std::string_view name) {
  const ObjectId id = create_named(cls::HazardPackage, name);
  obj(mbsa_root()).add_ref("hazardPackages", id);
  return id;
}

ObjectId SsamModel::create_component_package(std::string_view name) {
  const ObjectId id = create_named(cls::ComponentPackage, name);
  obj(mbsa_root()).add_ref("componentPackages", id);
  return id;
}

ObjectId SsamModel::create_requirement(ObjectId package, std::string_view name,
                                       std::string_view text,
                                       std::string_view integrity_level) {
  const ObjectId id = create_named(cls::Requirement, name);
  obj(id).set_string("text", std::string(text));
  obj(id).set_string("integrityLevel", std::string(integrity_level));
  obj(package).add_ref("elements", id);
  return id;
}

ObjectId SsamModel::create_safety_requirement(ObjectId package, std::string_view name,
                                              std::string_view text,
                                              std::string_view integrity_level,
                                              std::string_view functional_part) {
  const ObjectId id = create_named(cls::SafetyRequirement, name);
  obj(id).set_string("text", std::string(text));
  obj(id).set_string("integrityLevel", std::string(integrity_level));
  obj(id).set_string("functionalPart", std::string(functional_part));
  obj(package).add_ref("elements", id);
  return id;
}

ObjectId SsamModel::relate_requirements(ObjectId package, std::string_view kind,
                                        ObjectId source, ObjectId target) {
  const ObjectId id = create_named(cls::RequirementRelationship,
                                   std::string(kind) + "-relationship");
  obj(id).set_string("kind", std::string(kind));
  obj(id).set_ref("source", source);
  obj(id).set_ref("target", target);
  obj(package).add_ref("elements", id);
  return id;
}

ObjectId SsamModel::create_hazard(ObjectId package, std::string_view name,
                                  std::string_view severity, double probability,
                                  std::string_view integrity_level) {
  const ObjectId id = create_named(cls::HazardousSituation, name);
  obj(id).set_string("severity", std::string(severity));
  obj(id).set_real("probability", probability);
  obj(id).set_string("integrityLevel", std::string(integrity_level));
  obj(package).add_ref("elements", id);
  return id;
}

ObjectId SsamModel::add_cause(ObjectId hazard, std::string_view name,
                              std::string_view mechanism) {
  const ObjectId id = create_named(cls::Cause, name);
  obj(id).set_string("mechanism", std::string(mechanism));
  obj(hazard).add_ref("causes", id);
  return id;
}

ObjectId SsamModel::add_control_measure(ObjectId hazard, std::string_view name,
                                        double effectiveness_of_verification) {
  const ObjectId id = create_named(cls::ControlMeasure, name);
  obj(id).set_real("effectivenessOfVerification", effectiveness_of_verification);
  obj(hazard).add_ref("controlMeasures", id);
  return id;
}

ObjectId SsamModel::create_component(ObjectId parent, std::string_view name) {
  const ObjectId id = create_named(cls::Component, name);
  ModelObject& p = obj(parent);
  if (p.is_kind_of(meta().get(cls::Component))) {
    p.add_ref("subcomponents", id);
  } else if (p.is_kind_of(meta().get(cls::ComponentPackage))) {
    p.add_ref("elements", id);
  } else {
    throw ModelError("components live in a ComponentPackage or another Component");
  }
  return id;
}

ObjectId SsamModel::add_io_node(ObjectId component, std::string_view name,
                                std::string_view direction) {
  if (direction != "in" && direction != "out" && direction != "inout") {
    throw ModelError("IONode direction must be 'in', 'out' or 'inout'");
  }
  const ObjectId id = create_named(cls::IONode, name);
  obj(id).set_string("direction", std::string(direction));
  obj(component).add_ref("ioNodes", id);
  return id;
}

ObjectId SsamModel::connect(ObjectId component, ObjectId source_node, ObjectId target_node) {
  const auto& io_cls = meta().get(cls::IONode);
  if (!obj(source_node).is_kind_of(io_cls) || !obj(target_node).is_kind_of(io_cls)) {
    throw ModelError("connect() endpoints must be IONodes");
  }
  const ObjectId id = create_named(cls::ComponentRelationship, "wire");
  obj(id).set_ref("source", source_node);
  obj(id).set_ref("target", target_node);
  obj(component).add_ref("relationships", id);
  return id;
}

ObjectId SsamModel::add_failure_mode(ObjectId component, std::string_view name,
                                     double distribution, std::string_view nature) {
  if (distribution < 0.0 || distribution > 1.0) {
    throw ModelError("failure-mode distribution must be in [0,1]");
  }
  const ObjectId id = create_named(cls::FailureMode, name);
  obj(id).set_real("distribution", distribution);
  obj(id).set_string("nature", std::string(nature));
  obj(component).add_ref("failureModes", id);
  return id;
}

ObjectId SsamModel::add_safety_mechanism(ObjectId component, std::string_view name,
                                         double coverage, double cost_hours,
                                         ObjectId covers_failure_mode) {
  if (coverage < 0.0 || coverage > 1.0) {
    throw ModelError("safety-mechanism coverage must be in [0,1]");
  }
  const ObjectId id = create_named(cls::SafetyMechanism, name);
  obj(id).set_real("coverage", coverage);
  obj(id).set_real("costHours", cost_hours);
  if (covers_failure_mode != kNullObject) obj(id).add_ref("covers", covers_failure_mode);
  obj(component).add_ref("safetyMechanisms", id);
  return id;
}

ObjectId SsamModel::add_function(ObjectId component, std::string_view name,
                                 std::string_view tolerance_type) {
  if (tolerance_type != "1oo1" && tolerance_type != "1oo2" && tolerance_type != "1oo3" &&
      tolerance_type != "2oo3") {
    throw ModelError("tolerance type must be one of 1oo1/1oo2/1oo3/2oo3");
  }
  const ObjectId id = create_named(cls::Function, name);
  obj(id).set_string("toleranceType", std::string(tolerance_type));
  obj(component).add_ref("functions", id);
  return id;
}

ObjectId SsamModel::add_external_reference(ObjectId element, std::string_view location,
                                           std::string_view model_type,
                                           std::string_view extraction_rule) {
  const ObjectId rule_id = create_named(cls::ImplementationConstraint, "extraction-rule");
  obj(rule_id).set_string("language", "decisive-query");
  obj(rule_id).set_string("body", std::string(extraction_rule));

  const ObjectId id = create_named(cls::ExternalReference, "external-reference");
  obj(id).set_string("location", std::string(location));
  obj(id).set_string("modelType", std::string(model_type));
  obj(id).set_ref("extractionRule", rule_id);
  obj(element).add_ref("externalReferences", id);
  return id;
}

void SsamModel::cite(ObjectId from, ObjectId to) { obj(from).add_ref("cites", to); }

std::vector<ObjectId> SsamModel::components_of(ObjectId parent) const {
  const ModelObject& p = obj(parent);
  std::vector<ObjectId> out;
  const auto& component_cls = meta().get(cls::Component);
  if (p.is_kind_of(component_cls)) {
    return p.refs("subcomponents");
  }
  if (p.is_kind_of(meta().get(cls::ComponentPackage))) {
    for (const ObjectId id : p.refs("elements")) {
      if (obj(id).is_kind_of(component_cls)) out.push_back(id);
    }
  }
  return out;
}

std::vector<ObjectId> SsamModel::all_components_under(ObjectId root) const {
  std::vector<ObjectId> out;
  std::vector<ObjectId> stack = components_of(root);
  while (!stack.empty()) {
    const ObjectId id = stack.back();
    stack.pop_back();
    out.push_back(id);
    for (const ObjectId sub : obj(id).refs("subcomponents")) stack.push_back(sub);
  }
  return out;
}

ObjectId SsamModel::find_by_name(std::string_view class_name, std::string_view name) const {
  const auto& wanted = meta().get(class_name);
  ObjectId found = kNullObject;
  repo_.for_each([&](const ModelObject& o) {
    if (found == kNullObject && o.is_kind_of(wanted) && o.get_string("name") == name) {
      found = o.id();
    }
  });
  return found;
}

query::Value run_extraction(const SsamModel& ssam, ObjectId external_reference) {
  const ModelObject& ext = ssam.obj(external_reference);
  if (!ext.is_kind_of(ssam.meta().get(cls::ExternalReference))) {
    throw ModelError("run_extraction expects an ExternalReference");
  }
  const ObjectId rule_id = ext.ref("extractionRule");
  if (rule_id == kNullObject) {
    throw ModelError("external reference has no extraction rule");
  }
  const std::string body = ssam.obj(rule_id).get_string("body");
  if (body.empty()) throw ModelError("extraction rule body is empty");

  const std::string location = ext.get_string("location");
  const std::string type = ext.get_string("modelType");
  const auto source = drivers::DriverRegistry::global().open(location, type);

  query::Env env;
  source->bind(env);
  return query::eval(body, env);
}

}  // namespace decisive::ssam
