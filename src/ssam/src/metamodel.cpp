#include "decisive/ssam/metamodel.hpp"

namespace decisive::ssam {

using model::AttrType;
using model::MetaClass;
using model::MetaPackage;

namespace {

MetaPackage build() {
  MetaPackage pkg("ssam");

  // ---- Base module --------------------------------------------------------
  MetaClass& element = pkg.define_abstract(cls::ModelElement);
  element.add_attribute("uid", AttrType::String);
  element.add_attribute("name", AttrType::String);
  element.add_attribute("nameLang", AttrType::String);  // LangString language tag
  element.add_attribute("description", AttrType::String);
  // "cite": lightweight traceability to any other ModelElement (Section IV-B1).
  element.add_reference("cites", element, /*containment=*/false, /*many=*/true);

  MetaClass& constraint = pkg.define(cls::ImplementationConstraint, &element);
  constraint.add_attribute("language", AttrType::String);
  constraint.add_attribute("body", AttrType::String);

  MetaClass& external = pkg.define(cls::ExternalReference, &element);
  external.add_attribute("location", AttrType::String);
  external.add_attribute("modelType", AttrType::String);  // driver hint
  external.add_attribute("metadata", AttrType::String);
  external.add_reference("extractionRule", constraint, true, false);

  element.add_reference("implementationConstraints", constraint, true, true);
  element.add_reference("externalReferences", external, true, true);

  // ---- Requirement module --------------------------------------------------
  MetaClass& req_element = pkg.define_abstract(cls::RequirementElement, &element);

  MetaClass& requirement = pkg.define(cls::Requirement, &req_element);
  requirement.add_attribute("text", AttrType::String);
  requirement.add_attribute("integrityLevel", AttrType::String);

  MetaClass& safety_req = pkg.define(cls::SafetyRequirement, &requirement);
  safety_req.add_attribute("functionalPart", AttrType::String);

  MetaClass& req_rel = pkg.define(cls::RequirementRelationship, &req_element);
  req_rel.add_attribute("kind", AttrType::String);  // derives / refines / conflicts
  req_rel.add_reference("source", requirement, false, false);
  req_rel.add_reference("target", requirement, false, false);

  MetaClass& req_iface = pkg.define(cls::RequirementPackageInterface, &element);
  req_iface.add_reference("exposes", req_element, false, true);

  MetaClass& req_pkg = pkg.define(cls::RequirementPackage, &element);
  req_pkg.add_reference("elements", req_element, true, true);
  req_pkg.add_reference("interfaces", req_iface, true, true);

  // ---- Hazard module -------------------------------------------------------
  MetaClass& haz_element = pkg.define_abstract(cls::HazardElement, &element);

  MetaClass& cause = pkg.define(cls::Cause, &haz_element);
  cause.add_attribute("mechanism", AttrType::String);

  MetaClass& decision = pkg.define(cls::SafetyDecision, &haz_element);
  decision.add_attribute("rationale", AttrType::String);

  MetaClass& validation = pkg.define(cls::Validation, &haz_element);
  validation.add_attribute("plan", AttrType::String);

  MetaClass& control = pkg.define(cls::ControlMeasure, &haz_element);
  control.add_attribute("effectivenessOfVerification", AttrType::Real);
  control.add_reference("safetyDecision", decision, true, false);
  control.add_reference("validation", validation, true, false);

  MetaClass& situation = pkg.define(cls::HazardousSituation, &haz_element);
  situation.add_attribute("severity", AttrType::String);
  situation.add_attribute("probability", AttrType::Real);
  situation.add_attribute("integrityLevel", AttrType::String);  // target, e.g. ASIL-B
  situation.add_reference("causes", cause, true, true);
  situation.add_reference("controlMeasures", control, true, true);

  MetaClass& haz_iface = pkg.define(cls::HazardPackageInterface, &element);
  haz_iface.add_reference("exposes", haz_element, false, true);

  MetaClass& haz_pkg = pkg.define(cls::HazardPackage, &element);
  haz_pkg.add_reference("elements", haz_element, true, true);
  haz_pkg.add_reference("interfaces", haz_iface, true, true);

  // ---- Architecture module -------------------------------------------------
  MetaClass& comp_element = pkg.define_abstract(cls::ComponentElement, &element);

  MetaClass& io_node = pkg.define(cls::IONode, &comp_element);
  io_node.add_attribute("direction", AttrType::String);  // "in" / "out" / "inout"
  io_node.add_attribute("value", AttrType::Real);
  io_node.add_attribute("lowerLimit", AttrType::Real);
  io_node.add_attribute("upperLimit", AttrType::Real);

  MetaClass& fail_effect = pkg.define(cls::FailureEffect, &comp_element);
  fail_effect.add_attribute("classification", AttrType::String);  // DVF / IVF / none

  MetaClass& situation_ref = situation;  // for readability below

  MetaClass& failure_mode = pkg.define(cls::FailureMode, &comp_element);
  failure_mode.add_attribute("distribution", AttrType::Real);  // fraction of component FIT
  failure_mode.add_attribute("exposure", AttrType::Real);
  failure_mode.add_attribute("nature", AttrType::String);  // lossOfFunction / degraded / erroneous
  failure_mode.add_attribute("safetyRelated", AttrType::Bool);  // analysis result
  // ISO 26262 LFM: a multi-point residual of a perceived mode is classed
  // "perceived" instead of "latent" (the driver notices the degradation).
  failure_mode.add_attribute("perceived", AttrType::Bool);
  failure_mode.add_reference("effects", fail_effect, true, true);
  failure_mode.add_reference("hazards", situation_ref, false, true);

  MetaClass& safety_mechanism = pkg.define(cls::SafetyMechanism, &comp_element);
  safety_mechanism.add_attribute("coverage", AttrType::Real);  // diagnostic coverage 0..1
  safety_mechanism.add_attribute("costHours", AttrType::Real);
  safety_mechanism.add_reference("covers", failure_mode, false, true);

  MetaClass& function = pkg.define(cls::Function, &comp_element);
  function.add_attribute("toleranceType", AttrType::String);  // 1oo1 / 1oo2 / 1oo3 / 2oo3

  MetaClass& component = pkg.define(cls::Component, &comp_element);
  component.add_attribute("fit", AttrType::Real);  // failures-in-time, 1e-9/h
  component.add_attribute("integrityLevel", AttrType::String);
  component.add_attribute("componentType", AttrType::String);  // system / hardware / software
  component.add_attribute("safetyRelated", AttrType::Bool);
  component.add_attribute("dynamic", AttrType::Bool);
  component.add_attribute("blockType", AttrType::String);  // e.g. imported Simulink BlockType
  component.add_reference("subcomponents", component, true, true);
  component.add_reference("ioNodes", io_node, true, true);
  component.add_reference("failureModes", failure_mode, true, true);
  component.add_reference("safetyMechanisms", safety_mechanism, true, true);
  component.add_reference("functions", function, true, true);

  // FailureMode may point at the components it affects (Figure 9's
  // "affected components" reference).
  failure_mode.add_reference("affectedComponents", component, false, true);

  MetaClass& comp_rel = pkg.define(cls::ComponentRelationship, &comp_element);
  comp_rel.add_reference("source", io_node, false, false);
  comp_rel.add_reference("target", io_node, false, false);

  component.add_reference("relationships", comp_rel, true, true);

  MetaClass& comp_iface = pkg.define(cls::ComponentPackageInterface, &element);
  comp_iface.add_reference("exposes", comp_element, false, true);

  MetaClass& comp_pkg = pkg.define(cls::ComponentPackage, &element);
  comp_pkg.add_reference("elements", comp_element, true, true);
  comp_pkg.add_reference("interfaces", comp_iface, true, true);

  // ---- MBSA module ---------------------------------------------------------
  MetaClass& mbsa = pkg.define(cls::MBSAPackage, &element);
  mbsa.add_reference("requirementPackages", req_pkg, true, true);
  mbsa.add_reference("hazardPackages", haz_pkg, true, true);
  mbsa.add_reference("componentPackages", comp_pkg, true, true);

  return pkg;
}

}  // namespace

const model::MetaPackage& metamodel() {
  static const MetaPackage package = build();
  return package;
}

}  // namespace decisive::ssam
