#include "decisive/ssam/validate.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "decisive/base/strings.hpp"

namespace decisive::ssam {

namespace {

void check_component(const SsamModel& m, const model::ModelObject& comp,
                     std::vector<ValidationFinding>& findings) {
  const std::string name = comp.get_string("name");
  if (comp.get_real("fit") < 0.0) {
    findings.push_back({"comp-fit-negative", comp.id(),
                        "component '" + name + "' has negative FIT"});
  }

  // Failure modes.
  double distribution_sum = 0.0;
  const std::set<ObjectId> own_modes(comp.refs("failureModes").begin(),
                                     comp.refs("failureModes").end());
  for (const ObjectId fm : comp.refs("failureModes")) {
    const double dist = m.obj(fm).get_real("distribution");
    if (dist < 0.0 || dist > 1.0) {
      findings.push_back({"fm-distribution-range", fm,
                          "failure mode '" + m.obj(fm).get_string("name") + "' of '" + name +
                              "' has distribution outside [0,1]"});
    }
    distribution_sum += dist;
  }
  if (distribution_sum > 1.0 + 1e-9) {
    findings.push_back({"fm-distribution-sum", comp.id(),
                        "failure-mode distributions of '" + name + "' sum to " +
                            format_number(distribution_sum, 4) + " (> 1)"});
  }

  // Safety mechanisms.
  for (const ObjectId sm : comp.refs("safetyMechanisms")) {
    const double coverage = m.obj(sm).get_real("coverage");
    if (coverage < 0.0 || coverage > 1.0) {
      findings.push_back({"sm-coverage-range", sm,
                          "safety mechanism '" + m.obj(sm).get_string("name") + "' on '" +
                              name + "' has coverage outside [0,1]"});
    }
    for (const ObjectId covered : m.obj(sm).refs("covers")) {
      if (!own_modes.contains(covered)) {
        findings.push_back({"sm-covers-foreign", sm,
                            "safety mechanism '" + m.obj(sm).get_string("name") + "' on '" +
                                name + "' covers a failure mode of another component"});
      }
    }
  }

  // IONodes.
  for (const ObjectId node : comp.refs("ioNodes")) {
    const std::string direction = m.obj(node).get_string("direction");
    if (direction != "in" && direction != "out" && direction != "inout") {
      findings.push_back({"io-direction", node,
                          "IONode '" + m.obj(node).get_string("name") + "' of '" + name +
                              "' has direction '" + direction + "'"});
    }
  }

  // Relationships: endpoints in scope (own boundary or direct subcomponents).
  std::set<ObjectId> in_scope(comp.refs("ioNodes").begin(), comp.refs("ioNodes").end());
  for (const ObjectId sub : comp.refs("subcomponents")) {
    for (const ObjectId node : m.obj(sub).refs("ioNodes")) in_scope.insert(node);
  }
  for (const ObjectId rel : comp.refs("relationships")) {
    const ObjectId source = m.obj(rel).ref("source");
    const ObjectId target = m.obj(rel).ref("target");
    if (source == model::kNullObject || target == model::kNullObject) {
      findings.push_back({"rel-endpoint-missing", rel,
                          "relationship in '" + name + "' is missing an endpoint"});
      continue;
    }
    for (const ObjectId endpoint : {source, target}) {
      if (!in_scope.contains(endpoint)) {
        findings.push_back({"rel-endpoint-scope", rel,
                            "relationship in '" + name +
                                "' references an IONode outside the component's scope"});
      }
    }
  }

  // Composite components that wire subcomponents should expose a boundary.
  if (!comp.refs("subcomponents").empty() && !comp.refs("relationships").empty() &&
      comp.refs("ioNodes").empty()) {
    findings.push_back({"composite-io", comp.id(),
                        "composite component '" + name +
                            "' wires subcomponents but exposes no boundary IONodes"});
  }

  // Sibling name collisions.
  std::map<std::string, int> names;
  for (const ObjectId sub : comp.refs("subcomponents")) {
    ++names[m.obj(sub).get_string("name")];
  }
  for (const auto& [sub_name, count] : names) {
    if (count > 1) {
      findings.push_back({"name-collision", comp.id(),
                          "component '" + name + "' has " + std::to_string(count) +
                              " subcomponents named '" + sub_name + "'"});
    }
  }
}

}  // namespace

std::vector<ValidationFinding> validate(const SsamModel& ssam) {
  std::vector<ValidationFinding> findings;
  const auto& component_cls = ssam.meta().get(cls::Component);
  ssam.repo().for_each([&](const model::ModelObject& obj) {
    if (obj.is_kind_of(component_cls)) check_component(ssam, obj, findings);
  });
  return findings;
}

std::string to_text(const SsamModel& ssam, const std::vector<ValidationFinding>& findings) {
  (void)ssam;
  if (findings.empty()) return "model is well-formed\n";
  std::string out;
  for (const auto& finding : findings) {
    out += "[" + finding.rule + "] " + finding.message + "\n";
  }
  return out;
}

}  // namespace decisive::ssam
