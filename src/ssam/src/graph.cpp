#include "decisive/ssam/graph.hpp"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::ssam {

std::optional<NodeDirection> parse_direction(std::string_view raw) {
  const std::string value = to_lower(trim(raw));
  if (value == "in") return NodeDirection::In;
  if (value == "out") return NodeDirection::Out;
  if (value == "inout" || value == "in out") return NodeDirection::InOut;
  return std::nullopt;
}

namespace {

NodeDirection direction_of(const SsamModel& ssam, ObjectId node, const std::string& scope) {
  const std::string raw = ssam.obj(node).get_string("direction");
  const auto dir = parse_direction(raw);
  if (!dir.has_value()) {
    throw AnalysisError("IONode '" + ssam.obj(node).get_string("name") + "' of '" + scope +
                        "' has unknown direction '" + raw +
                        "' (expected 'in', 'out' or 'inout')");
  }
  return *dir;
}

}  // namespace

ComponentGraph build_graph(const SsamModel& ssam, ObjectId component) {
  ComponentGraph graph;
  const auto& comp = ssam.obj(component);
  const std::string comp_name = comp.get_string("name");

  // Parent boundary nodes. An inout node carries both roles.
  for (const ObjectId node : comp.refs("ioNodes")) {
    graph.nodes.push_back(node);
    const NodeDirection dir = direction_of(ssam, node, comp_name);
    graph.direction[node] = dir;
    if (dir != NodeDirection::Out) graph.inputs.push_back(node);
    if (dir != NodeDirection::In) graph.outputs.push_back(node);
  }
  if (graph.inputs.empty() || graph.outputs.empty()) {
    throw AnalysisError("component '" + comp_name +
                        "' needs at least one input and one output IONode for path analysis");
  }

  // Subcomponent nodes + implicit through edges from every input-role node
  // to every output-role node (no self edge for inout nodes).
  for (const ObjectId sub : comp.refs("subcomponents")) {
    const std::string sub_name = ssam.obj(sub).get_string("name");
    std::vector<ObjectId> sub_inputs;
    std::vector<ObjectId> sub_outputs;
    for (const ObjectId node : ssam.obj(sub).refs("ioNodes")) {
      graph.nodes.push_back(node);
      graph.owner[node] = sub;
      const NodeDirection dir = direction_of(ssam, node, sub_name);
      graph.direction[node] = dir;
      if (dir != NodeDirection::Out) sub_inputs.push_back(node);
      if (dir != NodeDirection::In) sub_outputs.push_back(node);
    }
    for (const ObjectId in : sub_inputs) {
      for (const ObjectId out : sub_outputs) {
        if (in != out) graph.edges[in].push_back(out);
      }
    }
  }

  // Explicit wire edges.
  for (const ObjectId rel : comp.refs("relationships")) {
    const ObjectId source = ssam.obj(rel).ref("source");
    const ObjectId target = ssam.obj(rel).ref("target");
    if (source == model::kNullObject || target == model::kNullObject) {
      throw AnalysisError("component relationship with missing endpoint");
    }
    graph.edges[source].push_back(target);
  }
  return graph;
}

// ---------------------------------------------------------------------------
// SinglePointAnalysis — dominator/cut analysis on the flow graph
// ---------------------------------------------------------------------------

namespace {

/// Dense-index view of a ComponentGraph plus the virtual super-source (fed
/// into every boundary input) and super-sink (fed by every boundary output).
struct FlowGraph {
  static constexpr int kSource = 0;
  static constexpr int kSink = 1;

  std::vector<ObjectId> id_of;  ///< vertex index -> ObjectId (kNullObject for S/T)
  std::map<ObjectId, int> index_of;
  std::vector<std::vector<int>> succ;
  std::vector<std::vector<int>> pred;

  [[nodiscard]] size_t size() const noexcept { return id_of.size(); }
};

FlowGraph make_flow_graph(const ComponentGraph& graph) {
  FlowGraph flow;
  flow.id_of = {model::kNullObject, model::kNullObject};  // S, T
  const auto intern = [&flow](ObjectId id) {
    const auto [it, inserted] = flow.index_of.try_emplace(id, static_cast<int>(flow.id_of.size()));
    if (inserted) flow.id_of.push_back(id);
    return it->second;
  };
  for (const ObjectId id : graph.nodes) intern(id);
  // Defensive: relationships may reference IONodes outside the component's
  // declared vertex set (caught by the validator, not by build_graph).
  for (const auto& [from, targets] : graph.edges) {
    intern(from);
    for (const ObjectId to : targets) intern(to);
  }

  flow.succ.resize(flow.size());
  flow.pred.resize(flow.size());
  const auto add_edge = [&flow](int a, int b) {
    flow.succ[static_cast<size_t>(a)].push_back(b);
    flow.pred[static_cast<size_t>(b)].push_back(a);
  };
  for (const ObjectId in : graph.inputs) add_edge(FlowGraph::kSource, flow.index_of.at(in));
  for (const ObjectId out : graph.outputs) add_edge(flow.index_of.at(out), FlowGraph::kSink);
  for (const auto& [from, targets] : graph.edges) {
    for (const ObjectId to : targets) add_edge(flow.index_of.at(from), flow.index_of.at(to));
  }
  return flow;
}

/// Iterative reachability over an adjacency vector (explicit stack — never
/// recursion, so chain depth is bounded by heap, not stack).
std::vector<char> reach(const std::vector<std::vector<int>>& adj, int start) {
  std::vector<char> seen(adj.size(), 0);
  std::vector<int> stack{start};
  seen[static_cast<size_t>(start)] = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (const int w : adj[static_cast<size_t>(v)]) {
      if (!seen[static_cast<size_t>(w)]) {
        seen[static_cast<size_t>(w)] = 1;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

/// Immediate dominators over `succ`/`pred` rooted at vertex 0, via the
/// iterative Cooper–Harvey–Kennedy dataflow on reverse postorder. Works on
/// arbitrary digraphs (cycles included). Returns idom indexed by vertex;
/// unreachable vertices keep -1.
std::vector<int> immediate_dominators(const std::vector<std::vector<int>>& succ,
                                      const std::vector<std::vector<int>>& pred) {
  const size_t n = succ.size();
  // Iterative DFS postorder from the root.
  std::vector<int> postorder;
  postorder.reserve(n);
  {
    std::vector<char> seen(n, 0);
    std::vector<std::pair<int, size_t>> stack;  // (vertex, next child index)
    stack.emplace_back(0, 0);
    seen[0] = 1;
    while (!stack.empty()) {
      auto& [v, next] = stack.back();
      const auto& children = succ[static_cast<size_t>(v)];
      bool descended = false;
      while (next < children.size()) {
        const int w = children[next++];
        if (!seen[static_cast<size_t>(w)]) {
          seen[static_cast<size_t>(w)] = 1;
          stack.emplace_back(w, 0);
          descended = true;
          break;
        }
      }
      if (!descended && stack.back().second >= children.size()) {
        postorder.push_back(stack.back().first);
        stack.pop_back();
      }
    }
  }
  std::vector<int> rpo_number(n, -1);
  std::vector<int> rpo;  // root first
  rpo.reserve(postorder.size());
  for (auto it = postorder.rbegin(); it != postorder.rend(); ++it) {
    rpo_number[static_cast<size_t>(*it)] = static_cast<int>(rpo.size());
    rpo.push_back(*it);
  }

  std::vector<int> idom(n, -1);
  idom[0] = 0;
  const auto intersect = [&](int a, int b) {
    while (a != b) {
      while (rpo_number[static_cast<size_t>(a)] > rpo_number[static_cast<size_t>(b)]) {
        a = idom[static_cast<size_t>(a)];
      }
      while (rpo_number[static_cast<size_t>(b)] > rpo_number[static_cast<size_t>(a)]) {
        b = idom[static_cast<size_t>(b)];
      }
    }
    return a;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 1; i < rpo.size(); ++i) {
      const int v = rpo[i];
      int new_idom = -1;
      for (const int p : pred[static_cast<size_t>(v)]) {
        if (rpo_number[static_cast<size_t>(p)] < 0) continue;  // unreachable pred
        if (idom[static_cast<size_t>(p)] < 0) continue;        // not yet processed
        new_idom = new_idom < 0 ? p : intersect(p, new_idom);
      }
      if (new_idom >= 0 && idom[static_cast<size_t>(v)] != new_idom) {
        idom[static_cast<size_t>(v)] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

}  // namespace

SinglePointAnalysis::SinglePointAnalysis(const ComponentGraph& graph) {
  // Every owner starts as "not a single point" so lookups are total.
  for (const auto& [node, owner] : graph.owner) verdict_.try_emplace(owner, false);

  const FlowGraph flow = make_flow_graph(graph);
  const std::vector<char> fwd = reach(flow.succ, FlowGraph::kSource);
  const std::vector<char> bwd = reach(flow.pred, FlowGraph::kSink);
  has_path_ = fwd[FlowGraph::kSink] != 0;
  if (!has_path_) return;

  std::vector<char> live(flow.size(), 0);
  for (size_t v = 0; v < flow.size(); ++v) live[v] = fwd[v] && bwd[v];
  for (size_t v = 2; v < flow.size(); ++v) live_nodes_ += live[v] != 0;

  // Contract each subcomponent's live IONodes into one supervertex; boundary
  // (unowned) vertices stay individual. S keeps index 0, T index 1.
  std::vector<int> super(flow.size(), -1);
  std::map<ObjectId, int> owner_super;
  int h_count = 2;
  super[FlowGraph::kSource] = FlowGraph::kSource;
  super[FlowGraph::kSink] = FlowGraph::kSink;
  for (size_t v = 2; v < flow.size(); ++v) {
    if (!live[v]) continue;
    const auto owner_it = graph.owner.find(flow.id_of[v]);
    if (owner_it == graph.owner.end()) {
      super[v] = h_count++;
    } else {
      const auto [it, inserted] = owner_super.try_emplace(owner_it->second, h_count);
      if (inserted) ++h_count;
      super[v] = it->second;
    }
  }

  std::vector<std::vector<int>> h_succ(static_cast<size_t>(h_count));
  std::vector<std::vector<int>> h_pred(static_cast<size_t>(h_count));
  std::set<std::pair<int, int>> h_edges;
  for (size_t v = 0; v < flow.size(); ++v) {
    if (!live[v]) continue;
    for (const int w : flow.succ[v]) {
      if (!live[static_cast<size_t>(w)]) continue;
      const int a = super[v];
      const int b = super[static_cast<size_t>(w)];
      if (a == b) continue;  // intra-component / self edge: irrelevant to cuts
      if (h_edges.emplace(a, b).second) {
        h_succ[static_cast<size_t>(a)].push_back(b);
        h_pred[static_cast<size_t>(b)].push_back(a);
      }
    }
  }

  // A supervertex separates S from T iff it dominates T: walk the dominator
  // chain of the super-sink once and flag every subcomponent on it.
  const std::vector<int> idom = immediate_dominators(h_succ, h_pred);
  std::vector<char> on_chain(static_cast<size_t>(h_count), 0);
  if (idom[FlowGraph::kSink] >= 0) {
    for (int v = idom[FlowGraph::kSink];; v = idom[static_cast<size_t>(v)]) {
      on_chain[static_cast<size_t>(v)] = 1;
      if (v == FlowGraph::kSource) break;
    }
  }
  for (const auto& [owner, sv] : owner_super) {
    if (on_chain[static_cast<size_t>(sv)]) verdict_[owner] = true;
  }

  // Contraction is exact when every inter-component edge leaves an
  // output-role node and enters an input-role node (through edges then lift
  // any contracted walk back to a real path). Irregular wiring — an edge out
  // of an input-role node or into an output-role node — can over-connect the
  // contracted graph and hide a separator, so re-check the negative verdicts
  // exactly with one reachability pass each. Positive verdicts are always
  // sound: a contracted cut only removes the subcomponent's own vertices.
  bool irregular = false;
  for (size_t v = 2; v < flow.size() && !irregular; ++v) {
    if (!live[v]) continue;
    const ObjectId from_id = flow.id_of[v];
    const auto from_owner = graph.owner.find(from_id);
    for (const int w : flow.succ[v]) {
      if (w < 2 || !live[static_cast<size_t>(w)]) continue;
      const ObjectId to_id = flow.id_of[static_cast<size_t>(w)];
      const auto to_owner = graph.owner.find(to_id);
      const bool same_owner = from_owner != graph.owner.end() &&
                              to_owner != graph.owner.end() &&
                              from_owner->second == to_owner->second;
      if (same_owner) continue;  // through edge
      const auto from_dir = graph.direction.find(from_id);
      const auto to_dir = graph.direction.find(to_id);
      if ((from_owner != graph.owner.end() && from_dir != graph.direction.end() &&
           from_dir->second == NodeDirection::In) ||
          (to_owner != graph.owner.end() && to_dir != graph.direction.end() &&
           to_dir->second == NodeDirection::Out)) {
        irregular = true;
        break;
      }
    }
  }
  if (!irregular) return;
  // Irregular wiring forces the exact per-subcomponent re-check; the counter
  // makes this slow path visible at runtime (it defeats the dominator
  // shortcut, so a model that trips it constantly deserves attention).
  static obs::Counter& exact_fallbacks =
      obs::Registry::global().counter("decisive_graph_fmea_exact_fallback_total");
  exact_fallbacks.add();
  obs::Span fallback_span("graph_fmea.exact_fallback");

  for (const auto& [owner, sv] : owner_super) {
    if (verdict_[owner]) continue;
    // Reachability S -> T skipping this owner's vertices.
    std::vector<char> seen(flow.size(), 0);
    std::vector<int> stack{FlowGraph::kSource};
    seen[FlowGraph::kSource] = 1;
    bool connected = false;
    while (!stack.empty() && !connected) {
      const int v = stack.back();
      stack.pop_back();
      for (const int w : flow.succ[static_cast<size_t>(v)]) {
        if (seen[static_cast<size_t>(w)]) continue;
        const auto it = graph.owner.find(flow.id_of[static_cast<size_t>(w)]);
        if (it != graph.owner.end() && it->second == owner) continue;
        if (w == FlowGraph::kSink) {
          connected = true;
          break;
        }
        seen[static_cast<size_t>(w)] = 1;
        stack.push_back(w);
      }
    }
    if (!connected) verdict_[owner] = true;
  }
}

bool SinglePointAnalysis::is_single_point(ObjectId subcomponent) const {
  const auto it = verdict_.find(subcomponent);
  return it != verdict_.end() && it->second;
}

// ---------------------------------------------------------------------------
// Brute-force oracle: explicit simple-path enumeration
// ---------------------------------------------------------------------------

std::vector<std::vector<ObjectId>> enumerate_paths(const ComponentGraph& graph,
                                                   size_t max_paths) {
  const std::set<ObjectId> goals(graph.outputs.begin(), graph.outputs.end());
  std::vector<std::vector<ObjectId>> paths;

  // Iterative backtracking DFS (explicit frame stack) so deep chains cannot
  // overflow the call stack even in the oracle.
  struct Frame {
    ObjectId node;
    size_t next = 0;  ///< index of the next successor to try
  };
  for (const ObjectId input : graph.inputs) {
    std::vector<ObjectId> current;
    std::set<ObjectId> visited;
    std::vector<Frame> stack;
    const auto push = [&](ObjectId node) {
      current.push_back(node);
      visited.insert(node);
      stack.push_back({node, 0});
    };
    const auto pop = [&] {
      visited.erase(stack.back().node);
      current.pop_back();
      stack.pop_back();
    };
    push(input);
    while (!stack.empty()) {
      const size_t depth = stack.size() - 1;
      const ObjectId node = stack[depth].node;
      if (stack[depth].next == 0 && goals.contains(node)) {
        if (paths.size() >= max_paths) {
          throw AnalysisError("path enumeration exceeded " + std::to_string(max_paths) +
                              " paths; the component graph is too dense");
        }
        paths.push_back(current);
        pop();
        continue;
      }
      const auto it = graph.edges.find(node);
      bool descended = false;
      if (it != graph.edges.end()) {
        while (stack[depth].next < it->second.size()) {
          const ObjectId next = it->second[stack[depth].next++];
          if (!visited.contains(next)) {
            push(next);
            descended = true;
            break;
          }
        }
      }
      if (!descended) pop();
    }
  }
  return paths;
}

bool on_all_paths(const ComponentGraph& graph,
                  const std::vector<std::vector<ObjectId>>& paths, ObjectId subcomponent) {
  if (paths.empty()) return false;
  for (const auto& path : paths) {
    const bool present = std::any_of(path.begin(), path.end(), [&](ObjectId node) {
      const auto it = graph.owner.find(node);
      return it != graph.owner.end() && it->second == subcomponent;
    });
    if (!present) return false;
  }
  return true;
}

}  // namespace decisive::ssam
