#include "decisive/ssam/graph.hpp"

#include <algorithm>
#include <set>

#include "decisive/base/error.hpp"

namespace decisive::ssam {

ComponentGraph build_graph(const SsamModel& ssam, ObjectId component) {
  ComponentGraph graph;
  const auto& comp = ssam.obj(component);

  // Parent boundary nodes.
  for (const ObjectId node : comp.refs("ioNodes")) {
    graph.nodes.push_back(node);
    const std::string direction = ssam.obj(node).get_string("direction");
    if (direction == "in") graph.inputs.push_back(node);
    else graph.outputs.push_back(node);
  }
  if (graph.inputs.empty() || graph.outputs.empty()) {
    throw AnalysisError("component '" + comp.get_string("name") +
                        "' needs at least one input and one output IONode for path analysis");
  }

  // Subcomponent nodes + implicit through edges.
  for (const ObjectId sub : comp.refs("subcomponents")) {
    std::vector<ObjectId> sub_inputs;
    std::vector<ObjectId> sub_outputs;
    for (const ObjectId node : ssam.obj(sub).refs("ioNodes")) {
      graph.nodes.push_back(node);
      graph.owner[node] = sub;
      if (ssam.obj(node).get_string("direction") == "in") sub_inputs.push_back(node);
      else sub_outputs.push_back(node);
    }
    for (const ObjectId in : sub_inputs) {
      for (const ObjectId out : sub_outputs) graph.edges[in].push_back(out);
    }
  }

  // Explicit wire edges.
  for (const ObjectId rel : comp.refs("relationships")) {
    const ObjectId source = ssam.obj(rel).ref("source");
    const ObjectId target = ssam.obj(rel).ref("target");
    if (source == model::kNullObject || target == model::kNullObject) {
      throw AnalysisError("component relationship with missing endpoint");
    }
    graph.edges[source].push_back(target);
  }
  return graph;
}

namespace {

void dfs(const ComponentGraph& graph, ObjectId node, const std::set<ObjectId>& goals,
         std::vector<ObjectId>& current, std::set<ObjectId>& visited,
         std::vector<std::vector<ObjectId>>& paths, size_t max_paths) {
  current.push_back(node);
  visited.insert(node);
  if (goals.contains(node)) {
    if (paths.size() >= max_paths) {
      throw AnalysisError("path enumeration exceeded " + std::to_string(max_paths) +
                          " paths; the component graph is too dense");
    }
    paths.push_back(current);
  } else {
    const auto it = graph.edges.find(node);
    if (it != graph.edges.end()) {
      for (const ObjectId next : it->second) {
        if (!visited.contains(next)) {
          dfs(graph, next, goals, current, visited, paths, max_paths);
        }
      }
    }
  }
  visited.erase(node);
  current.pop_back();
}

}  // namespace

std::vector<std::vector<ObjectId>> enumerate_paths(const ComponentGraph& graph,
                                                   size_t max_paths) {
  const std::set<ObjectId> goals(graph.outputs.begin(), graph.outputs.end());
  std::vector<std::vector<ObjectId>> paths;
  for (const ObjectId input : graph.inputs) {
    std::vector<ObjectId> current;
    std::set<ObjectId> visited;
    dfs(graph, input, goals, current, visited, paths, max_paths);
  }
  return paths;
}

bool on_all_paths(const ComponentGraph& graph,
                  const std::vector<std::vector<ObjectId>>& paths, ObjectId subcomponent) {
  if (paths.empty()) return false;
  for (const auto& path : paths) {
    const bool present = std::any_of(path.begin(), path.end(), [&](ObjectId node) {
      const auto it = graph.owner.find(node);
      return it != graph.owner.end() && it->second == subcomponent;
    });
    if (!present) return false;
  }
  return true;
}

}  // namespace decisive::ssam
