// Sparse direct solver subsystem: CSC patterns, fill-reducing ordering,
// Gilbert-Peierls LU with threshold partial pivoting, and the symbolic /
// numeric split that makes repeated MNA solves cheap.
//
// The design mirrors KLU's shape (the de-facto circuit-simulation
// factorisation): the *symbolic* analysis — column ordering, pivot row
// assignment and the full L/U elimination pattern — is computed once per
// circuit structure and frozen; every subsequent Newton iteration, transient
// step, AC point or campaign fault with the same structure replays a purely
// *numeric* refactorisation over that frozen pattern (no graph traversal, no
// allocation). Structural faults that delete one branch unknown reuse the
// untouched symbolic prefix via partial_factor() and re-run the
// Gilbert-Peierls sweep only from the first touched column.
//
// Numerical honesty: a sparse factorisation pivots differently from the
// dense kernel, so its solutions agree with dense only to rounding — never
// bit-for-bit. Callers that promise byte-identical artefacts (the FMEDA
// campaign) therefore accept sparse results only behind the PR-7 gate ladder
// and re-run anything suspicious on the dense oracle; this header only
// promises a *correct* factorisation or a clean `false`.
//
// Thread model: `Symbolic` is immutable after construction and shared
// read-only across workers via shared_ptr; each worker owns a SparseLu
// holding the numeric values and scratch. Pattern objects are likewise
// immutable once frozen.
#pragma once

#include <complex>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "decisive/obs/registry.hpp"

namespace decisive::sim::sparse {

/// Pivot-stability gate of the numeric refactorisation: a frozen pivot whose
/// magnitude has fallen below this fraction of its column's post-elimination
/// max is no longer trustworthy — the caller must re-pivot (fresh factor())
/// or fall back to dense.
inline constexpr double kRefactorPivotGate = 1e-3;

/// Threshold partial pivoting: prefer the diagonal entry (best for pattern
/// stability across refactorisations of diagonally dominant MNA systems)
/// whenever it is within this factor of the column's max magnitude.
inline constexpr double kDiagonalPreference = 0.1;

/// Patterns denser than this are not worth sparse treatment; the caller
/// should keep the dense kernel. Checked by min_degree_order (which returns
/// the identity order for such patterns) and exposed for callers' fill gates.
inline constexpr double kDensePatternRatio = 0.25;

/// Compressed-sparse-column nonzero pattern of a square matrix. Row indices
/// are strictly increasing within each column. Immutable once built (the
/// numeric values live in a separate, parallel array).
struct Pattern {
  std::size_t n = 0;
  std::vector<std::int32_t> col_ptr;  ///< size n + 1
  std::vector<std::int32_t> row_ind;  ///< size nnz, sorted per column

  [[nodiscard]] std::size_t nnz() const noexcept { return row_ind.size(); }

  /// FNV-1a over n, col_ptr and row_ind: the campaign's symbolic-cache key.
  /// Equal fingerprints are treated as equal structures (64-bit collision
  /// odds are negligible against ~10^3 structures per campaign).
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  bool operator==(const Pattern&) const = default;
};

/// Records the coordinate stream of one stamp pass, then freezes it into a
/// deduplicated Pattern plus the per-add slot sequence that lets every later
/// numeric assembly replay the identical stamp pass straight into the CSC
/// value array (no search, no sort — one indexed add per stamp).
class PatternBuilder {
 public:
  void begin(std::size_t n) {
    n_ = n;
    coords_.clear();
  }

  void add(std::size_t row, std::size_t col) {
    coords_.emplace_back(static_cast<std::int32_t>(col), static_cast<std::int32_t>(row));
  }

  [[nodiscard]] std::size_t recorded() const noexcept { return coords_.size(); }

  /// Builds `pattern` (sorted, deduplicated CSC) and fills `slots` with the
  /// CSC value index of every recorded add, in recording order.
  void freeze(Pattern& pattern, std::vector<std::int32_t>& slots) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> coords_;  ///< (col, row)
};

/// Fill-reducing column ordering: greedy minimum degree on the symmetric
/// pattern of A + A^T (MNA systems are structurally symmetric, so this is
/// the natural Markowitz specialisation). Deterministic: ties break to the
/// lowest index. Returns the identity order when the pattern is too dense
/// for sparse treatment (see kDensePatternRatio).
[[nodiscard]] std::vector<std::int32_t> min_degree_order(const Pattern& a);

/// The frozen result of symbolic analysis: column order, pivot rows, and the
/// complete L/U elimination pattern. Immutable; shared read-only across
/// threads. All row indices are *original* (unpermuted) row numbers; U
/// entries reference pivot *positions* and are stored in the exact
/// (topological) elimination order the numeric replay must follow.
struct Symbolic {
  std::size_t n = 0;
  std::vector<std::int32_t> perm_col;   ///< position k factors original column perm_col[k]
  std::vector<std::int32_t> pivot_row;  ///< original row pivotal at position k
  std::vector<std::int32_t> l_ptr;      ///< size n + 1; L column extents
  std::vector<std::int32_t> l_row;      ///< original row indices of L entries
  std::vector<std::int32_t> u_ptr;      ///< size n + 1; U column extents
  std::vector<std::int32_t> u_pos;      ///< pivot positions of U entries, topological order
  std::uint64_t pattern_fingerprint = 0;  ///< fingerprint of the A pattern this was built for

  /// Total stored entries of L + U including the n pivots.
  [[nodiscard]] std::size_t lu_nnz() const noexcept {
    return l_row.size() + u_pos.size() + n;
  }
};

/// Sparse LU factorisation PAQ = LU with owned numeric storage and scratch.
/// factor() performs the full symbolic + numeric Gilbert-Peierls sweep;
/// refactor() replays the numbers over a frozen Symbolic; partial_factor()
/// reuses an unchanged symbolic prefix across a structural edit. All three
/// report numerical trouble by returning false (never throwing), so callers
/// can fall back to the dense oracle without disturbing control flow.
template <typename T>
class SparseLu {
 public:
  /// Full factorisation of `values` (CSC, parallel to `pattern.row_ind`):
  /// min-degree ordering, Gilbert-Peierls with threshold partial pivoting,
  /// fresh Symbolic. Returns false (with `error` set) when the matrix is
  /// numerically singular under the relative pivot floor shared with the
  /// dense kernel.
  bool factor(const Pattern& pattern, const T* values, std::string* error);

  /// Numeric-only replay over the adopted Symbolic (from a prior factor(),
  /// partial_factor() or adopt()). The pattern must be the one the symbolic
  /// was built for. Returns false when a frozen pivot fails the stability
  /// gate or the relative floor — re-pivot via factor() or go dense.
  bool refactor(const Pattern& pattern, const T* values, std::string* error);

  /// Partial refactorisation across a structural edit: `base` was built for
  /// `base_pattern`; `new_of_old` maps every old row/column index to its new
  /// index (-1 = deleted; must be strictly increasing over surviving
  /// indices). The longest prefix of base positions whose columns are
  /// untouched is copied (patterns reused, numbers replayed under the pivot
  /// gate); Gilbert-Peierls runs only from the first touched column.
  /// `reused_columns` (optional) reports the prefix length. Returns false on
  /// a pivot-gate trip or singularity — fall back to a full factor().
  bool partial_factor(const Symbolic& base, const Pattern& base_pattern,
                      const std::vector<std::int32_t>& new_of_old, const Pattern& pattern,
                      const T* values, std::size_t* reused_columns, std::string* error);

  /// Adopts a shared Symbolic (e.g. the campaign's cached one) so the next
  /// call can be a refactor() without a private factor() first.
  void adopt(std::shared_ptr<const Symbolic> symbolic);

  /// Solves A x = b in place; `b` must hold n entries. Only valid after a
  /// successful factor()/refactor()/partial_factor().
  void solve_in_place(T* b) const;

  [[nodiscard]] const std::shared_ptr<const Symbolic>& symbolic() const noexcept {
    return sym_;
  }
  [[nodiscard]] bool factored() const noexcept { return factored_; }
  /// Stored L+U entries over the input pattern's nonzeros; 0 before factor.
  [[nodiscard]] double fill_ratio() const noexcept { return fill_ratio_; }
  [[nodiscard]] std::size_t lu_nnz() const noexcept { return sym_ ? sym_->lu_nnz() : 0; }

 private:
  bool gilbert_peierls(const Pattern& pattern, const T* values,
                       const std::vector<std::int32_t>& col_order, std::size_t start_pos,
                       Symbolic& sym, std::vector<std::int32_t>& pinv, double floor,
                       std::string* error);
  bool replay_prefix(const Symbolic& sym, const Pattern& pattern, const T* values,
                     std::size_t end_pos, double floor, std::string* error);
  void finish(const Pattern& pattern);

  std::shared_ptr<const Symbolic> sym_;
  std::vector<T> l_val_;
  std::vector<T> u_val_;
  std::vector<T> u_diag_;
  bool factored_ = false;
  double fill_ratio_ = 0.0;

  // Scratch (sized n on demand, reused across calls).
  std::vector<T> x_;
  std::vector<std::int32_t> mark_;
  std::vector<std::int32_t> stack_;
  std::vector<std::int32_t> pstack_;
  std::vector<std::int32_t> topo_;
  std::vector<std::int32_t> rows_;
  mutable std::vector<T> solve_scratch_;
  std::int32_t pass_ = 0;
};

extern template class SparseLu<double>;
extern template class SparseLu<std::complex<double>>;

/// Registry handles cached once per process, same idiom as
/// mna::SolverMetrics: kernel-level sparse counters plus the last-write
/// structure gauges the perf sentinel's ratio checks key on.
struct SparseMetrics {
  obs::Counter& factors;            ///< full symbolic+numeric factorisations
  obs::Counter& refactors;          ///< numeric-only replays over a frozen pattern
  obs::Counter& repivots;           ///< refactor pivot-gate trips healed by a fresh factor
  obs::Counter& partial_refactors;  ///< structural edits absorbed by partial_factor
  obs::Counter& partial_reused_columns;  ///< symbolic prefix columns reused across those
  obs::Counter& symbolic_reuse;     ///< factorisations that adopted a cached Symbolic
  obs::Counter& fallback_small_dim;      ///< dense because dim < sparse_min_dim
  obs::Counter& fallback_fill;           ///< dense because fill ratio exceeded the gate
  obs::Counter& fallback_singular;       ///< dense because the sparse factor hit the floor
  obs::Counter& fallback_pivot;          ///< dense because repivoting did not heal the gate
  obs::Counter& fallback_not_converged;  ///< dense re-run because sparse Newton gave up
  obs::Gauge& nnz;         ///< A nonzeros of the last factored pattern
  obs::Gauge& lu_nnz;      ///< L+U entries of the last factorisation
  obs::Gauge& fill_gauge;  ///< lu_nnz / nnz of the last factorisation

  static SparseMetrics& get() {
    auto& registry = obs::Registry::global();
    static SparseMetrics metrics{
        registry.counter("decisive_sparse_factors_total"),
        registry.counter("decisive_sparse_refactors_total"),
        registry.counter("decisive_sparse_repivots_total"),
        registry.counter("decisive_sparse_partial_refactors_total"),
        registry.counter("decisive_sparse_partial_reused_columns_total"),
        registry.counter("decisive_sparse_symbolic_reuse_total"),
        registry.counter("decisive_sparse_fallback_small_dim_total"),
        registry.counter("decisive_sparse_fallback_fill_total"),
        registry.counter("decisive_sparse_fallback_singular_total"),
        registry.counter("decisive_sparse_fallback_pivot_total"),
        registry.counter("decisive_sparse_fallback_not_converged_total"),
        registry.gauge("decisive_sparse_nnz"),
        registry.gauge("decisive_sparse_lu_nnz"),
        registry.gauge("decisive_sparse_fill_ratio")};
    return metrics;
  }
};

}  // namespace decisive::sim::sparse
