// Fault injection — the heart of the automated FMEA on circuit models.
//
// A fault transforms one element of a copied circuit into its failed form
// (paper Section IV-D1: "for a found failure mode, a failure is injected
// into the system"). The original circuit is never mutated.
#pragma once

#include <string>
#include <string_view>

#include "decisive/sim/circuit.hpp"

namespace decisive::sim {

/// Supported failure-mode semantics.
enum class FaultKind {
  Open,        ///< element becomes an open circuit
  Short,       ///< element becomes a near-zero resistance
  StuckOff,    ///< sources: output collapses to zero (loss of function)
  Drift,       ///< parametric drift: value multiplied by `drift_factor`
  RamFailure,  ///< MCU-specific: status output corrupts (electrically silent)
};

std::string_view to_string(FaultKind kind) noexcept;

/// Parses a failure-mode name from a reliability model into a FaultKind.
/// Recognised (case-insensitive): "open", "short", "stuck", "stuck-off",
/// "loss of function", "drift", "ram failure", "lower frequency", ...
/// Throws AnalysisError for unknown names.
FaultKind fault_kind_from_name(std::string_view name);

/// A fault to inject: element + semantics.
struct Fault {
  std::string element;
  FaultKind kind = FaultKind::Open;
  double drift_factor = 10.0;  ///< only for FaultKind::Drift
};

/// Returns a copy of `circuit` with the fault applied.
/// Throws SimulationError for unknown elements and AnalysisError for
/// fault kinds that do not apply to the element (e.g. RamFailure on a
/// resistor).
Circuit inject_fault(const Circuit& circuit, const Fault& fault,
                     double open_resistance = 1e12, double short_resistance = 1e-3);

}  // namespace decisive::sim
