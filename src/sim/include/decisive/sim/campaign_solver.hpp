// Factor-once batched solving for fault-injection campaigns.
//
// Every fault variant's MNA system differs from the nominal one by (at most)
// one component stamp — a textbook low-rank update. A CampaignSolveContext
// performs the symbolic analysis and one LU factorisation of the nominal
// Jacobian up front, then solves each eligible fault via Sherman–Morrison /
// Woodbury updates against the shared factorisation, warm-started from the
// nominal operating point. Faults that change the system structure (a
// voltage source or DC inductor losing its branch unknown), updates whose
// conditioning the per-iteration residual gate rejects, and solves that do
// not converge quickly all fall back to the classic one-solve-per-fault path
// — so the batched campaign's output is byte-identical to the naive one, it
// is just 10–30x cheaper on the (dominant) well-behaved faults.
//
// Thread-safety: a context is immutable after construction; workers solve
// concurrently against it, each with its own Workspace.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "decisive/sim/circuit.hpp"
#include "decisive/sim/dense.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

namespace decisive::sim {

/// Why one batched solve did (or did not) produce a result. Anything but
/// `Solved` means the caller must re-run the fault through the naive path.
enum class BatchOutcome {
  Solved,         ///< low-rank solve converged and passed every gate
  Structural,     ///< fault changes the MNA structure (or has no low-rank form)
  Conditioning,   ///< update rejected: residual gate / singular small system /
                  ///< too many active terms for a profitable low-rank solve
  NotConverged,   ///< Newton did not converge fast enough on the shared factor
  NearThreshold,  ///< result lands on a classification knife edge (MCU supply
                  ///< at its brown-out boundary); naive path must decide
  Disabled,       ///< context unusable (nominal solve failed / trivial system)
};

std::string_view to_string(BatchOutcome outcome) noexcept;

/// Shared per-campaign solve state: nominal operating point, assembled
/// nominal Jacobian (factored and unfactored), and cached A^-1 u columns for
/// every element that can carry a conductance delta.
class CampaignSolveContext {
 public:
  /// Per-worker scratch buffers. All storage a batched solve needs lives
  /// here, so try_solve() is const and allocation-free after warm-up.
  struct Workspace {
    std::vector<double> rhs;            ///< assembled faulted RHS
    std::vector<double> eff_diode_v;    ///< linearisation points used for the RHS stamp
    std::vector<double> zb;             ///< A_nom^-1 rhs
    std::vector<double> residual;       ///< full-system residual check
    std::vector<int> term_col;          ///< active update terms: cached column ids
    std::vector<std::size_t> term_elem; ///< active update terms: element index
    std::vector<double> term_g;         ///< active update terms: conductance deltas
    std::vector<double> small_rhs;
    dense::LuFactorization<double> small_lu;
    BatchOutcome step_outcome = BatchOutcome::NotConverged;
  };

  /// Solves the nominal circuit (plain Newton, no ladder) and builds the
  /// shared factorisation. When the nominal solve fails or the system is
  /// trivial, the context stays constructed but unusable() — every
  /// try_solve() reports Disabled and the campaign runs naive.
  CampaignSolveContext(const Circuit& nominal, const SolveOptions& options);

  [[nodiscard]] bool usable() const noexcept { return usable_; }

  /// True when `fault` on the nominal circuit preserves the MNA structure
  /// and is expressible as a low-rank (or RHS-only) delta.
  [[nodiscard]] bool eligible(const Fault& fault) const noexcept;

  /// Attempts the batched solve of `faulted` (the result of inject_fault for
  /// `fault` on the nominal circuit). Returns the operating point when the
  /// low-rank solve converged and passed the residual and knife-edge gates;
  /// std::nullopt otherwise, with `outcome` naming the fallback reason.
  /// `diagnostics` is filled like try_dc_operating_point's on success.
  [[nodiscard]] std::optional<OperatingPoint> try_solve(const Circuit& faulted,
                                                        const Fault& fault, Workspace& ws,
                                                        SolveDiagnostics& diagnostics,
                                                        BatchOutcome& outcome) const;

  /// The nominal operating point (valid when usable()).
  [[nodiscard]] const OperatingPoint& nominal_point() const noexcept { return nominal_point_; }

  ~CampaignSolveContext();
  CampaignSolveContext(CampaignSolveContext&&) noexcept;
  CampaignSolveContext& operator=(CampaignSolveContext&&) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  OperatingPoint nominal_point_;
  bool usable_ = false;
};

/// Sparse middle tier of the campaign solve ladder (batch Woodbury first,
/// then this, then the naive dense path). One symbolic analysis of the
/// nominal stamp pattern is shared read-only across workers; every fault
/// preserving that structure is a pure numeric refactorisation, and a
/// structural Open/Short that deletes a branch unknown reuses the untouched
/// symbolic prefix via partial refactorisation. Results are accepted only
/// behind the same gate ladder as the batched path (clean rung-0
/// convergence with iteration headroom, a full-system residual check
/// against the exact faulted matrix, and the MCU knife-edge guard) — any
/// doubt re-runs the fault on the naive dense path, so campaign output is
/// byte-identical with the tier on or off.
class CampaignSparseContext {
 public:
  /// Per-worker scratch: the faulted circuit's assembly plan, the sparse
  /// factorisation, and the residual/RHS buffers. Opaque — everything in it
  /// is an implementation detail of the sim library.
  class Workspace {
   public:
    Workspace();
    ~Workspace();
    Workspace(Workspace&&) noexcept;
    Workspace& operator=(Workspace&&) noexcept;

   private:
    friend class CampaignSparseContext;
    struct Impl;
    std::unique_ptr<Impl> impl_;
  };

  /// Solves the nominal circuit (plain Newton on the sparse kernel) and
  /// freezes its symbolic analysis. Unusable when sparse is disabled, the
  /// system is below the sparse dimension threshold, or the nominal solve
  /// needed anything beyond a clean sparse Newton run.
  CampaignSparseContext(const Circuit& nominal, const SolveOptions& options);

  [[nodiscard]] bool usable() const noexcept { return usable_; }

  /// Attempts the sparse solve of `faulted`. Returns the operating point
  /// when the solve converged and passed every gate; std::nullopt otherwise,
  /// with `outcome` naming the fallback reason (BatchOutcome vocabulary).
  [[nodiscard]] std::optional<OperatingPoint> try_solve(const Circuit& faulted,
                                                        const Fault& fault, Workspace& ws,
                                                        SolveDiagnostics& diagnostics,
                                                        BatchOutcome& outcome) const;

  /// The nominal operating point (valid when usable()).
  [[nodiscard]] const OperatingPoint& nominal_point() const noexcept { return nominal_point_; }

  ~CampaignSparseContext();
  CampaignSparseContext(CampaignSparseContext&&) noexcept;
  CampaignSparseContext& operator=(CampaignSparseContext&&) noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  OperatingPoint nominal_point_;
  bool usable_ = false;
};

}  // namespace decisive::sim
