// Builds a simulatable Circuit from an MDL (Simulink-substitute) model.
//
// Handles:
//  - the Simscape-Foundation-style analogue block library;
//  - hierarchical subsystems, flattened through `Port` boundary blocks;
//  - the paper's RQ2 workaround: a SubSystem block carrying an
//    `AnnotatedType` parameter is treated as an atomic component of that
//    type ("for elements not covered ... we create subsystems in Simulink
//    and annotate them to be the desired elements");
//  - simulation-infrastructure blocks (solver config, scopes, workspace
//    sinks), which are recorded but not simulated.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/drivers/mdl.hpp"
#include "decisive/sim/circuit.hpp"

namespace decisive::sim {

/// One analysable component of the built circuit.
struct BuiltComponent {
  std::string path;        ///< hierarchical instance name, e.g. "Filter/L1"
  std::string block_type;  ///< effective type (AnnotatedType wins over BlockType)
  std::string element;     ///< circuit element name (same as path)
};

/// Result of building a circuit from an MDL model.
struct BuiltCircuit {
  Circuit circuit;
  std::vector<BuiltComponent> components;  ///< candidates for FMEA
  std::vector<std::string> observables;    ///< sensor / MCU reading names
  std::vector<std::string> skipped;        ///< ignored infrastructure blocks
  std::vector<std::string> workarounds;    ///< annotated-subsystem substitutions
};

/// Builds the netlist. Throws ParseError/SimulationError on unsupported or
/// ill-formed input (unknown block type without annotation, bad port name).
BuiltCircuit build_circuit(const drivers::MdlModel& model);

/// True when the block type is natively simulatable (RQ2 coverage check).
bool block_type_supported(std::string_view type) noexcept;

/// True for simulation-infrastructure blocks that are ignored by the build.
bool block_type_infrastructure(std::string_view type) noexcept;

/// All natively supported analogue block types.
std::vector<std::string_view> supported_block_types();

}  // namespace decisive::sim
