// MNA (modified nodal analysis) solver: DC operating point with Newton
// iteration for diodes, and backward-Euler transient analysis.
//
// This is the `simulate()` the automated FMEA invokes before and after each
// fault injection (paper Section IV-D1, step 2b).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "decisive/sim/circuit.hpp"

namespace decisive::sim {

/// Result of a DC solve: node voltages plus every observable reading.
struct OperatingPoint {
  std::vector<double> node_voltage;

  /// Readings keyed by element name:
  ///  - CurrentSensor: branch current (A)
  ///  - VoltageSensor: terminal voltage difference (V)
  ///  - Mcu: status output, 1.0 = operating correctly, 0.0 = failed/browned out
  std::map<std::string, double> readings;

  [[nodiscard]] double reading(const std::string& name) const;
};

/// Solver tuning knobs.
struct SolveOptions {
  int max_newton_iterations = 200;
  double newton_tolerance = 1e-9;   ///< max |dV| between iterations
  double gmin = 1e-12;              ///< leak conductance to ground on every node
  double diode_is = 1e-12;          ///< diode saturation current (A)
  double diode_vt = 0.025852;       ///< thermal voltage (V)
  double open_resistance = 1e12;    ///< ohms modelling an "open" element
  double closed_resistance = 1e-3;  ///< ohms modelling a closed switch / "short"
};

/// Computes the DC operating point. Throws SimulationError when the system is
/// singular or Newton iteration fails to converge.
OperatingPoint dc_operating_point(const Circuit& circuit, const SolveOptions& options = {});

/// One sampled time point of a transient run.
struct TransientSample {
  double time = 0.0;
  OperatingPoint point;
};

/// Backward-Euler transient simulation from the DC initial condition at t=0
/// (capacitors start at their DC operating voltage, inductors at their DC
/// current). Throws SimulationError on non-convergence.
std::vector<TransientSample> transient(const Circuit& circuit, double t_end, double dt,
                                       const SolveOptions& options = {});

/// Dense linear solve (partial-pivot Gaussian elimination) of A x = b.
/// Exposed for testing; throws SimulationError on singular systems.
std::vector<double> solve_linear(std::vector<std::vector<double>> a, std::vector<double> b);

/// One point of an AC (small-signal) sweep: magnitude and phase of every
/// sensor reading at one frequency.
struct AcSample {
  double frequency_hz = 0.0;
  /// Complex sensor readings as (magnitude, phase-radians) pairs, keyed by
  /// element name (CurrentSensor/VoltageSensor only — the MCU status output
  /// is not a small-signal quantity).
  std::map<std::string, std::pair<double, double>> readings;

  [[nodiscard]] double magnitude(const std::string& name) const;
};

/// AC small-signal analysis: the circuit is linearised at its DC operating
/// point (diodes become their small-signal conductance, switches their
/// on/off resistance), every DC source is replaced by its small-signal
/// equivalent (voltage sources short, current sources open), and the source
/// named `stimulus` drives a unit AC signal. Capacitors and inductors get
/// their complex admittances, so filter behaviour — invisible to the DC
/// FMEA — becomes measurable (e.g. supply-ripple attenuation).
/// Throws SimulationError when `stimulus` is not a source.
std::vector<AcSample> ac_analysis(const Circuit& circuit, const std::string& stimulus,
                                  const std::vector<double>& frequencies_hz,
                                  const SolveOptions& options = {});

}  // namespace decisive::sim
