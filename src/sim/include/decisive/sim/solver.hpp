// MNA (modified nodal analysis) solver: DC operating point with Newton
// iteration for diodes, and backward-Euler transient analysis.
//
// This is the `simulate()` the automated FMEA invokes before and after each
// fault injection (paper Section IV-D1, step 2b). Because the fault-injection
// campaign feeds the solver deliberately broken circuits (opens, shorts,
// collapsed sources), hard solves are first-class: every DC solve is guarded
// against non-finite iterates, bounded by iteration and wall-clock budgets,
// and backed by a recovery ladder (gmin stepping, then source stepping) that
// is tried in order when plain Newton gives up.
#pragma once

#include <complex>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "decisive/sim/circuit.hpp"

namespace decisive::sim {

/// Result of a DC solve: node voltages plus every observable reading.
struct OperatingPoint {
  std::vector<double> node_voltage;

  /// Readings keyed by element name:
  ///  - CurrentSensor: branch current (A)
  ///  - VoltageSensor: terminal voltage difference (V)
  ///  - Mcu: status output, 1.0 = operating correctly, 0.0 = failed/browned out
  std::map<std::string, double> readings;

  [[nodiscard]] double reading(const std::string& name) const;
};

/// Solver tuning knobs.
struct SolveOptions {
  int max_newton_iterations = 200;
  double newton_tolerance = 1e-9;   ///< max |dV| between iterations
  double gmin = 1e-12;              ///< leak conductance to ground on every node
  double diode_is = 1e-12;          ///< diode saturation current (A)
  double diode_vt = 0.025852;       ///< thermal voltage (V)
  double open_resistance = 1e12;    ///< ohms modelling an "open" element
  double closed_resistance = 1e-3;  ///< ohms modelling a closed switch / "short"

  /// Wall-clock budget for one DC solve including every recovery-ladder
  /// attempt; <= 0 disables the budget.
  double max_wall_clock_seconds = 5.0;

  /// Use the sparse symbolic-LU kernel for systems of at least
  /// `sparse_min_dim` unknowns: the stamp pattern is analysed once per
  /// circuit structure and every later Newton iteration / transient step /
  /// AC point replays the numbers through the frozen pattern. Any numeric
  /// surprise (pivot-gate trip, fill blow-up, non-convergence) silently
  /// re-runs the attempt on the dense kernel, so results are identical to
  /// `sparse = false`; the flag is an escape hatch, not a different answer.
  bool sparse = true;
  int sparse_min_dim = 48;       ///< below this, dense factorisation wins anyway
  double sparse_max_fill = 0.25; ///< LU nnz / n^2 above which dense takes over
  /// When plain Newton gives up, try gmin stepping then source stepping
  /// before declaring the solve failed.
  bool recovery_ladder = true;
  int gmin_ladder_steps = 8;     ///< gmin continuation points (first rung)
  int source_ladder_steps = 10;  ///< source ramp points (second rung)
};

/// Strategy of the recovery ladder that produced (or last attempted) a DC
/// solution. The ladder is tried strictly in this order.
enum class SolveStrategy {
  Newton,          ///< plain Newton iteration, rung 0
  GminStepping,    ///< gmin continuation from a heavily damped system, rung 1
  SourceStepping,  ///< homotopy: sources ramped from ~0 to full value, rung 2
};

std::string_view to_string(SolveStrategy strategy) noexcept;

/// Why a DC solve gave up after exhausting the recovery ladder.
enum class SolveFailure {
  None,             ///< converged
  Singular,         ///< the MNA system is singular on every ladder rung
  NonFinite,        ///< Newton iterates left the finite range (NaN/Inf input?)
  IterationBudget,  ///< max_newton_iterations exhausted on every rung
  WallClockBudget,  ///< max_wall_clock_seconds elapsed mid-solve
};

std::string_view to_string(SolveFailure failure) noexcept;

/// Observability record of one DC solve: which ladder rung converged, how
/// much work it took, and — on failure — a structured reason. Returned
/// alongside the OperatingPoint so fault-injection campaigns can classify
/// per-fault solver behaviour instead of parsing exception text.
struct SolveDiagnostics {
  bool converged = false;
  SolveStrategy strategy = SolveStrategy::Newton;  ///< rung that produced the result
  int ladder_rung = 0;           ///< 0 = plain Newton, 1 = gmin, 2 = source stepping
  int iterations = 0;            ///< Newton iterations summed over every attempt
  double residual = 0.0;         ///< final max |x_new - x| of the last attempt
  double elapsed_seconds = 0.0;  ///< wall-clock spent in the solve
  SolveFailure failure = SolveFailure::None;
  std::string message;           ///< human-readable failure detail; empty on success
};

/// Computes the DC operating point. Throws SimulationError when the system is
/// singular or Newton iteration fails to converge even via the recovery
/// ladder.
OperatingPoint dc_operating_point(const Circuit& circuit, const SolveOptions& options = {});

/// Non-throwing DC solve for campaign use: runs plain Newton and, when it
/// fails and `options.recovery_ladder` is set, the gmin-stepping and
/// source-stepping fallbacks. Returns the operating point on success and
/// std::nullopt on failure; `diagnostics` is always filled.
std::optional<OperatingPoint> try_dc_operating_point(const Circuit& circuit,
                                                     const SolveOptions& options,
                                                     SolveDiagnostics& diagnostics);

/// One sampled time point of a transient run.
struct TransientSample {
  double time = 0.0;
  OperatingPoint point;
};

/// Backward-Euler transient simulation from the DC initial condition at t=0
/// (capacitors start at their DC operating voltage, inductors at their DC
/// current). Throws SimulationError on non-convergence.
std::vector<TransientSample> transient(const Circuit& circuit, double t_end, double dt,
                                       const SolveOptions& options = {});

/// Dense linear solve (partial-pivot Gaussian elimination) of A x = b.
/// Exposed for testing; throws SimulationError on singular systems and on
/// malformed inputs (mismatched dimensions, ragged rows).
std::vector<double> solve_linear(std::vector<std::vector<double>> a, std::vector<double> b);

/// The complex-field twin of solve_linear, used by the AC path. Shares the
/// same templated kernel and the same input validation.
std::vector<std::complex<double>> solve_linear_complex(
    std::vector<std::vector<std::complex<double>>> a, std::vector<std::complex<double>> b);

/// One point of an AC (small-signal) sweep: magnitude and phase of every
/// sensor reading at one frequency.
struct AcSample {
  double frequency_hz = 0.0;
  /// Complex sensor readings as (magnitude, phase-radians) pairs, keyed by
  /// element name (CurrentSensor/VoltageSensor only — the MCU status output
  /// is not a small-signal quantity).
  std::map<std::string, std::pair<double, double>> readings;

  [[nodiscard]] double magnitude(const std::string& name) const;
};

/// AC small-signal analysis: the circuit is linearised at its DC operating
/// point (diodes become their small-signal conductance, switches their
/// on/off resistance), every DC source is replaced by its small-signal
/// equivalent (voltage sources short, current sources open), and the source
/// named `stimulus` drives a unit AC signal. Capacitors and inductors get
/// their complex admittances, so filter behaviour — invisible to the DC
/// FMEA — becomes measurable (e.g. supply-ripple attenuation).
/// Throws SimulationError when `stimulus` is not a source.
std::vector<AcSample> ac_analysis(const Circuit& circuit, const std::string& stimulus,
                                  const std::vector<double>& frequencies_hz,
                                  const SolveOptions& options = {});

}  // namespace decisive::sim
