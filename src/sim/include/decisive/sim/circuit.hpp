// Analogue circuit netlist — the Simscape Foundation substitute.
//
// A Circuit is a flat netlist of two-terminal (plus a few behavioural)
// elements over numbered nodes; node 0 is ground. The automated FMEA's fault
// injection operates on copies of a Circuit, so Circuit is a value type.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::sim {

/// Element kinds supported by the solver.
enum class ElementKind {
  Resistor,       ///< value = ohms
  Capacitor,      ///< value = farads (open at DC)
  Inductor,       ///< value = henries (short at DC)
  Diode,          ///< Shockley diode, anode = node a, cathode = node b
  VSource,        ///< ideal DC voltage source, value = volts (a = +, b = -)
  ISource,        ///< ideal DC current source, value = amps (a -> b)
  CurrentSensor,  ///< ideal ammeter (0 V source); reading = current a -> b
  VoltageSensor,  ///< ideal voltmeter (no stamp); reading = V(a) - V(b)
  Switch,         ///< closed: tiny series resistance, open: huge
  Mcu,            ///< behavioural microcontroller: supply load + status output
};

std::string_view to_string(ElementKind kind) noexcept;

/// One netlist element.
struct Element {
  ElementKind kind = ElementKind::Resistor;
  std::string name;
  int a = 0;            ///< first terminal node
  int b = 0;            ///< second terminal node
  double value = 0.0;   ///< primary parameter (meaning depends on kind)
  bool closed = true;   ///< switches only

  // Behavioural MCU state: `ram_ok=false` models the "RAM Failure" failure
  // mode — the status output inverts even though the electrical load is
  // unchanged (the diagnostic observable, not the supply current, deviates).
  bool ram_ok = true;
  double min_supply = 3.0;  ///< volts below which the MCU browns out
};

/// A value-semantics netlist.
class Circuit {
 public:
  Circuit();

  /// Returns the node index for a named net, creating it on first use.
  /// The name "0" (and "gnd"/"GND") maps to ground.
  int node(std::string_view net_name);

  /// Creates an anonymous node.
  int make_node();

  [[nodiscard]] int node_count() const noexcept { return node_count_; }

  // Element factories. All return the element index.
  int add_resistor(std::string name, int a, int b, double ohms);
  int add_capacitor(std::string name, int a, int b, double farads);
  int add_inductor(std::string name, int a, int b, double henries);
  int add_diode(std::string name, int anode, int cathode);
  int add_vsource(std::string name, int pos, int neg, double volts);
  int add_isource(std::string name, int from, int to, double amps);
  int add_current_sensor(std::string name, int a, int b);
  int add_voltage_sensor(std::string name, int a, int b);
  int add_switch(std::string name, int a, int b, bool closed);
  int add_mcu(std::string name, int vdd, int gnd, double supply_resistance_ohms);

  [[nodiscard]] const std::vector<Element>& elements() const noexcept { return elements_; }
  [[nodiscard]] std::vector<Element>& elements() noexcept { return elements_; }

  /// Element lookup by name; nullptr when absent.
  [[nodiscard]] const Element* find(std::string_view name) const noexcept;
  [[nodiscard]] Element* find(std::string_view name) noexcept;

  /// Checked lookup; throws SimulationError when absent.
  [[nodiscard]] Element& get(std::string_view name);
  [[nodiscard]] const Element& get(std::string_view name) const;

 private:
  int add(Element element);

  int node_count_ = 1;  // node 0 is ground
  std::vector<Element> elements_;
  std::vector<std::pair<std::string, int>> named_nodes_;
};

}  // namespace decisive::sim
