// Dense linear algebra kernel shared by every MNA solve path.
//
// One templated, blocked, partial-pivot LU factorisation over flat row-major
// storage replaces the two copy-pasted Gaussian eliminations the solver used
// to carry (real Newton path and complex AC path). The factorisation keeps
// its storage across calls, so a Newton loop / frequency sweep / fault
// campaign re-factors without reallocating, and a factored system can be
// re-solved against many right-hand sides (the batched campaign path solves
// the nominal factorisation against every fault's RHS).
//
// Numerical contract: the blocked elimination performs bit-identical
// arithmetic to the classic unblocked row-by-row elimination. The panel
// restricts immediate updates to its own columns; the deferred trailing
// update applies each row's multipliers in ascending pivot order, which is
// exactly the per-entry operation sequence of the unblocked loop. Pivot
// selection (first strictly-largest magnitude, diagonal wins ties), the
// magnitude-relative singularity floor, and the `multiplier == 0` skip
// (which avoids 0 * Inf = NaN on rows carrying infinities from pathological
// inputs) are all preserved, so refactoring the solver onto this kernel
// changed no output byte.
#pragma once

#include <algorithm>
#include <cmath>
#include <complex>
#include <string>
#include <vector>

#include "decisive/base/error.hpp"

namespace decisive::sim::dense {

/// Absolute pivot floor: catches the exactly-zero pivot of an empty or
/// rank-deficient column even when the matrix magnitude is itself zero.
inline constexpr double kPivotFloor = 1e-30;

/// Relative pivot floor, shared by the dense and sparse kernels. The old
/// absolute 1e-30 floor misclassified well-scaled *tiny* systems (every
/// entry ~1e-32, condition number ~1) as structurally singular; scaling the
/// floor to the matrix's largest magnitude keeps the singularity test about
/// *structure* (floating node, short loop, contradictory sources) instead of
/// units. 1e-20 leaves the 1e-12 gmin pivots of a default-options MNA system
/// (matrix max ~1e3 from the milliohm closed-switch stamps) eight orders of
/// magnitude above the floor.
inline constexpr double kPivotRelativeFloor = 1e-20;

/// The singularity floor for a matrix whose largest entry magnitude is
/// `matrix_max`: relative when the matrix has any magnitude, the absolute
/// floor otherwise (so the all-zero matrix still reads as singular).
[[nodiscard]] inline double singular_floor(double matrix_max) noexcept {
  return matrix_max > 0.0 ? kPivotRelativeFloor * matrix_max : kPivotFloor;
}

/// Columns factored per panel before the deferred trailing update. Chosen so
/// a panel of typical MNA rows stays cache-resident; correctness does not
/// depend on the value.
inline constexpr std::size_t kPanelWidth = 32;

/// An LU factorisation (PA = LU, partial pivoting) with owned, reusable
/// storage. Assemble the matrix directly into `reset(n)`'s buffer, call
/// `factor()`, then `solve_in_place()` any number of right-hand sides.
template <typename T>
class LuFactorization {
 public:
  /// Prepares (and zero-fills) the internal n x n row-major buffer for
  /// assembly. Capacity is kept across calls, so a loop that re-factors the
  /// same-sized system allocates only once.
  std::vector<T>& reset(std::size_t n) {
    n_ = n;
    factored_ = false;
    lu_.assign(n * n, T{});
    return lu_;
  }

  [[nodiscard]] std::size_t dim() const noexcept { return n_; }
  [[nodiscard]] bool factored() const noexcept { return factored_; }

  /// The matrix buffer (row-major, n*n). After factor(): L below the
  /// diagonal (unit diagonal implicit), U on and above it.
  [[nodiscard]] const std::vector<T>& matrix() const noexcept { return lu_; }
  [[nodiscard]] std::vector<T>& matrix() noexcept { return lu_; }

  /// Factors the assembled buffer in place. Throws SimulationError with
  /// `singular_message` when a pivot column is numerically empty.
  void factor(const char* singular_message) {
    const std::size_t n = n_;
    T* a = lu_.data();
    pivots_.resize(n);
    // One O(n^2) magnitude scan (negligible against the O(n^3) elimination)
    // anchors the singularity floor to the matrix's own scale.
    double matrix_max = 0.0;
    for (const T& value : lu_) matrix_max = std::max(matrix_max, std::abs(value));
    const double floor = singular_floor(matrix_max);
    for (std::size_t k0 = 0; k0 < n; k0 += kPanelWidth) {
      const std::size_t k1 = std::min(k0 + kPanelWidth, n);
      // Panel factorisation: pivot, scale, and update panel columns only.
      // Column k has already received every pre-panel pivot's contribution
      // (deferred updates of earlier panels) and every in-panel pivot's
      // contribution (the loop below), so pivot selection sees the same
      // values as the unblocked elimination.
      for (std::size_t k = k0; k < k1; ++k) {
        std::size_t pivot = k;
        double best = std::abs(a[k * n + k]);
        for (std::size_t row = k + 1; row < n; ++row) {
          const double mag = std::abs(a[row * n + k]);
          if (mag > best) {
            best = mag;
            pivot = row;
          }
        }
        if (best < floor) throw SimulationError(singular_message);
        pivots_[k] = pivot;
        if (pivot != k) {
          std::swap_ranges(a + k * n, a + (k + 1) * n, a + pivot * n);
        }
        const T inv = T(1.0) / a[k * n + k];
        const T* src = a + k * n;
        for (std::size_t row = k + 1; row < n; ++row) {
          T* dst = a + row * n;
          const T multiplier = dst[k] * inv;
          dst[k] = multiplier;
          if (multiplier == T{}) continue;
          for (std::size_t j = k + 1; j < k1; ++j) dst[j] -= multiplier * src[j];
        }
      }
      // Deferred trailing update: each row absorbs the whole panel's
      // rank-(k1-k0) contribution in one cache-resident pass, applying its
      // stored multipliers in ascending pivot order — the same per-entry
      // arithmetic sequence as the unblocked elimination.
      for (std::size_t row = k0 + 1; row < n; ++row) {
        T* dst = a + row * n;
        const std::size_t jmax = std::min(row, k1);
        for (std::size_t j = k0; j < jmax; ++j) {
          const T multiplier = dst[j];
          if (multiplier == T{}) continue;
          const T* src = a + j * n;
          for (std::size_t c = k1; c < n; ++c) dst[c] -= multiplier * src[c];
        }
      }
    }
    factored_ = true;
  }

  /// Solves (LU) x = P b in place; `b` must hold dim() entries. Applying the
  /// row interchanges up front and then substituting is operation-for-
  /// operation identical to interleaving swaps with the elimination.
  void solve_in_place(T* b) const {
    const std::size_t n = n_;
    const T* a = lu_.data();
    for (std::size_t k = 0; k < n; ++k) {
      if (pivots_[k] != k) std::swap(b[k], b[pivots_[k]]);
    }
    for (std::size_t k = 0; k < n; ++k) {
      const T bk = b[k];
      for (std::size_t row = k + 1; row < n; ++row) {
        const T multiplier = a[row * n + k];
        if (multiplier == T{}) continue;
        b[row] -= multiplier * bk;
      }
    }
    for (std::size_t i = n; i-- > 0;) {
      T sum = b[i];
      for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * b[k];
      b[i] = sum / a[i * n + i];
    }
  }

  [[nodiscard]] std::vector<T> solve(std::vector<T> b) const {
    solve_in_place(b.data());
    return b;
  }

 private:
  std::vector<T> lu_;
  std::vector<std::size_t> pivots_;
  std::size_t n_ = 0;
  bool factored_ = false;
};

/// Validates a nested-vector system: square matrix matching b, every row the
/// full width. Malformed systems used to read out of bounds in the complex
/// kernel; now both element types throw SimulationError up front. Only the
/// one-shot public entry points pay this per call — the repeated-solve paths
/// (Newton, transient, AC sweep, campaign) fix their shape once per circuit
/// structure (mna::Structure / mna::SparsePlan) and reuse flat workspaces.
template <typename T>
void validate_system(const std::vector<std::vector<T>>& a, const std::vector<T>& b) {
  const std::size_t n = b.size();
  if (a.size() != n) throw SimulationError("linear system dimension mismatch");
  for (std::size_t row = 0; row < n; ++row) {
    if (a[row].size() != n) {
      throw SimulationError("linear system row " + std::to_string(row) + " has " +
                            std::to_string(a[row].size()) + " columns, expected " +
                            std::to_string(n));
    }
  }
}

/// Convenience one-shot solve over the nested-vector representation used by
/// the public solve_linear / solve_linear_complex entry points.
template <typename T>
std::vector<T> solve_dense(const std::vector<std::vector<T>>& a, std::vector<T> b,
                           const char* singular_message) {
  validate_system(a, b);
  const std::size_t n = b.size();
  LuFactorization<T> lu;
  std::vector<T>& flat = lu.reset(n);
  for (std::size_t row = 0; row < n; ++row) {
    std::copy(a[row].begin(), a[row].end(), flat.begin() + static_cast<std::ptrdiff_t>(row * n));
  }
  lu.factor(singular_message);
  lu.solve_in_place(b.data());
  return b;
}

}  // namespace decisive::sim::dense
