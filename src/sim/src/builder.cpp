#include "decisive/sim/builder.hpp"

#include <map>
#include <unordered_map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::sim {

using drivers::MdlBlock;
using drivers::MdlModel;
using drivers::MdlSystem;

namespace {

constexpr std::string_view kSupported[] = {
    "DCVoltageSource", "DCCurrentSource", "Resistor", "Capacitor", "Inductor",
    "Diode",           "Ground",          "CurrentSensor", "VoltageSensor",
    "Switch",          "MCU",             "SubSystem",     "Port",
};

constexpr std::string_view kInfrastructure[] = {
    "SolverConfiguration", "Scope", "Outport", "Inport", "ToWorkspace",
    "PSSimulinkConverter", "Display",
};

/// Canonicalises a line's port name for a given block type to the internal
/// terminal names ("p"/"n", "g", "vdd"/"gnd").
std::string canonical_port(std::string_view block_type, std::string_view port,
                           const std::string& block_path) {
  const std::string p = to_lower(trim(port));
  if (block_type == "Ground") {
    if (p.empty() || p == "g" || p == "gnd") return "g";
    throw ParseError("ground block '" + block_path + "' has no port '" + std::string(port) + "'");
  }
  if (block_type == "MCU") {
    if (p == "vdd" || p == "vcc" || p == "+" || p == "p") return "vdd";
    if (p == "gnd" || p == "vss" || p == "-" || p == "n") return "gnd";
    throw ParseError("mcu block '" + block_path + "' has no port '" + std::string(port) + "'");
  }
  if (block_type == "Diode") {
    if (p == "a" || p == "anode" || p == "p" || p == "+" || p == "1") return "p";
    if (p == "k" || p == "c" || p == "cathode" || p == "n" || p == "-" || p == "2") return "n";
    throw ParseError("diode block '" + block_path + "' has no port '" + std::string(port) + "'");
  }
  // Generic two-terminal elements.
  if (p == "p" || p == "+" || p == "1" || p == "a" || p == "in") return "p";
  if (p == "n" || p == "-" || p == "2" || p == "b" || p == "out") return "n";
  throw ParseError("block '" + block_path + "' has no port '" + std::string(port) + "'");
}

/// String-keyed union-find over terminal keys "path:port".
class NetMerger {
 public:
  int id(const std::string& key) {
    const auto [it, inserted] = index_.try_emplace(key, static_cast<int>(parent_.size()));
    if (inserted) parent_.push_back(it->second);
    return it->second;
  }

  int find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] = parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  void unite(const std::string& a, const std::string& b) {
    const int ra = find(id(a));
    const int rb = find(id(b));
    if (ra != rb) parent_[static_cast<size_t>(ra)] = rb;
  }

 private:
  std::unordered_map<std::string, int> index_;
  std::vector<int> parent_;
};

struct FlatBlock {
  std::string path;
  const MdlBlock* block;
  std::string effective_type;  // AnnotatedType for annotated subsystems
};

class Builder {
 public:
  BuiltCircuit build(const MdlModel& model) {
    collect(model.root, "");
    build_nets(model.root, "");
    assign_nodes();
    create_elements();
    return std::move(result_);
  }

 private:
  static std::string join_path(const std::string& prefix, const std::string& name) {
    return prefix.empty() ? name : prefix + "/" + name;
  }

  [[nodiscard]] static bool is_infrastructure(std::string_view type) noexcept {
    return block_type_infrastructure(type);
  }

  // Pass 1: flatten the block hierarchy.
  void collect(const MdlSystem& system, const std::string& prefix) {
    for (const auto& block : system.blocks) {
      const std::string path = join_path(prefix, block.name);
      if (is_infrastructure(block.type)) {
        result_.skipped.push_back(path);
        continue;
      }
      if (block.type == "SubSystem") {
        const auto annotated = block.param("AnnotatedType");
        if (annotated.has_value()) {
          // RQ2 workaround: the subsystem stands in for an uncovered element.
          if (!block_type_supported(*annotated) || *annotated == "SubSystem" ||
              *annotated == "Port") {
            throw ParseError("subsystem '" + path + "' annotated with unsupported type '" +
                             *annotated + "'");
          }
          flat_.push_back(FlatBlock{path, &block, *annotated});
          result_.workarounds.push_back(path + " -> " + *annotated);
          continue;
        }
        if (block.subsystem == nullptr) {
          throw ParseError("subsystem '" + path + "' has no System body");
        }
        collect(*block.subsystem, path);
        continue;
      }
      if (!block_type_supported(block.type)) {
        throw ParseError("unsupported block type '" + block.type + "' for '" + path +
                         "' (annotate a SubSystem to model it)");
      }
      flat_.push_back(FlatBlock{path, &block, block.type});
    }
  }

  [[nodiscard]] const FlatBlock* find_flat(const std::string& path) const noexcept {
    for (const auto& fb : flat_) {
      if (fb.path == path) return &fb;
    }
    return nullptr;
  }

  // Terminal key of a line endpoint within the system at `prefix`.
  std::string endpoint_key(const MdlSystem& system, const std::string& prefix,
                           const std::string& block_name, const std::string& port) {
    const MdlBlock* block = system.block(block_name);
    if (block == nullptr) {
      throw ParseError("line references unknown block '" + block_name + "' in system '" +
                       (prefix.empty() ? std::string("<root>") : prefix) + "'");
    }
    const std::string path = join_path(prefix, block_name);
    if (is_infrastructure(block->type)) return "";  // signal wiring, ignored
    if (block->type == "SubSystem" && block->param("AnnotatedType") == std::nullopt) {
      // Boundary port: unify with the `Port` block of that name inside.
      if (block->subsystem == nullptr || block->subsystem->block(port) == nullptr) {
        throw ParseError("subsystem '" + path + "' has no boundary port '" + port + "'");
      }
      return join_path(path, port) + ":p";
    }
    const std::string effective =
        block->type == "SubSystem" ? *block->param("AnnotatedType") : block->type;
    if (effective == "Port") return path + ":p";
    return path + ":" + canonical_port(effective, port, path);
  }

  // Pass 2: union terminal keys along every line.
  void build_nets(const MdlSystem& system, const std::string& prefix) {
    for (const auto& line : system.lines) {
      const std::string src = endpoint_key(system, prefix, line.src_block, line.src_port);
      const std::string dst = endpoint_key(system, prefix, line.dst_block, line.dst_port);
      if (src.empty() || dst.empty()) continue;  // endpoint on infrastructure
      nets_.unite(src, dst);
    }
    for (const auto& block : system.blocks) {
      if (block.type == "SubSystem" && block.subsystem != nullptr &&
          block.param("AnnotatedType") == std::nullopt && !is_infrastructure(block.type)) {
        build_nets(*block.subsystem, join_path(prefix, block.name));
      }
    }
  }

  // Pass 3: one circuit node per net root; ground nets collapse to node 0.
  void assign_nodes() {
    // Ground terminals first, so their roots map to node 0.
    for (const auto& fb : flat_) {
      if (fb.effective_type == "Ground") {
        const int root = nets_.find(nets_.id(fb.path + ":g"));
        node_of_root_[root] = 0;
      }
    }
  }

  int node_for(const std::string& key) {
    const int root = nets_.find(nets_.id(key));
    const auto it = node_of_root_.find(root);
    if (it != node_of_root_.end()) return it->second;
    const int node = result_.circuit.make_node();
    node_of_root_[root] = node;
    return node;
  }

  // Pass 4: instantiate circuit elements.
  void create_elements() {
    for (const auto& fb : flat_) {
      const std::string& type = fb.effective_type;
      const MdlBlock& b = *fb.block;
      if (type == "Ground" || type == "Port") continue;
      Circuit& c = result_.circuit;
      if (type == "DCVoltageSource") {
        c.add_vsource(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"),
                      b.param_real("Voltage", 5.0));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "DCCurrentSource") {
        c.add_isource(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"),
                      b.param_real("Current", 1.0));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "Resistor") {
        c.add_resistor(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"),
                       b.param_real("Resistance", 1000.0));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "Capacitor") {
        c.add_capacitor(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"),
                        b.param_real("Capacitance", 1e-6));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "Inductor") {
        c.add_inductor(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"),
                       b.param_real("Inductance", 1e-3));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "Diode") {
        c.add_diode(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"));
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "Switch") {
        const bool closed = !iequals(b.param("State").value_or("closed"), "open");
        c.add_switch(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"), closed);
        result_.components.push_back({fb.path, type, fb.path});
      } else if (type == "CurrentSensor") {
        c.add_current_sensor(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"));
        result_.observables.push_back(fb.path);
      } else if (type == "VoltageSensor") {
        c.add_voltage_sensor(fb.path, node_for(fb.path + ":p"), node_for(fb.path + ":n"));
        result_.observables.push_back(fb.path);
      } else if (type == "MCU") {
        const int index = c.add_mcu(fb.path, node_for(fb.path + ":vdd"),
                                    node_for(fb.path + ":gnd"),
                                    b.param_real("SupplyResistance", 100.0));
        c.elements()[static_cast<size_t>(index)].min_supply = b.param_real("MinSupply", 3.0);
        result_.components.push_back({fb.path, type, fb.path});
        result_.observables.push_back(fb.path);
      } else {
        throw ParseError("internal: unhandled block type '" + type + "'");
      }
    }
  }

  BuiltCircuit result_;
  std::vector<FlatBlock> flat_;
  NetMerger nets_;
  std::map<int, int> node_of_root_;
};

}  // namespace

BuiltCircuit build_circuit(const MdlModel& model) { return Builder().build(model); }

bool block_type_supported(std::string_view type) noexcept {
  for (const auto supported : kSupported) {
    if (type == supported) return true;
  }
  return false;
}

bool block_type_infrastructure(std::string_view type) noexcept {
  for (const auto infra : kInfrastructure) {
    if (type == infra) return true;
  }
  return false;
}

std::vector<std::string_view> supported_block_types() {
  return std::vector<std::string_view>(std::begin(kSupported), std::end(kSupported));
}

}  // namespace decisive::sim
