#include "decisive/sim/circuit.hpp"

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::sim {

std::string_view to_string(ElementKind kind) noexcept {
  switch (kind) {
    case ElementKind::Resistor: return "Resistor";
    case ElementKind::Capacitor: return "Capacitor";
    case ElementKind::Inductor: return "Inductor";
    case ElementKind::Diode: return "Diode";
    case ElementKind::VSource: return "VSource";
    case ElementKind::ISource: return "ISource";
    case ElementKind::CurrentSensor: return "CurrentSensor";
    case ElementKind::VoltageSensor: return "VoltageSensor";
    case ElementKind::Switch: return "Switch";
    case ElementKind::Mcu: return "Mcu";
  }
  return "Unknown";
}

Circuit::Circuit() = default;

int Circuit::node(std::string_view net_name) {
  if (net_name == "0" || iequals(net_name, "gnd") || iequals(net_name, "ground")) return 0;
  for (const auto& [name, index] : named_nodes_) {
    if (name == net_name) return index;
  }
  const int index = make_node();
  named_nodes_.emplace_back(std::string(net_name), index);
  return index;
}

int Circuit::make_node() { return node_count_++; }

int Circuit::add(Element element) {
  if (element.name.empty()) throw SimulationError("element requires a name");
  if (find(element.name) != nullptr) {
    throw SimulationError("duplicate element name '" + element.name + "'");
  }
  if (element.a < 0 || element.a >= node_count_ || element.b < 0 || element.b >= node_count_) {
    throw SimulationError("element '" + element.name + "' references an unknown node");
  }
  elements_.push_back(std::move(element));
  return static_cast<int>(elements_.size()) - 1;
}

int Circuit::add_resistor(std::string name, int a, int b, double ohms) {
  if (ohms <= 0.0) throw SimulationError("resistor '" + name + "' requires positive ohms");
  return add(Element{ElementKind::Resistor, std::move(name), a, b, ohms});
}

int Circuit::add_capacitor(std::string name, int a, int b, double farads) {
  if (farads <= 0.0) throw SimulationError("capacitor '" + name + "' requires positive farads");
  return add(Element{ElementKind::Capacitor, std::move(name), a, b, farads});
}

int Circuit::add_inductor(std::string name, int a, int b, double henries) {
  if (henries <= 0.0) throw SimulationError("inductor '" + name + "' requires positive henries");
  return add(Element{ElementKind::Inductor, std::move(name), a, b, henries});
}

int Circuit::add_diode(std::string name, int anode, int cathode) {
  return add(Element{ElementKind::Diode, std::move(name), anode, cathode, 0.0});
}

int Circuit::add_vsource(std::string name, int pos, int neg, double volts) {
  return add(Element{ElementKind::VSource, std::move(name), pos, neg, volts});
}

int Circuit::add_isource(std::string name, int from, int to, double amps) {
  return add(Element{ElementKind::ISource, std::move(name), from, to, amps});
}

int Circuit::add_current_sensor(std::string name, int a, int b) {
  return add(Element{ElementKind::CurrentSensor, std::move(name), a, b, 0.0});
}

int Circuit::add_voltage_sensor(std::string name, int a, int b) {
  return add(Element{ElementKind::VoltageSensor, std::move(name), a, b, 0.0});
}

int Circuit::add_switch(std::string name, int a, int b, bool closed) {
  Element e{ElementKind::Switch, std::move(name), a, b, 0.0};
  e.closed = closed;
  return add(std::move(e));
}

int Circuit::add_mcu(std::string name, int vdd, int gnd, double supply_resistance_ohms) {
  if (supply_resistance_ohms <= 0.0) {
    throw SimulationError("mcu '" + name + "' requires positive supply resistance");
  }
  return add(Element{ElementKind::Mcu, std::move(name), vdd, gnd, supply_resistance_ohms});
}

const Element* Circuit::find(std::string_view name) const noexcept {
  for (const auto& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Element* Circuit::find(std::string_view name) noexcept {
  for (auto& e : elements_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

Element& Circuit::get(std::string_view name) {
  Element* e = find(name);
  if (e == nullptr) throw SimulationError("unknown element '" + std::string(name) + "'");
  return *e;
}

const Element& Circuit::get(std::string_view name) const {
  const Element* e = find(name);
  if (e == nullptr) throw SimulationError("unknown element '" + std::string(name) + "'");
  return *e;
}

}  // namespace decisive::sim
