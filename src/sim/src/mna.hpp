// Internal MNA machinery shared by the single-solve path (solver.cpp) and
// the factor-once batched campaign path (campaign_solver.cpp): system
// structure analysis, stamp assembly, diode linearisation, and the bounded
// Newton loop with a pluggable linear-solve step.
//
// Not installed; everything here is an implementation detail of the sim
// library. The assembly and iteration logic is a verbatim extraction of the
// original attempt_solve — stamp order, convergence tests, and failure
// classification are unchanged, so the naive path's outputs are
// byte-identical to the pre-refactor solver.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "decisive/base/error.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/sim/circuit.hpp"
#include "decisive/sim/dense.hpp"
#include "decisive/sim/solver.hpp"
#include "decisive/sim/sparse.hpp"

namespace decisive::sim::mna {

/// Registry handles cached once per process: a solve costs a handful of
/// relaxed atomic increments, never a registry lookup.
struct SolverMetrics {
  obs::Counter& solves;
  obs::Counter& converged;
  obs::Counter& iterations;
  obs::Counter& gmin_rungs;
  obs::Counter& source_rungs;
  obs::Counter& nonfinite_guard;
  obs::Counter& singular;
  obs::Counter& budget_exhausted;
  obs::Histogram& solve_seconds;

  static SolverMetrics& get() {
    auto& registry = obs::Registry::global();
    static SolverMetrics metrics{
        registry.counter("decisive_solver_solves_total"),
        registry.counter("decisive_solver_converged_total"),
        registry.counter("decisive_solver_iterations_total"),
        registry.counter("decisive_solver_ladder_gmin_total"),
        registry.counter("decisive_solver_ladder_source_total"),
        registry.counter("decisive_solver_nonfinite_guard_total"),
        registry.counter("decisive_solver_singular_total"),
        registry.counter("decisive_solver_budget_exhausted_total"),
        registry.histogram("decisive_solver_solve_seconds")};
    return metrics;
  }
};

/// Per-run element companion state: which storage elements have companion
/// sources (transient) and which diode linearisation voltages to use.
struct CompanionState {
  bool transient = false;
  double dt = 0.0;
  // Indexed by element position in circuit.elements().
  std::vector<double> cap_voltage;       // previous-step capacitor voltage
  std::vector<double> inductor_current;  // previous-step inductor current
};

/// Assembles and solves one Newton-converged system.
/// Returns node voltages (index 0 = ground = 0.0) and branch currents keyed
/// by element index for elements with a branch unknown.
struct SolveResult {
  std::vector<double> node_voltage;
  std::vector<double> branch_current;  // per element index; NaN when no branch
};

/// Warm-start state handed from one recovery-ladder attempt to the next (and
/// from the nominal solve to every fault variant on the batched path).
struct NewtonSeed {
  std::vector<double> x;        ///< previous raw solution vector
  std::vector<double> diode_v;  ///< previous diode junction estimates
};

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/// One bounded, non-throwing Newton run. `result` is only meaningful when
/// `converged`; `x`/`diode_v` always carry the final iterate so a later
/// ladder rung can continue from whatever progress this attempt made.
struct NewtonAttempt {
  bool converged = false;
  SolveFailure failure = SolveFailure::None;
  std::string message;
  int iterations = 0;
  double residual = 0.0;
  SolveResult result;
  std::vector<double> x;
  std::vector<double> diode_v;
};

/// The unknown-vector layout of one MNA system: node voltages (ground
/// eliminated) followed by branch currents. Fixed for a given netlist
/// topology, so a campaign computes it once and shares it across variants.
struct Structure {
  std::vector<int> branch_index;  ///< per element; -1 = no branch unknown
  int n_branches = 0;
  int n_nodes = 0;
  std::size_t dim = 0;
};

inline Structure analyze_structure(const Circuit& circuit, bool transient) {
  const auto& elements = circuit.elements();
  Structure st;
  st.n_nodes = circuit.node_count();
  st.branch_index.assign(elements.size(), -1);
  // Branch unknowns: voltage sources, current sensors; inductors only in DC
  // (in transient they use a Norton companion instead).
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const ElementKind kind = elements[i].kind;
    if (kind == ElementKind::VSource || kind == ElementKind::CurrentSensor ||
        (kind == ElementKind::Inductor && !transient)) {
      st.branch_index[i] = st.n_branches++;
    }
  }
  st.dim = static_cast<std::size_t>(st.n_nodes - 1 + st.n_branches);
  return st;
}

/// Companion linearisation of one diode around a junction-voltage estimate.
struct DiodeLinearisation {
  double geq = 0.0;
  double ieq = 0.0;
};

inline DiodeLinearisation linearise_diode(double diode_v_estimate, const SolveOptions& opt) {
  const double vd = std::clamp(diode_v_estimate, -5.0, 0.9);
  const double ex = std::exp(vd / opt.diode_vt);
  const double id = opt.diode_is * (ex - 1.0);
  const double geq = std::max(opt.diode_is / opt.diode_vt * ex, opt.gmin);
  return DiodeLinearisation{geq, id - geq * vd};
}

/// Stamps the MNA system for the given diode linearisation point into `rhs`
/// (always) and an arbitrary matrix sink: `add(row, col, value)` is invoked
/// for every matrix stamp in the exact order of the original solver. The
/// dense path adds into flat row-major storage; the sparse path records
/// coordinates (pattern build) or replays them through a frozen slot
/// sequence (numeric refill) — one stamp pass, three consumers, and because
/// the element loop is shared the add sequence is identical across them.
template <typename AddFn>
inline void assemble_with(const Circuit& circuit, const SolveOptions& opt,
                          const CompanionState& state, const Structure& st,
                          const std::vector<double>& diode_v, AddFn&& add, double* rhs) {
  const auto& elements = circuit.elements();
  const std::size_t dim = st.dim;
  const int n_nodes = st.n_nodes;
  const int n_branches = st.n_branches;

  auto vrow = [](int node) { return static_cast<std::size_t>(node - 1); };

  auto stamp_conductance = [&](int na, int nb, double g) {
    if (na != 0) add(vrow(na), vrow(na), g);
    if (nb != 0) add(vrow(nb), vrow(nb), g);
    if (na != 0 && nb != 0) {
      add(vrow(na), vrow(nb), -g);
      add(vrow(nb), vrow(na), -g);
    }
  };
  // Current `j` flowing from node na to node nb through the element.
  auto stamp_current = [&](int na, int nb, double j) {
    if (na != 0) rhs[vrow(na)] -= j;
    if (nb != 0) rhs[vrow(nb)] += j;
  };
  auto stamp_branch = [&](int na, int nb, int branch) {
    const std::size_t k = static_cast<std::size_t>(static_cast<int>(dim) - n_branches + branch);
    if (na != 0) {
      add(vrow(na), k, 1.0);
      add(k, vrow(na), 1.0);
    }
    if (nb != 0) {
      add(vrow(nb), k, -1.0);
      add(k, vrow(nb), -1.0);
    }
  };
  auto branch_rhs = [&](int branch) -> double& {
    return rhs[static_cast<std::size_t>(static_cast<int>(dim) - n_branches + branch)];
  };

  // gmin from every non-ground node keeps floating nodes solvable (the
  // standard SPICE trick; an "open" fault would otherwise be singular).
  for (int node = 1; node < n_nodes; ++node) add(vrow(node), vrow(node), opt.gmin);

  for (std::size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    switch (e.kind) {
      case ElementKind::Resistor:
        stamp_conductance(e.a, e.b, 1.0 / e.value);
        break;
      case ElementKind::Mcu:
        stamp_conductance(e.a, e.b, 1.0 / e.value);
        break;
      case ElementKind::Switch:
        stamp_conductance(e.a, e.b,
                          1.0 / (e.closed ? opt.closed_resistance : opt.open_resistance));
        break;
      case ElementKind::Capacitor:
        if (state.transient) {
          const double g = e.value / state.dt;
          stamp_conductance(e.a, e.b, g);
          // Norton companion: history current g * v_prev from b to a.
          stamp_current(e.a, e.b, -g * state.cap_voltage[i]);
        }
        // DC: open circuit, no stamp.
        break;
      case ElementKind::Inductor:
        if (state.transient) {
          const double g = state.dt / e.value;
          stamp_conductance(e.a, e.b, g);
          stamp_current(e.a, e.b, state.inductor_current[i]);
        } else {
          // DC short: a 0 V source with a branch-current unknown.
          stamp_branch(e.a, e.b, st.branch_index[i]);
          branch_rhs(st.branch_index[i]) = 0.0;
        }
        break;
      case ElementKind::Diode: {
        // Linearise around the current junction-voltage estimate.
        const DiodeLinearisation lin = linearise_diode(diode_v[i], opt);
        stamp_conductance(e.a, e.b, lin.geq);
        stamp_current(e.a, e.b, lin.ieq);
        break;
      }
      case ElementKind::VSource:
      case ElementKind::CurrentSensor:
        stamp_branch(e.a, e.b, st.branch_index[i]);
        branch_rhs(st.branch_index[i]) = e.kind == ElementKind::VSource ? e.value : 0.0;
        break;
      case ElementKind::ISource:
        stamp_current(e.a, e.b, e.value);
        break;
      case ElementKind::VoltageSensor:
        break;  // ideal voltmeter: no stamp
    }
  }
}

/// The classic entry point over flat row-major `dim x dim` storage (`a` may
/// be null — the batched path re-stamps only the RHS). Both buffers must be
/// pre-zeroed. The dense add is `+=` of the signed stamp, which is the same
/// IEEE operation the old in-lambda `-=` performed, so no output byte moved.
inline void assemble(const Circuit& circuit, const SolveOptions& opt,
                     const CompanionState& state, const Structure& st,
                     const std::vector<double>& diode_v, double* a, double* rhs) {
  const std::size_t dim = st.dim;
  if (a == nullptr) {
    assemble_with(circuit, opt, state, st, diode_v, [](std::size_t, std::size_t, double) {},
                  rhs);
  } else {
    assemble_with(circuit, opt, state, st, diode_v,
                  [a, dim](std::size_t r, std::size_t c, double v) { a[r * dim + c] += v; },
                  rhs);
  }
}

inline SolveResult extract_result(const Circuit& circuit, const Structure& st,
                                  const std::vector<double>& x) {
  const auto& elements = circuit.elements();
  SolveResult result;
  result.node_voltage.assign(static_cast<std::size_t>(st.n_nodes), 0.0);
  for (int node = 1; node < st.n_nodes; ++node) {
    result.node_voltage[static_cast<std::size_t>(node)] = x[static_cast<std::size_t>(node - 1)];
  }
  result.branch_current.assign(elements.size(), std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < elements.size(); ++i) {
    if (st.branch_index[i] >= 0) {
      result.branch_current[i] =
          x[static_cast<std::size_t>(st.n_nodes - 1 + st.branch_index[i])];
    }
  }
  return result;
}

/// One bounded, non-throwing Newton run over a pluggable linear-solve step.
///
/// `solve_step(diode_v, x_out, failure, message)` solves the MNA system
/// linearised at `diode_v` into `x_out` (sized dim) and returns true, or
/// returns false with `failure`/`message` set (singular system, low-rank
/// update rejected, ...). Everything else — budgets, the non-finite guard,
/// diode voltage limiting, and the convergence test — is shared verbatim
/// between the naive and batched paths.
template <typename SolveStep>
NewtonAttempt newton_attempt(const Circuit& circuit, const SolveOptions& opt,
                             const Structure& st, const NewtonSeed* seed,
                             const Deadline& deadline, SolveStep&& solve_step) {
  const auto& elements = circuit.elements();
  const std::size_t dim = st.dim;

  NewtonAttempt attempt;
  if (dim == 0) {
    attempt.converged = true;
    attempt.result = SolveResult{
        std::vector<double>(static_cast<std::size_t>(st.n_nodes), 0.0),
        std::vector<double>(elements.size(), std::numeric_limits<double>::quiet_NaN())};
    return attempt;
  }

  // Diode junction voltage estimates for Newton iteration; warm-started from
  // the previous ladder attempt (or the nominal solve) when available.
  std::vector<double> diode_v(elements.size(), 0.6);
  std::vector<double> x(dim, 0.0);
  if (seed != nullptr) {
    if (seed->diode_v.size() == diode_v.size()) diode_v = seed->diode_v;
    if (seed->x.size() == x.size()) x = seed->x;
  }

  auto give_up = [&](SolveFailure failure, std::string message) {
    attempt.converged = false;
    attempt.failure = failure;
    attempt.message = std::move(message);
    attempt.x = std::move(x);
    attempt.diode_v = std::move(diode_v);
    return std::move(attempt);
  };

  std::vector<double> x_new(dim, 0.0);
  bool converged = false;
  for (int iteration = 0; !converged; ++iteration) {
    if (iteration >= opt.max_newton_iterations) {
      return give_up(SolveFailure::IterationBudget, "newton iteration did not converge");
    }
    if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {
      return give_up(SolveFailure::WallClockBudget, "solve wall-clock budget exhausted");
    }
    attempt.iterations = iteration + 1;

    SolveFailure failure = SolveFailure::Singular;
    std::string message;
    if (!solve_step(diode_v, x_new, failure, message)) {
      return give_up(failure, std::move(message));
    }

    // Non-finite guard: a NaN/Inf iterate (NaN source value, zero-resistance
    // loop, numeric blow-up) would otherwise poison every later iteration and
    // masquerade as "singular" once it reaches the diode stamps.
    for (const double value : x_new) {
      if (!std::isfinite(value)) {
        SolverMetrics::get().nonfinite_guard.add();
        return give_up(SolveFailure::NonFinite,
                       "newton iterate is not finite (NaN/Inf in circuit values?)");
      }
    }

    // Newton update for diode junction voltages, with voltage limiting for
    // robust convergence.
    bool has_diode = false;
    double max_diode_change = 0.0;
    auto node_v = [&](int node) {
      return node == 0 ? 0.0 : x_new[static_cast<std::size_t>(node - 1)];
    };
    for (std::size_t i = 0; i < elements.size(); ++i) {
      if (elements[i].kind != ElementKind::Diode) continue;
      has_diode = true;
      const double target = node_v(elements[i].a) - node_v(elements[i].b);
      const double previous = diode_v[i];
      const double step = std::clamp(target - previous, -0.1, 0.1);
      diode_v[i] = previous + step;
      max_diode_change = std::max(max_diode_change, std::abs(target - previous));
    }

    double max_change = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      max_change = std::max(max_change, std::abs(x_new[i] - x[i]));
    }
    std::swap(x, x_new);
    attempt.residual = has_diode ? std::max(max_change, max_diode_change) : max_change;

    converged = !has_diode || (max_diode_change < opt.newton_tolerance &&
                               max_change < std::max(opt.newton_tolerance, 1e-9));
  }

  attempt.result = extract_result(circuit, st, x);
  attempt.converged = true;
  attempt.x = std::move(x);
  attempt.diode_v = std::move(diode_v);
  return attempt;
}

/// One circuit structure's frozen sparse assembly plan: the CSC pattern of
/// the stamp pass plus the slot sequence that replays every later assembly
/// as straight indexed adds. Building it runs the stamp pass once with a
/// coordinate-recording sink; this is also where the per-structure shape
/// validation happens exactly once — refills never re-derive the pattern.
struct SparsePlan {
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;   ///< CSC slot of each recorded stamp, in order
  std::vector<double> values;        ///< CSC numeric array, refilled per assembly
  std::uint64_t fingerprint = 0;     ///< pattern.fingerprint(), computed once
  std::size_t dim = 0;
  bool transient = false;
  bool ready = false;

  void build(const Circuit& circuit, const SolveOptions& opt, const CompanionState& state,
             const Structure& st) {
    sparse::PatternBuilder builder;
    builder.begin(st.dim);
    std::vector<double> rhs_sink(st.dim, 0.0);
    const std::vector<double> diode_guess(circuit.elements().size(), 0.6);
    assemble_with(circuit, opt, state, st, diode_guess,
                  [&](std::size_t r, std::size_t c, double) { builder.add(r, c); },
                  rhs_sink.data());
    builder.freeze(pattern, slots);
    fingerprint = pattern.fingerprint();
    values.assign(pattern.nnz(), 0.0);
    dim = st.dim;
    transient = state.transient;
    ready = true;
  }

  /// Numeric refill: zeroes `values`, replays the stamp pass through the
  /// frozen slot sequence and writes `rhs` (pre-zeroed, dim entries) in the
  /// same pass. Returns false if the stamp stream no longer matches the plan
  /// (a structurally different circuit slipped in) — the caller must fall
  /// back to dense rather than trust a half-filled matrix.
  [[nodiscard]] bool refill(const Circuit& circuit, const SolveOptions& opt,
                            const CompanionState& state, const Structure& st,
                            const std::vector<double>& diode_v, double* rhs) {
    std::fill(values.begin(), values.end(), 0.0);
    std::size_t t = 0;
    bool overflow = false;
    assemble_with(circuit, opt, state, st, diode_v,
                  [&](std::size_t, std::size_t, double v) {
                    if (t < slots.size()) {
                      values[static_cast<std::size_t>(slots[t++])] += v;
                    } else {
                      overflow = true;
                    }
                  },
                  rhs);
    return !overflow && t == slots.size();
  }
};

/// Reusable buffers of one solve path. Hoisted out of the Newton loop so an
/// attempt allocates its matrix once, and shared across ladder rungs /
/// transient steps / campaign variants by the callers. The sparse plan and
/// factorisation ride along so a repeated-solve caller pays symbolic
/// analysis once per structure; `sparse_disabled` is the sticky half of the
/// fallback ladder — once any sparse attempt on this workspace misbehaves,
/// every later attempt goes straight to the dense kernel.
struct Workspace {
  dense::LuFactorization<double> lu;
  std::vector<double> rhs;
  SparsePlan plan;
  sparse::SparseLu<double> slu;
  bool sparse_disabled = false;
};

/// The classic path: assemble the full matrix and factor it every iteration,
/// with `ws` providing the (reused) storage.
inline NewtonAttempt attempt_solve_dense(const Circuit& circuit, const SolveOptions& opt,
                                         const CompanionState& state, const Structure& st,
                                         const NewtonSeed* seed, const Deadline& deadline,
                                         Workspace& ws) {
  auto solve_step = [&](const std::vector<double>& diode_v, std::vector<double>& x_out,
                        SolveFailure& failure, std::string& message) {
    std::vector<double>& flat = ws.lu.reset(st.dim);
    ws.rhs.assign(st.dim, 0.0);
    assemble(circuit, opt, state, st, diode_v, flat.data(), ws.rhs.data());
    try {
      ws.lu.factor("singular system (floating node or short loop?)");
    } catch (const SimulationError& error) {
      SolverMetrics::get().singular.add();
      failure = SolveFailure::Singular;
      message = error.what();
      return false;
    }
    ws.lu.solve_in_place(ws.rhs.data());
    x_out = ws.rhs;
    return true;
  };
  return newton_attempt(circuit, opt, st, seed, deadline, solve_step);
}

/// The default path: sparse refactor-per-iteration for big systems, with a
/// fall-back-on-anything-suspicious ladder onto the dense kernel. A sparse
/// attempt that misbehaves in *any* way — singular factorisation, a
/// pivot-gate trip that a fresh factorisation cannot heal, fill blow-up, a
/// stamp-stream mismatch, or plain Newton non-convergence — is re-run in
/// full on the dense kernel (identical classification and messages to
/// attempt_solve_dense) and this workspace's sparse path is disabled for
/// good. The dense kernel therefore stays the behavioural oracle: enabling
/// sparse can only change which rounding a *converged* solution carries,
/// never whether or how an attempt fails.
inline NewtonAttempt attempt_solve_auto(const Circuit& circuit, const SolveOptions& opt,
                                        const CompanionState& state, const Structure& st,
                                        const NewtonSeed* seed, const Deadline& deadline,
                                        Workspace& ws) {
  if (!opt.sparse || ws.sparse_disabled) {
    return attempt_solve_dense(circuit, opt, state, st, seed, deadline, ws);
  }
  auto& metrics = sparse::SparseMetrics::get();
  if (st.dim < static_cast<std::size_t>(std::max(opt.sparse_min_dim, 1))) {
    metrics.fallback_small_dim.add();
    return attempt_solve_dense(circuit, opt, state, st, seed, deadline, ws);
  }
  // (Re)derive the assembly plan when the structure changed — e.g. one
  // workspace shared between a transient run's DC initial condition and its
  // stepping loop, whose systems differ in both dimension and stamps.
  if (!ws.plan.ready || ws.plan.dim != st.dim || ws.plan.transient != state.transient) {
    ws.plan.build(circuit, opt, state, st);
    ws.slu = sparse::SparseLu<double>{};  // symbolic was for another structure
  }

  obs::Counter* fallback_reason = &metrics.fallback_not_converged;
  auto solve_step = [&](const std::vector<double>& diode_v, std::vector<double>& x_out,
                        SolveFailure& failure, std::string& message) {
    ws.rhs.assign(st.dim, 0.0);
    if (!ws.plan.refill(circuit, opt, state, st, diode_v, ws.rhs.data())) {
      fallback_reason = &metrics.fallback_singular;
      failure = SolveFailure::Singular;
      message = "sparse plan does not match the stamped circuit";
      return false;
    }
    std::string err;
    bool ok = false;
    if (ws.slu.symbolic() != nullptr &&
        ws.slu.symbolic()->pattern_fingerprint == ws.plan.fingerprint) {
      ok = ws.slu.refactor(ws.plan.pattern, ws.plan.values.data(), &err);
      if (!ok) {
        // A frozen pivot went numerically stale; re-pivot from scratch
        // before conceding the step.
        ok = ws.slu.factor(ws.plan.pattern, ws.plan.values.data(), &err);
        if (ok) {
          metrics.repivots.add();
        } else {
          fallback_reason = &metrics.fallback_pivot;
        }
      }
    } else {
      ok = ws.slu.factor(ws.plan.pattern, ws.plan.values.data(), &err);
      if (!ok) fallback_reason = &metrics.fallback_singular;
    }
    if (!ok) {
      failure = SolveFailure::Singular;
      message = std::move(err);
      return false;
    }
    const double dim_sq = static_cast<double>(st.dim) * static_cast<double>(st.dim);
    if (static_cast<double>(ws.slu.lu_nnz()) > opt.sparse_max_fill * dim_sq) {
      fallback_reason = &metrics.fallback_fill;
      failure = SolveFailure::Singular;
      message = "sparse factorisation fill exceeded the density gate";
      return false;
    }
    ws.slu.solve_in_place(ws.rhs.data());
    x_out = ws.rhs;
    return true;
  };

  NewtonAttempt attempt = newton_attempt(circuit, opt, st, seed, deadline, solve_step);
  if (attempt.converged) return attempt;

  // Anything suspicious: count why, disable this workspace's sparse path,
  // and re-run the whole attempt on the dense oracle so the failure (or a
  // late dense-only convergence) classifies exactly as with sparse off.
  fallback_reason->add();
  ws.sparse_disabled = true;
  return attempt_solve_dense(circuit, opt, state, st, seed, deadline, ws);
}

OperatingPoint make_operating_point(const Circuit& circuit, const SolveResult& solved);

}  // namespace decisive::sim::mna
