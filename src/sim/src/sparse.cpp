// Sparse LU implementation: left-looking Gilbert-Peierls factorisation with
// threshold partial pivoting, the numeric-only replay over a frozen
// Symbolic, and the partial refactorisation that reuses a clean symbolic
// prefix across a structural edit.
//
// The algorithm is the classic one from Gilbert & Peierls ("Sparse partial
// pivoting in time proportional to arithmetic operations") as specialised by
// KLU for circuit matrices: for each column, a DFS over the already-factored
// L columns computes the fill pattern and a topological elimination order;
// the numeric sweep then runs exactly that order. Freezing the pattern and
// order afterwards is what makes refactor() a straight-line array replay —
// no graph traversal, no allocation, no pivot search.

#include "decisive/sim/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "decisive/sim/dense.hpp"

namespace decisive::sim::sparse {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline void fnv_mix(std::uint64_t& h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xffull;
    h *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t Pattern::fingerprint() const noexcept {
  std::uint64_t h = kFnvOffset;
  fnv_mix(h, static_cast<std::uint64_t>(n));
  for (const std::int32_t v : col_ptr) fnv_mix(h, static_cast<std::uint64_t>(v));
  for (const std::int32_t v : row_ind) fnv_mix(h, static_cast<std::uint64_t>(v));
  return h;
}

void PatternBuilder::freeze(Pattern& pattern, std::vector<std::int32_t>& slots) const {
  std::vector<std::pair<std::int32_t, std::int32_t>> sorted = coords_;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  pattern.n = n_;
  pattern.col_ptr.assign(n_ + 1, 0);
  pattern.row_ind.resize(sorted.size());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    pattern.row_ind[i] = sorted[i].second;
    ++pattern.col_ptr[static_cast<std::size_t>(sorted[i].first) + 1];
  }
  for (std::size_t c = 0; c < n_; ++c) pattern.col_ptr[c + 1] += pattern.col_ptr[c];

  // Slot of every recorded add: binary search within its (sorted) column.
  slots.resize(coords_.size());
  for (std::size_t t = 0; t < coords_.size(); ++t) {
    const auto [col, row] = coords_[t];
    const auto begin = pattern.row_ind.begin() + pattern.col_ptr[static_cast<std::size_t>(col)];
    const auto end = pattern.row_ind.begin() + pattern.col_ptr[static_cast<std::size_t>(col) + 1];
    const auto it = std::lower_bound(begin, end, row);
    slots[t] = static_cast<std::int32_t>(it - pattern.row_ind.begin());
  }
}

std::vector<std::int32_t> min_degree_order(const Pattern& a) {
  const std::size_t n = a.n;
  std::vector<std::int32_t> order;
  order.reserve(n);
  if (n == 0) return order;

  // Dense-ish patterns gain nothing from reordering (and the explicit-fill
  // elimination below would be quadratic on them); the caller's fill gate
  // sends such systems to the dense kernel anyway.
  if (static_cast<double>(a.nnz()) > kDensePatternRatio * static_cast<double>(n) *
                                         static_cast<double>(n)) {
    for (std::size_t c = 0; c < n; ++c) order.push_back(static_cast<std::int32_t>(c));
    return order;
  }

  // Symmetric adjacency of A + A^T without the diagonal. Lists stay sorted
  // and contain live vertices only (elimination rebuilds exactly the lists
  // that referenced the eliminated vertex).
  std::vector<std::vector<std::int32_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::int32_t p = a.col_ptr[c]; p < a.col_ptr[c + 1]; ++p) {
      const std::int32_t r = a.row_ind[static_cast<std::size_t>(p)];
      if (static_cast<std::size_t>(r) == c) continue;
      adj[c].push_back(r);
      adj[static_cast<std::size_t>(r)].push_back(static_cast<std::int32_t>(c));
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }

  std::vector<char> alive(n, 1);
  std::vector<std::int32_t> clique;
  std::vector<std::int32_t> merged;
  for (std::size_t step = 0; step < n; ++step) {
    // Minimum current degree, ties to the lowest index (deterministic).
    std::int32_t best = -1;
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    for (std::size_t v = 0; v < n; ++v) {
      if (alive[v] && adj[v].size() < best_degree) {
        best_degree = adj[v].size();
        best = static_cast<std::int32_t>(v);
      }
    }
    order.push_back(best);
    alive[static_cast<std::size_t>(best)] = 0;

    // Eliminating `best` turns its neighbourhood into a clique.
    clique = std::move(adj[static_cast<std::size_t>(best)]);
    adj[static_cast<std::size_t>(best)].clear();
    for (const std::int32_t u : clique) {
      auto& list = adj[static_cast<std::size_t>(u)];
      merged.clear();
      merged.reserve(list.size() + clique.size());
      auto ia = list.begin();
      auto ib = clique.begin();
      auto keep = [&](std::int32_t v) {
        if (v != best && v != u) merged.push_back(v);
      };
      while (ia != list.end() && ib != clique.end()) {
        if (*ia < *ib) {
          keep(*ia++);
        } else if (*ib < *ia) {
          keep(*ib++);
        } else {
          keep(*ia);
          ++ia;
          ++ib;
        }
      }
      while (ia != list.end()) keep(*ia++);
      while (ib != clique.end()) keep(*ib++);
      list = merged;
    }
  }
  return order;
}

template <typename T>
void SparseLu<T>::adopt(std::shared_ptr<const Symbolic> symbolic) {
  sym_ = std::move(symbolic);
  factored_ = false;
  fill_ratio_ = 0.0;
  if (sym_) {
    l_val_.resize(sym_->l_row.size());
    u_val_.resize(sym_->u_pos.size());
    u_diag_.assign(sym_->n, T{});
  }
}

template <typename T>
bool SparseLu<T>::gilbert_peierls(const Pattern& pattern, const T* values,
                                  const std::vector<std::int32_t>& col_order,
                                  std::size_t start_pos, Symbolic& sym,
                                  std::vector<std::int32_t>& pinv, double floor,
                                  std::string* error) {
  const std::size_t n = pattern.n;
  x_.assign(n, T{});
  if (mark_.size() != n || pass_ >= std::numeric_limits<std::int32_t>::max() - 1) {
    mark_.assign(n, 0);
    pass_ = 0;
  }
  stack_.resize(n);
  pstack_.resize(n);
  topo_.resize(n);
  rows_.resize(n);

  std::vector<std::int32_t> l_cols;  // candidate L rows of the current column
  for (std::size_t k = start_pos; k < n; ++k) {
    const std::int32_t c = col_order[k];
    sym.perm_col[k] = c;

    // Symbolic step: DFS over the factored L columns from every nonzero row
    // of A(:,c). Visited rows form the fill pattern; reverse finish order is
    // a topological elimination order.
    ++pass_;
    std::int32_t topo_n = 0;
    std::int32_t rows_n = 0;
    for (std::int32_t idx = pattern.col_ptr[static_cast<std::size_t>(c)];
         idx < pattern.col_ptr[static_cast<std::size_t>(c) + 1]; ++idx) {
      const std::int32_t root = pattern.row_ind[static_cast<std::size_t>(idx)];
      if (mark_[static_cast<std::size_t>(root)] == pass_) continue;
      std::int32_t sp = 0;
      stack_[0] = root;
      mark_[static_cast<std::size_t>(root)] = pass_;
      pstack_[0] = pinv[static_cast<std::size_t>(root)] >= 0
                       ? sym.l_ptr[static_cast<std::size_t>(pinv[static_cast<std::size_t>(root)])]
                       : 0;
      while (sp >= 0) {
        const std::int32_t row = stack_[static_cast<std::size_t>(sp)];
        const std::int32_t j = pinv[static_cast<std::size_t>(row)];
        bool descended = false;
        if (j >= 0) {
          std::int32_t& p = pstack_[static_cast<std::size_t>(sp)];
          const std::int32_t pend = sym.l_ptr[static_cast<std::size_t>(j) + 1];
          while (p < pend) {
            const std::int32_t child = sym.l_row[static_cast<std::size_t>(p++)];
            if (mark_[static_cast<std::size_t>(child)] != pass_) {
              mark_[static_cast<std::size_t>(child)] = pass_;
              ++sp;
              stack_[static_cast<std::size_t>(sp)] = child;
              pstack_[static_cast<std::size_t>(sp)] =
                  pinv[static_cast<std::size_t>(child)] >= 0
                      ? sym.l_ptr[static_cast<std::size_t>(
                            pinv[static_cast<std::size_t>(child)])]
                      : 0;
              descended = true;
              break;
            }
          }
        }
        if (descended) continue;
        rows_[static_cast<std::size_t>(rows_n++)] = row;
        if (j >= 0) topo_[static_cast<std::size_t>(topo_n++)] = j;
        --sp;
      }
    }

    // Numeric step: scatter A(:,c), then eliminate in topological order
    // (reverse finish order — parents before children).
    for (std::int32_t idx = pattern.col_ptr[static_cast<std::size_t>(c)];
         idx < pattern.col_ptr[static_cast<std::size_t>(c) + 1]; ++idx) {
      x_[static_cast<std::size_t>(pattern.row_ind[static_cast<std::size_t>(idx)])] =
          values[idx];
    }
    for (std::int32_t t = topo_n; t-- > 0;) {
      const std::int32_t j = topo_[static_cast<std::size_t>(t)];
      const T uj = x_[static_cast<std::size_t>(sym.pivot_row[static_cast<std::size_t>(j)])];
      sym.u_pos.push_back(j);
      u_val_.push_back(uj);
      if (uj != T{}) {
        for (std::int32_t q = sym.l_ptr[static_cast<std::size_t>(j)];
             q < sym.l_ptr[static_cast<std::size_t>(j) + 1]; ++q) {
          x_[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(q)])] -=
              l_val_[static_cast<std::size_t>(q)] * uj;
        }
      }
    }
    sym.u_ptr.push_back(static_cast<std::int32_t>(sym.u_pos.size()));

    // Threshold partial pivoting over the not-yet-pivotal rows of the
    // pattern; the diagonal wins whenever it is within kDiagonalPreference
    // of the column max (pattern stability for later refactorisations).
    double max_mag = 0.0;
    std::int32_t pivot = -1;
    for (std::int32_t t = 0; t < rows_n; ++t) {
      const std::int32_t r = rows_[static_cast<std::size_t>(t)];
      if (pinv[static_cast<std::size_t>(r)] >= 0) continue;
      const double mag = std::abs(x_[static_cast<std::size_t>(r)]);
      if (mag > max_mag) {
        max_mag = mag;
        pivot = r;
      }
    }
    if (pivot < 0 || max_mag < floor) {
      if (error != nullptr) {
        *error = "sparse factorisation: numerically singular at column " +
                 std::to_string(c);
      }
      for (std::int32_t t = 0; t < rows_n; ++t) {
        x_[static_cast<std::size_t>(rows_[static_cast<std::size_t>(t)])] = T{};
      }
      return false;
    }
    if (static_cast<std::size_t>(c) < n && pinv[static_cast<std::size_t>(c)] < 0 &&
        std::abs(x_[static_cast<std::size_t>(c)]) >= kDiagonalPreference * max_mag) {
      pivot = c;
    }
    sym.pivot_row[k] = pivot;
    pinv[static_cast<std::size_t>(pivot)] = static_cast<std::int32_t>(k);
    const T diag = x_[static_cast<std::size_t>(pivot)];
    u_diag_[k] = diag;

    // L column: remaining non-pivotal pattern rows, stored sorted by row for
    // a canonical (comparison-friendly) layout. Order does not affect the
    // numerics — row updates are independent.
    l_cols.clear();
    for (std::int32_t t = 0; t < rows_n; ++t) {
      const std::int32_t r = rows_[static_cast<std::size_t>(t)];
      if (pinv[static_cast<std::size_t>(r)] < 0) l_cols.push_back(r);
    }
    std::sort(l_cols.begin(), l_cols.end());
    for (const std::int32_t r : l_cols) {
      sym.l_row.push_back(r);
      l_val_.push_back(x_[static_cast<std::size_t>(r)] / diag);
    }
    sym.l_ptr.push_back(static_cast<std::int32_t>(sym.l_row.size()));

    // Restore the all-zero scratch invariant for the next column.
    for (std::int32_t t = 0; t < rows_n; ++t) {
      x_[static_cast<std::size_t>(rows_[static_cast<std::size_t>(t)])] = T{};
    }
  }
  return true;
}

template <typename T>
bool SparseLu<T>::replay_prefix(const Symbolic& sym, const Pattern& pattern, const T* values,
                                std::size_t end_pos, double floor, std::string* error) {
  const std::size_t n = pattern.n;
  x_.assign(n, T{});
  for (std::size_t k = 0; k < end_pos; ++k) {
    const std::int32_t c = sym.perm_col[k];
    // Zero exactly this column's frozen pattern (U pivot rows, L rows, the
    // pivot row — disjoint sets), then scatter A(:,c). Residue from earlier
    // columns outside this pattern is harmless: every read is preceded by a
    // zero + scatter of the same rows.
    for (std::int32_t p = sym.u_ptr[k]; p < sym.u_ptr[k + 1]; ++p) {
      x_[static_cast<std::size_t>(
          sym.pivot_row[static_cast<std::size_t>(sym.u_pos[static_cast<std::size_t>(p)])])] =
          T{};
    }
    for (std::int32_t p = sym.l_ptr[k]; p < sym.l_ptr[k + 1]; ++p) {
      x_[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(p)])] = T{};
    }
    x_[static_cast<std::size_t>(sym.pivot_row[k])] = T{};
    for (std::int32_t idx = pattern.col_ptr[static_cast<std::size_t>(c)];
         idx < pattern.col_ptr[static_cast<std::size_t>(c) + 1]; ++idx) {
      x_[static_cast<std::size_t>(pattern.row_ind[static_cast<std::size_t>(idx)])] =
          values[idx];
    }
    // Numeric elimination in the frozen (topological) order.
    for (std::int32_t p = sym.u_ptr[k]; p < sym.u_ptr[k + 1]; ++p) {
      const std::int32_t j = sym.u_pos[static_cast<std::size_t>(p)];
      const T uj = x_[static_cast<std::size_t>(sym.pivot_row[static_cast<std::size_t>(j)])];
      u_val_[static_cast<std::size_t>(p)] = uj;
      if (uj != T{}) {
        for (std::int32_t q = sym.l_ptr[static_cast<std::size_t>(j)];
             q < sym.l_ptr[static_cast<std::size_t>(j) + 1]; ++q) {
          x_[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(q)])] -=
              l_val_[static_cast<std::size_t>(q)] * uj;
        }
      }
    }
    // Pivot stability gate: the frozen pivot must still dominate its column
    // well enough to trust — otherwise the caller re-pivots or goes dense.
    const T diag = x_[static_cast<std::size_t>(sym.pivot_row[k])];
    const double diag_mag = std::abs(diag);
    double col_max = diag_mag;
    for (std::int32_t q = sym.l_ptr[k]; q < sym.l_ptr[k + 1]; ++q) {
      col_max = std::max(
          col_max, std::abs(x_[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(q)])]));
    }
    if (diag_mag < floor || diag_mag < kRefactorPivotGate * col_max) {
      if (error != nullptr) {
        *error = "sparse refactorisation: pivot gate tripped at column " + std::to_string(c);
      }
      return false;
    }
    u_diag_[k] = diag;
    for (std::int32_t q = sym.l_ptr[k]; q < sym.l_ptr[k + 1]; ++q) {
      l_val_[static_cast<std::size_t>(q)] =
          x_[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(q)])] / diag;
    }
  }
  return true;
}

namespace {

template <typename T>
double values_max(const T* values, std::size_t nnz) {
  double max_mag = 0.0;
  for (std::size_t i = 0; i < nnz; ++i) max_mag = std::max(max_mag, std::abs(values[i]));
  return max_mag;
}

}  // namespace

template <typename T>
void SparseLu<T>::finish(const Pattern& pattern) {
  factored_ = true;
  fill_ratio_ = pattern.nnz() > 0
                    ? static_cast<double>(sym_->lu_nnz()) / static_cast<double>(pattern.nnz())
                    : 1.0;
  SparseMetrics& metrics = SparseMetrics::get();
  metrics.nnz.set(static_cast<double>(pattern.nnz()));
  metrics.lu_nnz.set(static_cast<double>(sym_->lu_nnz()));
  metrics.fill_gauge.set(fill_ratio_);
}

template <typename T>
bool SparseLu<T>::factor(const Pattern& pattern, const T* values, std::string* error) {
  const std::size_t n = pattern.n;
  factored_ = false;
  auto sym = std::make_shared<Symbolic>();
  sym->n = n;
  sym->perm_col.assign(n, -1);
  sym->pivot_row.assign(n, -1);
  sym->l_ptr.assign(1, 0);
  sym->u_ptr.assign(1, 0);
  sym->l_row.reserve(pattern.nnz() * 2);
  sym->u_pos.reserve(pattern.nnz() * 2);
  l_val_.clear();
  u_val_.clear();
  l_val_.reserve(pattern.nnz() * 2);
  u_val_.reserve(pattern.nnz() * 2);
  u_diag_.assign(n, T{});

  const std::vector<std::int32_t> order = min_degree_order(pattern);
  std::vector<std::int32_t> pinv(n, -1);
  const double floor = dense::singular_floor(values_max(values, pattern.nnz()));
  if (!gilbert_peierls(pattern, values, order, 0, *sym, pinv, floor, error)) return false;
  sym->pattern_fingerprint = pattern.fingerprint();
  sym_ = std::move(sym);
  finish(pattern);
  SparseMetrics::get().factors.add();
  return true;
}

template <typename T>
bool SparseLu<T>::refactor(const Pattern& pattern, const T* values, std::string* error) {
  if (!sym_ || sym_->n != pattern.n) {
    if (error != nullptr) *error = "sparse refactorisation without a matching symbolic";
    return false;
  }
  factored_ = false;
  l_val_.resize(sym_->l_row.size());
  u_val_.resize(sym_->u_pos.size());
  u_diag_.resize(sym_->n);
  const double floor = dense::singular_floor(values_max(values, pattern.nnz()));
  if (!replay_prefix(*sym_, pattern, values, sym_->n, floor, error)) return false;
  finish(pattern);
  SparseMetrics::get().refactors.add();
  return true;
}

template <typename T>
bool SparseLu<T>::partial_factor(const Symbolic& base, const Pattern& base_pattern,
                                 const std::vector<std::int32_t>& new_of_old,
                                 const Pattern& pattern, const T* values,
                                 std::size_t* reused_columns, std::string* error) {
  const std::size_t n_old = base.n;
  const std::size_t n_new = pattern.n;
  factored_ = false;
  if (base_pattern.n != n_old || new_of_old.size() != n_old) {
    if (error != nullptr) *error = "partial refactorisation: base/remap size mismatch";
    return false;
  }

  // A column is dirty when it was deleted or its A pattern changed under the
  // remap (new entries, lost entries, or an entry on a deleted row).
  std::vector<char> dirty(n_old, 0);
  for (std::size_t c = 0; c < n_old; ++c) {
    const std::int32_t c_new = new_of_old[c];
    if (c_new < 0) {
      dirty[c] = 1;
      continue;
    }
    const std::int32_t old_begin = base_pattern.col_ptr[c];
    const std::int32_t old_end = base_pattern.col_ptr[c + 1];
    const std::int32_t new_begin = pattern.col_ptr[static_cast<std::size_t>(c_new)];
    const std::int32_t new_end = pattern.col_ptr[static_cast<std::size_t>(c_new) + 1];
    bool same = true;
    std::int32_t q = new_begin;
    // new_of_old is strictly increasing over surviving indices, so the
    // remapped old rows stay sorted and a single merged walk compares them.
    for (std::int32_t p = old_begin; p < old_end && same; ++p) {
      const std::int32_t r_new = new_of_old[static_cast<std::size_t>(
          base_pattern.row_ind[static_cast<std::size_t>(p)])];
      if (r_new < 0 || q >= new_end || pattern.row_ind[static_cast<std::size_t>(q)] != r_new) {
        same = false;
      }
      ++q;
    }
    if (q != new_end) same = false;
    dirty[c] = same ? 0 : 1;
  }

  // Longest clean prefix of the base elimination order: every position whose
  // column is clean, whose pivot row survives, and whose L rows all survive.
  // (U entries reference earlier positions, clean by induction.)
  std::size_t p = 0;
  for (; p < n_old; ++p) {
    const std::int32_t c = base.perm_col[p];
    if (dirty[static_cast<std::size_t>(c)]) break;
    if (new_of_old[static_cast<std::size_t>(base.pivot_row[p])] < 0) break;
    bool rows_survive = true;
    for (std::int32_t q = base.l_ptr[p]; q < base.l_ptr[p + 1] && rows_survive; ++q) {
      if (new_of_old[static_cast<std::size_t>(base.l_row[static_cast<std::size_t>(q)])] < 0) {
        rows_survive = false;
      }
    }
    if (!rows_survive) break;
  }

  // Materialise the remapped prefix of the symbolic.
  auto sym = std::make_shared<Symbolic>();
  sym->n = n_new;
  sym->perm_col.assign(n_new, -1);
  sym->pivot_row.assign(n_new, -1);
  std::vector<std::int32_t> pinv(n_new, -1);
  for (std::size_t k = 0; k < p; ++k) {
    sym->perm_col[k] = new_of_old[static_cast<std::size_t>(base.perm_col[k])];
    sym->pivot_row[k] = new_of_old[static_cast<std::size_t>(base.pivot_row[k])];
    pinv[static_cast<std::size_t>(sym->pivot_row[k])] = static_cast<std::int32_t>(k);
  }
  sym->l_ptr.assign(base.l_ptr.begin(), base.l_ptr.begin() + static_cast<std::ptrdiff_t>(p + 1));
  sym->u_ptr.assign(base.u_ptr.begin(), base.u_ptr.begin() + static_cast<std::ptrdiff_t>(p + 1));
  const std::size_t l_prefix = static_cast<std::size_t>(sym->l_ptr[p]);
  const std::size_t u_prefix = static_cast<std::size_t>(sym->u_ptr[p]);
  sym->l_row.resize(l_prefix);
  for (std::size_t q = 0; q < l_prefix; ++q) {
    sym->l_row[q] = new_of_old[static_cast<std::size_t>(base.l_row[q])];
  }
  sym->u_pos.assign(base.u_pos.begin(), base.u_pos.begin() + static_cast<std::ptrdiff_t>(u_prefix));
  l_val_.assign(l_prefix, T{});
  u_val_.assign(u_prefix, T{});
  u_diag_.assign(n_new, T{});

  const double floor = dense::singular_floor(values_max(values, pattern.nnz()));
  if (!replay_prefix(*sym, pattern, values, p, floor, error)) return false;

  // Suffix column order: surviving base-order columns first, then columns
  // with no old preimage (none for today's dimension-shrinking structural
  // faults, but harmless to support) in ascending index order.
  std::vector<std::int32_t> col_order(n_new, -1);
  std::vector<char> covered(n_new, 0);
  for (std::size_t k = 0; k < p; ++k) {
    col_order[k] = sym->perm_col[k];
    covered[static_cast<std::size_t>(sym->perm_col[k])] = 1;
  }
  std::size_t pos = p;
  for (std::size_t k = p; k < n_old; ++k) {
    const std::int32_t c_new = new_of_old[static_cast<std::size_t>(base.perm_col[k])];
    if (c_new >= 0) {
      col_order[pos++] = c_new;
      covered[static_cast<std::size_t>(c_new)] = 1;
    }
  }
  for (std::size_t c = 0; c < n_new; ++c) {
    if (!covered[c]) col_order[pos++] = static_cast<std::int32_t>(c);
  }
  if (pos != n_new) {
    if (error != nullptr) *error = "partial refactorisation: remap is not injective";
    return false;
  }

  if (!gilbert_peierls(pattern, values, col_order, p, *sym, pinv, floor, error)) return false;
  sym->pattern_fingerprint = pattern.fingerprint();
  sym_ = std::move(sym);
  finish(pattern);
  if (reused_columns != nullptr) *reused_columns = p;
  SparseMetrics& metrics = SparseMetrics::get();
  metrics.partial_refactors.add();
  metrics.partial_reused_columns.add(static_cast<std::uint64_t>(p));
  return true;
}

template <typename T>
void SparseLu<T>::solve_in_place(T* b) const {
  const Symbolic& sym = *sym_;
  const std::size_t n = sym.n;
  solve_scratch_.resize(n);
  // Forward: L y = P b, with y[k] living at b[pivot_row[k]] (L has a unit
  // diagonal, row indices are original/unpermuted).
  for (std::size_t k = 0; k < n; ++k) {
    const T yk = b[static_cast<std::size_t>(sym.pivot_row[k])];
    if (yk == T{}) continue;
    for (std::int32_t q = sym.l_ptr[k]; q < sym.l_ptr[k + 1]; ++q) {
      b[static_cast<std::size_t>(sym.l_row[static_cast<std::size_t>(q)])] -=
          l_val_[static_cast<std::size_t>(q)] * yk;
    }
  }
  // Backward: U xp = y, column-oriented, positions descending.
  for (std::size_t k = n; k-- > 0;) {
    const T xk = b[static_cast<std::size_t>(sym.pivot_row[k])] / u_diag_[k];
    solve_scratch_[k] = xk;
    if (xk == T{}) continue;
    for (std::int32_t q = sym.u_ptr[k]; q < sym.u_ptr[k + 1]; ++q) {
      const std::int32_t j = sym.u_pos[static_cast<std::size_t>(q)];
      b[static_cast<std::size_t>(sym.pivot_row[static_cast<std::size_t>(j)])] -=
          u_val_[static_cast<std::size_t>(q)] * xk;
    }
  }
  // Undo the column permutation: position k solved original unknown
  // perm_col[k].
  for (std::size_t k = 0; k < n; ++k) {
    b[static_cast<std::size_t>(sym.perm_col[k])] = solve_scratch_[k];
  }
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace decisive::sim::sparse
