#include "decisive/sim/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <limits>
#include <numbers>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/sim/dense.hpp"
#include "decisive/sim/sparse.hpp"
#include "mna.hpp"

namespace decisive::sim {

std::string_view to_string(SolveStrategy strategy) noexcept {
  switch (strategy) {
    case SolveStrategy::Newton: return "newton";
    case SolveStrategy::GminStepping: return "gmin-stepping";
    case SolveStrategy::SourceStepping: return "source-stepping";
  }
  return "newton";
}

std::string_view to_string(SolveFailure failure) noexcept {
  switch (failure) {
    case SolveFailure::None: return "none";
    case SolveFailure::Singular: return "singular";
    case SolveFailure::NonFinite: return "non-finite";
    case SolveFailure::IterationBudget: return "iteration-budget";
    case SolveFailure::WallClockBudget: return "wall-clock-budget";
  }
  return "none";
}

double OperatingPoint::reading(const std::string& name) const {
  const auto it = readings.find(name);
  if (it == readings.end()) throw SimulationError("no reading named '" + name + "'");
  return it->second;
}

std::vector<double> solve_linear(std::vector<std::vector<double>> a, std::vector<double> b) {
  return dense::solve_dense(a, std::move(b), "singular system (floating node or short loop?)");
}

std::vector<std::complex<double>> solve_linear_complex(
    std::vector<std::vector<std::complex<double>>> a, std::vector<std::complex<double>> b) {
  return dense::solve_dense(a, std::move(b), "singular AC system");
}

namespace mna {

OperatingPoint make_operating_point(const Circuit& circuit, const SolveResult& solved) {
  OperatingPoint op;
  op.node_voltage = solved.node_voltage;
  const auto& elements = circuit.elements();
  auto node_v = [&](int node) { return op.node_voltage[static_cast<size_t>(node)]; };
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    switch (e.kind) {
      case ElementKind::CurrentSensor:
        op.readings[e.name] = solved.branch_current[i];
        break;
      case ElementKind::VoltageSensor:
        op.readings[e.name] = node_v(e.a) - node_v(e.b);
        break;
      case ElementKind::Mcu: {
        const double supply = node_v(e.a) - node_v(e.b);
        op.readings[e.name] = (e.ram_ok && supply >= e.min_supply) ? 1.0 : 0.0;
        break;
      }
      default:
        break;
    }
  }
  return op;
}

}  // namespace mna

namespace {

/// Throwing single-attempt wrapper used by the transient and AC paths, which
/// solve well-posed (already-converged-at-DC) systems and keep the original
/// exception contract.
mna::SolveResult solve_system(const Circuit& circuit, const SolveOptions& opt,
                              const mna::CompanionState& state, mna::Workspace& ws) {
  const mna::Structure st = mna::analyze_structure(circuit, state.transient);
  mna::NewtonAttempt attempt =
      mna::attempt_solve_auto(circuit, opt, state, st, nullptr, std::nullopt, ws);
  if (!attempt.converged) throw SimulationError(attempt.message);
  return std::move(attempt.result);
}

}  // namespace

double AcSample::magnitude(const std::string& name) const {
  const auto it = readings.find(name);
  if (it == readings.end()) throw SimulationError("no AC reading named '" + name + "'");
  return it->second.first;
}

std::optional<OperatingPoint> try_dc_operating_point(const Circuit& circuit,
                                                     const SolveOptions& options,
                                                     SolveDiagnostics& diagnostics) {
  mna::SolverMetrics& metrics = mna::SolverMetrics::get();
  metrics.solves.add();
  obs::Span span("solver.dc", &metrics.solve_seconds);
  const auto start = std::chrono::steady_clock::now();
  mna::Deadline deadline;
  if (options.max_wall_clock_seconds > 0.0) {
    deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(options.max_wall_clock_seconds));
  }
  mna::CompanionState state;  // DC: no companion sources.
  const mna::Structure structure = mna::analyze_structure(circuit, false);
  mna::Workspace ws;  // matrix + RHS storage shared across every ladder rung
  diagnostics = SolveDiagnostics{};

  auto finish = [&](mna::NewtonAttempt&& attempt, SolveStrategy strategy,
                    int rung) -> std::optional<OperatingPoint> {
    diagnostics.converged = attempt.converged;
    diagnostics.strategy = strategy;
    diagnostics.ladder_rung = rung;
    diagnostics.residual = attempt.residual;
    diagnostics.failure = attempt.converged ? SolveFailure::None : attempt.failure;
    diagnostics.message = attempt.converged ? std::string() : std::move(attempt.message);
    diagnostics.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    metrics.iterations.add(static_cast<std::uint64_t>(diagnostics.iterations));
    if (rung >= 1) metrics.gmin_rungs.add();
    if (rung >= 2) metrics.source_rungs.add();
    if (attempt.converged) {
      metrics.converged.add();
    } else if (diagnostics.failure == SolveFailure::IterationBudget ||
               diagnostics.failure == SolveFailure::WallClockBudget) {
      metrics.budget_exhausted.add();
    }
    if (!attempt.converged) return std::nullopt;
    return mna::make_operating_point(circuit, attempt.result);
  };

  // Rung 0: plain Newton.
  mna::NewtonAttempt plain =
      mna::attempt_solve_auto(circuit, options, state, structure, nullptr, deadline, ws);
  diagnostics.iterations += plain.iterations;
  if (plain.converged || !options.recovery_ladder ||
      plain.failure == SolveFailure::WallClockBudget) {
    return finish(std::move(plain), SolveStrategy::Newton, 0);
  }

  // Rung 1: gmin stepping. Solve a heavily damped (large leak conductance)
  // system first — near-linear, so Newton converges from anywhere — then walk
  // gmin down log-uniformly to the requested value, warm-starting every step
  // from the previous one. The last step uses exactly options.gmin, so a
  // converged result is a genuine solution of the requested system.
  {
    const int steps = std::max(2, options.gmin_ladder_steps);
    const double start_gmin = std::max(options.gmin * 1e9, 1e-3);
    SolveOptions damped = options;
    mna::NewtonSeed seed;
    mna::NewtonAttempt last;
    for (int k = 0; k < steps; ++k) {
      const double t = static_cast<double>(k) / (steps - 1);
      damped.gmin = start_gmin * std::pow(options.gmin / start_gmin, t);
      mna::NewtonAttempt attempt = mna::attempt_solve_auto(
          circuit, damped, state, structure, seed.x.empty() ? nullptr : &seed, deadline, ws);
      diagnostics.iterations += attempt.iterations;
      seed.x = attempt.x;
      seed.diode_v = attempt.diode_v;
      last = std::move(attempt);
      if (last.failure == SolveFailure::WallClockBudget) {
        return finish(std::move(last), SolveStrategy::GminStepping, 1);
      }
    }
    if (last.converged) return finish(std::move(last), SolveStrategy::GminStepping, 1);
  }

  // Rung 2: source stepping (homotopy continuation). Ramp every independent
  // source from a small fraction of its value up to 100%, warm-starting each
  // step; the trivial low-excitation solve pulls the nonlinear estimates into
  // the basin of attraction of the full-excitation solution.
  {
    const auto& elements = circuit.elements();
    Circuit scaled = circuit;
    std::vector<double> original(elements.size(), 0.0);
    for (size_t i = 0; i < elements.size(); ++i) original[i] = elements[i].value;

    const int steps = std::max(2, options.source_ladder_steps);
    mna::NewtonSeed seed;
    mna::NewtonAttempt last;
    for (int k = 1; k <= steps; ++k) {
      const double alpha = static_cast<double>(k) / steps;  // ends exactly at 1.0
      for (size_t i = 0; i < elements.size(); ++i) {
        const ElementKind kind = elements[i].kind;
        if (kind == ElementKind::VSource || kind == ElementKind::ISource) {
          scaled.elements()[i].value = original[i] * alpha;
        }
      }
      mna::NewtonAttempt attempt = mna::attempt_solve_auto(
          scaled, options, state, structure, seed.x.empty() ? nullptr : &seed, deadline, ws);
      diagnostics.iterations += attempt.iterations;
      seed.x = attempt.x;
      seed.diode_v = attempt.diode_v;
      last = std::move(attempt);
      if (last.failure == SolveFailure::WallClockBudget) break;
    }
    return finish(std::move(last), SolveStrategy::SourceStepping, 2);
  }
}

OperatingPoint dc_operating_point(const Circuit& circuit, const SolveOptions& options) {
  SolveDiagnostics diagnostics;
  auto op = try_dc_operating_point(circuit, options, diagnostics);
  if (!op.has_value()) throw SimulationError(diagnostics.message);
  return std::move(*op);
}

std::vector<TransientSample> transient(const Circuit& circuit, double t_end, double dt,
                                       const SolveOptions& options) {
  if (dt <= 0.0 || t_end <= 0.0) {
    throw SimulationError("transient requires positive dt and t_end");
  }
  const auto& elements = circuit.elements();
  mna::Workspace ws;  // matrix + RHS storage shared across every time step

  // Initial condition: the DC operating point.
  mna::CompanionState dc_state;
  const mna::SolveResult dc = solve_system(circuit, options, dc_state, ws);

  mna::CompanionState state;
  state.transient = true;
  state.dt = dt;
  state.cap_voltage.assign(elements.size(), 0.0);
  state.inductor_current.assign(elements.size(), 0.0);
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    if (e.kind == ElementKind::Capacitor) {
      state.cap_voltage[i] = dc.node_voltage[static_cast<size_t>(e.a)] -
                             dc.node_voltage[static_cast<size_t>(e.b)];
    } else if (e.kind == ElementKind::Inductor) {
      state.inductor_current[i] = dc.branch_current[i];
    }
  }

  std::vector<TransientSample> samples;
  samples.push_back(TransientSample{0.0, mna::make_operating_point(circuit, dc)});

  const mna::Structure structure = mna::analyze_structure(circuit, true);
  // Step by integer index: accumulating `t += dt` drifts over long horizons
  // and can emit one sample too many/few depending on t_end/dt. The step
  // count matches the old loop's intent (last sample at the first k*dt
  // reaching t_end, to within half a step of rounding slack).
  const long long n_steps = static_cast<long long>(std::floor(t_end / dt + 0.5));
  for (long long k = 1; k <= n_steps; ++k) {
    const double t = static_cast<double>(k) * dt;
    mna::NewtonAttempt attempt =
        mna::attempt_solve_auto(circuit, options, state, structure, nullptr, std::nullopt, ws);
    if (!attempt.converged) throw SimulationError(attempt.message);
    const mna::SolveResult& step = attempt.result;
    // Update storage-element history for the next step.
    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      const double va = step.node_voltage[static_cast<size_t>(e.a)];
      const double vb = step.node_voltage[static_cast<size_t>(e.b)];
      if (e.kind == ElementKind::Capacitor) {
        state.cap_voltage[i] = va - vb;
      } else if (e.kind == ElementKind::Inductor) {
        state.inductor_current[i] += dt / e.value * (va - vb);
      }
    }
    samples.push_back(TransientSample{t, mna::make_operating_point(circuit, step)});
  }
  return samples;
}

std::vector<AcSample> ac_analysis(const Circuit& circuit, const std::string& stimulus,
                                  const std::vector<double>& frequencies_hz,
                                  const SolveOptions& opt) {
  const Element& source = circuit.get(stimulus);
  if (source.kind != ElementKind::VSource && source.kind != ElementKind::ISource) {
    throw SimulationError("AC stimulus '" + stimulus + "' must be a source");
  }

  // Linearisation point for the diodes.
  mna::CompanionState dc_state;
  mna::Workspace dc_ws;
  const mna::SolveResult dc = solve_system(circuit, opt, dc_state, dc_ws);

  const auto& elements = circuit.elements();
  const int n_nodes = circuit.node_count();
  std::vector<int> branch_index(elements.size(), -1);
  int n_branches = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i].kind == ElementKind::VSource ||
        elements[i].kind == ElementKind::CurrentSensor) {
      branch_index[i] = n_branches++;
    }
  }
  const size_t dim = static_cast<size_t>(n_nodes - 1 + n_branches);

  // The AC stamp pass over an arbitrary matrix sink, mirroring the
  // mna::assemble_with idiom: the dense leg adds into flat storage, the
  // sparse leg records coordinates at the first frequency and replays them
  // through the frozen slot sequence at every later one. The add stream is
  // frequency-independent (only the *values* carry jw), which is exactly
  // what makes the pattern reusable across the sweep.
  auto vrow = [](int node) { return static_cast<size_t>(node - 1); };
  auto stamp_system = [&](auto&& add, std::complex<double>* out_rhs,
                          const std::complex<double>& jw) {
    auto stamp_admittance = [&](int na, int nb, std::complex<double> y) {
      if (na != 0) add(vrow(na), vrow(na), y);
      if (nb != 0) add(vrow(nb), vrow(nb), y);
      if (na != 0 && nb != 0) {
        add(vrow(na), vrow(nb), -y);
        add(vrow(nb), vrow(na), -y);
      }
    };
    for (int node = 1; node < n_nodes; ++node) {
      add(vrow(node), vrow(node), std::complex<double>(opt.gmin, 0.0));
    }

    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      switch (e.kind) {
        case ElementKind::Resistor:
        case ElementKind::Mcu:
          stamp_admittance(e.a, e.b, 1.0 / e.value);
          break;
        case ElementKind::Switch:
          stamp_admittance(e.a, e.b,
                           1.0 / (e.closed ? opt.closed_resistance : opt.open_resistance));
          break;
        case ElementKind::Capacitor:
          stamp_admittance(e.a, e.b, jw * e.value);
          break;
        case ElementKind::Inductor:
          stamp_admittance(e.a, e.b, 1.0 / (jw * e.value));
          break;
        case ElementKind::Diode: {
          // Small-signal conductance at the DC operating point.
          const double va = dc.node_voltage[static_cast<size_t>(e.a)];
          const double vb = dc.node_voltage[static_cast<size_t>(e.b)];
          const double vd = std::clamp(va - vb, -5.0, 0.9);
          const double geq =
              std::max(opt.diode_is / opt.diode_vt * std::exp(vd / opt.diode_vt), opt.gmin);
          stamp_admittance(e.a, e.b, geq);
          break;
        }
        case ElementKind::VSource:
        case ElementKind::CurrentSensor: {
          const size_t k = static_cast<size_t>(n_nodes - 1 + branch_index[i]);
          if (e.a != 0) {
            add(vrow(e.a), k, std::complex<double>(1.0, 0.0));
            add(k, vrow(e.a), std::complex<double>(1.0, 0.0));
          }
          if (e.b != 0) {
            add(vrow(e.b), k, std::complex<double>(-1.0, 0.0));
            add(k, vrow(e.b), std::complex<double>(-1.0, 0.0));
          }
          // Unit stimulus; every other DC source is a small-signal short.
          out_rhs[k] = (e.kind == ElementKind::VSource && e.name == stimulus) ? 1.0 : 0.0;
          break;
        }
        case ElementKind::ISource:
          if (e.name == stimulus) {
            if (e.a != 0) out_rhs[vrow(e.a)] -= 1.0;
            if (e.b != 0) out_rhs[vrow(e.b)] += 1.0;
          }
          // Non-stimulus current sources are small-signal opens: no stamp.
          break;
        case ElementKind::VoltageSensor:
          break;
      }
    }
  };

  // One factorisation workspace reused across the whole frequency sweep.
  dense::LuFactorization<std::complex<double>> lu;
  std::vector<std::complex<double>> rhs;

  // Sparse sweep state: pattern built lazily at the first sparse point, then
  // refactored numerically per frequency. Any trouble (singular, pivot gate,
  // fill blow-up) drops the rest of the sweep onto the dense kernel — same
  // fall-back-on-anything-suspicious ladder as the DC path.
  sparse::SparseMetrics& smetrics = sparse::SparseMetrics::get();
  bool use_sparse =
      opt.sparse && dim >= static_cast<size_t>(std::max(opt.sparse_min_dim, 1));
  if (opt.sparse && !use_sparse) smetrics.fallback_small_dim.add();
  sparse::Pattern pattern;
  std::vector<std::int32_t> slots;
  std::vector<std::complex<double>> values;
  sparse::SparseLu<std::complex<double>> slu;

  std::vector<AcSample> sweep;
  for (const double frequency : frequencies_hz) {
    if (frequency <= 0.0) throw SimulationError("AC frequencies must be positive");
    const std::complex<double> jw(0.0, 2.0 * std::numbers::pi * frequency);

    bool solved = false;
    if (use_sparse) {
      if (pattern.n == 0) {
        sparse::PatternBuilder builder;
        builder.begin(dim);
        rhs.assign(dim, 0.0);
        stamp_system([&](size_t r, size_t c, std::complex<double>) { builder.add(r, c); },
                     rhs.data(), jw);
        builder.freeze(pattern, slots);
        values.resize(pattern.nnz());
      }
      std::fill(values.begin(), values.end(), std::complex<double>(0.0, 0.0));
      rhs.assign(dim, 0.0);
      size_t t = 0;
      stamp_system(
          [&](size_t, size_t, std::complex<double> v) {
            values[static_cast<size_t>(slots[t++])] += v;
          },
          rhs.data(), jw);
      std::string err;
      bool ok;
      if (slu.symbolic() != nullptr) {
        ok = slu.refactor(pattern, values.data(), &err);
        if (!ok) {
          ok = slu.factor(pattern, values.data(), &err);
          if (ok) {
            smetrics.repivots.add();
          } else {
            smetrics.fallback_pivot.add();
          }
        }
      } else {
        ok = slu.factor(pattern, values.data(), &err);
        if (!ok) smetrics.fallback_singular.add();
      }
      if (ok && static_cast<double>(slu.lu_nnz()) >
                    opt.sparse_max_fill * static_cast<double>(dim) * static_cast<double>(dim)) {
        smetrics.fallback_fill.add();
        ok = false;
      }
      if (ok) {
        slu.solve_in_place(rhs.data());
        solved = true;
      } else {
        use_sparse = false;  // sticky: rest of the sweep runs dense
      }
    }
    if (!solved) {
      std::vector<std::complex<double>>& a = lu.reset(dim);
      rhs.assign(dim, 0.0);
      stamp_system(
          [&a, dim](size_t r, size_t c, std::complex<double> v) { a[r * dim + c] += v; },
          rhs.data(), jw);
      lu.factor("singular AC system");
      lu.solve_in_place(rhs.data());
    }
    const std::vector<std::complex<double>>& x = rhs;
    auto node_v = [&](int node) -> std::complex<double> {
      return node == 0 ? 0.0 : x[vrow(node)];
    };
    AcSample sample;
    sample.frequency_hz = frequency;
    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      if (e.kind == ElementKind::CurrentSensor) {
        const std::complex<double> current = x[static_cast<size_t>(n_nodes - 1 + branch_index[i])];
        sample.readings[e.name] = {std::abs(current), std::arg(current)};
      } else if (e.kind == ElementKind::VoltageSensor) {
        const std::complex<double> v = node_v(e.a) - node_v(e.b);
        sample.readings[e.name] = {std::abs(v), std::arg(v)};
      }
    }
    sweep.push_back(std::move(sample));
  }
  return sweep;
}

}  // namespace decisive::sim
