#include "decisive/sim/solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <complex>
#include <limits>
#include <numbers>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::sim {

namespace {

/// Registry handles cached once per process: a solve costs a handful of
/// relaxed atomic increments, never a registry lookup.
struct SolverMetrics {
  obs::Counter& solves;
  obs::Counter& converged;
  obs::Counter& iterations;
  obs::Counter& gmin_rungs;
  obs::Counter& source_rungs;
  obs::Counter& nonfinite_guard;
  obs::Counter& singular;
  obs::Counter& budget_exhausted;
  obs::Histogram& solve_seconds;

  static SolverMetrics& get() {
    auto& registry = obs::Registry::global();
    static SolverMetrics metrics{
        registry.counter("decisive_solver_solves_total"),
        registry.counter("decisive_solver_converged_total"),
        registry.counter("decisive_solver_iterations_total"),
        registry.counter("decisive_solver_ladder_gmin_total"),
        registry.counter("decisive_solver_ladder_source_total"),
        registry.counter("decisive_solver_nonfinite_guard_total"),
        registry.counter("decisive_solver_singular_total"),
        registry.counter("decisive_solver_budget_exhausted_total"),
        registry.histogram("decisive_solver_solve_seconds")};
    return metrics;
  }
};

}  // namespace

std::string_view to_string(SolveStrategy strategy) noexcept {
  switch (strategy) {
    case SolveStrategy::Newton: return "newton";
    case SolveStrategy::GminStepping: return "gmin-stepping";
    case SolveStrategy::SourceStepping: return "source-stepping";
  }
  return "newton";
}

std::string_view to_string(SolveFailure failure) noexcept {
  switch (failure) {
    case SolveFailure::None: return "none";
    case SolveFailure::Singular: return "singular";
    case SolveFailure::NonFinite: return "non-finite";
    case SolveFailure::IterationBudget: return "iteration-budget";
    case SolveFailure::WallClockBudget: return "wall-clock-budget";
  }
  return "none";
}

double OperatingPoint::reading(const std::string& name) const {
  const auto it = readings.find(name);
  if (it == readings.end()) throw SimulationError("no reading named '" + name + "'");
  return it->second;
}

std::vector<double> solve_linear(std::vector<std::vector<double>> a, std::vector<double> b) {
  const size_t n = b.size();
  if (a.size() != n) throw SimulationError("linear system dimension mismatch");
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::abs(a[col][col]);
    for (size_t row = col + 1; row < n; ++row) {
      const double mag = std::abs(a[row][col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (best < 1e-30) throw SimulationError("singular system (floating node or short loop?)");
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      std::swap(b[pivot], b[col]);
    }
    const double inv = 1.0 / a[col][col];
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] * inv;
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

namespace {

/// Per-run element companion state: which storage elements have companion
/// sources (transient) and which diode linearisation voltages to use.
struct CompanionState {
  bool transient = false;
  double dt = 0.0;
  // Indexed by element position in circuit.elements().
  std::vector<double> cap_voltage;       // previous-step capacitor voltage
  std::vector<double> inductor_current;  // previous-step inductor current
};

/// Assembles and solves one Newton-converged system.
/// Returns node voltages (index 0 = ground = 0.0) and branch currents keyed
/// by element index for elements with a branch unknown.
struct SolveResult {
  std::vector<double> node_voltage;
  std::vector<double> branch_current;  // per element index; NaN when no branch
};

/// Warm-start state handed from one recovery-ladder attempt to the next.
struct NewtonSeed {
  std::vector<double> x;        ///< previous raw solution vector
  std::vector<double> diode_v;  ///< previous diode junction estimates
};

using Deadline = std::optional<std::chrono::steady_clock::time_point>;

/// One bounded, non-throwing Newton run. `result` is only meaningful when
/// `converged`; `x`/`diode_v` always carry the final iterate so a later
/// ladder rung can continue from whatever progress this attempt made.
struct NewtonAttempt {
  bool converged = false;
  SolveFailure failure = SolveFailure::None;
  std::string message;
  int iterations = 0;
  double residual = 0.0;
  SolveResult result;
  std::vector<double> x;
  std::vector<double> diode_v;
};

NewtonAttempt attempt_solve(const Circuit& circuit, const SolveOptions& opt,
                            const CompanionState& state, const NewtonSeed* seed,
                            const Deadline& deadline) {
  const auto& elements = circuit.elements();
  const int n_nodes = circuit.node_count();

  // Branch unknowns: voltage sources, current sensors; inductors only in DC
  // (in transient they use a Norton companion instead).
  std::vector<int> branch_index(elements.size(), -1);
  int n_branches = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    const ElementKind kind = elements[i].kind;
    if (kind == ElementKind::VSource || kind == ElementKind::CurrentSensor ||
        (kind == ElementKind::Inductor && !state.transient)) {
      branch_index[i] = n_branches++;
    }
  }

  const size_t dim = static_cast<size_t>(n_nodes - 1 + n_branches);
  NewtonAttempt attempt;
  if (dim == 0) {
    attempt.converged = true;
    attempt.result =
        SolveResult{std::vector<double>(static_cast<size_t>(n_nodes), 0.0),
                    std::vector<double>(elements.size(),
                                        std::numeric_limits<double>::quiet_NaN())};
    return attempt;
  }

  // Diode junction voltage estimates for Newton iteration; warm-started from
  // the previous ladder attempt when available.
  std::vector<double> diode_v(elements.size(), 0.6);
  std::vector<double> x(dim, 0.0);
  if (seed != nullptr) {
    if (seed->diode_v.size() == diode_v.size()) diode_v = seed->diode_v;
    if (seed->x.size() == x.size()) x = seed->x;
  }

  auto vrow = [&](int node) { return node - 1; };  // ground eliminated

  auto give_up = [&](SolveFailure failure, std::string message) {
    attempt.converged = false;
    attempt.failure = failure;
    attempt.message = std::move(message);
    attempt.x = std::move(x);
    attempt.diode_v = std::move(diode_v);
    return std::move(attempt);
  };

  bool converged = false;
  for (int iteration = 0; !converged; ++iteration) {
    if (iteration >= opt.max_newton_iterations) {
      return give_up(SolveFailure::IterationBudget, "newton iteration did not converge");
    }
    if (deadline.has_value() && std::chrono::steady_clock::now() >= *deadline) {
      return give_up(SolveFailure::WallClockBudget, "solve wall-clock budget exhausted");
    }
    attempt.iterations = iteration + 1;
    std::vector<std::vector<double>> a(dim, std::vector<double>(dim, 0.0));
    std::vector<double> rhs(dim, 0.0);

    auto stamp_conductance = [&](int na, int nb, double g) {
      if (na != 0) a[vrow(na)][vrow(na)] += g;
      if (nb != 0) a[vrow(nb)][vrow(nb)] += g;
      if (na != 0 && nb != 0) {
        a[vrow(na)][vrow(nb)] -= g;
        a[vrow(nb)][vrow(na)] -= g;
      }
    };
    // Current `j` flowing from node na to node nb through the element.
    auto stamp_current = [&](int na, int nb, double j) {
      if (na != 0) rhs[vrow(na)] -= j;
      if (nb != 0) rhs[vrow(nb)] += j;
    };

    // gmin from every non-ground node keeps floating nodes solvable (the
    // standard SPICE trick; an "open" fault would otherwise be singular).
    for (int node = 1; node < n_nodes; ++node) {
      a[vrow(node)][vrow(node)] += opt.gmin;
    }

    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      switch (e.kind) {
        case ElementKind::Resistor:
          stamp_conductance(e.a, e.b, 1.0 / e.value);
          break;
        case ElementKind::Mcu:
          stamp_conductance(e.a, e.b, 1.0 / e.value);
          break;
        case ElementKind::Switch:
          stamp_conductance(e.a, e.b,
                            1.0 / (e.closed ? opt.closed_resistance : opt.open_resistance));
          break;
        case ElementKind::Capacitor:
          if (state.transient) {
            const double g = e.value / state.dt;
            stamp_conductance(e.a, e.b, g);
            // Norton companion: history current g * v_prev from b to a.
            stamp_current(e.a, e.b, -g * state.cap_voltage[i]);
          }
          // DC: open circuit, no stamp.
          break;
        case ElementKind::Inductor:
          if (state.transient) {
            const double g = state.dt / e.value;
            stamp_conductance(e.a, e.b, g);
            stamp_current(e.a, e.b, state.inductor_current[i]);
          } else {
            // DC short: a 0 V source with a branch-current unknown.
            const int k = static_cast<int>(dim) - n_branches + branch_index[i];
            if (e.a != 0) { a[vrow(e.a)][k] += 1.0; a[k][vrow(e.a)] += 1.0; }
            if (e.b != 0) { a[vrow(e.b)][k] -= 1.0; a[k][vrow(e.b)] -= 1.0; }
            rhs[static_cast<size_t>(k)] = 0.0;
          }
          break;
        case ElementKind::Diode: {
          // Linearise around the current junction-voltage estimate.
          const double vd = std::clamp(diode_v[i], -5.0, 0.9);
          const double is = opt.diode_is;
          const double vt = opt.diode_vt;
          const double ex = std::exp(vd / vt);
          const double id = is * (ex - 1.0);
          const double geq = std::max(is / vt * ex, opt.gmin);
          const double ieq = id - geq * vd;
          stamp_conductance(e.a, e.b, geq);
          stamp_current(e.a, e.b, ieq);
          break;
        }
        case ElementKind::VSource:
        case ElementKind::CurrentSensor: {
          const int k = static_cast<int>(dim) - n_branches + branch_index[i];
          if (e.a != 0) { a[vrow(e.a)][k] += 1.0; a[k][vrow(e.a)] += 1.0; }
          if (e.b != 0) { a[vrow(e.b)][k] -= 1.0; a[k][vrow(e.b)] -= 1.0; }
          rhs[static_cast<size_t>(k)] = e.kind == ElementKind::VSource ? e.value : 0.0;
          break;
        }
        case ElementKind::ISource:
          stamp_current(e.a, e.b, e.value);
          break;
        case ElementKind::VoltageSensor:
          break;  // ideal voltmeter: no stamp
      }
    }

    std::vector<double> x_new;
    try {
      x_new = solve_linear(std::move(a), std::move(rhs));
    } catch (const SimulationError& error) {
      SolverMetrics::get().singular.add();
      return give_up(SolveFailure::Singular, error.what());
    }

    // Non-finite guard: a NaN/Inf iterate (NaN source value, zero-resistance
    // loop, numeric blow-up) would otherwise poison every later iteration and
    // masquerade as "singular" once it reaches the diode stamps.
    for (const double value : x_new) {
      if (!std::isfinite(value)) {
        SolverMetrics::get().nonfinite_guard.add();
        return give_up(SolveFailure::NonFinite,
                       "newton iterate is not finite (NaN/Inf in circuit values?)");
      }
    }

    // Newton update for diode junction voltages, with voltage limiting for
    // robust convergence.
    bool has_diode = false;
    double max_diode_change = 0.0;
    auto node_v = [&](int node) { return node == 0 ? 0.0 : x_new[static_cast<size_t>(vrow(node))]; };
    for (size_t i = 0; i < elements.size(); ++i) {
      if (elements[i].kind != ElementKind::Diode) continue;
      has_diode = true;
      const double target = node_v(elements[i].a) - node_v(elements[i].b);
      const double previous = diode_v[i];
      const double step = std::clamp(target - previous, -0.1, 0.1);
      diode_v[i] = previous + step;
      max_diode_change = std::max(max_diode_change, std::abs(target - previous));
    }

    double max_change = 0.0;
    for (size_t i = 0; i < dim; ++i) max_change = std::max(max_change, std::abs(x_new[i] - x[i]));
    x = std::move(x_new);
    attempt.residual = has_diode ? std::max(max_change, max_diode_change) : max_change;

    converged = !has_diode || (max_diode_change < opt.newton_tolerance &&
                               max_change < std::max(opt.newton_tolerance, 1e-9));
  }

  SolveResult result;
  result.node_voltage.assign(static_cast<size_t>(n_nodes), 0.0);
  for (int node = 1; node < n_nodes; ++node) {
    result.node_voltage[static_cast<size_t>(node)] = x[static_cast<size_t>(node - 1)];
  }
  result.branch_current.assign(elements.size(), std::numeric_limits<double>::quiet_NaN());
  for (size_t i = 0; i < elements.size(); ++i) {
    if (branch_index[i] >= 0) {
      result.branch_current[i] =
          x[static_cast<size_t>(n_nodes - 1 + branch_index[i])];
    }
  }
  attempt.converged = true;
  attempt.result = std::move(result);
  attempt.x = std::move(x);
  attempt.diode_v = std::move(diode_v);
  return attempt;
}

/// Throwing single-attempt wrapper used by the transient and AC paths, which
/// solve well-posed (already-converged-at-DC) systems and keep the original
/// exception contract.
SolveResult solve_system(const Circuit& circuit, const SolveOptions& opt,
                         const CompanionState& state) {
  NewtonAttempt attempt = attempt_solve(circuit, opt, state, nullptr, std::nullopt);
  if (!attempt.converged) throw SimulationError(attempt.message);
  return std::move(attempt.result);
}

OperatingPoint make_operating_point(const Circuit& circuit, const SolveResult& solved) {
  OperatingPoint op;
  op.node_voltage = solved.node_voltage;
  const auto& elements = circuit.elements();
  auto node_v = [&](int node) { return op.node_voltage[static_cast<size_t>(node)]; };
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    switch (e.kind) {
      case ElementKind::CurrentSensor:
        op.readings[e.name] = solved.branch_current[i];
        break;
      case ElementKind::VoltageSensor:
        op.readings[e.name] = node_v(e.a) - node_v(e.b);
        break;
      case ElementKind::Mcu: {
        const double supply = node_v(e.a) - node_v(e.b);
        op.readings[e.name] = (e.ram_ok && supply >= e.min_supply) ? 1.0 : 0.0;
        break;
      }
      default:
        break;
    }
  }
  return op;
}

}  // namespace

double AcSample::magnitude(const std::string& name) const {
  const auto it = readings.find(name);
  if (it == readings.end()) throw SimulationError("no AC reading named '" + name + "'");
  return it->second.first;
}

namespace {

/// Partial-pivot Gaussian elimination over the complex field.
std::vector<std::complex<double>> solve_linear_complex(
    std::vector<std::vector<std::complex<double>>> a, std::vector<std::complex<double>> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::abs(a[col][col]);
    for (size_t row = col + 1; row < n; ++row) {
      const double mag = std::abs(a[row][col]);
      if (mag > best) {
        best = mag;
        pivot = row;
      }
    }
    if (best < 1e-30) throw SimulationError("singular AC system");
    if (pivot != col) {
      std::swap(a[pivot], a[col]);
      std::swap(b[pivot], b[col]);
    }
    const std::complex<double> inv = 1.0 / a[col][col];
    for (size_t row = col + 1; row < n; ++row) {
      const std::complex<double> factor = a[row][col] * inv;
      if (factor == 0.0) continue;
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<std::complex<double>> x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    std::complex<double> sum = b[i];
    for (size_t k = i + 1; k < n; ++k) sum -= a[i][k] * x[k];
    x[i] = sum / a[i][i];
  }
  return x;
}

}  // namespace

std::optional<OperatingPoint> try_dc_operating_point(const Circuit& circuit,
                                                     const SolveOptions& options,
                                                     SolveDiagnostics& diagnostics) {
  SolverMetrics& metrics = SolverMetrics::get();
  metrics.solves.add();
  obs::Span span("solver.dc", &metrics.solve_seconds);
  const auto start = std::chrono::steady_clock::now();
  Deadline deadline;
  if (options.max_wall_clock_seconds > 0.0) {
    deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(options.max_wall_clock_seconds));
  }
  CompanionState state;  // DC: no companion sources.
  diagnostics = SolveDiagnostics{};

  auto finish = [&](NewtonAttempt&& attempt, SolveStrategy strategy,
                    int rung) -> std::optional<OperatingPoint> {
    diagnostics.converged = attempt.converged;
    diagnostics.strategy = strategy;
    diagnostics.ladder_rung = rung;
    diagnostics.residual = attempt.residual;
    diagnostics.failure = attempt.converged ? SolveFailure::None : attempt.failure;
    diagnostics.message = attempt.converged ? std::string() : std::move(attempt.message);
    diagnostics.elapsed_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    metrics.iterations.add(static_cast<std::uint64_t>(diagnostics.iterations));
    if (rung >= 1) metrics.gmin_rungs.add();
    if (rung >= 2) metrics.source_rungs.add();
    if (attempt.converged) {
      metrics.converged.add();
    } else if (diagnostics.failure == SolveFailure::IterationBudget ||
               diagnostics.failure == SolveFailure::WallClockBudget) {
      metrics.budget_exhausted.add();
    }
    if (!attempt.converged) return std::nullopt;
    return make_operating_point(circuit, attempt.result);
  };

  // Rung 0: plain Newton.
  NewtonAttempt plain = attempt_solve(circuit, options, state, nullptr, deadline);
  diagnostics.iterations += plain.iterations;
  if (plain.converged || !options.recovery_ladder ||
      plain.failure == SolveFailure::WallClockBudget) {
    return finish(std::move(plain), SolveStrategy::Newton, 0);
  }

  // Rung 1: gmin stepping. Solve a heavily damped (large leak conductance)
  // system first — near-linear, so Newton converges from anywhere — then walk
  // gmin down log-uniformly to the requested value, warm-starting every step
  // from the previous one. The last step uses exactly options.gmin, so a
  // converged result is a genuine solution of the requested system.
  {
    const int steps = std::max(2, options.gmin_ladder_steps);
    const double start_gmin = std::max(options.gmin * 1e9, 1e-3);
    SolveOptions damped = options;
    NewtonSeed seed;
    NewtonAttempt last;
    for (int k = 0; k < steps; ++k) {
      const double t = static_cast<double>(k) / (steps - 1);
      damped.gmin = start_gmin * std::pow(options.gmin / start_gmin, t);
      NewtonAttempt attempt = attempt_solve(circuit, damped, state,
                                            seed.x.empty() ? nullptr : &seed, deadline);
      diagnostics.iterations += attempt.iterations;
      seed.x = attempt.x;
      seed.diode_v = attempt.diode_v;
      last = std::move(attempt);
      if (last.failure == SolveFailure::WallClockBudget) {
        return finish(std::move(last), SolveStrategy::GminStepping, 1);
      }
    }
    if (last.converged) return finish(std::move(last), SolveStrategy::GminStepping, 1);
  }

  // Rung 2: source stepping (homotopy continuation). Ramp every independent
  // source from a small fraction of its value up to 100%, warm-starting each
  // step; the trivial low-excitation solve pulls the nonlinear estimates into
  // the basin of attraction of the full-excitation solution.
  {
    const auto& elements = circuit.elements();
    Circuit scaled = circuit;
    std::vector<double> original(elements.size(), 0.0);
    for (size_t i = 0; i < elements.size(); ++i) original[i] = elements[i].value;

    const int steps = std::max(2, options.source_ladder_steps);
    NewtonSeed seed;
    NewtonAttempt last;
    for (int k = 1; k <= steps; ++k) {
      const double alpha = static_cast<double>(k) / steps;  // ends exactly at 1.0
      for (size_t i = 0; i < elements.size(); ++i) {
        const ElementKind kind = elements[i].kind;
        if (kind == ElementKind::VSource || kind == ElementKind::ISource) {
          scaled.elements()[i].value = original[i] * alpha;
        }
      }
      NewtonAttempt attempt = attempt_solve(scaled, options, state,
                                            seed.x.empty() ? nullptr : &seed, deadline);
      diagnostics.iterations += attempt.iterations;
      seed.x = attempt.x;
      seed.diode_v = attempt.diode_v;
      last = std::move(attempt);
      if (last.failure == SolveFailure::WallClockBudget) break;
    }
    return finish(std::move(last), SolveStrategy::SourceStepping, 2);
  }
}

OperatingPoint dc_operating_point(const Circuit& circuit, const SolveOptions& options) {
  SolveDiagnostics diagnostics;
  auto op = try_dc_operating_point(circuit, options, diagnostics);
  if (!op.has_value()) throw SimulationError(diagnostics.message);
  return std::move(*op);
}

std::vector<TransientSample> transient(const Circuit& circuit, double t_end, double dt,
                                       const SolveOptions& options) {
  if (dt <= 0.0 || t_end <= 0.0) {
    throw SimulationError("transient requires positive dt and t_end");
  }
  const auto& elements = circuit.elements();

  // Initial condition: the DC operating point.
  CompanionState dc_state;
  const SolveResult dc = solve_system(circuit, options, dc_state);

  CompanionState state;
  state.transient = true;
  state.dt = dt;
  state.cap_voltage.assign(elements.size(), 0.0);
  state.inductor_current.assign(elements.size(), 0.0);
  for (size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    if (e.kind == ElementKind::Capacitor) {
      state.cap_voltage[i] = dc.node_voltage[static_cast<size_t>(e.a)] -
                             dc.node_voltage[static_cast<size_t>(e.b)];
    } else if (e.kind == ElementKind::Inductor) {
      state.inductor_current[i] = dc.branch_current[i];
    }
  }

  std::vector<TransientSample> samples;
  samples.push_back(TransientSample{0.0, make_operating_point(circuit, dc)});

  for (double t = dt; t <= t_end + dt * 0.5; t += dt) {
    const SolveResult step = solve_system(circuit, options, state);
    // Update storage-element history for the next step.
    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      const double va = step.node_voltage[static_cast<size_t>(e.a)];
      const double vb = step.node_voltage[static_cast<size_t>(e.b)];
      if (e.kind == ElementKind::Capacitor) {
        state.cap_voltage[i] = va - vb;
      } else if (e.kind == ElementKind::Inductor) {
        state.inductor_current[i] += dt / e.value * (va - vb);
      }
    }
    samples.push_back(TransientSample{t, make_operating_point(circuit, step)});
  }
  return samples;
}

std::vector<AcSample> ac_analysis(const Circuit& circuit, const std::string& stimulus,
                                  const std::vector<double>& frequencies_hz,
                                  const SolveOptions& opt) {
  const Element& source = circuit.get(stimulus);
  if (source.kind != ElementKind::VSource && source.kind != ElementKind::ISource) {
    throw SimulationError("AC stimulus '" + stimulus + "' must be a source");
  }

  // Linearisation point for the diodes.
  CompanionState dc_state;
  const SolveResult dc = solve_system(circuit, opt, dc_state);

  const auto& elements = circuit.elements();
  const int n_nodes = circuit.node_count();
  std::vector<int> branch_index(elements.size(), -1);
  int n_branches = 0;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (elements[i].kind == ElementKind::VSource ||
        elements[i].kind == ElementKind::CurrentSensor) {
      branch_index[i] = n_branches++;
    }
  }
  const size_t dim = static_cast<size_t>(n_nodes - 1 + n_branches);

  std::vector<AcSample> sweep;
  for (const double frequency : frequencies_hz) {
    if (frequency <= 0.0) throw SimulationError("AC frequencies must be positive");
    const std::complex<double> jw(0.0, 2.0 * std::numbers::pi * frequency);

    std::vector<std::vector<std::complex<double>>> a(
        dim, std::vector<std::complex<double>>(dim, 0.0));
    std::vector<std::complex<double>> rhs(dim, 0.0);
    auto vrow = [&](int node) { return node - 1; };
    auto stamp_admittance = [&](int na, int nb, std::complex<double> y) {
      if (na != 0) a[static_cast<size_t>(vrow(na))][static_cast<size_t>(vrow(na))] += y;
      if (nb != 0) a[static_cast<size_t>(vrow(nb))][static_cast<size_t>(vrow(nb))] += y;
      if (na != 0 && nb != 0) {
        a[static_cast<size_t>(vrow(na))][static_cast<size_t>(vrow(nb))] -= y;
        a[static_cast<size_t>(vrow(nb))][static_cast<size_t>(vrow(na))] -= y;
      }
    };
    for (int node = 1; node < n_nodes; ++node) {
      a[static_cast<size_t>(vrow(node))][static_cast<size_t>(vrow(node))] += opt.gmin;
    }

    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      switch (e.kind) {
        case ElementKind::Resistor:
        case ElementKind::Mcu:
          stamp_admittance(e.a, e.b, 1.0 / e.value);
          break;
        case ElementKind::Switch:
          stamp_admittance(e.a, e.b,
                           1.0 / (e.closed ? opt.closed_resistance : opt.open_resistance));
          break;
        case ElementKind::Capacitor:
          stamp_admittance(e.a, e.b, jw * e.value);
          break;
        case ElementKind::Inductor:
          stamp_admittance(e.a, e.b, 1.0 / (jw * e.value));
          break;
        case ElementKind::Diode: {
          // Small-signal conductance at the DC operating point.
          const double va = dc.node_voltage[static_cast<size_t>(e.a)];
          const double vb = dc.node_voltage[static_cast<size_t>(e.b)];
          const double vd = std::clamp(va - vb, -5.0, 0.9);
          const double geq =
              std::max(opt.diode_is / opt.diode_vt * std::exp(vd / opt.diode_vt), opt.gmin);
          stamp_admittance(e.a, e.b, geq);
          break;
        }
        case ElementKind::VSource:
        case ElementKind::CurrentSensor: {
          const int k = n_nodes - 1 + branch_index[i];
          if (e.a != 0) {
            a[static_cast<size_t>(vrow(e.a))][static_cast<size_t>(k)] += 1.0;
            a[static_cast<size_t>(k)][static_cast<size_t>(vrow(e.a))] += 1.0;
          }
          if (e.b != 0) {
            a[static_cast<size_t>(vrow(e.b))][static_cast<size_t>(k)] -= 1.0;
            a[static_cast<size_t>(k)][static_cast<size_t>(vrow(e.b))] -= 1.0;
          }
          // Unit stimulus; every other DC source is a small-signal short.
          rhs[static_cast<size_t>(k)] =
              (e.kind == ElementKind::VSource && e.name == stimulus) ? 1.0 : 0.0;
          break;
        }
        case ElementKind::ISource:
          if (e.name == stimulus) {
            if (e.a != 0) rhs[static_cast<size_t>(vrow(e.a))] -= 1.0;
            if (e.b != 0) rhs[static_cast<size_t>(vrow(e.b))] += 1.0;
          }
          // Non-stimulus current sources are small-signal opens: no stamp.
          break;
        case ElementKind::VoltageSensor:
          break;
      }
    }

    const auto x = solve_linear_complex(std::move(a), std::move(rhs));
    auto node_v = [&](int node) -> std::complex<double> {
      return node == 0 ? 0.0 : x[static_cast<size_t>(vrow(node))];
    };
    AcSample sample;
    sample.frequency_hz = frequency;
    for (size_t i = 0; i < elements.size(); ++i) {
      const Element& e = elements[i];
      if (e.kind == ElementKind::CurrentSensor) {
        const std::complex<double> current = x[static_cast<size_t>(n_nodes - 1 + branch_index[i])];
        sample.readings[e.name] = {std::abs(current), std::arg(current)};
      } else if (e.kind == ElementKind::VoltageSensor) {
        const std::complex<double> v = node_v(e.a) - node_v(e.b);
        sample.readings[e.name] = {std::abs(v), std::arg(v)};
      }
    }
    sweep.push_back(std::move(sample));
  }
  return sweep;
}

}  // namespace decisive::sim
