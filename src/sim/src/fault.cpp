#include "decisive/sim/fault.hpp"

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::sim {

std::string_view to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::Open: return "Open";
    case FaultKind::Short: return "Short";
    case FaultKind::StuckOff: return "StuckOff";
    case FaultKind::Drift: return "Drift";
    case FaultKind::RamFailure: return "RamFailure";
  }
  return "Unknown";
}

FaultKind fault_kind_from_name(std::string_view name) {
  const std::string n = to_lower(trim(name));
  if (n == "open" || n == "open circuit" || n == "loss of function" || n == "loss") {
    return FaultKind::Open;
  }
  if (n == "short" || n == "short circuit") return FaultKind::Short;
  if (n == "stuck" || n == "stuck-off" || n == "stuck off" || n == "no output") {
    return FaultKind::StuckOff;
  }
  if (n == "drift" || n == "parameter drift" || n == "lower frequency" ||
      n == "higher frequency" || n == "jitter") {
    return FaultKind::Drift;
  }
  if (n == "ram failure" || n == "ram" || n == "memory failure" || n == "bit flip") {
    return FaultKind::RamFailure;
  }
  throw AnalysisError("unknown failure mode name '" + std::string(name) + "'");
}

Circuit inject_fault(const Circuit& circuit, const Fault& fault, double open_resistance,
                     double short_resistance) {
  Circuit faulted = circuit;
  Element& e = faulted.get(fault.element);
  switch (fault.kind) {
    case FaultKind::Open:
      switch (e.kind) {
        case ElementKind::VSource:
        case ElementKind::ISource:
          // An open source no longer drives the circuit: replace with a
          // huge resistance (series break).
          e.kind = ElementKind::Resistor;
          e.value = open_resistance;
          break;
        case ElementKind::CurrentSensor:
          throw AnalysisError("cannot open-fault the observation point '" + e.name + "'");
        case ElementKind::VoltageSensor:
          throw AnalysisError("cannot open-fault the observation point '" + e.name + "'");
        default:
          e.kind = ElementKind::Resistor;
          e.value = open_resistance;
          e.closed = true;
          break;
      }
      break;
    case FaultKind::Short:
      if (e.kind == ElementKind::CurrentSensor || e.kind == ElementKind::VoltageSensor) {
        throw AnalysisError("cannot short-fault the observation point '" + e.name + "'");
      }
      e.kind = ElementKind::Resistor;
      e.value = short_resistance;
      break;
    case FaultKind::StuckOff:
      if (e.kind == ElementKind::VSource || e.kind == ElementKind::ISource) {
        e.value = 0.0;
      } else if (e.kind == ElementKind::Mcu) {
        e.ram_ok = false;
      } else {
        throw AnalysisError("StuckOff applies to sources and MCUs, not '" +
                            std::string(to_string(e.kind)) + "'");
      }
      break;
    case FaultKind::Drift:
      switch (e.kind) {
        case ElementKind::Resistor:
        case ElementKind::Capacitor:
        case ElementKind::Inductor:
        case ElementKind::VSource:
        case ElementKind::ISource:
        case ElementKind::Mcu:
          if (fault.drift_factor <= 0.0) {
            throw AnalysisError("drift factor must be positive");
          }
          e.value *= fault.drift_factor;
          break;
        default:
          throw AnalysisError("Drift does not apply to '" + std::string(to_string(e.kind)) +
                              "'");
      }
      break;
    case FaultKind::RamFailure:
      if (e.kind != ElementKind::Mcu) {
        throw AnalysisError("RamFailure applies only to MCU elements");
      }
      e.ram_ok = false;
      break;
  }
  return faulted;
}

}  // namespace decisive::sim
