#include "decisive/sim/campaign_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/obs/registry.hpp"
#include "mna.hpp"

namespace decisive::sim {

namespace {

/// Batched-path instrumentation, cached once per process.
struct BatchMetrics {
  obs::Counter& contexts;
  obs::Counter& contexts_unusable;
  obs::Counter& factor_reuses;
  obs::Counter& lowrank_solves;
  obs::Counter& rhs_only_solves;
  obs::Counter& fallback_structural;
  obs::Counter& fallback_conditioning;
  obs::Counter& fallback_not_converged;
  obs::Counter& fallback_near_threshold;
  obs::Histogram& active_terms;

  static BatchMetrics& get() {
    auto& registry = obs::Registry::global();
    static BatchMetrics metrics{
        registry.counter("decisive_batch_contexts_total"),
        registry.counter("decisive_batch_contexts_unusable_total"),
        registry.counter("decisive_batch_factor_reuses_total"),
        registry.counter("decisive_batch_lowrank_solves_total"),
        registry.counter("decisive_batch_rhs_only_solves_total"),
        registry.counter("decisive_batch_fallback_structural_total"),
        registry.counter("decisive_batch_fallback_conditioning_total"),
        registry.counter("decisive_batch_fallback_not_converged_total"),
        registry.counter("decisive_batch_fallback_near_threshold_total"),
        registry.histogram("decisive_batch_active_terms",
                           {0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0})};
    return metrics;
  }
};

/// Junction-voltage movement (vs the nominal operating point) below which a
/// non-faulted diode is *pinned to its nominal linearisation point*: no
/// low-rank matrix term, and its RHS companion stamp uses the nominal
/// junction voltage too, so matrix and RHS stay consistent. Warm-started
/// solves keep unaffected diodes at (numerically) their nominal junction
/// voltage, but not exactly — each factored solve injects ~1e-9 V of
/// conditioning-amplified round-off, accumulating to ~1e-7 V over a
/// step-limited Newton run (measured bimodal on a 192-stage rail: noise
/// <= 8e-8 V, genuine moves >= 2.6e-2 V). The threshold must sit above the
/// noise floor — else every diode in the circuit registers as "moved" on
/// any resistor fault and the dense-update guard rejects the whole batch.
/// Pinning a diode that truly moved dv replaces its companion model with
/// one linearised dv away, a *second-order* error (~geq*dv^2/vt, i.e.
/// ~1.7e-8 A at the threshold), orders below the classification knife-edge
/// guard; for noise-level wobble it is ~1e-12 A.
constexpr double kDiodeSkipVolt = 1e-5;

/// Residual acceptance for a low-rank solve, relative to max(1, ||rhs||inf).
constexpr double kResidualRelative = 1e-8;

/// Knife-edge guard on the MCU brown-out comparison (supply >= min_supply):
/// the batched iterate differs from the naive one in the last ulps, so a
/// supply this close to the threshold must be decided by the naive path.
constexpr double kMcuSupplyGuard = 1e-6;

/// Convergence-margin guard: a warm start that barely squeaks under the
/// iteration budget could converge where the cold-started naive path would
/// not, changing the row's outcome class. Solves using >= 90% of the budget
/// are handed back to the naive path.
[[nodiscard]] bool near_iteration_budget(int iterations, const SolveOptions& opt) {
  return iterations * 10 >= opt.max_newton_iterations * 9;
}

/// The linear conductance an element contributes between its terminals in a
/// DC MNA matrix; 0 for elements with no (node-pair) conductance stamp.
/// Diodes are handled separately (their stamp depends on the linearisation
/// point).
double linear_conductance(const Element& e, const SolveOptions& opt) {
  switch (e.kind) {
    case ElementKind::Resistor:
    case ElementKind::Mcu:
      return 1.0 / e.value;
    case ElementKind::Switch:
      return 1.0 / (e.closed ? opt.closed_resistance : opt.open_resistance);
    default:
      return 0.0;
  }
}

}  // namespace

std::string_view to_string(BatchOutcome outcome) noexcept {
  switch (outcome) {
    case BatchOutcome::Solved: return "solved";
    case BatchOutcome::Structural: return "structural";
    case BatchOutcome::Conditioning: return "conditioning";
    case BatchOutcome::NotConverged: return "not-converged";
    case BatchOutcome::NearThreshold: return "near-threshold";
    case BatchOutcome::Disabled: return "disabled";
  }
  return "disabled";
}

struct CampaignSolveContext::Impl {
  Circuit nominal;
  SolveOptions opt;
  mna::Structure structure;
  mna::CompanionState dc_state;  // DC: no companion sources

  // Nominal converged state: the warm start for every fault variant.
  mna::NewtonSeed seed;

  // The nominal Jacobian assembled at the converged diode linearisation:
  // factored (for solves) and unfactored (for the residual gate's matvec).
  dense::LuFactorization<double> lu;
  std::vector<double> a_nom;

  // Per element index: conductance contribution inside a_nom, cached A^-1 u
  // column id (-1 = none), and diode bookkeeping.
  std::vector<double> cond_nom;
  std::vector<double> geq_nom;
  std::vector<int> col_of;
  std::vector<std::size_t> diode_indices;

  // Cached Z = A_nom^-1 U columns, column-major (col * dim + row).
  std::vector<double> z_cols;

  [[nodiscard]] std::size_t dim() const noexcept { return structure.dim; }

  /// u_i^T v for the element's reduced incidence vector e_a - e_b.
  [[nodiscard]] double u_dot(const Element& e, const double* v) const {
    double sum = 0.0;
    if (e.a != 0) sum += v[e.a - 1];
    if (e.b != 0) sum -= v[e.b - 1];
    return sum;
  }

  /// v += s * u_i.
  void u_axpy(const Element& e, double s, double* v) const {
    if (e.a != 0) v[e.a - 1] += s;
    if (e.b != 0) v[e.b - 1] -= s;
  }
};

CampaignSolveContext::CampaignSolveContext(const Circuit& nominal, const SolveOptions& options)
    : impl_(std::make_unique<Impl>()) {
  BatchMetrics& metrics = BatchMetrics::get();
  metrics.contexts.add();
  Impl& im = *impl_;
  im.nominal = nominal;
  im.opt = options;
  im.structure = mna::analyze_structure(im.nominal, false);
  if (im.dim() == 0) {
    metrics.contexts_unusable.add();
    return;  // trivial system: the naive path is already free
  }

  // Nominal plain-Newton solve (no recovery ladder: a nominal system that
  // needs the ladder is not a good shared linearisation point).
  mna::Deadline deadline;
  if (options.max_wall_clock_seconds > 0.0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options.max_wall_clock_seconds));
  }
  mna::Workspace ws;
  mna::NewtonAttempt attempt = mna::attempt_solve_dense(im.nominal, im.opt, im.dc_state,
                                                        im.structure, nullptr, deadline, ws);
  if (!attempt.converged) {
    metrics.contexts_unusable.add();
    return;
  }
  nominal_point_ = mna::make_operating_point(im.nominal, attempt.result);
  im.seed.x = std::move(attempt.x);
  im.seed.diode_v = std::move(attempt.diode_v);

  // Assemble the nominal Jacobian at the converged linearisation point, keep
  // an unfactored copy for residual checks, and factor it once.
  const std::size_t dim = im.dim();
  std::vector<double>& flat = im.lu.reset(dim);
  std::vector<double> rhs_scratch(dim, 0.0);
  mna::assemble(im.nominal, im.opt, im.dc_state, im.structure, im.seed.diode_v, flat.data(),
                rhs_scratch.data());
  im.a_nom = flat;
  try {
    im.lu.factor("singular system (floating node or short loop?)");
  } catch (const SimulationError&) {
    metrics.contexts_unusable.add();
    return;
  }

  // Per-element conductance contributions and cached A^-1 u columns for
  // every element whose fault (or diode relinearisation) can appear as a
  // node-pair conductance delta.
  const auto& elements = im.nominal.elements();
  im.cond_nom.assign(elements.size(), 0.0);
  im.geq_nom.assign(elements.size(), 0.0);
  im.col_of.assign(elements.size(), -1);
  std::vector<double> u(dim, 0.0);
  for (std::size_t i = 0; i < elements.size(); ++i) {
    const Element& e = elements[i];
    switch (e.kind) {
      case ElementKind::Resistor:
      case ElementKind::Mcu:
      case ElementKind::Switch:
        im.cond_nom[i] = linear_conductance(e, im.opt);
        break;
      case ElementKind::Diode:
        im.geq_nom[i] = mna::linearise_diode(im.seed.diode_v[i], im.opt).geq;
        im.cond_nom[i] = im.geq_nom[i];
        im.diode_indices.push_back(i);
        break;
      default:
        break;
    }
    const bool delta_capable =
        e.kind == ElementKind::Resistor || e.kind == ElementKind::Mcu ||
        e.kind == ElementKind::Switch || e.kind == ElementKind::Capacitor ||
        e.kind == ElementKind::Diode || e.kind == ElementKind::ISource;
    const bool u_nonzero = e.a != e.b && (e.a != 0 || e.b != 0);
    if (!delta_capable || !u_nonzero) continue;
    std::fill(u.begin(), u.end(), 0.0);
    im.u_axpy(e, 1.0, u.data());
    im.lu.solve_in_place(u.data());
    im.col_of[i] = static_cast<int>(im.z_cols.size() / dim);
    im.z_cols.insert(im.z_cols.end(), u.begin(), u.end());
  }

  usable_ = true;
}

CampaignSolveContext::~CampaignSolveContext() = default;
CampaignSolveContext::CampaignSolveContext(CampaignSolveContext&&) noexcept = default;
CampaignSolveContext& CampaignSolveContext::operator=(CampaignSolveContext&&) noexcept = default;

bool CampaignSolveContext::eligible(const Fault& fault) const noexcept {
  if (!usable_) return false;
  const Element* e = impl_->nominal.find(fault.element);
  if (e == nullptr) return false;
  switch (fault.kind) {
    case FaultKind::Open:
    case FaultKind::Short:
      // These turn the element into a plain resistor: a pure conductance
      // delta — unless the element carried a branch unknown (VSource,
      // DC inductor), whose disappearance changes the system dimension.
      return e->kind == ElementKind::Resistor || e->kind == ElementKind::Mcu ||
             e->kind == ElementKind::Switch || e->kind == ElementKind::Capacitor ||
             e->kind == ElementKind::Diode || e->kind == ElementKind::ISource;
    case FaultKind::StuckOff:
      // Source output collapses (RHS-only) or MCU RAM corrupts (reading-only).
      return e->kind == ElementKind::VSource || e->kind == ElementKind::ISource ||
             e->kind == ElementKind::Mcu;
    case FaultKind::Drift:
      // Value scaling: conductance delta (R/MCU), RHS-only (sources), or a
      // DC no-op (capacitor open / inductor short at DC keep their stamps).
      return e->kind == ElementKind::Resistor || e->kind == ElementKind::Mcu ||
             e->kind == ElementKind::Capacitor || e->kind == ElementKind::Inductor ||
             e->kind == ElementKind::VSource || e->kind == ElementKind::ISource;
    case FaultKind::RamFailure:
      return e->kind == ElementKind::Mcu;  // electrically silent
  }
  return false;
}

std::optional<OperatingPoint> CampaignSolveContext::try_solve(const Circuit& faulted,
                                                              const Fault& fault, Workspace& ws,
                                                              SolveDiagnostics& diagnostics,
                                                              BatchOutcome& outcome) const {
  BatchMetrics& metrics = BatchMetrics::get();
  if (!usable_) {
    outcome = BatchOutcome::Disabled;
    return std::nullopt;
  }
  const Impl& im = *impl_;
  if (!eligible(fault)) {
    outcome = BatchOutcome::Structural;
    metrics.fallback_structural.add();
    return std::nullopt;
  }
  const std::size_t dim = im.dim();
  const auto& elements = im.nominal.elements();
  const Element* nominal_elem = im.nominal.find(fault.element);
  const std::size_t fault_idx =
      static_cast<std::size_t>(nominal_elem - im.nominal.elements().data());
  const Element& faulted_elem = faulted.elements()[fault_idx];

  // The fault's own conductance delta between the element's (unchanged)
  // terminals. A nominal diode's contribution is its linearised geq, so e.g.
  // "diode opens" is (1/R_open - geq_nom) on the same node pair.
  const double delta_fault = linear_conductance(faulted_elem, im.opt) - im.cond_nom[fault_idx];
  if (delta_fault != 0.0 && im.col_of[fault_idx] < 0) {
    // A conductance delta with no cached column (element between identical
    // or all-ground nodes is a no-op; anything else is unexpected): let the
    // naive path decide.
    if (nominal_elem->a != nominal_elem->b &&
        (nominal_elem->a != 0 || nominal_elem->b != 0)) {
      outcome = BatchOutcome::Structural;
      metrics.fallback_structural.add();
      return std::nullopt;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  mna::Deadline deadline;
  if (im.opt.max_wall_clock_seconds > 0.0) {
    deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(im.opt.max_wall_clock_seconds));
  }

  ws.rhs.resize(dim);
  ws.zb.resize(dim);
  ws.residual.resize(dim);
  ws.step_outcome = BatchOutcome::NotConverged;
  std::size_t max_active = 0;
  metrics.factor_reuses.add();

  auto solve_step = [&](const std::vector<double>& diode_v, std::vector<double>& x_out,
                        SolveFailure& failure, std::string& message) {
    // Active low-rank terms: the fault's conductance delta plus any diode
    // whose junction voltage genuinely moved off its nominal point. Diodes
    // within the skip band are pinned to their nominal linearisation point
    // for this step — no matrix term, and the RHS stamp below uses their
    // *nominal* junction voltage so companion matrix and RHS stay
    // consistent (an inconsistent pair would leak a first-order error into
    // the solution; a consistently stale linearisation point is only a
    // second-order one).
    ws.term_col.clear();
    ws.term_elem.clear();
    ws.term_g.clear();
    ws.eff_diode_v.assign(diode_v.begin(), diode_v.end());
    if (delta_fault != 0.0 && im.col_of[fault_idx] >= 0) {
      ws.term_col.push_back(im.col_of[fault_idx]);
      ws.term_elem.push_back(fault_idx);
      ws.term_g.push_back(delta_fault);
    }
    for (const std::size_t d : im.diode_indices) {
      if (d == fault_idx) continue;  // the faulted element is no longer a diode
      if (std::abs(diode_v[d] - im.seed.diode_v[d]) <= kDiodeSkipVolt) {
        ws.eff_diode_v[d] = im.seed.diode_v[d];
        continue;
      }
      const double delta = mna::linearise_diode(diode_v[d], im.opt).geq - im.geq_nom[d];
      if (delta == 0.0) continue;
      if (im.col_of[d] < 0) continue;  // degenerate node pair: stamp is a no-op
      ws.term_col.push_back(im.col_of[d]);
      ws.term_elem.push_back(d);
      ws.term_g.push_back(delta);
    }
    // Faulted RHS at the (pinned) linearisation points — matrix deltas are
    // applied via the Woodbury identity, so only the RHS is re-stamped.
    std::fill(ws.rhs.begin(), ws.rhs.end(), 0.0);
    mna::assemble(faulted, im.opt, im.dc_state, im.structure, ws.eff_diode_v, nullptr,
                  ws.rhs.data());
    const std::size_t k = ws.term_col.size();
    max_active = std::max(max_active, k);
    if (k > dim / 2) {
      // The update is no longer "low-rank": a fresh factorisation is cheaper
      // and better conditioned.
      ws.step_outcome = BatchOutcome::Conditioning;
      failure = SolveFailure::Singular;
      message = "low-rank update too dense";
      return false;
    }

    // Base solve against the shared nominal factorisation.
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.zb.begin());
    im.lu.solve_in_place(ws.zb.data());

    if (k == 0) {
      x_out.assign(ws.zb.begin(), ws.zb.end());
    } else {
      // Woodbury: x = z - Z_active (G^-1 + U^T Z_active)^-1 U^T z, with
      // Z_active the cached A_nom^-1 u columns and G = diag(term_g). U^T
      // entries are O(1) lookups via the active elements' node pairs.
      std::vector<double>& s = ws.small_lu.reset(k);
      ws.small_rhs.resize(k);
      for (std::size_t i = 0; i < k; ++i) {
        const Element& e_i = elements[ws.term_elem[i]];
        s[i * k + i] = 1.0 / ws.term_g[i];
        for (std::size_t j = 0; j < k; ++j) {
          const double* zj = im.z_cols.data() + static_cast<std::size_t>(ws.term_col[j]) * dim;
          s[i * k + j] += im.u_dot(e_i, zj);
        }
        ws.small_rhs[i] = im.u_dot(e_i, ws.zb.data());
      }
      try {
        ws.small_lu.factor("singular low-rank update");
      } catch (const SimulationError&) {
        ws.step_outcome = BatchOutcome::Conditioning;
        failure = SolveFailure::Singular;
        message = "low-rank update system is singular";
        return false;
      }
      ws.small_lu.solve_in_place(ws.small_rhs.data());
      x_out.assign(ws.zb.begin(), ws.zb.end());
      for (std::size_t j = 0; j < k; ++j) {
        const double w = ws.small_rhs[j];
        if (w == 0.0) continue;
        const double* zj = im.z_cols.data() + static_cast<std::size_t>(ws.term_col[j]) * dim;
        for (std::size_t r = 0; r < dim; ++r) x_out[r] -= w * zj[r];
      }
    }

    return true;
  };

  // Residual gate, applied once to the converged iterate (the naive path
  // never checks a residual at all, so gating the accepted solution is
  // strictly stronger): r = rhs - (A_nom + sum g_i u_i u_i^T) x must vanish
  // to solver precision, or the update was too ill-conditioned to trust.
  // ws.rhs and the active terms are still those of the final linearisation
  // when this runs.
  auto passes_residual_gate = [&](const std::vector<double>& x) {
    double rhs_norm = 0.0;
    for (std::size_t r = 0; r < dim; ++r) rhs_norm = std::max(rhs_norm, std::abs(ws.rhs[r]));
    std::copy(ws.rhs.begin(), ws.rhs.end(), ws.residual.begin());
    const double* a = im.a_nom.data();
    for (std::size_t r = 0; r < dim; ++r) {
      double dot = 0.0;
      const double* row = a + r * dim;
      for (std::size_t c = 0; c < dim; ++c) dot += row[c] * x[c];
      ws.residual[r] -= dot;
    }
    for (std::size_t j = 0; j < ws.term_col.size(); ++j) {
      const Element& e_j = elements[ws.term_elem[j]];
      const double flow = ws.term_g[j] * im.u_dot(e_j, x.data());
      im.u_axpy(e_j, -flow, ws.residual.data());
    }
    double res_norm = 0.0;
    for (std::size_t r = 0; r < dim; ++r) {
      res_norm = std::max(res_norm, std::abs(ws.residual[r]));
    }
    return std::isfinite(res_norm) && res_norm <= kResidualRelative * std::max(1.0, rhs_norm);
  };

  mna::NewtonAttempt attempt =
      mna::newton_attempt(faulted, im.opt, im.structure, &im.seed, deadline, solve_step);
  metrics.active_terms.observe(static_cast<double>(max_active));
  if (!attempt.converged) {
    if (attempt.failure == SolveFailure::IterationBudget ||
        attempt.failure == SolveFailure::WallClockBudget ||
        attempt.failure == SolveFailure::NonFinite) {
      outcome = BatchOutcome::NotConverged;
      metrics.fallback_not_converged.add();
    } else {
      outcome = ws.step_outcome;
      metrics.fallback_conditioning.add();
    }
    return std::nullopt;
  }
  if (near_iteration_budget(attempt.iterations, im.opt)) {
    // A warm start that barely fits the budget might converge where the
    // cold-started naive path would not; the naive path must decide.
    outcome = BatchOutcome::NotConverged;
    metrics.fallback_not_converged.add();
    return std::nullopt;
  }
  if (!passes_residual_gate(attempt.x)) {
    outcome = BatchOutcome::Conditioning;
    metrics.fallback_conditioning.add();
    return std::nullopt;
  }

  // Knife-edge gate: MCU brown-out readings are a discrete function of the
  // solved supply voltage; ulp-level differences from the naive path must
  // not flip them.
  for (std::size_t i = 0; i < faulted.elements().size(); ++i) {
    const Element& e = faulted.elements()[i];
    if (e.kind != ElementKind::Mcu) continue;
    const double supply =
        attempt.result.node_voltage[static_cast<std::size_t>(e.a)] -
        attempt.result.node_voltage[static_cast<std::size_t>(e.b)];
    if (std::abs(supply - e.min_supply) < kMcuSupplyGuard) {
      outcome = BatchOutcome::NearThreshold;
      metrics.fallback_near_threshold.add();
      return std::nullopt;
    }
  }

  diagnostics = SolveDiagnostics{};
  diagnostics.converged = true;
  diagnostics.strategy = SolveStrategy::Newton;
  diagnostics.ladder_rung = 0;
  diagnostics.iterations = attempt.iterations;
  diagnostics.residual = attempt.residual;
  diagnostics.failure = SolveFailure::None;
  diagnostics.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome = BatchOutcome::Solved;
  if (max_active == 0) {
    metrics.rhs_only_solves.add();
  } else {
    metrics.lowrank_solves.add();
  }
  return mna::make_operating_point(faulted, attempt.result);
}

// ---------------------------------------------------------------------------
// CampaignSparseContext

struct CampaignSparseContext::Workspace::Impl {
  mna::SparsePlan plan;             ///< the faulted circuit's pattern + slot replay
  sparse::SparseLu<double> slu;
  std::vector<double> rhs;          ///< final-iteration RHS (kept for the residual gate)
  std::vector<double> solution;     ///< solve buffer, so `rhs` survives the solve
  std::vector<double> residual;
};

CampaignSparseContext::Workspace::Workspace() : impl_(std::make_unique<Impl>()) {}
CampaignSparseContext::Workspace::~Workspace() = default;
CampaignSparseContext::Workspace::Workspace(Workspace&&) noexcept = default;
CampaignSparseContext::Workspace& CampaignSparseContext::Workspace::operator=(
    Workspace&&) noexcept = default;

struct CampaignSparseContext::Impl {
  Circuit nominal;
  SolveOptions opt;
  mna::Structure structure;
  mna::CompanionState dc_state;  // DC: no companion sources
  mna::NewtonSeed seed;          // nominal converged state: warm start for faults
  mna::SparsePlan plan;          // nominal pattern, the partial_factor base
  std::shared_ptr<const sparse::Symbolic> symbolic;  // nominal symbolic analysis
};

CampaignSparseContext::CampaignSparseContext(const Circuit& nominal,
                                             const SolveOptions& options)
    : impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.nominal = nominal;
  im.opt = options;
  im.structure = mna::analyze_structure(im.nominal, false);
  if (!options.sparse ||
      im.structure.dim < static_cast<std::size_t>(std::max(options.sparse_min_dim, 1))) {
    return;  // below the sparse threshold: the naive/batch tiers already cover it
  }

  // Nominal plain-Newton solve on the sparse kernel; its workspace hands us
  // the frozen assembly plan and symbolic analysis to share across workers.
  mna::Deadline deadline;
  if (options.max_wall_clock_seconds > 0.0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(options.max_wall_clock_seconds));
  }
  mna::Workspace ws;
  mna::NewtonAttempt attempt = mna::attempt_solve_auto(im.nominal, im.opt, im.dc_state,
                                                       im.structure, nullptr, deadline, ws);
  if (!attempt.converged || ws.sparse_disabled || ws.slu.symbolic() == nullptr) {
    return;  // a nominal circuit the sparse kernel distrusts stays naive
  }
  nominal_point_ = mna::make_operating_point(im.nominal, attempt.result);
  im.seed.x = std::move(attempt.x);
  im.seed.diode_v = std::move(attempt.diode_v);
  im.plan = std::move(ws.plan);
  im.symbolic = ws.slu.symbolic();
  usable_ = true;
}

CampaignSparseContext::~CampaignSparseContext() = default;
CampaignSparseContext::CampaignSparseContext(CampaignSparseContext&&) noexcept = default;
CampaignSparseContext& CampaignSparseContext::operator=(CampaignSparseContext&&) noexcept =
    default;

std::optional<OperatingPoint> CampaignSparseContext::try_solve(
    const Circuit& faulted, const Fault& fault, Workspace& ws, SolveDiagnostics& diagnostics,
    BatchOutcome& outcome) const {
  (void)fault;  // every fault kind routes through the same structure analysis
  if (!usable_) {
    outcome = BatchOutcome::Disabled;
    return std::nullopt;
  }
  const Impl& im = *impl_;
  sparse::SparseMetrics& smetrics = sparse::SparseMetrics::get();
  Workspace::Impl& w = *ws.impl_;

  const mna::Structure st = mna::analyze_structure(faulted, false);
  if (st.dim == 0 || st.dim > im.structure.dim ||
      st.n_nodes != im.structure.n_nodes) {
    // Faults only ever *remove* branch unknowns (Open/Short turn a source or
    // DC inductor into a resistor); anything else is out of contract.
    outcome = BatchOutcome::Structural;
    return std::nullopt;
  }
  const auto start = std::chrono::steady_clock::now();
  mna::Deadline deadline;
  if (im.opt.max_wall_clock_seconds > 0.0) {
    deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                           std::chrono::duration<double>(im.opt.max_wall_clock_seconds));
  }

  // The faulted circuit's own assembly plan (pattern + slot replay), derived
  // once per fault; the per-iteration cost is then pure numeric refill.
  w.plan.build(faulted, im.opt, im.dc_state, st);

  // First-factorisation mode: an unchanged pattern adopts the shared nominal
  // symbolic (numeric replay only); a deleted branch unknown reuses the
  // untouched symbolic prefix via partial_factor; anything else pays a full
  // factorisation (still one-off — later iterations refactor).
  enum class First { Refactor, Partial, Full };
  First first = First::Full;
  std::vector<std::int32_t> new_of_old;
  if (st.dim == im.structure.dim && w.plan.fingerprint == im.plan.fingerprint) {
    w.slu.adopt(im.symbolic);
    smetrics.symbolic_reuse.add();
    first = First::Refactor;
  } else if (st.dim < im.structure.dim) {
    // Node rows are untouched and surviving branch rows keep their element
    // order, so the old-to-new unknown map is strictly increasing over
    // survivors — exactly partial_factor's contract.
    const int keep_nodes = im.structure.n_nodes - 1;
    new_of_old.assign(im.structure.dim, -1);
    for (int r = 0; r < keep_nodes; ++r) new_of_old[static_cast<std::size_t>(r)] = r;
    for (std::size_t i = 0; i < im.nominal.elements().size(); ++i) {
      const int old_b = im.structure.branch_index[i];
      if (old_b < 0) continue;
      const int new_b = st.branch_index[i];
      new_of_old[static_cast<std::size_t>(keep_nodes + old_b)] =
          new_b < 0 ? -1 : keep_nodes + new_b;
    }
    first = First::Partial;
  }

  bool factored = false;
  auto solve_step = [&](const std::vector<double>& diode_v, std::vector<double>& x_out,
                        SolveFailure& failure, std::string& message) {
    w.rhs.assign(st.dim, 0.0);
    if (!w.plan.refill(faulted, im.opt, im.dc_state, st, diode_v, w.rhs.data())) {
      failure = SolveFailure::Singular;
      message = "sparse plan does not match the stamped circuit";
      return false;
    }
    std::string err;
    bool ok = false;
    if (factored) {
      ok = w.slu.refactor(w.plan.pattern, w.plan.values.data(), &err);
      if (!ok) {
        ok = w.slu.factor(w.plan.pattern, w.plan.values.data(), &err);
        if (ok) smetrics.repivots.add();
      }
    } else {
      switch (first) {
        case First::Refactor:
          ok = w.slu.refactor(w.plan.pattern, w.plan.values.data(), &err);
          if (!ok) {
            ok = w.slu.factor(w.plan.pattern, w.plan.values.data(), &err);
            if (ok) smetrics.repivots.add();
          }
          break;
        case First::Partial:
          ok = w.slu.partial_factor(*im.symbolic, im.plan.pattern, new_of_old,
                                    w.plan.pattern, w.plan.values.data(), nullptr, &err);
          if (!ok) ok = w.slu.factor(w.plan.pattern, w.plan.values.data(), &err);
          break;
        case First::Full:
          ok = w.slu.factor(w.plan.pattern, w.plan.values.data(), &err);
          break;
      }
      if (ok) {
        factored = true;
        const double dim_sq =
            static_cast<double>(st.dim) * static_cast<double>(st.dim);
        if (static_cast<double>(w.slu.lu_nnz()) > im.opt.sparse_max_fill * dim_sq) {
          smetrics.fallback_fill.add();
          failure = SolveFailure::Singular;
          message = "sparse factorisation fill exceeded the density gate";
          return false;
        }
      }
    }
    if (!ok) {
      failure = SolveFailure::Singular;
      message = std::move(err);
      return false;
    }
    // Solve into a separate buffer so `w.rhs` still holds the final-iteration
    // RHS for the residual gate below.
    w.solution = w.rhs;
    w.slu.solve_in_place(w.solution.data());
    x_out = w.solution;
    return true;
  };

  mna::NewtonAttempt attempt =
      mna::newton_attempt(faulted, im.opt, st, &im.seed, deadline, solve_step);
  if (!attempt.converged) {
    outcome = (attempt.failure == SolveFailure::IterationBudget ||
               attempt.failure == SolveFailure::WallClockBudget ||
               attempt.failure == SolveFailure::NonFinite)
                  ? BatchOutcome::NotConverged
                  : BatchOutcome::Conditioning;
    return std::nullopt;
  }
  if (near_iteration_budget(attempt.iterations, im.opt)) {
    // Same convergence-margin guard as the batched path: a warm start that
    // barely fits the budget might converge where the cold naive path would
    // not — the naive path must decide.
    outcome = BatchOutcome::NotConverged;
    return std::nullopt;
  }

  // Residual gate against the *exact* faulted matrix (w.plan.values and
  // w.rhs are still those of the final linearisation): r = rhs - A x must
  // vanish to solver precision. The naive path never checks a residual, so
  // gating the accepted solution is strictly stronger.
  {
    const std::vector<double>& x = attempt.x;
    double rhs_norm = 0.0;
    for (std::size_t r = 0; r < st.dim; ++r) rhs_norm = std::max(rhs_norm, std::abs(w.rhs[r]));
    w.residual.assign(w.rhs.begin(), w.rhs.end());
    const sparse::Pattern& pattern = w.plan.pattern;
    for (std::size_t c = 0; c < st.dim; ++c) {
      const double xc = x[c];
      if (xc == 0.0) continue;
      for (std::int32_t p = pattern.col_ptr[c]; p < pattern.col_ptr[c + 1]; ++p) {
        w.residual[static_cast<std::size_t>(pattern.row_ind[static_cast<std::size_t>(p)])] -=
            w.plan.values[static_cast<std::size_t>(p)] * xc;
      }
    }
    double res_norm = 0.0;
    for (std::size_t r = 0; r < st.dim; ++r) {
      res_norm = std::max(res_norm, std::abs(w.residual[r]));
    }
    if (!std::isfinite(res_norm) ||
        res_norm > kResidualRelative * std::max(1.0, rhs_norm)) {
      outcome = BatchOutcome::Conditioning;
      return std::nullopt;
    }
  }

  // Knife-edge gate: ulp-level differences from the naive dense path must
  // not flip a discrete MCU brown-out reading.
  for (std::size_t i = 0; i < faulted.elements().size(); ++i) {
    const Element& e = faulted.elements()[i];
    if (e.kind != ElementKind::Mcu) continue;
    const double supply = attempt.result.node_voltage[static_cast<std::size_t>(e.a)] -
                          attempt.result.node_voltage[static_cast<std::size_t>(e.b)];
    if (std::abs(supply - e.min_supply) < kMcuSupplyGuard) {
      outcome = BatchOutcome::NearThreshold;
      return std::nullopt;
    }
  }

  diagnostics = SolveDiagnostics{};
  diagnostics.converged = true;
  diagnostics.strategy = SolveStrategy::Newton;
  diagnostics.ladder_rung = 0;
  diagnostics.iterations = attempt.iterations;
  diagnostics.residual = attempt.residual;
  diagnostics.failure = SolveFailure::None;
  diagnostics.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  outcome = BatchOutcome::Solved;
  return mna::make_operating_point(faulted, attempt.result);
}

}  // namespace decisive::sim
