#include "decisive/fta/engine.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "decisive/fta/zbdd.hpp"
#include "decisive/obs/log.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/ssam/graph.hpp"

namespace decisive::fta {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

struct EngineMetrics {
  obs::Counter& syntheses;      ///< synthesize_fault_tree_zbdd calls
  obs::Counter& states;         ///< decomposition states expanded
  obs::Counter& state_hits;     ///< memoised states reused
  obs::Counter& truncations;    ///< syntheses clipped by max_order
  obs::Gauge& zbdd_nodes;       ///< arena size after the last synthesis
  obs::Gauge& cut_sets;         ///< cut sets in the last synthesised tree
  obs::Histogram& synth_seconds;

  static EngineMetrics& get() {
    static EngineMetrics metrics{
        obs::Registry::global().counter("decisive_fta_syntheses_total"),
        obs::Registry::global().counter("decisive_fta_states_total"),
        obs::Registry::global().counter("decisive_fta_state_cache_hits_total"),
        obs::Registry::global().counter("decisive_fta_truncations_total"),
        obs::Registry::global().gauge("decisive_fta_zbdd_nodes"),
        obs::Registry::global().gauge("decisive_fta_cut_sets"),
        obs::Registry::global().histogram("decisive_fta_synthesize_seconds"),
    };
    return metrics;
  }
};

/// Flow graph flattened to dense vertex indices: 0 = super-source,
/// 1 = super-sink, 2 + i = graph.nodes[i]. Component failure removes every
/// vertex the component owns; boundary vertices have no owner and are
/// unfailable. The decomposition runs on this *uncontracted* graph (no owner
/// supervertices), so it is exact on irregular wirings where contraction
/// could over-connect.
struct FlowGraph {
  std::vector<std::vector<int>> fwd;  ///< index-sorted adjacency
  std::vector<std::vector<int>> bwd;
  std::vector<int> owner_of;                  ///< component index or -1
  std::vector<ObjectId> components;           ///< component index → id
  std::vector<std::vector<int>> comp_vertices;
  size_t vertex_count = 0;
};

constexpr int kSource = 0;
constexpr int kSink = 1;

FlowGraph flatten(const ssam::ComponentGraph& graph) {
  FlowGraph out;
  out.vertex_count = graph.nodes.size() + 2;
  std::map<ObjectId, int> index;
  for (size_t i = 0; i < graph.nodes.size(); ++i) {
    index[graph.nodes[i]] = static_cast<int>(i) + 2;
  }
  out.fwd.resize(out.vertex_count);
  out.bwd.resize(out.vertex_count);
  const auto add_edge = [&](int from, int to) {
    out.fwd[static_cast<size_t>(from)].push_back(to);
    out.bwd[static_cast<size_t>(to)].push_back(from);
  };
  for (const ObjectId input : graph.inputs) add_edge(kSource, index.at(input));
  for (const ObjectId output : graph.outputs) add_edge(index.at(output), kSink);
  for (const auto& [from, tos] : graph.edges) {
    const auto from_it = index.find(from);
    if (from_it == index.end()) continue;
    for (const ObjectId to : tos) {
      const auto to_it = index.find(to);
      if (to_it != index.end()) add_edge(from_it->second, to_it->second);
    }
  }
  for (auto& adj : out.fwd) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }
  for (auto& adj : out.bwd) {
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end()), adj.end());
  }

  out.owner_of.assign(out.vertex_count, -1);
  std::map<ObjectId, int> comp_index;
  // Deterministic component indexing: by ObjectId (the variable *order* is
  // assigned separately, from BFS discovery).
  for (const auto& [node, owner] : graph.owner) {
    if (!comp_index.contains(owner)) {
      comp_index[owner] = static_cast<int>(out.components.size());
      out.components.push_back(owner);
      out.comp_vertices.emplace_back();
    }
  }
  for (const auto& [node, owner] : graph.owner) {
    const auto it = index.find(node);
    if (it == index.end()) continue;
    const int comp = comp_index.at(owner);
    out.owner_of[static_cast<size_t>(it->second)] = comp;
    out.comp_vertices[static_cast<size_t>(comp)].push_back(it->second);
  }
  return out;
}

/// Shannon decomposition of the structure function with memoised states.
class Decomposer {
 public:
  Decomposer(const FlowGraph& graph, size_t max_order)
      : graph_(graph), ncomps_(graph.components.size()) {
    // A cut only ever fails free live components, so any budget covering the
    // whole component set behaves as unbounded; clamping keeps equivalent
    // budgets on one memo key.
    budget0_ = max_order == 0 ? ncomps_ : std::min(max_order, ncomps_);
    order_of_.assign(ncomps_, -1);
  }

  ZbddRef run(ZbddArena& arena) {
    std::vector<char> removed(graph_.vertex_count, 0);
    assign_variable_order(removed);
    std::vector<char> perfect(ncomps_, 0);
    return decompose(arena, removed, perfect, budget0_);
  }

  [[nodiscard]] bool truncated() const { return truncated_; }
  /// Component index for a ZBDD variable (inverse of the BFS order).
  [[nodiscard]] int component_of_var(uint32_t var) const {
    return comp_of_order_[var];
  }

 private:
  /// Forward BFS from `start` over vertices passing `admit`; fills `seen`.
  template <typename Admit>
  void bfs(int start, const std::vector<std::vector<int>>& adj, Admit admit,
           std::vector<char>& seen) const {
    if (!admit(start)) return;
    seen[static_cast<size_t>(start)] = 1;
    std::vector<int> queue{start};
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const int next : adj[static_cast<size_t>(queue[head])]) {
        if (seen[static_cast<size_t>(next)] || !admit(next)) continue;
        seen[static_cast<size_t>(next)] = 1;
        queue.push_back(next);
      }
    }
  }

  /// Variable order = component discovery order of a BFS from the source
  /// over the initial live subgraph (index-sorted adjacency ⇒ deterministic).
  /// Branching always picks the minimum free variable, and both sub-states
  /// only shrink the free set, so every ZBDD node respects this order.
  void assign_variable_order(const std::vector<char>& removed) {
    std::vector<char> live;
    const bool connected = live_vertices(removed, live);
    int next = 0;
    if (connected) {
      std::vector<char> seen(graph_.vertex_count, 0);
      std::vector<int> queue{kSource};
      seen[kSource] = 1;
      for (size_t head = 0; head < queue.size(); ++head) {
        const int v = queue[head];
        const int owner = graph_.owner_of[static_cast<size_t>(v)];
        if (owner >= 0 && order_of_[static_cast<size_t>(owner)] < 0) {
          order_of_[static_cast<size_t>(owner)] = next++;
        }
        for (const int to : graph_.fwd[static_cast<size_t>(v)]) {
          if (!seen[static_cast<size_t>(to)] && live[static_cast<size_t>(to)]) {
            seen[static_cast<size_t>(to)] = 1;
            queue.push_back(to);
          }
        }
      }
    }
    // Components outside the live subgraph never appear in a cut set; give
    // them trailing order ids so the mapping stays total.
    for (size_t c = 0; c < ncomps_; ++c) {
      if (order_of_[c] < 0) order_of_[c] = next++;
    }
    comp_of_order_.assign(ncomps_, -1);
    for (size_t c = 0; c < ncomps_; ++c) {
      comp_of_order_[static_cast<size_t>(order_of_[c])] = static_cast<int>(c);
    }
  }

  /// Live = reachable from the source ∧ co-reachable to the sink over
  /// non-removed vertices. Returns false when source and sink are already
  /// disconnected (live is then all-zero).
  bool live_vertices(const std::vector<char>& removed, std::vector<char>& live) const {
    const auto admit = [&](int v) { return !removed[static_cast<size_t>(v)]; };
    std::vector<char> fwd(graph_.vertex_count, 0);
    bfs(kSource, graph_.fwd, admit, fwd);
    if (!fwd[kSink]) {
      live.assign(graph_.vertex_count, 0);
      return false;
    }
    std::vector<char> bwd(graph_.vertex_count, 0);
    bfs(kSink, graph_.bwd, admit, bwd);
    live.resize(graph_.vertex_count);
    for (size_t v = 0; v < graph_.vertex_count; ++v) {
      live[v] = static_cast<char>(fwd[v] && bwd[v]);
    }
    return true;
  }

  /// True when a source→sink path survives through unfailable (boundary) and
  /// perfect-component vertices only — no remaining failure combination can
  /// sever it, so the residual cut family is empty.
  bool permanently_connected(const std::vector<char>& live,
                             const std::vector<char>& perfect) const {
    const auto admit = [&](int v) {
      if (!live[static_cast<size_t>(v)]) return false;
      const int owner = graph_.owner_of[static_cast<size_t>(v)];
      return owner < 0 || perfect[static_cast<size_t>(owner)] != 0;
    };
    std::vector<char> seen(graph_.vertex_count, 0);
    bfs(kSource, graph_.fwd, admit, seen);
    return seen[kSink] != 0;
  }

  /// Canonical memo signature of the residual subproblem. The raw
  /// (live, perfect) bitmaps over-distinguish: on a redundant lattice every
  /// already-decided stage configuration with at least one perfect unit
  /// leaves the *same* residual function, but a different bitmap — an
  /// exponential memo. The residual function over the free (live, not yet
  /// perfect) components is fully determined by reachability between free
  /// vertices through the non-free live region: any surviving path is an
  /// alternation of free vertices and unfailable (boundary/perfect) segments,
  /// and only the free vertices can ever be removed below this state. So the
  /// key contracts the unfailable region away:
  ///   effective budget ∥ free-vertex ids ∥ per-row reachability bitsets
  /// with one row for the super-source and one per free vertex (bits: each
  /// free vertex + the sink). Equal keys ⇒ identical residual families, and
  /// decided stages collapse regardless of which unit survived.
  std::string state_key(const std::vector<char>& live, const std::vector<char>& perfect,
                        size_t budget) const {
    std::vector<int> free_vertices;
    std::vector<int> local_of(graph_.vertex_count, -1);
    std::vector<char> comp_free(ncomps_, 0);
    for (size_t v = 0; v < graph_.vertex_count; ++v) {
      const int owner = graph_.owner_of[v];
      if (!live[v] || owner < 0 || perfect[static_cast<size_t>(owner)]) continue;
      local_of[v] = static_cast<int>(free_vertices.size());
      free_vertices.push_back(static_cast<int>(v));
      comp_free[static_cast<size_t>(owner)] = 1;
    }
    // Budgets at or above the free-component count can never bind below this
    // state; collapse them to one sentinel so unbounded runs don't fragment
    // the memo by depth.
    size_t free_count = 0;
    for (size_t c = 0; c < ncomps_; ++c) free_count += comp_free[c] != 0;
    const size_t effective = budget >= free_count ? size_t{0xFFFF} : budget;

    const size_t bits_per_row = free_vertices.size() + 1;  // + sink bit
    const size_t bytes_per_row = (bits_per_row + 7) / 8;
    std::string key;
    key.reserve(2 + 2 * free_vertices.size() + (free_vertices.size() + 1) * bytes_per_row);
    key.push_back(static_cast<char>(effective & 0xFF));
    key.push_back(static_cast<char>((effective >> 8) & 0xFF));
    for (const int v : free_vertices) {
      key.push_back(static_cast<char>(v & 0xFF));
      key.push_back(static_cast<char>((v >> 8) & 0xFF));
    }

    // Row of `start`: which free vertices / the sink it reaches through
    // non-free live vertices only (free vertices are hit but not crossed).
    std::vector<char> row(bits_per_row);
    std::vector<char> seen(graph_.vertex_count);
    std::vector<int> queue;
    const auto append_row = [&](int start) {
      std::fill(row.begin(), row.end(), 0);
      std::fill(seen.begin(), seen.end(), 0);
      queue.assign(1, start);
      seen[static_cast<size_t>(start)] = 1;
      for (size_t head = 0; head < queue.size(); ++head) {
        for (const int to : graph_.fwd[static_cast<size_t>(queue[head])]) {
          if (seen[static_cast<size_t>(to)] || !live[static_cast<size_t>(to)]) continue;
          seen[static_cast<size_t>(to)] = 1;
          if (to == kSink) {
            row[free_vertices.size()] = 1;
          } else if (local_of[static_cast<size_t>(to)] >= 0) {
            row[static_cast<size_t>(local_of[static_cast<size_t>(to)])] = 1;
          } else {
            queue.push_back(to);
          }
        }
      }
      unsigned char byte = 0;
      for (size_t i = 0; i < bits_per_row; ++i) {
        byte = static_cast<unsigned char>((byte << 1) | (row[i] ? 1u : 0u));
        if ((i & 7u) == 7u) {
          key.push_back(static_cast<char>(byte));
          byte = 0;
        }
      }
      if ((bits_per_row & 7u) != 0) key.push_back(static_cast<char>(byte));
    };
    append_row(kSource);
    for (const int v : free_vertices) append_row(v);
    return key;
  }

  ZbddRef decompose(ZbddArena& arena, const std::vector<char>& removed,
                    const std::vector<char>& perfect, size_t budget) {
    std::vector<char> live;
    if (!live_vertices(removed, live)) return kZbddUnit;  // already severed
    if (permanently_connected(live, perfect)) return kZbddEmpty;
    // From here on: not severed, and every surviving path crosses at least
    // one free component, so cuts DO exist in the unbounded semantics.
    if (budget == 0) {
      truncated_ = true;  // the order bound clipped a non-empty sub-family
      return kZbddEmpty;
    }

    const std::string key = state_key(live, perfect, budget);
    if (const auto it = memo_.find(key); it != memo_.end()) {
      EngineMetrics::get().state_hits.add();
      return it->second;
    }
    EngineMetrics::get().states.add();

    // Branch on the free live component with the smallest variable order.
    int branch = -1;
    for (size_t v = 0; v < graph_.vertex_count; ++v) {
      const int owner = graph_.owner_of[v];
      if (!live[v] || owner < 0 || perfect[static_cast<size_t>(owner)]) continue;
      if (branch < 0 || order_of_[static_cast<size_t>(owner)] <
                            order_of_[static_cast<size_t>(branch)]) {
        branch = owner;
      }
    }
    // Unreachable: a live path with no free component would have been caught
    // by permanently_connected above.
    if (branch < 0) return kZbddEmpty;

    std::vector<char> perfect_lo = perfect;
    perfect_lo[static_cast<size_t>(branch)] = 1;
    const ZbddRef lo = decompose(arena, removed, perfect_lo, budget);

    std::vector<char> removed_hi = removed;
    for (const int v : graph_.comp_vertices[static_cast<size_t>(branch)]) {
      removed_hi[static_cast<size_t>(v)] = 1;
    }
    const ZbddRef hi_raw = decompose(arena, removed_hi, perfect, budget - 1);
    // A cut through `branch` is only minimal if it is not a superset of a
    // cut that leaves `branch` healthy.
    const ZbddRef hi = arena.without_supersets(hi_raw, lo);

    const ZbddRef result =
        arena.node(static_cast<uint32_t>(order_of_[static_cast<size_t>(branch)]), lo, hi);
    memo_.emplace(key, result);
    return result;
  }

  const FlowGraph& graph_;
  size_t ncomps_;
  size_t budget0_ = 0;
  bool truncated_ = false;
  std::vector<int> order_of_;       ///< component index → ZBDD variable
  std::vector<int> comp_of_order_;  ///< ZBDD variable → component index
  std::unordered_map<std::string, ZbddRef> memo_;
};

}  // namespace

core::FaultTree synthesize_fault_tree_zbdd(const SsamModel& ssam, ObjectId component,
                                           const ZbddFtaOptions& options) {
  EngineMetrics& metrics = EngineMetrics::get();
  obs::Span span("fta.synthesize", &metrics.synth_seconds);
  metrics.syntheses.add();

  const ssam::ComponentGraph raw = ssam::build_graph(ssam, component);
  const FlowGraph graph = flatten(raw);

  ZbddArena arena;
  Decomposer decomposer(graph, options.max_order);
  const ZbddRef root = decomposer.run(arena);
  metrics.zbdd_nodes.set(static_cast<double>(arena.node_count()));

  // Materialise the (minimal, typically small) family and render the same
  // FaultTree shape the oracle produces: one OR child per cut, AND gates for
  // multi-member cuts, shared basic events.
  std::vector<std::vector<ObjectId>> cuts;
  for (const auto& vars : arena.enumerate(root)) {
    std::vector<ObjectId> members;
    members.reserve(vars.size());
    for (const uint32_t var : vars) {
      members.push_back(graph.components[static_cast<size_t>(decomposer.component_of_var(var))]);
    }
    std::sort(members.begin(), members.end());
    cuts.push_back(std::move(members));
  }
  std::sort(cuts.begin(), cuts.end(),
            [](const std::vector<ObjectId>& a, const std::vector<ObjectId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  metrics.cut_sets.set(static_cast<double>(cuts.size()));

  core::FaultTree tree;
  tree.truncated = decomposer.truncated();
  if (tree.truncated) {
    metrics.truncations.add();
    obs::log(obs::LogLevel::Warn,
             "fta: max_order=" + std::to_string(options.max_order) +
                 " clipped the ZBDD synthesis; minimal cut sets above the bound may exist");
  }
  const std::string name = ssam.obj(component).get_string("name");
  tree.top_event = "loss of function of '" + name + "'";
  core::FaultTreeNode top;
  top.kind = core::GateKind::Or;
  top.label = tree.top_event;
  tree.nodes.push_back(top);

  std::map<ObjectId, size_t> basic_index;
  const auto basic_for = [&](ObjectId comp) {
    const auto it = basic_index.find(comp);
    if (it != basic_index.end()) return it->second;
    core::FaultTreeNode basic;
    basic.kind = core::GateKind::Basic;
    basic.component = comp;
    basic.label = "loss of '" + ssam.obj(comp).get_string("name") + "'";
    basic.failure_rate = core::loss_failure_rate(ssam, comp);
    tree.nodes.push_back(basic);
    const size_t index = tree.nodes.size() - 1;
    basic_index[comp] = index;
    return index;
  };

  for (const auto& cut : cuts) {
    tree.cut_sets.push_back(cut);
    if (cut.size() == 1) {
      const size_t basic = basic_for(cut[0]);
      tree.nodes[0].children.push_back(basic);
    } else {
      core::FaultTreeNode gate;
      gate.kind = core::GateKind::And;
      gate.label = "joint loss of " + std::to_string(cut.size()) + " redundant components";
      for (const ObjectId member : cut) gate.children.push_back(basic_for(member));
      tree.nodes.push_back(std::move(gate));
      tree.nodes[0].children.push_back(tree.nodes.size() - 1);
    }
  }
  return tree;
}

}  // namespace decisive::fta
