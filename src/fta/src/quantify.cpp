#include "decisive/fta/quantify.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "decisive/fta/zbdd.hpp"

namespace decisive::fta {

namespace {

using ssam::ObjectId;

/// The tree's minimal cut family rebuilt as a ZBDD, with variables assigned
/// in sorted-component-id order (any fixed order works; this one is
/// deterministic and independent of how the tree was synthesised).
struct CutFamily {
  ZbddArena arena;
  ZbddRef root = kZbddEmpty;
  std::vector<ObjectId> component_of_var;
  std::map<ObjectId, uint32_t> var_of_component;
};

CutFamily build_family(const core::FaultTree& tree) {
  CutFamily family;
  for (const auto& cut : tree.cut_sets) {
    for (const ObjectId member : cut) family.var_of_component[member];  // collect
  }
  uint32_t next = 0;
  for (auto& [component, var] : family.var_of_component) {
    var = next++;
    family.component_of_var.push_back(component);
  }
  for (const auto& cut : tree.cut_sets) {
    ZbddRef set = kZbddUnit;
    for (const ObjectId member : cut) {
      set = family.arena.join(set, family.arena.single(family.var_of_component.at(member)));
    }
    family.root = family.arena.set_union(family.root, set);
  }
  family.root = family.arena.minimal(family.root);
  return family;
}

/// Exact P(top): Rauzy's Shannon recursion over the minimal cut family.
/// Fresh memo per probability assignment (callers re-run it conditioned).
double eval_exact(ZbddArena& arena, ZbddRef f, const std::vector<double>& prob,
                  std::unordered_map<ZbddRef, double>& memo) {
  if (f == kZbddEmpty) return 0.0;
  if (f == kZbddUnit) return 1.0;
  if (const auto it = memo.find(f); it != memo.end()) return it->second;
  const double p = prob[arena.var(f)];
  // Given x failed the residual function is hi ∨ lo; given x healthy it is lo.
  const double failed = eval_exact(arena, arena.min_union(arena.hi(f), arena.lo(f)), prob, memo);
  const double healthy = eval_exact(arena, arena.lo(f), prob, memo);
  const double value = p * failed + (1.0 - p) * healthy;
  memo.emplace(f, value);
  return value;
}

double eval_exact(ZbddArena& arena, ZbddRef f, const std::vector<double>& prob) {
  std::unordered_map<ZbddRef, double> memo;
  return eval_exact(arena, f, prob, memo);
}

/// Rare-event bound: Σ over sets of Π member probabilities, linear in the
/// diagram (uncapped; the caller caps the reported bound at 1).
double eval_rare(ZbddArena& arena, ZbddRef f, const std::vector<double>& prob,
                 std::unordered_map<ZbddRef, double>& memo) {
  if (f == kZbddEmpty) return 0.0;
  if (f == kZbddUnit) return 1.0;
  if (const auto it = memo.find(f); it != memo.end()) return it->second;
  const double value = eval_rare(arena, arena.lo(f), prob, memo) +
                       prob[arena.var(f)] * eval_rare(arena, arena.hi(f), prob, memo);
  memo.emplace(f, value);
  return value;
}

std::string format_probability(double p) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6e", p);
  return buffer;
}

}  // namespace

Quantification quantify(const core::FaultTree& tree, double mission_hours) {
  Quantification out;
  CutFamily family = build_family(tree);
  const size_t nvars = family.component_of_var.size();

  // Mission failure probability and label per basic event.
  std::map<ObjectId, double> p_of;
  std::map<ObjectId, std::string> label_of;
  for (const auto& node : tree.nodes) {
    if (node.kind != core::GateKind::Basic) continue;
    p_of[node.component] = 1.0 - std::exp(-node.failure_rate * mission_hours);
    label_of[node.component] = node.label;
  }
  std::vector<double> prob(nvars, 0.0);
  for (size_t v = 0; v < nvars; ++v) {
    const auto it = p_of.find(family.component_of_var[v]);
    if (it != p_of.end()) prob[v] = it->second;
  }

  out.exact_probability = eval_exact(family.arena, family.root, prob);
  {
    std::unordered_map<ZbddRef, double> memo;
    out.rare_event_bound =
        std::min(eval_rare(family.arena, family.root, prob, memo), 1.0);
  }

  const double p_top = out.exact_probability;
  for (size_t v = 0; v < nvars; ++v) {
    const ObjectId component = family.component_of_var[v];
    ImportanceRow row;
    row.component = component;
    row.label = label_of.contains(component) ? label_of.at(component) : std::string{};
    row.probability = prob[v];

    std::vector<double> conditioned = prob;
    conditioned[v] = 1.0;
    const double p_always_failed = eval_exact(family.arena, family.root, conditioned);
    conditioned[v] = 0.0;
    const double p_never_fails = eval_exact(family.arena, family.root, conditioned);
    row.birnbaum = p_always_failed - p_never_fails;

    if (p_top > 0.0) {
      // Exact FV: probability that some cut *containing v* is fully failed.
      const ZbddRef with_v = family.arena.join(
          family.arena.single(static_cast<uint32_t>(v)),
          family.arena.subsets_with(family.root, static_cast<uint32_t>(v)));
      row.fussell_vesely = eval_exact(family.arena, with_v, prob) / p_top;
      row.raw = p_always_failed / p_top;
      if (p_never_fails > 0.0) {
        row.rrw = p_top / p_never_fails;
      } else {
        // Repairing this component alone drives the top event to zero: RRW
        // diverges; report 0 + the flag instead of Inf.
        row.rrw = 0.0;
        row.indispensable = true;
      }
    }
    out.importance.push_back(std::move(row));
  }
  std::sort(out.importance.begin(), out.importance.end(),
            [](const ImportanceRow& a, const ImportanceRow& b) {
              if (a.fussell_vesely != b.fussell_vesely) {
                return a.fussell_vesely > b.fussell_vesely;
              }
              return a.component < b.component;
            });
  return out;
}

CsvTable cut_sets_csv(const core::FaultTree& tree, double mission_hours) {
  std::map<ObjectId, std::string> label_of;
  std::map<ObjectId, double> p_of;
  for (const auto& node : tree.nodes) {
    if (node.kind != core::GateKind::Basic) continue;
    label_of[node.component] = node.label;
    p_of[node.component] = 1.0 - std::exp(-node.failure_rate * mission_hours);
  }

  CsvTable table;
  table.header = {"Order", "Cut set", "P(cut)"};
  for (const auto& cut : tree.cut_sets) {
    std::string members;
    double product = 1.0;
    for (const ObjectId member : cut) {
      if (!members.empty()) members += " + ";
      members += label_of.contains(member) ? label_of.at(member) : std::string{"?"};
      product *= p_of.contains(member) ? p_of.at(member) : 0.0;
    }
    table.rows.push_back(
        {std::to_string(cut.size()), members, format_probability(product)});
  }
  if (tree.truncated) {
    table.rows.push_back({"", std::string(core::kFtaTruncationWarning), ""});
  }
  return table;
}

}  // namespace decisive::fta
