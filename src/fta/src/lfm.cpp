#include "decisive/fta/lfm.hpp"

#include <algorithm>
#include <map>

#include "decisive/base/strings.hpp"

namespace decisive::fta {

namespace {

using ssam::ObjectId;

/// Nature of `row`'s failure mode, resolved from the model (FmedaRow does
/// not carry the nature): the component's failure mode matching the row's
/// mode name. Returns kNullObject when the row has no model identity or the
/// mode is gone (e.g. renamed since the analysis).
ObjectId failure_mode_of(const ssam::SsamModel& ssam, const core::FmedaRow& row) {
  if (row.component_id == model::kNullObject) return model::kNullObject;
  for (const ObjectId fm : ssam.obj(row.component_id).refs("failureModes")) {
    if (ssam.obj(fm).get_string("name") == row.failure_mode) return fm;
  }
  return model::kNullObject;
}

}  // namespace

std::string_view to_string(FaultClass cls) noexcept {
  switch (cls) {
    case FaultClass::NotInvolved: return "not involved";
    case FaultClass::SinglePoint: return "single point";
    case FaultClass::MultiPointDetected: return "multi-point detected";
    case FaultClass::MultiPointPerceived: return "multi-point perceived";
    case FaultClass::MultiPointLatent: return "multi-point latent";
  }
  return "?";
}

bool LfmResult::has_multi_point() const {
  return std::any_of(rows.begin(), rows.end(),
                     [](const LfmRow& row) { return row.min_cut_order >= 2; });
}

double LfmResult::lfm() const {
  if (!has_multi_point() || denominator_fit <= 0.0) return 1.0;
  return 1.0 - latent_fit / denominator_fit;
}

std::string LfmResult::asil_label() const {
  if (!has_multi_point()) return "no multi-point faults";
  return core::achieved_asil_lfm(lfm());
}

std::string LfmResult::to_text() const {
  std::string out;
  out += "multi-point FIT: " + format_number(multi_point_fit, 3);
  out += " (detected " + format_number(detected_fit, 3);
  out += ", perceived " + format_number(perceived_fit, 3);
  out += ", latent " + format_number(latent_fit, 3) + ")\n";
  out += "LFM = " + format_number(lfm() * 100.0, 2) + "% (" + asil_label() + ")\n";
  return out;
}

LfmResult classify_latent(const ssam::SsamModel& ssam, const core::FaultTree& tree,
                          const core::FmedaResult& fmea) {
  // Minimal cut order per cut-participating component.
  std::map<std::uint64_t, size_t> min_order;
  for (const auto& cut : tree.cut_sets) {
    for (const ObjectId member : cut) {
      auto [it, inserted] = min_order.try_emplace(member, cut.size());
      if (!inserted) it->second = std::min(it->second, cut.size());
    }
  }

  LfmResult out;
  double relevant_fit = 0.0;
  for (size_t i = 0; i < fmea.rows.size(); ++i) {
    const core::FmedaRow& fmea_row = fmea.rows[i];
    LfmRow row;
    row.row_index = i;

    const auto order_it = min_order.find(fmea_row.component_id);
    const ObjectId fm = failure_mode_of(ssam, fmea_row);
    const bool loss_mode =
        fm != model::kNullObject &&
        core::is_loss_failure_nature(ssam.obj(fm).get_string("nature"));
    if (order_it == min_order.end() || !loss_mode) {
      out.rows.push_back(row);  // NotInvolved
      continue;
    }
    row.min_cut_order = order_it->second;
    relevant_fit += fmea_row.mode_fit();

    const double residual = fmea_row.mode_fit() * (1.0 - fmea_row.sm_coverage);
    if (row.min_cut_order == 1) {
      // SPFM territory: its residual leaves the LFM denominator.
      row.cls = FaultClass::SinglePoint;
      out.single_point_residual_fit += residual;
    } else {
      row.detected_fit = fmea_row.mode_fit() * fmea_row.sm_coverage;
      const bool perceived = ssam.obj(fm).get_bool("perceived");
      (perceived ? row.perceived_fit : row.latent_fit) = residual;
      row.cls = row.latent_fit > 0.0    ? FaultClass::MultiPointLatent
                : row.perceived_fit > 0.0 ? FaultClass::MultiPointPerceived
                                          : FaultClass::MultiPointDetected;
      out.multi_point_fit += fmea_row.mode_fit();
      out.detected_fit += row.detected_fit;
      out.perceived_fit += row.perceived_fit;
      out.latent_fit += row.latent_fit;
    }
    out.rows.push_back(row);
  }
  out.denominator_fit = relevant_fit - out.single_point_residual_fit;
  return out;
}

void apply_lfm(core::FmedaResult& fmea, const LfmResult& lfm) {
  fmea.latent_fault_metric = lfm.lfm();
}

std::vector<double> lfm_row_weights(const LfmResult& lfm) {
  std::vector<double> weights(lfm.rows.size(), 0.0);
  for (const LfmRow& row : lfm.rows) {
    if (row.min_cut_order >= 2) weights[row.row_index] = 1.0;
  }
  return weights;
}

}  // namespace decisive::fta
