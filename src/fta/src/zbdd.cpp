#include "decisive/fta/zbdd.hpp"

#include <algorithm>
#include <limits>

namespace decisive::fta {

namespace {
// Terminals sort after every real variable so the min-var recursion rules
// treat them uniformly.
constexpr uint32_t kTerminalVar = std::numeric_limits<uint32_t>::max();
}  // namespace

ZbddArena::ZbddArena() {
  nodes_.push_back({kTerminalVar, kZbddEmpty, kZbddEmpty});  // kZbddEmpty
  nodes_.push_back({kTerminalVar, kZbddUnit, kZbddUnit});    // kZbddUnit
}

ZbddRef ZbddArena::node(uint32_t var, ZbddRef lo, ZbddRef hi) {
  if (hi == kZbddEmpty) return lo;  // zero-suppression rule
  const Key key{var, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  nodes_.push_back({var, lo, hi});
  const auto ref = static_cast<ZbddRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

ZbddRef ZbddArena::single(uint32_t var) { return node(var, kZbddEmpty, kZbddUnit); }

ZbddRef ZbddArena::set_union(ZbddRef a, ZbddRef b) {
  if (a == kZbddEmpty) return b;
  if (b == kZbddEmpty || a == b) return a;
  if (a > b) std::swap(a, b);  // commutative: canonicalise the memo key
  const uint64_t key = memo_key(a, b);
  if (const auto it = union_memo_.find(key); it != union_memo_.end()) return it->second;
  const uint32_t va = nodes_[a].var;
  const uint32_t vb = nodes_[b].var;
  ZbddRef result;
  if (va < vb) {
    result = node(va, set_union(nodes_[a].lo, b), nodes_[a].hi);
  } else if (vb < va) {
    result = node(vb, set_union(nodes_[b].lo, a), nodes_[b].hi);
  } else {
    result = node(va, set_union(nodes_[a].lo, nodes_[b].lo),
                  set_union(nodes_[a].hi, nodes_[b].hi));
  }
  union_memo_.emplace(key, result);
  return result;
}

ZbddRef ZbddArena::join(ZbddRef a, ZbddRef b) {
  if (a == kZbddEmpty || b == kZbddEmpty) return kZbddEmpty;
  if (a == kZbddUnit) return b;
  if (b == kZbddUnit) return a;
  if (a > b) std::swap(a, b);  // commutative
  const uint64_t key = memo_key(a, b);
  if (const auto it = join_memo_.find(key); it != join_memo_.end()) return it->second;
  const uint32_t va = nodes_[a].var;
  const uint32_t vb = nodes_[b].var;
  ZbddRef result;
  if (va < vb) {
    result = node(va, join(nodes_[a].lo, b), join(nodes_[a].hi, b));
  } else if (vb < va) {
    result = node(vb, join(nodes_[b].lo, a), join(nodes_[b].hi, a));
  } else {
    // Sets gaining `va` come from any pairing where at least one side
    // contributed it.
    const ZbddRef hi = set_union(
        set_union(join(nodes_[a].hi, nodes_[b].hi), join(nodes_[a].hi, nodes_[b].lo)),
        join(nodes_[a].lo, nodes_[b].hi));
    result = node(va, join(nodes_[a].lo, nodes_[b].lo), hi);
  }
  join_memo_.emplace(key, result);
  return result;
}

ZbddRef ZbddArena::without_supersets(ZbddRef f, ZbddRef g) {
  if (g == kZbddEmpty) return f;
  if (f == kZbddEmpty) return kZbddEmpty;
  if (g == kZbddUnit) return kZbddEmpty;  // ∅ subsumes every set
  if (f == kZbddUnit) return contains_empty(g) ? kZbddEmpty : kZbddUnit;
  const uint64_t key = memo_key(f, g);
  if (const auto it = without_memo_.find(key); it != without_memo_.end()) return it->second;
  const uint32_t vf = nodes_[f].var;
  const uint32_t vg = nodes_[g].var;
  ZbddRef result;
  if (vg < vf) {
    // Sets of g containing vg cannot subsume anything in f (f's sets lack vg).
    result = without_supersets(f, nodes_[g].lo);
  } else if (vf < vg) {
    result = node(vf, without_supersets(nodes_[f].lo, g),
                  without_supersets(nodes_[f].hi, g));
  } else {
    // {vf}∪s survives iff no t∈g0 with t⊆s and no {vf}∪u∈g1 with u⊆s.
    const ZbddRef hi =
        without_supersets(without_supersets(nodes_[f].hi, nodes_[g].lo), nodes_[g].hi);
    result = node(vf, without_supersets(nodes_[f].lo, nodes_[g].lo), hi);
  }
  without_memo_.emplace(key, result);
  return result;
}

ZbddRef ZbddArena::minimal(ZbddRef f) {
  if (f == kZbddEmpty || f == kZbddUnit) return f;
  if (const auto it = minimal_memo_.find(f); it != minimal_memo_.end()) return it->second;
  const uint32_t v = nodes_[f].var;
  const ZbddRef m0 = minimal(nodes_[f].lo);
  // A set {v}∪s is minimal iff s is minimal in f1 and no v-free set subsumes it.
  const ZbddRef m1 = without_supersets(minimal(nodes_[f].hi), m0);
  const ZbddRef result = node(v, m0, m1);
  minimal_memo_.emplace(f, result);
  return result;
}

ZbddRef ZbddArena::subsets_with(ZbddRef f, uint32_t var) {
  if (f == kZbddEmpty || f == kZbddUnit) return kZbddEmpty;
  const uint32_t vf = nodes_[f].var;
  if (vf > var) return kZbddEmpty;  // var cannot appear below vf
  if (vf == var) return nodes_[f].hi;
  const uint64_t key = memo_key(f, var);
  if (const auto it = subset_memo_.find(key); it != subset_memo_.end()) return it->second;
  const ZbddRef result =
      node(vf, subsets_with(nodes_[f].lo, var), subsets_with(nodes_[f].hi, var));
  subset_memo_.emplace(key, result);
  return result;
}

bool ZbddArena::contains_empty(ZbddRef f) const {
  while (f != kZbddEmpty && f != kZbddUnit) f = nodes_[f].lo;
  return f == kZbddUnit;
}

size_t ZbddArena::count(ZbddRef f) const {
  std::unordered_map<ZbddRef, size_t> memo;
  const auto saturating_add = [](size_t a, size_t b) {
    return a > std::numeric_limits<size_t>::max() - b
               ? std::numeric_limits<size_t>::max()
               : a + b;
  };
  // Iterative post-order to keep deep diagrams off the call stack.
  std::vector<ZbddRef> stack{f};
  while (!stack.empty()) {
    const ZbddRef cur = stack.back();
    if (cur == kZbddEmpty || cur == kZbddUnit || memo.contains(cur)) {
      stack.pop_back();
      continue;
    }
    const ZbddRef lo = nodes_[cur].lo;
    const ZbddRef hi = nodes_[cur].hi;
    const auto value_of = [&](ZbddRef r) -> const size_t* {
      if (r == kZbddEmpty) {
        static constexpr size_t kZero = 0;
        return &kZero;
      }
      if (r == kZbddUnit) {
        static constexpr size_t kOne = 1;
        return &kOne;
      }
      const auto it = memo.find(r);
      return it == memo.end() ? nullptr : &it->second;
    };
    const size_t* lo_count = value_of(lo);
    const size_t* hi_count = value_of(hi);
    if (lo_count != nullptr && hi_count != nullptr) {
      memo.emplace(cur, saturating_add(*lo_count, *hi_count));
      stack.pop_back();
    } else {
      if (lo_count == nullptr) stack.push_back(lo);
      if (hi_count == nullptr) stack.push_back(hi);
    }
  }
  if (f == kZbddEmpty) return 0;
  if (f == kZbddUnit) return 1;
  return memo.at(f);
}

namespace {

void enumerate_into(const ZbddArena& arena, ZbddRef f, std::vector<uint32_t>& prefix,
                    std::vector<std::vector<uint32_t>>& out) {
  if (f == kZbddEmpty) return;
  if (f == kZbddUnit) {
    out.push_back(prefix);
    return;
  }
  enumerate_into(arena, arena.lo(f), prefix, out);
  prefix.push_back(arena.var(f));
  enumerate_into(arena, arena.hi(f), prefix, out);
  prefix.pop_back();
}

}  // namespace

std::vector<std::vector<uint32_t>> ZbddArena::enumerate(ZbddRef f) const {
  std::vector<std::vector<uint32_t>> out;
  std::vector<uint32_t> prefix;
  enumerate_into(*this, f, prefix, out);
  return out;
}

}  // namespace decisive::fta
