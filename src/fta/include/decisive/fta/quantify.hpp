// Exact probabilistic quantification of a synthesised fault tree.
//
// The seed quantifies with the rare-event approximation (sum of cut-set
// probabilities, silently saturated at 1.0). Here the minimal cut family is
// rebuilt as a ZBDD and evaluated exactly by Shannon decomposition (Rauzy's
// recursion over the monotone structure function), so overlapping cut sets
// are not double-counted:
//   P(f) = p_x · P(minimal(hi ∪ lo)) + (1 − p_x) · P(lo)
// For a coherent tree the exact value never exceeds the rare-event bound —
// an invariant the tests and bench_ext_fta assert on every subject.
//
// Importance measures per basic event, all from conditioned re-evaluations:
//   Birnbaum        B_i  = P(top | p_i = 1) − P(top | p_i = 0)
//   Fussell–Vesely  FV_i = P(∪ cuts containing i) / P(top)      (exact)
//   RAW             RAW_i = P(top | p_i = 1) / P(top)
//   RRW             RRW_i = P(top) / P(top | p_i = 0)
// Degenerate inputs stay finite: P(top) = 0 yields FV = 0, RAW = RRW = 1;
// a component whose repair drives P(top | p_i = 0) to zero is flagged
// `indispensable` (RRW diverges) instead of returning Inf.
#pragma once

#include <string>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::fta {

struct ImportanceRow {
  ssam::ObjectId component = model::kNullObject;
  std::string label;
  double probability = 0.0;  ///< basic-event failure probability over the mission
  double birnbaum = 0.0;
  double fussell_vesely = 0.0;
  double raw = 1.0;  ///< risk achievement worth
  double rrw = 1.0;  ///< risk reduction worth (0 when indispensable)
  bool indispensable = false;
};

struct Quantification {
  double exact_probability = 0.0;   ///< BDD Shannon-decomposition value
  double rare_event_bound = 0.0;    ///< Σ cut-set probabilities (uncapped form capped at 1)
  std::vector<ImportanceRow> importance;  ///< FV-descending, then component id
};

/// Quantifies a fault tree's minimal cut sets over `mission_hours`.
Quantification quantify(const core::FaultTree& tree, double mission_hours);

/// Cut sets as a CSV table: order, members, rare-event cut probability. A
/// truncated tree gains a trailing warning row so the cap is never silent.
CsvTable cut_sets_csv(const core::FaultTree& tree, double mission_hours);

}  // namespace decisive::fta
