// ISO 26262 latent/multi-point fault classification (the LFM sibling of the
// FMEDA's SPFM), driven by the FTA minimal cut sets.
//
// The graph FMEA answers "is this loss mode a single-point fault?"; the cut
// sets answer the next question — at what order does a loss mode become
// dangerous in combination? A loss mode of a component whose minimal cut
// order is ≥ 2 is a multi-point fault: its FIT splits into
//   detected  — caught by the deployed safety mechanism (mode_fit × DC),
//   perceived — residual of modes the driver notices (`perceived` attribute
//               on the FailureMode),
//   latent    — residual of everything else: present, undetected, waiting
//               for the second fault.
// The Latent Fault Metric follows ISO 26262-5:
//   LFM = 1 − λ_latent / (λ_relevant − λ_SPF,residual)
// where λ_relevant sums the loss-mode FIT of every cut-participating
// component. The denominator is FTA-scoped on purpose: the graph FMEA marks
// redundant components' loss rows safety_related = false, so the SPFM
// denominator would miss exactly the rows LFM is about.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "decisive/core/fmeda.hpp"
#include "decisive/core/fta.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::fta {

enum class FaultClass {
  NotInvolved,         ///< not a loss mode, or not in any minimal cut
  SinglePoint,         ///< minimal cut order 1 (SPFM territory)
  MultiPointDetected,  ///< order ≥ 2, fully covered by the deployed SM
  MultiPointPerceived, ///< order ≥ 2, residual noticed by the driver
  MultiPointLatent,    ///< order ≥ 2, residual undetected and unperceived
};

std::string_view to_string(FaultClass cls) noexcept;

/// Per-FMEA-row classification.
struct LfmRow {
  size_t row_index = 0;  ///< into FmedaResult::rows
  FaultClass cls = FaultClass::NotInvolved;
  size_t min_cut_order = 0;  ///< 0 = component absent from every cut
  double detected_fit = 0.0;
  double perceived_fit = 0.0;
  double latent_fit = 0.0;
};

struct LfmResult {
  std::vector<LfmRow> rows;  ///< one per FMEA row, same order
  double single_point_residual_fit = 0.0;  ///< λ_SPF,residual over order-1 rows
  double multi_point_fit = 0.0;            ///< Σ mode_fit over order ≥ 2 rows
  double detected_fit = 0.0;
  double perceived_fit = 0.0;
  double latent_fit = 0.0;
  double denominator_fit = 0.0;  ///< λ_relevant − λ_SPF,residual

  /// True when at least one loss mode sits in an order ≥ 2 minimal cut.
  [[nodiscard]] bool has_multi_point() const;

  /// The Latent Fault Metric. Convention: 1.0 when there are no multi-point
  /// faults or the denominator is empty — check has_multi_point() before
  /// presenting it as an achievement (asil_label() does).
  [[nodiscard]] double lfm() const;

  /// achieved_asil_lfm(lfm()) when multi-point faults exist,
  /// "no multi-point faults" otherwise.
  [[nodiscard]] std::string asil_label() const;

  /// Human-readable classification summary.
  [[nodiscard]] std::string to_text() const;
};

/// Classifies every FMEA row against the tree's minimal cut sets. Rows match
/// cut members by component identity (`FmedaRow::component_id`); the failure
/// mode's nature and `perceived` attribute are read back from the model.
LfmResult classify_latent(const ssam::SsamModel& ssam, const core::FaultTree& tree,
                          const core::FmedaResult& fmea);

/// Writes the LFM onto the FMEDA (`FmedaResult::latent_fault_metric`), so
/// downstream consumers render SPFM and LFM side by side.
void apply_lfm(core::FmedaResult& fmea, const LfmResult& lfm);

/// Per-row weights for the PR-5 Pareto engine (`ParetoOptions::row_weights`):
/// 1.0 on multi-point loss rows, 0.0 elsewhere. The weighted objective then
/// maximises the detected fraction of multi-point FIT — a conservative lower
/// bound on the LFM (perceived residuals count against it).
std::vector<double> lfm_row_weights(const LfmResult& lfm);

}  // namespace decisive::fta
