// ZBDD minimal-cut-set synthesis over the component flow graph.
//
// The seed `core::synthesize_fault_tree` enumerates every input→output path
// (exponential) and screens k-subsets up to order 3. This engine instead
// Shannon-decomposes the structure function directly on the flow graph: pick
// the first free component on a live path, and the minimal cut sets are
//   node(c, F[c perfect], F[c failed] \ supersets(F[c perfect]))
// with two terminal checks per state — "already disconnected" ({∅}) and
// "permanently connected through unfailable/perfect vertices" ({}). States
// are memoised on their (live vertices, perfect components, order budget)
// signature, so redundant lattices collapse to polynomially many distinct
// subproblems where enumeration explodes.
//
// The result is a `core::FaultTree` identical (cut sets, labels, rates) to
// the oracle's on every input where the oracle completes — enforced by
// property tests and the bench_ext_fta identity gate.
#pragma once

#include "decisive/core/fta.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::fta {

struct ZbddFtaOptions {
  /// Minimal cut sets larger than this are suppressed (0 = unbounded). When
  /// the bound clips the synthesis the returned tree has `truncated` set:
  /// minimal cut sets above the bound MAY exist (the flag is conservative —
  /// suppression is detected before the sub-state is fully explored).
  size_t max_order = 0;
};

/// Synthesises the fault tree for the loss of `component`'s function via
/// ZBDD decomposition. Same contract as `core::synthesize_fault_tree`
/// (labels, rates, AnalysisError without boundary IONodes) but never
/// enumerates paths, so dense graphs with order-4/5 cuts stay tractable.
core::FaultTree synthesize_fault_tree_zbdd(const ssam::SsamModel& ssam,
                                           ssam::ObjectId component,
                                           const ZbddFtaOptions& options = {});

}  // namespace decisive::fta
