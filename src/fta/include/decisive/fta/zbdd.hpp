// Zero-suppressed binary decision diagrams (Minato ZBDDs) specialised for
// minimal-cut-set manipulation. A ZBDD node (var, lo, hi) represents the
// family of sets lo ∪ {s ∪ {var} : s ∈ hi}; the zero-suppression rule
// (hi == ∅ ⇒ node ≡ lo) makes sparse set families canonical, so families of
// cut sets over hundreds of components stay polynomial even when their
// explicit enumeration is exponential.
//
// The arena owns every node; ZbddRef values are indices into it. Two
// terminals are fixed: kZbddEmpty (the empty family {}) and kZbddUnit (the
// family containing only the empty set, {∅}). Variables are ordered by
// their integer id: smaller id = closer to the root. All operations are
// memoised in the arena, so repeated subproblems — the heart of ZBDD
// efficiency — cost one hash lookup.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace decisive::fta {

using ZbddRef = uint32_t;

/// Terminal ∅ — the empty family (no set at all).
inline constexpr ZbddRef kZbddEmpty = 0;
/// Terminal {∅} — the family holding exactly the empty set.
inline constexpr ZbddRef kZbddUnit = 1;

class ZbddArena {
 public:
  ZbddArena();

  /// Canonical node constructor: applies the zero-suppression rule
  /// (hi == kZbddEmpty returns lo) and hash-conses through the unique table.
  ZbddRef node(uint32_t var, ZbddRef lo, ZbddRef hi);

  /// The family {{var}}.
  ZbddRef single(uint32_t var);

  /// Family union.
  ZbddRef set_union(ZbddRef a, ZbddRef b);

  /// Cross-product join: {s ∪ t : s ∈ a, t ∈ b}.
  ZbddRef join(ZbddRef a, ZbddRef b);

  /// Removes from `f` every set that is a superset of (or equal to) some set
  /// in `g` — Minato's subsumption difference, the workhorse of minimal-cut
  /// maintenance. Non-strict: a set of `f` also present in `g` is dropped.
  ZbddRef without_supersets(ZbddRef f, ZbddRef g);

  /// The minimal sets of `f` (no member is a superset of another member).
  ZbddRef minimal(ZbddRef f);

  /// minimal(a ∪ b) — union of two already-minimal families, re-minimised.
  ZbddRef min_union(ZbddRef a, ZbddRef b) { return minimal(set_union(a, b)); }

  /// {s \ {var} : s ∈ f, var ∈ s} — the subfamily containing `var`, with
  /// `var` removed (Minato's "subset1"). Used for exact Fussell–Vesely.
  ZbddRef subsets_with(ZbddRef f, uint32_t var);

  /// True when ∅ ∈ f (the lo-chain reaches kZbddUnit).
  [[nodiscard]] bool contains_empty(ZbddRef f) const;

  /// Number of sets in the family, saturating at SIZE_MAX.
  [[nodiscard]] size_t count(ZbddRef f) const;

  /// Materialises every set of the family (each sorted by variable id).
  /// Only call on families known to be small — this is exponential by design.
  [[nodiscard]] std::vector<std::vector<uint32_t>> enumerate(ZbddRef f) const;

  [[nodiscard]] uint32_t var(ZbddRef f) const { return nodes_[f].var; }
  [[nodiscard]] ZbddRef lo(ZbddRef f) const { return nodes_[f].lo; }
  [[nodiscard]] ZbddRef hi(ZbddRef f) const { return nodes_[f].hi; }
  [[nodiscard]] size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    uint32_t var;
    ZbddRef lo;
    ZbddRef hi;
  };
  struct Key {
    uint32_t var;
    ZbddRef lo;
    ZbddRef hi;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // FNV-1a over the three fields: cheap and collision-safe in concert
      // with Key::operator== (the table never trusts the hash alone).
      uint64_t h = 1469598103934665603ull;
      for (const uint64_t v : {uint64_t{k.var}, uint64_t{k.lo}, uint64_t{k.hi}}) {
        h = (h ^ v) * 1099511628211ull;
      }
      return static_cast<size_t>(h);
    }
  };

  static uint64_t memo_key(ZbddRef a, ZbddRef b) {
    return (uint64_t{a} << 32) | uint64_t{b};
  }

  std::vector<Node> nodes_;
  std::unordered_map<Key, ZbddRef, KeyHash> unique_;
  std::unordered_map<uint64_t, ZbddRef> union_memo_;
  std::unordered_map<uint64_t, ZbddRef> join_memo_;
  std::unordered_map<uint64_t, ZbddRef> without_memo_;
  std::unordered_map<ZbddRef, ZbddRef> minimal_memo_;
  std::unordered_map<uint64_t, ZbddRef> subset_memo_;
};

}  // namespace decisive::fta
