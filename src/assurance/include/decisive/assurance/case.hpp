// Model-based assurance cases — the ACME/SACM substitute (paper Section V-C).
//
// An AssuranceCase is a tree of claims (goals), argument strategies, context
// and artifact references. An ArtifactReference carries an executable query
// over an external artefact (e.g. the generated FMEDA spreadsheet): when the
// design changes, re-evaluating the case re-runs the queries, which is what
// makes automated assurance-case validation possible.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decisive::assurance {

enum class NodeKind {
  Claim,              ///< a goal / safety claim
  ArgumentReasoning,  ///< a strategy decomposing a claim
  Context,            ///< contextual information (never evaluated)
  ArtifactReference,  ///< evidence with an executable acceptance query
};

std::string_view to_string(NodeKind kind) noexcept;

struct Node {
  NodeKind kind = NodeKind::Claim;
  std::string id;
  std::string statement;
  std::vector<std::string> children;  ///< supported-by links (node ids)

  // ArtifactReference only:
  std::string artifact_location;  ///< external model location (file/dir)
  std::string artifact_type;      ///< driver hint ("csv", "workbook", ...)
  std::string query;              ///< boolean acceptance query over the artefact
};

/// A structured assurance case. Node ids are unique; the first added node is
/// the root claim.
class AssuranceCase {
 public:
  explicit AssuranceCase(std::string name);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Adds a claim; when `parent` is non-empty the claim supports it.
  /// Throws ModelError on duplicate ids or unknown parents.
  Node& add_claim(std::string id, std::string statement, std::string_view parent = "");
  Node& add_strategy(std::string id, std::string statement, std::string_view parent);
  Node& add_context(std::string id, std::string statement, std::string_view parent);

  /// Adds evidence: an artifact reference with an executable query returning
  /// a boolean.
  Node& add_artifact(std::string id, std::string statement, std::string_view parent,
                     std::string location, std::string type, std::string query);

  [[nodiscard]] const Node* find(std::string_view id) const noexcept;
  [[nodiscard]] Node* find(std::string_view id) noexcept;

  /// The root node (first added); throws ModelError when the case is empty.
  [[nodiscard]] const Node& root() const;

  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }

  /// SACM-style XML round-trip.
  [[nodiscard]] std::string to_xml() const;
  static AssuranceCase from_xml(std::string_view text);

 private:
  Node& add(NodeKind kind, std::string id, std::string statement, std::string_view parent);

  std::string name_;
  std::vector<Node> nodes_;
};

}  // namespace decisive::assurance
