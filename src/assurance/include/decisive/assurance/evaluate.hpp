// Automated assurance-case evaluation — the ACME behaviour the paper uses to
// close the loop: "when our design changes, it is reflected in the FMEDA
// result, which can in turn be automatically checked by ACME (by executing
// the query)".
#pragma once

#include <string>
#include <vector>

#include "decisive/assurance/case.hpp"
#include "decisive/query/query.hpp"

namespace decisive::assurance {

enum class ClaimState {
  Supported,    ///< all supporting evidence holds
  Defeated,     ///< some evidence query returned false or failed
  Undeveloped,  ///< no supporting evidence reachable
};

std::string_view to_string(ClaimState state) noexcept;

struct NodeResult {
  std::string id;
  ClaimState state = ClaimState::Undeveloped;
  std::string detail;  ///< query outcome / failure diagnostic
};

struct EvaluationReport {
  std::vector<NodeResult> results;
  bool case_supported = false;

  [[nodiscard]] const NodeResult* result_for(std::string_view id) const noexcept;
};

/// Evaluates the case from its root claim:
///  - ArtifactReference: open the artefact through the driver registry, bind
///    it (plus `extra` variables/functions, e.g. `target_spfm`), evaluate the
///    query; a true result is Supported, false/failed is Defeated;
///  - Claim / ArgumentReasoning: Supported when all evaluated children are
///    Supported and at least one exists; Defeated when any child is
///    Defeated; Undeveloped otherwise (Context children are ignored);
///  - Context: never evaluated.
EvaluationReport evaluate(const AssuranceCase& assurance_case,
                          const query::Env* extra = nullptr);

}  // namespace decisive::assurance
