// GSN (Goal Structuring Notation) rendering of assurance cases.
//
// GSN is the argument notation co-authored by the paper's last author (Kelly
// et al.); rendering the SACM-style case in GSN shapes makes the generated
// arguments reviewable with standard tooling:
//   Claim              -> Goal        (rectangle)
//   ArgumentReasoning  -> Strategy    (parallelogram)
//   Context            -> Context     (rounded rectangle)
//   ArtifactReference  -> Solution    (circle)
// When an EvaluationReport is supplied, nodes are coloured by their state
// (supported green, defeated red, undeveloped grey) so a failed automated
// re-evaluation is visible at a glance.
#pragma once

#include <string>

#include "decisive/assurance/case.hpp"
#include "decisive/assurance/evaluate.hpp"

namespace decisive::assurance {

/// Renders the case as a Graphviz DOT digraph.
std::string to_gsn_dot(const AssuranceCase& assurance_case,
                       const EvaluationReport* report = nullptr);

/// Renders the case as an indented text outline (goals with their
/// supporting structure), annotated with evaluation states when available.
std::string to_gsn_text(const AssuranceCase& assurance_case,
                        const EvaluationReport* report = nullptr);

}  // namespace decisive::assurance
