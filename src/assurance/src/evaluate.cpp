#include "decisive/assurance/evaluate.hpp"

#include <map>

#include "decisive/base/error.hpp"
#include "decisive/drivers/datasource.hpp"

namespace decisive::assurance {

std::string_view to_string(ClaimState state) noexcept {
  switch (state) {
    case ClaimState::Supported: return "Supported";
    case ClaimState::Defeated: return "Defeated";
    case ClaimState::Undeveloped: return "Undeveloped";
  }
  return "Undeveloped";
}

const NodeResult* EvaluationReport::result_for(std::string_view id) const noexcept {
  for (const auto& result : results) {
    if (result.id == id) return &result;
  }
  return nullptr;
}

namespace {

class Evaluator {
 public:
  Evaluator(const AssuranceCase& assurance_case, const query::Env* extra)
      : case_(assurance_case), extra_(extra) {}

  EvaluationReport run() {
    EvaluationReport report;
    const ClaimState root_state = evaluate_node(case_.root().id);
    for (auto& [id, result] : states_) report.results.push_back(result);
    report.case_supported = root_state == ClaimState::Supported;
    return report;
  }

 private:
  ClaimState evaluate_node(const std::string& id) {
    if (const auto it = states_.find(id); it != states_.end()) return it->second.state;
    // Guard against reference cycles: mark in-progress as Undeveloped.
    states_[id] = NodeResult{id, ClaimState::Undeveloped, "in progress"};

    const Node* node = case_.find(id);
    NodeResult result{id, ClaimState::Undeveloped, ""};
    if (node == nullptr) {
      result.state = ClaimState::Defeated;
      result.detail = "dangling supportedBy reference";
    } else if (node->kind == NodeKind::ArtifactReference) {
      result = evaluate_artifact(*node);
    } else if (node->kind == NodeKind::Context) {
      result.state = ClaimState::Supported;
      result.detail = "context";
    } else {
      size_t evaluated = 0;
      size_t supported = 0;
      bool defeated = false;
      for (const auto& child_id : node->children) {
        const Node* child = case_.find(child_id);
        if (child != nullptr && child->kind == NodeKind::Context) continue;
        ++evaluated;
        const ClaimState child_state = evaluate_node(child_id);
        if (child_state == ClaimState::Supported) ++supported;
        if (child_state == ClaimState::Defeated) defeated = true;
      }
      if (defeated) {
        result.state = ClaimState::Defeated;
        result.detail = "a supporting element is defeated";
      } else if (evaluated == 0) {
        result.state = ClaimState::Undeveloped;
        result.detail = "no supporting evidence";
      } else if (supported == evaluated) {
        result.state = ClaimState::Supported;
      } else {
        result.state = ClaimState::Undeveloped;
        result.detail = "supporting elements are undeveloped";
      }
    }
    states_[id] = result;
    return result.state;
  }

  NodeResult evaluate_artifact(const Node& node) {
    NodeResult result{node.id, ClaimState::Defeated, ""};
    try {
      const auto source = drivers::DriverRegistry::global().open(node.artifact_location,
                                                                 node.artifact_type);
      // Caller-provided context (e.g. `target_spfm`) underneath the artefact
      // binding, which wins on name clashes.
      query::Env env = extra_ != nullptr ? *extra_ : query::Env{};
      source->bind(env);
      query::Value value = run_query(node, env);
      if (value.is_bool() && value.as_bool()) {
        result.state = ClaimState::Supported;
        result.detail = "query returned true";
      } else {
        result.state = ClaimState::Defeated;
        result.detail = "query returned " + value.to_display();
      }
    } catch (const Error& error) {
      result.state = ClaimState::Defeated;
      result.detail = error.what();
    }
    return result;
  }

  query::Value run_query(const Node& node, query::Env& env) {
    return query::eval(node.query, env);
  }

  const AssuranceCase& case_;
  const query::Env* extra_;
  std::map<std::string, NodeResult> states_;
};

}  // namespace

EvaluationReport evaluate(const AssuranceCase& assurance_case, const query::Env* extra) {
  return Evaluator(assurance_case, extra).run();
}

}  // namespace decisive::assurance
