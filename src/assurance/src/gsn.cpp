#include "decisive/assurance/gsn.hpp"

#include <set>

#include "decisive/base/xml.hpp"

namespace decisive::assurance {

namespace {

const char* shape_for(NodeKind kind) {
  switch (kind) {
    case NodeKind::Claim: return "box";
    case NodeKind::ArgumentReasoning: return "parallelogram";
    case NodeKind::Context: return "box";  // styled rounded below
    case NodeKind::ArtifactReference: return "circle";
  }
  return "box";
}

const char* color_for(const EvaluationReport* report, const std::string& id) {
  if (report == nullptr) return "white";
  const NodeResult* result = report->result_for(id);
  if (result == nullptr) return "white";
  switch (result->state) {
    case ClaimState::Supported: return "palegreen";
    case ClaimState::Defeated: return "lightcoral";
    case ClaimState::Undeveloped: return "lightgrey";
  }
  return "white";
}

std::string escape_label(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void render_text(const AssuranceCase& ac, const EvaluationReport* report,
                 const std::string& id, int depth, std::set<std::string>& visited,
                 std::string& out) {
  const Node* node = ac.find(id);
  out.append(static_cast<size_t>(depth) * 2, ' ');
  if (node == nullptr) {
    out += "!? " + id + " (dangling)\n";
    return;
  }
  switch (node->kind) {
    case NodeKind::Claim: out += "[G] "; break;
    case NodeKind::ArgumentReasoning: out += "[S] "; break;
    case NodeKind::Context: out += "[C] "; break;
    case NodeKind::ArtifactReference: out += "(Sn) "; break;
  }
  out += node->id + ": " + node->statement;
  if (report != nullptr) {
    if (const NodeResult* result = report->result_for(id)) {
      out += "  <" + std::string(to_string(result->state)) + ">";
    }
  }
  out += '\n';
  if (!visited.insert(id).second) return;  // cycle guard
  for (const auto& child : node->children) {
    render_text(ac, report, child, depth + 1, visited, out);
  }
  visited.erase(id);
}

}  // namespace

std::string to_gsn_dot(const AssuranceCase& assurance_case, const EvaluationReport* report) {
  std::string out = "digraph \"" + escape_label(assurance_case.name()) + "\" {\n";
  out += "  rankdir=TB;\n  node [fontname=\"Helvetica\", fontsize=10];\n";
  for (const auto& node : assurance_case.nodes()) {
    out += "  \"" + escape_label(node.id) + "\" [shape=" + shape_for(node.kind);
    if (node.kind == NodeKind::Context) out += ", style=\"rounded,filled\"";
    else out += ", style=filled";
    out += ", fillcolor=" + std::string(color_for(report, node.id));
    out += ", label=\"" + escape_label(node.id) + "\\n" + escape_label(node.statement) +
           "\"];\n";
  }
  for (const auto& node : assurance_case.nodes()) {
    for (const auto& child : node.children) {
      const Node* target = assurance_case.find(child);
      const bool in_context = target != nullptr && target->kind == NodeKind::Context;
      out += "  \"" + escape_label(node.id) + "\" -> \"" + escape_label(child) + "\"";
      // GSN: SupportedBy = solid filled arrow; InContextOf = hollow arrow.
      out += in_context ? " [arrowhead=empty, style=dashed];\n" : " [arrowhead=normal];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string to_gsn_text(const AssuranceCase& assurance_case, const EvaluationReport* report) {
  std::string out;
  std::set<std::string> visited;
  render_text(assurance_case, report, assurance_case.root().id, 0, visited, out);
  return out;
}

}  // namespace decisive::assurance
