#include "decisive/assurance/case.hpp"

#include "decisive/base/error.hpp"
#include "decisive/base/xml.hpp"

namespace decisive::assurance {

std::string_view to_string(NodeKind kind) noexcept {
  switch (kind) {
    case NodeKind::Claim: return "Claim";
    case NodeKind::ArgumentReasoning: return "ArgumentReasoning";
    case NodeKind::Context: return "Context";
    case NodeKind::ArtifactReference: return "ArtifactReference";
  }
  return "Claim";
}

namespace {
NodeKind kind_from_string(std::string_view name) {
  if (name == "Claim") return NodeKind::Claim;
  if (name == "ArgumentReasoning") return NodeKind::ArgumentReasoning;
  if (name == "Context") return NodeKind::Context;
  if (name == "ArtifactReference") return NodeKind::ArtifactReference;
  throw ParseError("unknown assurance node kind '" + std::string(name) + "'");
}
}  // namespace

AssuranceCase::AssuranceCase(std::string name) : name_(std::move(name)) {}

Node& AssuranceCase::add(NodeKind kind, std::string id, std::string statement,
                         std::string_view parent) {
  if (find(id) != nullptr) throw ModelError("duplicate assurance node id '" + id + "'");
  if (!parent.empty()) {
    Node* p = find(parent);
    if (p == nullptr) throw ModelError("unknown parent node '" + std::string(parent) + "'");
    p->children.push_back(id);
  }
  nodes_.push_back(Node{kind, std::move(id), std::move(statement), {}, "", "", ""});
  return nodes_.back();
}

Node& AssuranceCase::add_claim(std::string id, std::string statement, std::string_view parent) {
  return add(NodeKind::Claim, std::move(id), std::move(statement), parent);
}

Node& AssuranceCase::add_strategy(std::string id, std::string statement,
                                  std::string_view parent) {
  return add(NodeKind::ArgumentReasoning, std::move(id), std::move(statement), parent);
}

Node& AssuranceCase::add_context(std::string id, std::string statement,
                                 std::string_view parent) {
  return add(NodeKind::Context, std::move(id), std::move(statement), parent);
}

Node& AssuranceCase::add_artifact(std::string id, std::string statement,
                                  std::string_view parent, std::string location,
                                  std::string type, std::string query) {
  Node& node = add(NodeKind::ArtifactReference, std::move(id), std::move(statement), parent);
  node.artifact_location = std::move(location);
  node.artifact_type = std::move(type);
  node.query = std::move(query);
  return node;
}

const Node* AssuranceCase::find(std::string_view id) const noexcept {
  for (const auto& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

Node* AssuranceCase::find(std::string_view id) noexcept {
  for (auto& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

const Node& AssuranceCase::root() const {
  if (nodes_.empty()) throw ModelError("assurance case '" + name_ + "' is empty");
  return nodes_.front();
}

std::string AssuranceCase::to_xml() const {
  xml::Element root_el;
  root_el.name = "assuranceCase";
  root_el.set_attribute("name", name_);
  for (const auto& node : nodes_) {
    xml::Element& el = root_el.add_child("node");
    el.set_attribute("kind", std::string(to_string(node.kind)));
    el.set_attribute("id", node.id);
    el.set_attribute("statement", node.statement);
    if (node.kind == NodeKind::ArtifactReference) {
      el.set_attribute("location", node.artifact_location);
      el.set_attribute("type", node.artifact_type);
      xml::Element& q = el.add_child("query");
      q.text = node.query;
    }
    for (const auto& child : node.children) {
      el.add_child("supportedBy").set_attribute("ref", child);
    }
  }
  return xml::write(root_el);
}

AssuranceCase AssuranceCase::from_xml(std::string_view text) {
  const auto root_el = xml::parse(text);
  if (root_el->name != "assuranceCase") {
    throw ParseError("expected <assuranceCase> document root");
  }
  AssuranceCase out(root_el->attribute_or("name", "case"));
  for (const auto& el : root_el->children) {
    if (el->name != "node") continue;
    Node node;
    node.kind = kind_from_string(el->attribute_or("kind", "Claim"));
    node.id = el->attribute_or("id", "");
    node.statement = el->attribute_or("statement", "");
    node.artifact_location = el->attribute_or("location", "");
    node.artifact_type = el->attribute_or("type", "");
    if (const xml::Element* q = el->child("query")) node.query = q->text;
    for (const xml::Element* s : el->children_named("supportedBy")) {
      node.children.push_back(s->attribute_or("ref", ""));
    }
    if (node.id.empty()) throw ParseError("assurance node without id");
    if (out.find(node.id) != nullptr) throw ParseError("duplicate node id '" + node.id + "'");
    out.nodes_.push_back(std::move(node));
  }
  return out;
}

}  // namespace decisive::assurance
