#include "decisive/base/xml.hpp"

#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::xml {

const std::string* Element::attribute(std::string_view attr_name) const noexcept {
  for (const auto& [k, v] : attributes) {
    if (k == attr_name) return &v;
  }
  return nullptr;
}

std::string Element::attribute_or(std::string_view attr_name, std::string_view fallback) const {
  const std::string* value = attribute(attr_name);
  return value ? *value : std::string(fallback);
}

const Element* Element::child(std::string_view child_name) const noexcept {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view child_name) const {
  std::vector<const Element*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

Element& Element::add_child(std::string child_name) {
  children.push_back(std::make_unique<Element>());
  children.back()->name = std::move(child_name);
  return *children.back();
}

void Element::set_attribute(std::string attr_name, std::string value) {
  for (auto& [k, v] : attributes) {
    if (k == attr_name) {
      v = std::move(value);
      return;
    }
  }
  attributes.emplace_back(std::move(attr_name), std::move(value));
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Element> parse_document() {
    skip_misc();
    auto root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) fail("trailing content after document element");
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("xml: " + message + " (line " + std::to_string(line) + ")");
  }

  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  char get() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }
  void expect(std::string_view token) {
    if (!consume(token)) fail("expected '" + std::string(token) + "'");
  }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) ++pos_;
  }

  // Skips whitespace, comments, PIs and the XML declaration between nodes.
  void skip_misc() {
    for (;;) {
      skip_ws();
      if (consume("<!--")) {
        const size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<?")) {
        const size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) fail("unterminated processing instruction");
        pos_ = end + 2;
      } else if (consume("<!DOCTYPE")) {
        const size_t end = text_.find('>', pos_);
        if (end == std::string_view::npos) fail("unterminated DOCTYPE");
        pos_ = end + 1;
      } else {
        return;
      }
    }
  }

  static bool is_name_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '-' || c == '.' || c == ':';
  }

  std::string parse_name() {
    const size_t start = pos_;
    while (!eof() && is_name_char(peek())) ++pos_;
    if (pos_ == start) fail("expected a name");
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) fail("unterminated entity reference");
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") out += '&';
      else if (entity == "lt") out += '<';
      else if (entity == "gt") out += '>';
      else if (entity == "quot") out += '"';
      else if (entity == "apos") out += '\'';
      else if (!entity.empty() && entity[0] == '#') {
        long code = 0;
        const std::string_view digits = entity.substr(1);
        if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
          code = std::strtol(std::string(digits.substr(1)).c_str(), nullptr, 16);
        } else {
          code = std::strtol(std::string(digits).c_str(), nullptr, 10);
        }
        if (code <= 0 || code > 0x10FFFF) fail("bad character reference");
        // UTF-8 encode.
        const unsigned long cp = static_cast<unsigned long>(code);
        if (cp < 0x80) {
          out += static_cast<char>(cp);
        } else if (cp < 0x800) {
          out += static_cast<char>(0xC0 | (cp >> 6));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
          out += static_cast<char>(0xE0 | (cp >> 12));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
          out += static_cast<char>(0xF0 | (cp >> 18));
          out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
          out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
          out += static_cast<char>(0x80 | (cp & 0x3F));
        }
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  std::unique_ptr<Element> parse_element() {
    expect("<");
    auto element = std::make_unique<Element>();
    element->name = parse_name();
    // Attributes.
    for (;;) {
      skip_ws();
      if (eof()) fail("unterminated start tag");
      if (consume("/>")) return element;
      if (consume(">")) break;
      std::string attr = parse_name();
      skip_ws();
      expect("=");
      skip_ws();
      const char quote = get();
      if (quote != '"' && quote != '\'') fail("expected quoted attribute value");
      const size_t start = pos_;
      while (!eof() && peek() != quote) ++pos_;
      if (eof()) fail("unterminated attribute value");
      element->attributes.emplace_back(std::move(attr),
                                       decode_entities(text_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
    }
    // Content.
    for (;;) {
      if (eof()) fail("unterminated element '" + element->name + "'");
      if (consume("<!--")) {
        const size_t end = text_.find("-->", pos_);
        if (end == std::string_view::npos) fail("unterminated comment");
        pos_ = end + 3;
      } else if (consume("<![CDATA[")) {
        const size_t end = text_.find("]]>", pos_);
        if (end == std::string_view::npos) fail("unterminated CDATA section");
        element->text.append(text_.substr(pos_, end - pos_));
        pos_ = end + 3;
      } else if (consume("</")) {
        const std::string closing = parse_name();
        if (closing != element->name) {
          fail("mismatched closing tag '" + closing + "' for '" + element->name + "'");
        }
        skip_ws();
        expect(">");
        return element;
      } else if (!eof() && peek() == '<') {
        element->children.push_back(parse_element());
      } else {
        const size_t start = pos_;
        while (!eof() && peek() != '<') ++pos_;
        const std::string chunk = decode_entities(text_.substr(start, pos_ - start));
        const std::string_view trimmed = trim(chunk);
        if (!trimmed.empty()) {
          if (!element->text.empty()) element->text += ' ';
          element->text += trimmed;
        }
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void write_element(const Element& element, int depth, std::string& out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  out += indent;
  out += '<';
  out += element.name;
  for (const auto& [k, v] : element.attributes) {
    out += ' ';
    out += k;
    out += "=\"";
    out += escape(v);
    out += '"';
  }
  if (element.children.empty() && element.text.empty()) {
    out += "/>\n";
    return;
  }
  out += '>';
  if (!element.text.empty()) out += escape(element.text);
  if (!element.children.empty()) {
    out += '\n';
    for (const auto& child : element.children) write_element(*child, depth + 1, out);
    out += indent;
  }
  out += "</";
  out += element.name;
  out += ">\n";
}

}  // namespace

std::unique_ptr<Element> parse(std::string_view text) { return Parser(text).parse_document(); }

std::unique_ptr<Element> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open XML file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string write(const Element& root) {
  std::string out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  write_element(root, 0, out);
  return out;
}

void write_file(const std::string& path, const Element& root) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write XML file '" + path + "'");
  out << write(root);
  if (!out) throw IoError("failed while writing XML file '" + path + "'");
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace decisive::xml
