#include "decisive/base/error.hpp"

namespace decisive {

std::string_view to_string(ErrorKind kind) noexcept {
  switch (kind) {
    case ErrorKind::Parse: return "parse";
    case ErrorKind::Model: return "model";
    case ErrorKind::Io: return "io";
    case ErrorKind::Simulation: return "simulation";
    case ErrorKind::Analysis: return "analysis";
    case ErrorKind::Query: return "query";
    case ErrorKind::Capacity: return "capacity";
    case ErrorKind::Transform: return "transform";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, const std::string& message)
    : std::runtime_error(std::string(to_string(kind)) + " error: " + message), kind_(kind) {}

}  // namespace decisive
