#include "decisive/base/json.hpp"

#include <cmath>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"

namespace decisive::json {

bool Value::as_bool() const {
  if (!is_bool()) throw ParseError("json value is not a boolean");
  return std::get<bool>(data_);
}
double Value::as_number() const {
  if (!is_number()) throw ParseError("json value is not a number");
  return std::get<double>(data_);
}
const std::string& Value::as_string() const {
  if (!is_string()) throw ParseError("json value is not a string");
  return std::get<std::string>(data_);
}
const Array& Value::as_array() const {
  if (!is_array()) throw ParseError("json value is not an array");
  return std::get<Array>(data_);
}
const Object& Value::as_object() const {
  if (!is_object()) throw ParseError("json value is not an object");
  return std::get<Object>(data_);
}
Array& Value::as_array() {
  if (!is_array()) throw ParseError("json value is not an array");
  return std::get<Array>(data_);
}
Object& Value::as_object() {
  if (!is_object()) throw ParseError("json value is not an object");
  return std::get<Object>(data_);
}

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  const auto& obj = std::get<Object>(data_);
  const auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("json: " + message + " (offset " + std::to_string(pos_) + ")");
  }
  [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
  char peek() {
    if (eof()) fail("unexpected end of input");
    return text_[pos_];
  }
  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }
  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }
  bool consume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (consume("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (consume("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (consume("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  Value parse_object() {
    get();  // '{'
    Object obj;
    skip_ws();
    if (peek() == '}') {
      get();
      return Value(std::move(obj));
    }
    for (;;) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      skip_ws();
      if (get() != ':') fail("expected ':'");
      obj[std::move(key)] = parse_value();
      skip_ws();
      const char next = get();
      if (next == '}') return Value(std::move(obj));
      if (next != ',') fail("expected ',' or '}'");
    }
  }

  Value parse_array() {
    get();  // '['
    Array arr;
    skip_ws();
    if (peek() == ']') {
      get();
      return Value(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      const char next = get();
      if (next == ']') return Value(std::move(arr));
      if (next != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    if (get() != '"') fail("expected string");
    std::string out;
    for (;;) {
      const char c = get();
      if (c == '"') return out;
      if (c == '\\') {
        const char esc = get();
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad \\u escape");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    while (!eof()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc() || ptr != token.data() + token.size()) fail("bad number");
    return Value(value);
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void write_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void write_value(const Value& value, int depth, std::string& out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<size_t>(depth + 1) * 2, ' ');
  if (value.is_null()) {
    out += "null";
  } else if (value.is_bool()) {
    out += value.as_bool() ? "true" : "false";
  } else if (value.is_number()) {
    const double d = value.as_number();
    if (d == std::floor(d) && std::abs(d) < 1e15) {
      out += std::to_string(static_cast<long long>(d));
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", d);
      out += buffer;
    }
  } else if (value.is_string()) {
    write_string(value.as_string(), out);
  } else if (value.is_array()) {
    const auto& arr = value.as_array();
    if (arr.empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (size_t i = 0; i < arr.size(); ++i) {
      out += inner;
      write_value(arr[i], depth + 1, out);
      if (i + 1 < arr.size()) out += ',';
      out += '\n';
    }
    out += indent + "]";
  } else {
    const auto& obj = value.as_object();
    if (obj.empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    size_t i = 0;
    for (const auto& [k, v] : obj) {
      out += inner;
      write_string(k, out);
      out += ": ";
      write_value(v, depth + 1, out);
      if (++i < obj.size()) out += ',';
      out += '\n';
    }
    out += indent + "}";
  }
}

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

Value parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open JSON file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

std::string write(const Value& value) {
  std::string out;
  write_value(value, 0, out);
  out += '\n';
  return out;
}

}  // namespace decisive::json
