#include "decisive/base/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "decisive/base/error.hpp"

namespace decisive {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v';
}
}  // namespace

std::string_view trim(std::string_view text) noexcept {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && is_space(text[begin])) ++begin;
  while (end > begin && is_space(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      pieces.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return pieces;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) noexcept {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) out += sep;
    out += pieces[i];
  }
  return out;
}

double parse_double(std::string_view text) {
  const std::string_view t = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw ParseError("expected a number, got '" + std::string(text) + "'");
  }
  return value;
}

long long parse_int(std::string_view text) {
  const std::string_view t = trim(text);
  long long value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw ParseError("expected an integer, got '" + std::string(text) + "'");
  }
  return value;
}

bool parse_bool(std::string_view text) {
  const std::string_view t = trim(text);
  if (iequals(t, "true") || t == "1") return true;
  if (iequals(t, "false") || t == "0") return false;
  throw ParseError("expected a boolean, got '" + std::string(text) + "'");
}

std::string format_number(double value, int max_decimals) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", max_decimals, value);
  std::string out(buffer);
  if (out.find('.') != std::string::npos) {
    while (!out.empty() && out.back() == '0') out.pop_back();
    if (!out.empty() && out.back() == '.') out.pop_back();
  }
  if (out == "-0") out = "0";
  return out;
}

std::string format_percent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f%%", decimals, fraction * 100.0);
  return std::string(buffer);
}

}  // namespace decisive
