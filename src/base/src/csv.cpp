#include "decisive/base/csv.hpp"

#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive {

int CsvTable::column(std::string_view name) const noexcept {
  for (size_t i = 0; i < header.size(); ++i) {
    if (iequals(header[i], name)) return static_cast<int>(i);
  }
  return -1;
}

const std::string& CsvTable::at(size_t row, std::string_view column_name) const {
  const int col = column(column_name);
  if (col < 0) throw ModelError("csv table has no column '" + std::string(column_name) + "'");
  if (row >= rows.size()) throw ModelError("csv row index out of range");
  const auto& r = rows[row];
  if (static_cast<size_t>(col) >= r.size()) {
    static const std::string kEmpty;
    return kEmpty;
  }
  return r[static_cast<size_t>(col)];
}

CsvTable parse_csv(std::string_view text, char sep) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    record.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(record));
    record.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"' && field.empty() && !field_started) {
      in_quotes = true;
      field_started = true;
    } else if (c == sep) {
      end_field();
    } else if (c == '\r') {
      // swallow; \n handles the record break
    } else if (c == '\n') {
      end_record();
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) throw ParseError("unterminated quoted field in CSV");
  if (field_started || !field.empty() || !record.empty()) end_record();

  CsvTable table;
  if (records.empty()) return table;
  table.header = std::move(records.front());
  for (auto& h : table.header) h = std::string(trim(h));
  table.rows.assign(std::make_move_iterator(records.begin() + 1),
                    std::make_move_iterator(records.end()));
  // Drop fully-empty trailing rows (common artefact of trailing newlines).
  while (!table.rows.empty()) {
    const auto& last = table.rows.back();
    bool all_empty = true;
    for (const auto& cell : last) {
      if (!trim(cell).empty()) { all_empty = false; break; }
    }
    if (!all_empty) break;
    table.rows.pop_back();
  }
  return table;
}

CsvTable read_csv_file(const std::string& path, char sep) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open CSV file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_csv(buffer.str(), sep);
}

namespace {
std::string quote_if_needed(const std::string& cell, char sep) {
  const bool needs =
      cell.find(sep) != std::string::npos || cell.find('"') != std::string::npos ||
      cell.find('\n') != std::string::npos || cell.find('\r') != std::string::npos;
  if (!needs) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string write_csv(const CsvTable& table, char sep) {
  std::string out;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += sep;
      out += quote_if_needed(row[i], sep);
    }
    out += '\n';
  };
  write_row(table.header);
  for (const auto& row : table.rows) write_row(row);
  return out;
}

void write_csv_file(const std::string& path, const CsvTable& table, char sep) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write CSV file '" + path + "'");
  out << write_csv(table, sep);
  if (!out) throw IoError("failed while writing CSV file '" + path + "'");
}

}  // namespace decisive
