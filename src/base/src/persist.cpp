#include "decisive/base/persist.hpp"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "decisive/base/error.hpp"

namespace decisive {

std::string escape_token(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == ' ' || c == '%' || c == '\n' || c == '\r') {
      char buffer[4];
      std::snprintf(buffer, sizeof buffer, "%%%02x", static_cast<unsigned char>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
  // An empty field still needs a token on the line.
  return out.empty() ? std::string("%") : out;
}

std::string unescape_token(std::string_view token) {
  if (token == "%") return "";
  std::string out;
  out.reserve(token.size());
  for (size_t i = 0; i < token.size(); ++i) {
    if (token[i] == '%') {
      if (i + 2 >= token.size()) throw ParseError("truncated escape");
      const std::string hex(token.substr(i + 1, 2));
      out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
      i += 2;
    } else {
      out += token[i];
    }
  }
  return out;
}

std::string double_to_token(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%a", value);
  return buffer;
}

double double_from_token(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || end == token.c_str() || *end != '\0') {
    throw ParseError("bad double '" + token + "'");
  }
  return value;
}

std::uint64_t u64_from_token(const std::string& token) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (end == token.c_str() || *end != '\0') throw ParseError("bad integer '" + token + "'");
  return value;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash = (hash ^ static_cast<unsigned char>(c)) * 0x100000001b3ULL;
  }
  return hash;
}

std::string hash_to_hex(std::uint64_t hash) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%016llx", static_cast<unsigned long long>(hash));
  return buffer;
}

void atomic_write_file(const std::string& path, std::string_view content) {
  const std::string temp = path + ".tmp." + std::to_string(
#ifdef _WIN32
                                                0
#else
                                                static_cast<long>(::getpid())
#endif
                                            );
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot write temp file '" + temp + "'");
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    if (!out.flush()) {
      out.close();
      std::filesystem::remove(temp);
      throw IoError("cannot write temp file '" + temp + "'");
    }
  }
  if (std::getenv("DECISIVE_CRASH_BEFORE_RENAME") != nullptr) {
    // Crash injection for atomicity tests: die in the window where a
    // straight-through save would have already truncated the target.
    std::raise(SIGKILL);
  }
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    std::filesystem::remove(temp);
    throw IoError("cannot replace '" + path + "': " + ec.message());
  }
}

}  // namespace decisive
