#include "decisive/base/lang_string.hpp"

namespace decisive {

namespace {
const std::string kEmpty;
}

LangString::LangString(std::string value) { set("en", std::move(value)); }
LangString::LangString(const char* value) { set("en", value); }

void LangString::set(std::string_view lang, std::string value) {
  variants_[std::string(lang)] = std::move(value);
}

const std::string& LangString::get(std::string_view lang) const {
  if (auto it = variants_.find(lang); it != variants_.end()) return it->second;
  if (auto it = variants_.find("en"); it != variants_.end()) return it->second;
  if (!variants_.empty()) return variants_.begin()->second;
  return kEmpty;
}

bool LangString::has(std::string_view lang) const { return variants_.contains(lang); }

}  // namespace decisive
