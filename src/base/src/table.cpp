#include "decisive/base/table.hpp"

#include <algorithm>

namespace decisive {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t i = 0; i < widths.size(); ++i) {
      if (i != 0) out += " | ";
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += cell;
      out.append(widths[i] - cell.size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  render_row(header_, out);
  for (size_t i = 0; i < widths.size(); ++i) {
    if (i != 0) out += "-+-";
    out.append(widths[i], '-');
  }
  out += '\n';
  for (const auto& row : rows_) render_row(row, out);
  return out;
}

Rng::Rng(uint64_t seed) noexcept : state_(seed ^ 0x9e3779b97f4a7c15ULL) {
  // Warm up so that small seeds diverge immediately.
  next();
  next();
}

uint64_t Rng::next() noexcept {
  // splitmix64
  state_ += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

uint64_t Rng::below(uint64_t n) noexcept { return n == 0 ? 0 : next() % n; }

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace decisive
