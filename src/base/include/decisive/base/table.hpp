// Fixed-width text-table rendering, used by the bench harnesses to print the
// paper's tables and by examples for human-readable FMEA output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decisive {

/// Accumulates rows and renders them as an aligned ASCII table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Renders with a header rule, e.g.
  ///   Component | FIT | Safety_Related
  ///   ----------+-----+---------------
  ///   D1        | 10  | Yes
  [[nodiscard]] std::string render() const;

  [[nodiscard]] size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Deterministic PRNG (splitmix64 + xorshift) for the analyst model and for
/// synthetic system generation; std::mt19937 is avoided so that sequences are
/// reproducible across standard-library implementations.
class Rng {
 public:
  explicit Rng(uint64_t seed) noexcept;

  /// Uniform in [0, 2^64).
  uint64_t next() noexcept;

  /// Uniform real in [0, 1).
  double uniform() noexcept;

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n); n must be > 0.
  uint64_t below(uint64_t n) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  uint64_t state_;
};

}  // namespace decisive
