// Error hierarchy for the DECISIVE library.
//
// All recoverable failures surfaced by the public API derive from
// decisive::Error, which carries a category tag so callers can branch on the
// kind of failure without string matching.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace decisive {

/// Broad category of a library failure, stable across releases.
enum class ErrorKind {
  Parse,        ///< malformed input text (CSV/JSON/XML/MDL/query)
  Model,        ///< metamodel violation, unknown class/feature, bad reference
  Io,           ///< file system failure
  Simulation,   ///< circuit did not converge / singular system
  Analysis,     ///< FMEA/FMEDA precondition violated
  Query,        ///< query-language runtime error
  Capacity,     ///< resource budget exhausted (e.g. model memory overflow)
  Transform,    ///< model-to-model transformation failure
};

/// Human-readable name of an ErrorKind ("parse", "model", ...).
std::string_view to_string(ErrorKind kind) noexcept;

/// Base class of all DECISIVE exceptions.
class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, const std::string& message);

  [[nodiscard]] ErrorKind kind() const noexcept { return kind_; }

 private:
  ErrorKind kind_;
};

/// Convenience subclasses; each pins the category.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& message) : Error(ErrorKind::Parse, message) {}
};

class ModelError : public Error {
 public:
  explicit ModelError(const std::string& message) : Error(ErrorKind::Model, message) {}
};

class IoError : public Error {
 public:
  explicit IoError(const std::string& message) : Error(ErrorKind::Io, message) {}
};

class SimulationError : public Error {
 public:
  explicit SimulationError(const std::string& message) : Error(ErrorKind::Simulation, message) {}
};

class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& message) : Error(ErrorKind::Analysis, message) {}
};

class QueryError : public Error {
 public:
  explicit QueryError(const std::string& message) : Error(ErrorKind::Query, message) {}
};

/// Thrown when a resource budget is exhausted — notably when a
/// FullLoadRepository exceeds its memory budget, reproducing the EMF
/// "memory overflow" failure mode reported for Set5 in the paper.
class CapacityError : public Error {
 public:
  explicit CapacityError(const std::string& message) : Error(ErrorKind::Capacity, message) {}
};

class TransformError : public Error {
 public:
  explicit TransformError(const std::string& message) : Error(ErrorKind::Transform, message) {}
};

}  // namespace decisive
