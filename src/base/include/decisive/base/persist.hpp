// Shared building blocks of the line/token on-disk formats (session result
// cache, campaign journal): token escaping, exact numeric round-trips, the
// FNV-1a checksum both formats frame records with, and crash-safe whole-file
// replacement.
//
// Durability rules every persisted artefact follows:
//  - snapshot files (the result cache) are replaced atomically — write the
//    full new content to a sibling temp file, flush, then rename over the
//    target, so a crash mid-save can never truncate the previous version;
//  - append-only files (the campaign journal) carry a checksum per record,
//    so a torn tail from a crash mid-append is detected and trimmed on
//    recovery instead of poisoning the replay.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace decisive {

/// Percent-encodes the bytes that would break line/token framing (space,
/// '%', CR, LF). An empty input becomes the literal token "%" so every field
/// still occupies one token on the line.
std::string escape_token(std::string_view text);

/// Inverse of escape_token; throws ParseError on truncated escapes.
std::string unescape_token(std::string_view token);

/// Exact double round-trip via hexadecimal floating point ("%a").
std::string double_to_token(double value);

/// Inverse of double_to_token (also accepts decimal forms); throws
/// ParseError on garbage or trailing characters.
double double_from_token(const std::string& token);

/// Parses an unsigned decimal integer; throws ParseError on failure.
std::uint64_t u64_from_token(const std::string& token);

/// 64-bit FNV-1a over the bytes, optionally chained from a previous hash.
std::uint64_t fnv1a64(std::string_view bytes,
                      std::uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

/// Formats a 64-bit hash as 16 lower-case hex digits (the checksum token).
std::string hash_to_hex(std::uint64_t hash);

/// Crash-safe whole-file replacement: writes `content` to a sibling temp
/// file ("<path>.tmp.<pid>"), flushes it, then renames it over `path`. At
/// every instant `path` holds either the previous complete content or the
/// new complete content — never a truncated mix. Throws IoError on failure
/// (the previous file is left untouched).
///
/// Fault-injection hook: when the environment variable
/// DECISIVE_CRASH_BEFORE_RENAME is set, the process raises SIGKILL after the
/// temp file is written but before the rename — the exact window a
/// non-atomic save would corrupt. Crash-safety tests use it to prove the
/// previous file survives.
void atomic_write_file(const std::string& path, std::string_view content);

}  // namespace decisive
