// Small string helpers used across the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decisive {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text) noexcept;

/// Splits `text` on `sep`; the separator is not included in the pieces.
/// Empty fields are preserved ("a,,b" -> {"a", "", "b"}).
std::vector<std::string> split(std::string_view text, char sep);

/// True when `text` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;
bool ends_with(std::string_view text, std::string_view suffix) noexcept;

/// ASCII lower-casing (locale independent).
std::string to_lower(std::string_view text);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b) noexcept;

/// Joins the pieces with `sep` between them.
std::string join(const std::vector<std::string>& pieces, std::string_view sep);

/// Parses a double; throws ParseError on garbage or trailing characters.
double parse_double(std::string_view text);

/// Parses a signed 64-bit integer; throws ParseError on failure.
long long parse_int(std::string_view text);

/// Parses "true"/"false"/"1"/"0" (case insensitive); throws ParseError otherwise.
bool parse_bool(std::string_view text);

/// Formats a double with up to `max_decimals` digits, trimming trailing zeros
/// ("3.1400" -> "3.14", "3.0" -> "3").
std::string format_number(double value, int max_decimals = 6);

/// Formats `value` as a percentage string ("96.77%"), with `decimals` digits.
std::string format_percent(double fraction, int decimals = 2);

}  // namespace decisive
