// Minimal JSON value model + parser/writer (RFC 8259 subset: no \u surrogate
// pair validation beyond pass-through). Backs the external-model JSON driver.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace decisive::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value, std::less<>>;

/// A JSON value: null, bool, number (double), string, array or object.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}                 // NOLINT
  Value(bool b) : data_(b) {}                               // NOLINT
  Value(double d) : data_(d) {}                             // NOLINT
  Value(int i) : data_(static_cast<double>(i)) {}           // NOLINT
  Value(long long i) : data_(static_cast<double>(i)) {}     // NOLINT
  Value(std::string s) : data_(std::move(s)) {}             // NOLINT
  Value(const char* s) : data_(std::string(s)) {}           // NOLINT
  Value(Array a) : data_(std::move(a)) {}                   // NOLINT
  Value(Object o) : data_(std::move(o)) {}                  // NOLINT

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

  /// Checked accessors; throw ParseError on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;
  [[nodiscard]] Array& as_array();
  [[nodiscard]] Object& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

/// Parses a JSON document; throws ParseError on malformed input.
Value parse(std::string_view text);

/// Reads and parses a JSON file; throws IoError/ParseError.
Value parse_file(const std::string& path);

/// Serialises with 2-space indentation.
std::string write(const Value& value);

}  // namespace decisive::json
