// LangString: a string with per-language variants, as used by the SSAM base
// module (paper Section IV-B1): every ModelElement name is a LangString so
// models can carry multi-language content.
#pragma once

#include <map>
#include <string>
#include <string_view>

namespace decisive {

/// A string value with optional translations keyed by BCP-47-ish language
/// tags ("en", "zh", "de"). The default language is "en".
class LangString {
 public:
  LangString() = default;

  /// Implicit construction from a plain string stores it under "en".
  LangString(std::string value);          // NOLINT(google-explicit-constructor)
  LangString(const char* value);          // NOLINT(google-explicit-constructor)

  /// Sets the variant for `lang`, replacing any previous value.
  void set(std::string_view lang, std::string value);

  /// Returns the variant for `lang`; falls back to "en", then to any variant,
  /// then to the empty string.
  [[nodiscard]] const std::string& get(std::string_view lang = "en") const;

  /// True when a variant exists for exactly this language.
  [[nodiscard]] bool has(std::string_view lang) const;

  /// Number of language variants stored.
  [[nodiscard]] size_t size() const noexcept { return variants_.size(); }
  [[nodiscard]] bool empty() const noexcept { return variants_.empty(); }

  /// Shorthand for get("en").
  [[nodiscard]] const std::string& str() const { return get(); }

  friend bool operator==(const LangString& a, const LangString& b) = default;

 private:
  std::map<std::string, std::string, std::less<>> variants_;
};

}  // namespace decisive
