// Minimal RFC-4180-style CSV reader/writer. Used by the "workbook" driver
// (the Excel substitute) and by FMEA table export.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decisive {

/// A parsed CSV document: a header row plus data rows. All cells are strings;
/// typed access is the responsibility of callers (drivers, reliability model).
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Index of a header column (case-insensitive); -1 when absent.
  [[nodiscard]] int column(std::string_view name) const noexcept;

  /// Cell accessor with bounds + column checks; throws ModelError on misuse.
  [[nodiscard]] const std::string& at(size_t row, std::string_view column_name) const;
};

/// Parses CSV text. Supports quoted fields, embedded separators, doubled
/// quotes and both \n and \r\n line endings. The first record is the header.
/// Throws ParseError on unterminated quotes.
CsvTable parse_csv(std::string_view text, char sep = ',');

/// Reads and parses a CSV file; throws IoError if unreadable.
CsvTable read_csv_file(const std::string& path, char sep = ',');

/// Serialises a table back to CSV text, quoting cells that need it.
std::string write_csv(const CsvTable& table, char sep = ',');

/// Writes a table to a file; throws IoError on failure.
void write_csv_file(const std::string& path, const CsvTable& table, char sep = ',');

}  // namespace decisive
