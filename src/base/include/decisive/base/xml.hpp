// Minimal XML DOM parser/writer, sufficient for XMI-style model persistence
// and for the external-model XML driver. Supports elements, attributes,
// character data, comments, processing instructions and the five predefined
// entities. No namespaces-aware processing (prefixes are kept verbatim).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::xml {

/// An XML element node. Text content is the concatenation of all character
/// data directly inside the element (mixed content is not order-preserved;
/// model files never rely on it).
struct Element {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<Element>> children;
  std::string text;

  /// Attribute value or nullptr when absent.
  [[nodiscard]] const std::string* attribute(std::string_view attr_name) const noexcept;

  /// Attribute value or `fallback` when absent.
  [[nodiscard]] std::string attribute_or(std::string_view attr_name,
                                         std::string_view fallback) const;

  /// First child with the given element name, or nullptr.
  [[nodiscard]] const Element* child(std::string_view child_name) const noexcept;

  /// All children with the given element name.
  [[nodiscard]] std::vector<const Element*> children_named(std::string_view child_name) const;

  /// Appends a child element and returns a reference to it.
  Element& add_child(std::string child_name);

  void set_attribute(std::string attr_name, std::string value);
};

/// Parses a complete document and returns its root element.
/// Throws ParseError on malformed input.
std::unique_ptr<Element> parse(std::string_view text);

/// Reads and parses an XML file; throws IoError/ParseError.
std::unique_ptr<Element> parse_file(const std::string& path);

/// Serialises the element tree with 2-space indentation and an XML
/// declaration.
std::string write(const Element& root);

/// Writes the document to a file; throws IoError on failure.
void write_file(const std::string& path, const Element& root);

/// Escapes the five predefined entities in attribute/text content.
std::string escape(std::string_view text);

}  // namespace decisive::xml
