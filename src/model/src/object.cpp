#include "decisive/model/object.hpp"

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::model {

namespace {
const Value kUnset{};
const std::vector<ObjectId> kNoTargets{};

bool value_matches(AttrType type, const Value& value) {
  if (std::holds_alternative<std::monostate>(value)) return true;
  switch (type) {
    case AttrType::String: return std::holds_alternative<std::string>(value);
    case AttrType::Int: return std::holds_alternative<long long>(value);
    case AttrType::Real:
      // Accept ints for real attributes; they are widened on set.
      return std::holds_alternative<double>(value) || std::holds_alternative<long long>(value);
    case AttrType::Bool: return std::holds_alternative<bool>(value);
  }
  return false;
}
}  // namespace

std::string value_to_string(const Value& value) {
  if (std::holds_alternative<std::monostate>(value)) return "";
  if (const auto* s = std::get_if<std::string>(&value)) return *s;
  if (const auto* i = std::get_if<long long>(&value)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&value)) return format_number(*d, 12);
  return std::get<bool>(value) ? "true" : "false";
}

Value value_from_string(AttrType type, std::string_view text) {
  switch (type) {
    case AttrType::String: return Value(std::string(text));
    case AttrType::Int: return Value(parse_int(text));
    case AttrType::Real: return Value(parse_double(text));
    case AttrType::Bool: return Value(parse_bool(text));
  }
  return Value{};
}

ModelObject::ModelObject(const MetaClass& cls, ObjectId id) : cls_(&cls), id_(id) {
  if (cls.is_abstract()) {
    throw ModelError("cannot instantiate abstract class '" + cls.name() + "'");
  }
}

void ModelObject::set(std::string_view attr_name, Value value) {
  const MetaAttribute& attr = cls_->attribute(attr_name);
  if (!value_matches(attr.type, value)) {
    throw ModelError("type mismatch assigning attribute '" + attr.name + "' of class '" +
                     cls_->name() + "'");
  }
  if (attr.type == AttrType::Real) {
    if (const auto* i = std::get_if<long long>(&value)) value = static_cast<double>(*i);
  }
  for (auto& [a, v] : attrs_) {
    if (a == &attr) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(&attr, std::move(value));
}

void ModelObject::set_string(std::string_view attr_name, std::string value) {
  set(attr_name, Value(std::move(value)));
}
void ModelObject::set_int(std::string_view attr_name, long long value) {
  set(attr_name, Value(value));
}
void ModelObject::set_real(std::string_view attr_name, double value) {
  set(attr_name, Value(value));
}
void ModelObject::set_bool(std::string_view attr_name, bool value) {
  set(attr_name, Value(value));
}

const Value& ModelObject::get(std::string_view attr_name) const {
  const MetaAttribute& attr = cls_->attribute(attr_name);
  for (const auto& [a, v] : attrs_) {
    if (a == &attr) return v;
  }
  return kUnset;
}

std::string ModelObject::get_string(std::string_view attr_name, std::string_view fallback) const {
  const Value& v = get(attr_name);
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  return std::string(fallback);
}

long long ModelObject::get_int(std::string_view attr_name, long long fallback) const {
  const Value& v = get(attr_name);
  if (const auto* i = std::get_if<long long>(&v)) return *i;
  return fallback;
}

double ModelObject::get_real(std::string_view attr_name, double fallback) const {
  const Value& v = get(attr_name);
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<long long>(&v)) return static_cast<double>(*i);
  return fallback;
}

bool ModelObject::get_bool(std::string_view attr_name, bool fallback) const {
  const Value& v = get(attr_name);
  if (const auto* b = std::get_if<bool>(&v)) return *b;
  return fallback;
}

bool ModelObject::has(std::string_view attr_name) const noexcept {
  const MetaAttribute* attr = cls_->find_attribute(attr_name);
  if (attr == nullptr) return false;
  for (const auto& [a, v] : attrs_) {
    if (a == attr) return !std::holds_alternative<std::monostate>(v);
  }
  return false;
}

void ModelObject::add_ref(std::string_view ref_name, ObjectId target) {
  const MetaReference& ref = cls_->reference(ref_name);
  for (auto& [r, targets] : refs_) {
    if (r == &ref) {
      if (!ref.many && !targets.empty()) {
        throw ModelError("reference '" + ref.name + "' of class '" + cls_->name() +
                         "' is single-valued");
      }
      targets.push_back(target);
      return;
    }
  }
  refs_.emplace_back(&ref, std::vector<ObjectId>{target});
}

void ModelObject::set_ref(std::string_view ref_name, ObjectId target) {
  const MetaReference& ref = cls_->reference(ref_name);
  for (auto& [r, targets] : refs_) {
    if (r == &ref) {
      targets.assign(1, target);
      return;
    }
  }
  refs_.emplace_back(&ref, std::vector<ObjectId>{target});
}

const std::vector<ObjectId>& ModelObject::refs(std::string_view ref_name) const {
  const MetaReference& ref = cls_->reference(ref_name);
  for (const auto& [r, targets] : refs_) {
    if (r == &ref) return targets;
  }
  return kNoTargets;
}

ObjectId ModelObject::ref(std::string_view ref_name) const {
  const auto& targets = refs(ref_name);
  return targets.empty() ? kNullObject : targets.front();
}

bool ModelObject::remove_ref(std::string_view ref_name, ObjectId target) {
  const MetaReference& ref = cls_->reference(ref_name);
  for (auto& [r, targets] : refs_) {
    if (r == &ref) {
      for (auto it = targets.begin(); it != targets.end(); ++it) {
        if (*it == target) {
          targets.erase(it);
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

size_t ModelObject::approx_bytes() const noexcept {
  size_t bytes = sizeof(ModelObject);
  bytes += attrs_.capacity() * sizeof(attrs_[0]);
  for (const auto& [a, v] : attrs_) {
    if (const auto* s = std::get_if<std::string>(&v)) bytes += s->capacity();
  }
  bytes += refs_.capacity() * sizeof(refs_[0]);
  for (const auto& [r, targets] : refs_) bytes += targets.capacity() * sizeof(ObjectId);
  return bytes;
}

}  // namespace decisive::model
