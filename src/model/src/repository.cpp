#include "decisive/model/repository.hpp"

#include "decisive/base/error.hpp"

namespace decisive::model {

FullLoadRepository::FullLoadRepository(size_t memory_budget_bytes)
    : budget_(memory_budget_bytes) {}

void FullLoadRepository::charge(size_t bytes) {
  approx_bytes_ += bytes;
  if (approx_bytes_ > budget_) {
    throw CapacityError("model memory budget exhausted (" + std::to_string(approx_bytes_) +
                        " bytes used, budget " + std::to_string(budget_) +
                        "); the full-load repository must hold the entire model in memory");
  }
}

ModelObject& FullLoadRepository::create(const MetaClass& cls) {
  const ObjectId id = next_id_++;
  objects_.emplace_back(cls, id);
  index_.emplace(id, objects_.size() - 1);
  charge(objects_.back().approx_bytes() + sizeof(void*) * 4);
  return objects_.back();
}

ModelObject* FullLoadRepository::find(ObjectId id) noexcept {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

const ModelObject* FullLoadRepository::find(ObjectId id) const noexcept {
  const auto it = index_.find(id);
  return it == index_.end() ? nullptr : &objects_[it->second];
}

ModelObject& FullLoadRepository::get(ObjectId id) {
  ModelObject* obj = find(id);
  if (obj == nullptr) throw ModelError("unknown object id " + std::to_string(id));
  return *obj;
}

const ModelObject& FullLoadRepository::get(ObjectId id) const {
  const ModelObject* obj = find(id);
  if (obj == nullptr) throw ModelError("unknown object id " + std::to_string(id));
  return *obj;
}

void FullLoadRepository::for_each(const std::function<void(const ModelObject&)>& fn) const {
  for (const auto& obj : objects_) fn(obj);
}

void FullLoadRepository::for_each(const std::function<void(ModelObject&)>& fn) {
  for (auto& obj : objects_) fn(obj);
}

void FullLoadRepository::for_each_of(const MetaClass& cls,
                                     const std::function<void(const ModelObject&)>& fn) const {
  for (const auto& obj : objects_) {
    if (obj.is_kind_of(cls)) fn(obj);
  }
}

std::vector<ObjectId> FullLoadRepository::all_of(const MetaClass& cls) const {
  std::vector<ObjectId> out;
  for (const auto& obj : objects_) {
    if (obj.is_kind_of(cls)) out.push_back(obj.id());
  }
  return out;
}

void FullLoadRepository::load_from(ElementSource& source) {
  // Admission control: refuse loads that cannot possibly fit, mirroring the
  // paper's observation that SAME "would not load Set5 due to memory
  // overflow" rather than grinding through a doomed allocation.
  const std::uint64_t hint = source.size_hint();
  const size_t per_element = source.bytes_per_element();
  if (hint > 0 && per_element > 0) {
    const long double projected =
        static_cast<long double>(hint) * static_cast<long double>(per_element) +
        static_cast<long double>(approx_bytes_);
    if (projected > static_cast<long double>(budget_)) {
      throw CapacityError(
          "refusing full load: projected model size " + std::to_string(hint) + " elements (~" +
          std::to_string(static_cast<unsigned long long>(projected / (1024 * 1024))) +
          " MiB) exceeds memory budget " + std::to_string(budget_ / (1024 * 1024)) + " MiB");
    }
  }
  while (source.next([&](const MetaClass& cls, const std::function<void(ModelObject&)>& init) {
    ModelObject& obj = create(cls);
    init(obj);
  })) {
  }
  recompute_bytes();
}

size_t FullLoadRepository::recompute_bytes() {
  size_t total = 0;
  for (const auto& obj : objects_) total += obj.approx_bytes() + sizeof(void*) * 4;
  approx_bytes_ = total;
  if (approx_bytes_ > budget_) {
    throw CapacityError("model memory budget exhausted after mutation (" +
                        std::to_string(approx_bytes_) + " bytes, budget " +
                        std::to_string(budget_) + ")");
  }
  return approx_bytes_;
}

// ---------------------------------------------------------------------------

void IndexedRepository::index_attribute(const MetaClass& cls, std::string attr_name,
                                        bool retain_values) {
  if (find_column(cls, attr_name) != nullptr) return;
  Column column;
  column.cls = &cls;
  column.attr = std::move(attr_name);
  column.retain_values = retain_values;
  columns_.push_back(std::move(column));
}

void IndexedRepository::load_from(ElementSource& source) {
  // A single scratch object is reused per element; the object graph is never
  // materialised (this is the Hawk-style indexing fix).
  while (source.next([&](const MetaClass& cls, const std::function<void(ModelObject&)>& init) {
    ModelObject scratch(cls, kNullObject + 1);
    init(scratch);
    ++element_count_;
    ++class_counts_[&cls];
    for (auto& column : columns_) {
      if (cls.is_kind_of(*column.cls)) {
        const Value& v = scratch.get(column.attr);
        double numeric = 0.0;
        if (const auto* d = std::get_if<double>(&v)) numeric = *d;
        else if (const auto* i = std::get_if<long long>(&v)) numeric = static_cast<double>(*i);
        else if (const auto* b = std::get_if<bool>(&v)) numeric = *b ? 1.0 : 0.0;
        column.sum += numeric;
        if (numeric != 0.0) ++column.nonzero;
        ++column.count;
        if (column.retain_values) column.values.push_back(numeric);
      }
    }
  })) {
  }
}

std::uint64_t IndexedRepository::count_of(const MetaClass& cls) const {
  std::uint64_t total = 0;
  for (const auto& [c, n] : class_counts_) {
    if (c->is_kind_of(cls)) total += n;
  }
  return total;
}

IndexedRepository::Column* IndexedRepository::find_column(const MetaClass& cls,
                                                          std::string_view attr_name) {
  for (auto& column : columns_) {
    if (column.cls == &cls && column.attr == attr_name) return &column;
  }
  return nullptr;
}

const IndexedRepository::Column* IndexedRepository::find_column(
    const MetaClass& cls, std::string_view attr_name) const {
  for (const auto& column : columns_) {
    if (column.cls == &cls && column.attr == attr_name) return &column;
  }
  return nullptr;
}

double IndexedRepository::sum(const MetaClass& cls, std::string_view attr_name) const {
  const Column* column = find_column(cls, attr_name);
  if (column == nullptr) {
    throw ModelError("attribute '" + std::string(attr_name) + "' of class '" + cls.name() +
                     "' is not indexed");
  }
  return column->sum;
}

std::uint64_t IndexedRepository::count_true(const MetaClass& cls,
                                            std::string_view attr_name) const {
  const Column* column = find_column(cls, attr_name);
  if (column == nullptr) {
    throw ModelError("attribute '" + std::string(attr_name) + "' of class '" + cls.name() +
                     "' is not indexed");
  }
  return column->nonzero;
}

void IndexedRepository::for_each_value(const MetaClass& cls, std::string_view attr_name,
                                       const std::function<void(double)>& fn) const {
  const Column* column = find_column(cls, attr_name);
  if (column == nullptr) {
    throw ModelError("attribute '" + std::string(attr_name) + "' of class '" + cls.name() +
                     "' is not indexed");
  }
  if (!column->retain_values) {
    throw ModelError("column '" + std::string(attr_name) +
                     "' was indexed in aggregate-only mode; per-value access is unavailable");
  }
  for (double v : column->values) fn(v);
}

size_t IndexedRepository::approx_bytes() const noexcept {
  size_t total = sizeof(IndexedRepository);
  for (const auto& column : columns_) total += column.values.capacity() * sizeof(double);
  return total;
}

}  // namespace decisive::model
