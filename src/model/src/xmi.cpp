#include "decisive/model/xmi.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/xml.hpp"

namespace decisive::model {

std::string save_xmi(const FullLoadRepository& repo, const MetaPackage& package) {
  xml::Element root;
  root.name = "model";
  root.set_attribute("package", package.name());
  repo.for_each([&](const ModelObject& obj) {
    xml::Element& el = root.add_child("object");
    el.set_attribute("id", std::to_string(obj.id()));
    el.set_attribute("class", obj.meta().name());
    for (const MetaAttribute* attr : obj.meta().all_attributes()) {
      const Value& v = obj.get(attr->name);
      if (std::holds_alternative<std::monostate>(v)) continue;
      xml::Element& a = el.add_child("attr");
      a.set_attribute("name", attr->name);
      a.set_attribute("value", value_to_string(v));
    }
    for (const MetaReference* ref : obj.meta().all_references()) {
      const auto& targets = obj.refs(ref->name);
      if (targets.empty()) continue;
      xml::Element& r = el.add_child("ref");
      r.set_attribute("name", ref->name);
      std::string ids;
      for (size_t i = 0; i < targets.size(); ++i) {
        if (i != 0) ids += ' ';
        ids += std::to_string(targets[i]);
      }
      r.set_attribute("targets", ids);
    }
  });
  return xml::write(root);
}

void save_xmi_file(const std::string& path, const FullLoadRepository& repo,
                   const MetaPackage& package) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write model file '" + path + "'");
  out << save_xmi(repo, package);
  if (!out) throw IoError("failed while writing model file '" + path + "'");
}

void load_xmi(FullLoadRepository& repo, const MetaPackage& package, std::string_view text) {
  const auto root = xml::parse(text);
  if (root->name != "model") throw ParseError("expected <model> document root");

  // Pass 1: create objects, remember the id remapping.
  std::unordered_map<std::uint64_t, ObjectId> remap;
  std::vector<std::pair<ObjectId, const xml::Element*>> created;
  for (const auto& child : root->children) {
    if (child->name != "object") continue;
    const std::string* cls_name = child->attribute("class");
    const std::string* file_id = child->attribute("id");
    if (cls_name == nullptr || file_id == nullptr) {
      throw ParseError("<object> requires 'id' and 'class' attributes");
    }
    const MetaClass& cls = package.get(*cls_name);
    ModelObject& obj = repo.create(cls);
    remap[static_cast<std::uint64_t>(parse_int(*file_id))] = obj.id();
    created.emplace_back(obj.id(), child.get());
  }

  // Pass 2: attributes and references.
  for (const auto& [id, element] : created) {
    ModelObject& obj = repo.get(id);
    for (const auto& feature : element->children) {
      if (feature->name == "attr") {
        const std::string* name = feature->attribute("name");
        const std::string* value = feature->attribute("value");
        if (name == nullptr || value == nullptr) {
          throw ParseError("<attr> requires 'name' and 'value'");
        }
        const MetaAttribute& attr = obj.meta().attribute(*name);
        obj.set(*name, value_from_string(attr.type, *value));
      } else if (feature->name == "ref") {
        const std::string* name = feature->attribute("name");
        const std::string* targets = feature->attribute("targets");
        if (name == nullptr || targets == nullptr) {
          throw ParseError("<ref> requires 'name' and 'targets'");
        }
        for (const auto& token : split(*targets, ' ')) {
          if (trim(token).empty()) continue;
          const auto file_target = static_cast<std::uint64_t>(parse_int(token));
          const auto it = remap.find(file_target);
          if (it == remap.end()) {
            throw ModelError("reference '" + *name + "' targets unknown object id " + token);
          }
          obj.add_ref(*name, it->second);
        }
      }
    }
  }
  repo.recompute_bytes();
}

void load_xmi_file(FullLoadRepository& repo, const MetaPackage& package,
                   const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open model file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  load_xmi(repo, package, buffer.str());
}

}  // namespace decisive::model
