#include "decisive/model/meta.hpp"

#include "decisive/base/error.hpp"

namespace decisive::model {

std::string_view to_string(AttrType type) noexcept {
  switch (type) {
    case AttrType::String: return "string";
    case AttrType::Int: return "int";
    case AttrType::Real: return "real";
    case AttrType::Bool: return "bool";
  }
  return "string";
}

AttrType attr_type_from_string(std::string_view name) {
  if (name == "string") return AttrType::String;
  if (name == "int") return AttrType::Int;
  if (name == "real") return AttrType::Real;
  if (name == "bool") return AttrType::Bool;
  throw ModelError("unknown attribute type '" + std::string(name) + "'");
}

MetaClass::MetaClass(std::string name, const MetaClass* super, bool abstract)
    : name_(std::move(name)), super_(super), abstract_(abstract) {}

const MetaAttribute& MetaClass::add_attribute(std::string attr_name, AttrType type) {
  if (find_attribute(attr_name) != nullptr || find_reference(attr_name) != nullptr) {
    throw ModelError("duplicate feature '" + attr_name + "' on class '" + name_ + "'");
  }
  auto attr = std::make_unique<MetaAttribute>();
  attr->name = std::move(attr_name);
  attr->type = type;
  attr->owner = this;
  attributes_.push_back(std::move(attr));
  return *attributes_.back();
}

const MetaReference& MetaClass::add_reference(std::string ref_name, const MetaClass& target,
                                              bool containment, bool many) {
  if (find_attribute(ref_name) != nullptr || find_reference(ref_name) != nullptr) {
    throw ModelError("duplicate feature '" + ref_name + "' on class '" + name_ + "'");
  }
  auto ref = std::make_unique<MetaReference>();
  ref->name = std::move(ref_name);
  ref->target = &target;
  ref->containment = containment;
  ref->many = many;
  ref->owner = this;
  references_.push_back(std::move(ref));
  return *references_.back();
}

const MetaAttribute* MetaClass::find_attribute(std::string_view attr_name) const noexcept {
  for (const MetaClass* cls = this; cls != nullptr; cls = cls->super_) {
    for (const auto& attr : cls->attributes_) {
      if (attr->name == attr_name) return attr.get();
    }
  }
  return nullptr;
}

const MetaReference* MetaClass::find_reference(std::string_view ref_name) const noexcept {
  for (const MetaClass* cls = this; cls != nullptr; cls = cls->super_) {
    for (const auto& ref : cls->references_) {
      if (ref->name == ref_name) return ref.get();
    }
  }
  return nullptr;
}

const MetaAttribute& MetaClass::attribute(std::string_view attr_name) const {
  const MetaAttribute* attr = find_attribute(attr_name);
  if (attr == nullptr) {
    throw ModelError("class '" + name_ + "' has no attribute '" + std::string(attr_name) + "'");
  }
  return *attr;
}

const MetaReference& MetaClass::reference(std::string_view ref_name) const {
  const MetaReference* ref = find_reference(ref_name);
  if (ref == nullptr) {
    throw ModelError("class '" + name_ + "' has no reference '" + std::string(ref_name) + "'");
  }
  return *ref;
}

bool MetaClass::is_kind_of(const MetaClass& other) const noexcept {
  for (const MetaClass* cls = this; cls != nullptr; cls = cls->super_) {
    if (cls == &other) return true;
  }
  return false;
}

std::vector<const MetaAttribute*> MetaClass::all_attributes() const {
  std::vector<const MetaAttribute*> out;
  if (super_ != nullptr) out = super_->all_attributes();
  for (const auto& attr : attributes_) out.push_back(attr.get());
  return out;
}

std::vector<const MetaReference*> MetaClass::all_references() const {
  std::vector<const MetaReference*> out;
  if (super_ != nullptr) out = super_->all_references();
  for (const auto& ref : references_) out.push_back(ref.get());
  return out;
}

MetaPackage::MetaPackage(std::string name) : name_(std::move(name)) {}

MetaClass& MetaPackage::define(std::string class_name, const MetaClass* super) {
  if (find(class_name) != nullptr) {
    throw ModelError("duplicate class '" + class_name + "' in package '" + name_ + "'");
  }
  classes_.push_back(std::make_unique<MetaClass>(std::move(class_name), super, false));
  return *classes_.back();
}

MetaClass& MetaPackage::define_abstract(std::string class_name, const MetaClass* super) {
  if (find(class_name) != nullptr) {
    throw ModelError("duplicate class '" + class_name + "' in package '" + name_ + "'");
  }
  classes_.push_back(std::make_unique<MetaClass>(std::move(class_name), super, true));
  return *classes_.back();
}

const MetaClass* MetaPackage::find(std::string_view class_name) const noexcept {
  for (const auto& cls : classes_) {
    if (cls->name() == class_name) return cls.get();
  }
  return nullptr;
}

const MetaClass& MetaPackage::get(std::string_view class_name) const {
  const MetaClass* cls = find(class_name);
  if (cls == nullptr) {
    throw ModelError("package '" + name_ + "' has no class '" + std::string(class_name) + "'");
  }
  return *cls;
}

}  // namespace decisive::model
