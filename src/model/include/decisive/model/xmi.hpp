// XMI-style XML persistence for models: a flat list of <object> elements with
// id/class plus attribute and reference children. Round-trips any model whose
// classes come from a single MetaPackage.
#pragma once

#include <string>

#include "decisive/model/repository.hpp"

namespace decisive::model {

/// Serialises every object in the repository to XMI-style XML text.
std::string save_xmi(const FullLoadRepository& repo, const MetaPackage& package);

/// Writes the serialisation to a file; throws IoError.
void save_xmi_file(const std::string& path, const FullLoadRepository& repo,
                   const MetaPackage& package);

/// Parses XMI-style text into the repository (appending to existing content).
/// Object ids in the file are remapped to fresh repository ids; references
/// are resolved after all objects exist. Throws ParseError/ModelError.
void load_xmi(FullLoadRepository& repo, const MetaPackage& package, std::string_view text);

/// Reads and loads an XMI file; throws IoError/ParseError/ModelError.
void load_xmi_file(FullLoadRepository& repo, const MetaPackage& package,
                   const std::string& path);

}  // namespace decisive::model
