// Dynamic model instances: a ModelObject holds attribute values and reference
// targets validated against its MetaClass.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "decisive/model/meta.hpp"

namespace decisive::model {

/// Opaque object identity within a repository; 0 is the null id.
using ObjectId = std::uint64_t;
inline constexpr ObjectId kNullObject = 0;

/// A primitive attribute value. monostate means "unset".
using Value = std::variant<std::monostate, std::string, long long, double, bool>;

/// Converts a Value to its textual form for persistence and debugging.
std::string value_to_string(const Value& value);

/// Parses text into a Value of the given type; throws ParseError.
Value value_from_string(AttrType type, std::string_view text);

/// A typed instance. ModelObjects are owned by a repository and addressed by
/// ObjectId; references store ids rather than pointers so repositories can
/// relocate storage.
class ModelObject {
 public:
  ModelObject(const MetaClass& cls, ObjectId id);

  [[nodiscard]] const MetaClass& meta() const noexcept { return *cls_; }
  [[nodiscard]] ObjectId id() const noexcept { return id_; }
  [[nodiscard]] bool is_kind_of(const MetaClass& cls) const noexcept {
    return cls_->is_kind_of(cls);
  }

  // -- attributes ----------------------------------------------------------

  /// Sets an attribute; throws ModelError for unknown attributes and
  /// type-mismatched values.
  void set(std::string_view attr_name, Value value);

  /// Typed setters (convenience).
  void set_string(std::string_view attr_name, std::string value);
  void set_int(std::string_view attr_name, long long value);
  void set_real(std::string_view attr_name, double value);
  void set_bool(std::string_view attr_name, bool value);

  /// Raw accessor; returns an unset Value when never assigned.
  [[nodiscard]] const Value& get(std::string_view attr_name) const;

  /// Typed getters with defaults for unset attributes.
  [[nodiscard]] std::string get_string(std::string_view attr_name,
                                       std::string_view fallback = "") const;
  [[nodiscard]] long long get_int(std::string_view attr_name, long long fallback = 0) const;
  [[nodiscard]] double get_real(std::string_view attr_name, double fallback = 0.0) const;
  [[nodiscard]] bool get_bool(std::string_view attr_name, bool fallback = false) const;

  [[nodiscard]] bool has(std::string_view attr_name) const noexcept;

  // -- references ----------------------------------------------------------

  /// Appends a target to a many-reference (or sets a single-valued one;
  /// setting a second target on a single reference throws ModelError).
  void add_ref(std::string_view ref_name, ObjectId target);

  /// Replaces all targets of the reference with the single given target.
  void set_ref(std::string_view ref_name, ObjectId target);

  /// All targets (empty when unset).
  [[nodiscard]] const std::vector<ObjectId>& refs(std::string_view ref_name) const;

  /// First target or kNullObject.
  [[nodiscard]] ObjectId ref(std::string_view ref_name) const;

  /// Removes a specific target; returns true when something was removed.
  bool remove_ref(std::string_view ref_name, ObjectId target);

  /// Approximate heap footprint in bytes, used by repository memory budgets.
  [[nodiscard]] size_t approx_bytes() const noexcept;

 private:
  const MetaClass* cls_;
  ObjectId id_;
  std::vector<std::pair<const MetaAttribute*, Value>> attrs_;
  std::vector<std::pair<const MetaReference*, std::vector<ObjectId>>> refs_;
};

}  // namespace decisive::model
