// Reflective metamodelling layer — the EMF/Ecore substitute.
//
// A MetaPackage declares MetaClasses; each MetaClass declares typed
// MetaAttributes and MetaReferences and may inherit from a single super
// class. Instances (ModelObject) are dynamically typed against these
// metaclasses, which is what lets the FMEA engine, the query language and
// the persistence layer operate generically over SSAM, Simulink-imports and
// synthetic scalability models alike.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::model {

class MetaClass;

/// Primitive attribute types supported by the framework.
enum class AttrType { String, Int, Real, Bool };

std::string_view to_string(AttrType type) noexcept;
AttrType attr_type_from_string(std::string_view name);

/// A typed attribute declaration on a MetaClass.
struct MetaAttribute {
  std::string name;
  AttrType type = AttrType::String;
  const MetaClass* owner = nullptr;
};

/// A reference declaration. `containment` marks ownership semantics (the
/// referenced object is a child); `many` allows multiple targets.
struct MetaReference {
  std::string name;
  const MetaClass* target = nullptr;
  bool containment = false;
  bool many = false;
  const MetaClass* owner = nullptr;
};

/// A class in a metamodel. Supports single inheritance; feature lookup walks
/// the super chain.
class MetaClass {
 public:
  MetaClass(std::string name, const MetaClass* super, bool abstract);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const MetaClass* super() const noexcept { return super_; }
  [[nodiscard]] bool is_abstract() const noexcept { return abstract_; }

  /// Declares an attribute; throws ModelError on duplicate names (including
  /// inherited ones).
  const MetaAttribute& add_attribute(std::string attr_name, AttrType type);

  /// Declares a reference; throws ModelError on duplicate names.
  const MetaReference& add_reference(std::string ref_name, const MetaClass& target,
                                     bool containment, bool many);

  /// Feature lookup including inherited features; nullptr when absent.
  [[nodiscard]] const MetaAttribute* find_attribute(std::string_view attr_name) const noexcept;
  [[nodiscard]] const MetaReference* find_reference(std::string_view ref_name) const noexcept;

  /// Checked lookup; throws ModelError naming the class when absent.
  [[nodiscard]] const MetaAttribute& attribute(std::string_view attr_name) const;
  [[nodiscard]] const MetaReference& reference(std::string_view ref_name) const;

  /// True when this class equals `other` or transitively inherits from it.
  [[nodiscard]] bool is_kind_of(const MetaClass& other) const noexcept;

  /// All features, inherited first (declaration order within each class).
  [[nodiscard]] std::vector<const MetaAttribute*> all_attributes() const;
  [[nodiscard]] std::vector<const MetaReference*> all_references() const;

 private:
  std::string name_;
  const MetaClass* super_;
  bool abstract_;
  std::vector<std::unique_ptr<MetaAttribute>> attributes_;
  std::vector<std::unique_ptr<MetaReference>> references_;
};

/// A named collection of metaclasses. MetaClass objects have stable addresses
/// for the lifetime of the package (they are referenced by every instance).
class MetaPackage {
 public:
  explicit MetaPackage(std::string name);
  MetaPackage(const MetaPackage&) = delete;
  MetaPackage& operator=(const MetaPackage&) = delete;
  // Movable: MetaClass storage is pointer-stable across moves.
  MetaPackage(MetaPackage&&) = default;
  MetaPackage& operator=(MetaPackage&&) = default;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Defines a concrete class. Throws ModelError on duplicate names.
  MetaClass& define(std::string class_name, const MetaClass* super = nullptr);

  /// Defines an abstract class (cannot be instantiated).
  MetaClass& define_abstract(std::string class_name, const MetaClass* super = nullptr);

  [[nodiscard]] const MetaClass* find(std::string_view class_name) const noexcept;

  /// Checked lookup; throws ModelError when absent.
  [[nodiscard]] const MetaClass& get(std::string_view class_name) const;

  [[nodiscard]] const std::vector<std::unique_ptr<MetaClass>>& classes() const noexcept {
    return classes_;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<MetaClass>> classes_;
};

}  // namespace decisive::model
