// Model storage back-ends.
//
// FullLoadRepository reproduces EMF's behaviour as described in the paper's
// scalability discussion (Section VI-D): the entire model must be resident in
// memory before any query runs, so very large models hit a memory wall
// ("SAME would not load Set5 due to memory overflow"). IndexedRepository is
// the Hawk-style fix (refs [23][26]): it consumes elements as a stream and
// retains only a columnar attribute index, so model size is bounded by the
// indexed columns rather than the object graph.
#pragma once

#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "decisive/model/object.hpp"

namespace decisive::model {

/// A pull-based element stream used to feed repositories without first
/// materialising the model (e.g. procedurally generated scalability sets).
class ElementSource {
 public:
  virtual ~ElementSource() = default;

  /// Expected number of elements, used for up-front admission control.
  [[nodiscard]] virtual std::uint64_t size_hint() const = 0;

  /// Estimated bytes per materialised element (default: a conservative
  /// object-graph figure).
  [[nodiscard]] virtual size_t bytes_per_element() const { return 192; }

  /// Produces the next element by calling `emit` with (class, attribute
  /// setter callback). Returns false when exhausted.
  virtual bool next(const std::function<void(const MetaClass&,
                                             const std::function<void(ModelObject&)>&)>& emit) = 0;
};

/// Mutable in-memory repository that owns every object — the EMF analogue.
class FullLoadRepository {
 public:
  /// `memory_budget_bytes` caps the approximate resident size of the loaded
  /// model; exceeding it throws CapacityError (the paper's Set5 failure).
  explicit FullLoadRepository(
      size_t memory_budget_bytes = std::numeric_limits<size_t>::max());

  FullLoadRepository(const FullLoadRepository&) = delete;
  FullLoadRepository& operator=(const FullLoadRepository&) = delete;
  FullLoadRepository(FullLoadRepository&&) = default;
  FullLoadRepository& operator=(FullLoadRepository&&) = default;

  /// Creates a new object of the (concrete) class; throws CapacityError when
  /// the budget would be exceeded.
  ModelObject& create(const MetaClass& cls);

  /// Object lookup; nullptr for unknown/null ids.
  [[nodiscard]] ModelObject* find(ObjectId id) noexcept;
  [[nodiscard]] const ModelObject* find(ObjectId id) const noexcept;

  /// Checked lookup; throws ModelError for unknown ids.
  [[nodiscard]] ModelObject& get(ObjectId id);
  [[nodiscard]] const ModelObject& get(ObjectId id) const;

  [[nodiscard]] size_t size() const noexcept { return objects_.size(); }
  [[nodiscard]] size_t approx_bytes() const noexcept { return approx_bytes_; }
  [[nodiscard]] size_t memory_budget() const noexcept { return budget_; }

  /// Iterates every object (in creation order).
  void for_each(const std::function<void(const ModelObject&)>& fn) const;
  void for_each(const std::function<void(ModelObject&)>& fn);

  /// Iterates objects whose class is-kind-of `cls`.
  void for_each_of(const MetaClass& cls,
                   const std::function<void(const ModelObject&)>& fn) const;

  /// Collects objects of a kind (ids remain valid across mutation).
  [[nodiscard]] std::vector<ObjectId> all_of(const MetaClass& cls) const;

  /// Bulk-loads from a stream. Performs up-front admission control: if
  /// size_hint * bytes_per_element exceeds the budget the load is refused
  /// immediately with CapacityError (mimicking an OOM without thrashing).
  void load_from(ElementSource& source);

  /// Re-estimates the resident size (attribute edits after creation are not
  /// tracked incrementally); updates and returns the estimate.
  size_t recompute_bytes();

 private:
  void charge(size_t bytes);

  size_t budget_;
  size_t approx_bytes_ = 0;
  ObjectId next_id_ = 1;
  std::deque<ModelObject> objects_;
  std::unordered_map<ObjectId, size_t> index_;
};

/// Columnar, streaming attribute index — the scalable back-end.
///
/// Register the (class, attribute) columns a query needs, then feed the
/// element stream; only those columns are retained. Aggregations (count,
/// sum) and per-row visits run over the columns.
class IndexedRepository {
 public:
  IndexedRepository() = default;

  /// Registers a numeric/bool column to retain for a class (applies to
  /// subclasses as well). With `retain_values = false` only running
  /// aggregates (sum, true-count) are kept — O(1) memory per column, which
  /// is what lets arbitrarily large models stream through (for_each_value is
  /// then unavailable for that column).
  void index_attribute(const MetaClass& cls, std::string attr_name,
                       bool retain_values = true);

  /// Streams the source through the index. Memory use is proportional to the
  /// registered columns only.
  void load_from(ElementSource& source);

  [[nodiscard]] std::uint64_t element_count() const noexcept { return element_count_; }

  /// Number of elements of the given kind seen.
  [[nodiscard]] std::uint64_t count_of(const MetaClass& cls) const;

  /// Sum of a registered real/int column over elements of the kind.
  [[nodiscard]] double sum(const MetaClass& cls, std::string_view attr_name) const;

  /// Count of elements of the kind whose registered bool column is true.
  [[nodiscard]] std::uint64_t count_true(const MetaClass& cls, std::string_view attr_name) const;

  /// Visits every retained value of a column.
  void for_each_value(const MetaClass& cls, std::string_view attr_name,
                      const std::function<void(double)>& fn) const;

  [[nodiscard]] size_t approx_bytes() const noexcept;

 private:
  struct Column {
    const MetaClass* cls;
    std::string attr;
    bool retain_values;
    std::vector<double> values;  // bools stored as 0/1; empty in aggregate mode
    double sum = 0.0;
    std::uint64_t nonzero = 0;
    std::uint64_t count = 0;
  };

  Column* find_column(const MetaClass& cls, std::string_view attr_name);
  [[nodiscard]] const Column* find_column(const MetaClass& cls,
                                          std::string_view attr_name) const;

  std::uint64_t element_count_ = 0;
  std::map<const MetaClass*, std::uint64_t> class_counts_;
  std::vector<Column> columns_;
};

}  // namespace decisive::model
