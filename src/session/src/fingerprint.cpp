#include "decisive/session/fingerprint.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstring>

#include "decisive/base/error.hpp"

namespace decisive::session {

using ssam::ObjectId;
using ssam::SsamModel;

// ---------------------------------------------------------------------------
// Fingerprint primitives
// ---------------------------------------------------------------------------

void FingerprintBuilder::mix(std::uint64_t value) noexcept {
  // Two FNV-1a-style lanes over 64-bit words with distinct primes; the
  // second lane additionally rotates so the lanes never collapse onto each
  // other. One multiply per lane per word instead of per byte.
  fp_.hi = (fp_.hi ^ value) * 0x100000001b3ULL;
  fp_.lo = std::rotl((fp_.lo ^ value) * 0x00000100000001b3ULL, 17);
}

void FingerprintBuilder::mix(std::string_view text) {
  // Length prefix keeps ("ab","c") distinct from ("a","bc") and makes the
  // zero-padded final word unambiguous.
  mix(static_cast<std::uint64_t>(text.size()));
  std::uint64_t word = 0;
  std::size_t i = 0;
  for (; i + 8 <= text.size(); i += 8) {
    std::memcpy(&word, text.data() + i, 8);
    mix(word);
  }
  if (i < text.size()) {
    word = 0;
    std::memcpy(&word, text.data() + i, text.size() - i);
    mix(word);
  }
}

void FingerprintBuilder::mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }

void FingerprintBuilder::mix(bool value) { mix(static_cast<std::uint64_t>(value ? 1 : 0)); }

void FingerprintBuilder::mix(const Fingerprint& other) {
  mix(other.hi);
  mix(other.lo);
}

std::string to_hex(const Fingerprint& fp) {
  char buffer[36];
  std::snprintf(buffer, sizeof buffer, "%016llx:%016llx",
                static_cast<unsigned long long>(fp.hi), static_cast<unsigned long long>(fp.lo));
  return buffer;
}

Fingerprint fingerprint_from_hex(std::string_view text) {
  const auto parse_lane = [&](std::string_view lane) -> std::uint64_t {
    if (lane.size() != 16) throw ParseError("malformed fingerprint '" + std::string(text) + "'");
    std::uint64_t value = 0;
    for (const char c : lane) {
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint64_t>(c - 'a' + 10);
      else throw ParseError("malformed fingerprint '" + std::string(text) + "'");
    }
    return value;
  };
  if (text.size() != 33 || text[16] != ':') {
    throw ParseError("malformed fingerprint '" + std::string(text) + "'");
  }
  return {parse_lane(text.substr(0, 16)), parse_lane(text.substr(17))};
}

// ---------------------------------------------------------------------------
// Model fingerprinting
// ---------------------------------------------------------------------------

namespace {

/// Allocation-free attribute read: the fingerprint pass touches every string
/// attribute in the subtree, so the copying get_string would dominate it.
std::string_view attr_text(const model::ModelObject& obj, std::string_view name) {
  const auto* text = std::get_if<std::string>(&obj.get(name));
  return text == nullptr ? std::string_view() : std::string_view(*text);
}

/// Folds the FMEA-relevant surface of one component *as a subcomponent of a
/// unit under analysis*: everything produce_sub_record and build_graph read
/// about it, and nothing the analysis writes back.
void mix_sub_surface(const SsamModel& ssam, ObjectId sub, FingerprintBuilder& builder) {
  const auto& obj = ssam.obj(sub);
  builder.mix(static_cast<std::uint64_t>(sub));
  builder.mix(attr_text(obj, "name"));
  builder.mix(attr_text(obj, "blockType"));
  builder.mix(obj.get_real("fit"));
  builder.mix(!obj.refs("subcomponents").empty());
  for (const ObjectId node : obj.refs("ioNodes")) {
    builder.mix(static_cast<std::uint64_t>(node));
    builder.mix(attr_text(ssam.obj(node), "direction"));
  }
  for (const ObjectId fm : obj.refs("failureModes")) {
    const auto& fm_obj = ssam.obj(fm);
    builder.mix(static_cast<std::uint64_t>(fm));
    builder.mix(attr_text(fm_obj, "name"));
    builder.mix(fm_obj.get_real("distribution"));
    builder.mix(attr_text(fm_obj, "nature"));
    for (const ObjectId target : fm_obj.refs("affectedComponents")) {
      builder.mix(static_cast<std::uint64_t>(target));
    }
    for (const ObjectId hazard : fm_obj.refs("hazards")) {
      builder.mix(static_cast<std::uint64_t>(hazard));
    }
  }
  for (const ObjectId sm : obj.refs("safetyMechanisms")) {
    const auto& sm_obj = ssam.obj(sm);
    builder.mix(static_cast<std::uint64_t>(sm));
    builder.mix(attr_text(sm_obj, "name"));
    builder.mix(sm_obj.get_real("coverage"));
    builder.mix(sm_obj.get_real("costHours"));
    for (const ObjectId covered : sm_obj.refs("covers")) {
      builder.mix(static_cast<std::uint64_t>(covered));
    }
  }
}

Fingerprint unit_fingerprint(const SsamModel& ssam, ObjectId component, const std::string& path,
                             const Fingerprint& options_hash) {
  FingerprintBuilder builder;
  builder.mix(options_hash);
  const auto& obj = ssam.obj(component);
  builder.mix(static_cast<std::uint64_t>(component));
  builder.mix(path);
  builder.mix(attr_text(obj, "name"));
  // Boundary nodes and internal wiring: the flow graph of the unit.
  for (const ObjectId node : obj.refs("ioNodes")) {
    builder.mix(static_cast<std::uint64_t>(node));
    builder.mix(attr_text(ssam.obj(node), "direction"));
  }
  for (const ObjectId rel : obj.refs("relationships")) {
    builder.mix(static_cast<std::uint64_t>(ssam.obj(rel).ref("source")));
    builder.mix(static_cast<std::uint64_t>(ssam.obj(rel).ref("target")));
  }
  // Traceability that the DECISIVE iteration loop treats as part of the
  // component's definition (requirement citations change what a re-analysis
  // must revisit even when the wiring is untouched).
  for (const ObjectId cited : obj.refs("cites")) {
    builder.mix(static_cast<std::uint64_t>(cited));
  }
  // The failure surface of every direct subcomponent.
  for (const ObjectId sub : obj.refs("subcomponents")) {
    mix_sub_surface(ssam, sub, builder);
  }
  return builder.finish();
}

Fingerprint options_fingerprint(const core::GraphFmeaOptions& options) {
  FingerprintBuilder builder;
  builder.mix(std::string_view("graph-fmea-options"));
  builder.mix(options.recursive);
  builder.mix(options.apply_modelled_mechanisms);
  builder.mix(static_cast<std::uint64_t>(options.loss_natures.size()));
  for (const auto& nature : options.loss_natures) builder.mix(nature);
  return builder.finish();
}

}  // namespace

ModelFingerprints fingerprint_model(const SsamModel& ssam, ObjectId root,
                                    const core::GraphFmeaOptions& options) {
  const Fingerprint options_hash = options_fingerprint(options);

  ModelFingerprints out;
  // IONode -> owning component, filled pre-order so that by the time a
  // component's relationships are folded (post-order), every endpoint owner
  // — the component itself or a descendant — is already known.
  std::map<ObjectId, ObjectId> node_owner;
  // Iterative post-order over the containment tree: children's subtree
  // hashes are ready when the parent's is folded.
  struct Visit {
    ObjectId component;
    std::string path;
    bool expanded = false;
  };
  std::vector<Visit> stack{{root, ssam.obj(root).get_string("name"), false}};
  while (!stack.empty()) {
    if (!stack.back().expanded) {
      stack.back().expanded = true;
      // Copy before pushing children: push_back may relocate the stack.
      const ObjectId component = stack.back().component;
      const std::string path = stack.back().path;
      out.path[component] = path;
      for (const ObjectId node : ssam.obj(component).refs("ioNodes")) {
        node_owner[node] = component;
      }
      for (const ObjectId sub : ssam.obj(component).refs("subcomponents")) {
        out.parent[sub] = component;
        stack.push_back({sub, path + "/" + ssam.obj(sub).get_string("name"), false});
      }
      continue;
    }
    const Visit current = stack.back();
    stack.pop_back();
    const Fingerprint unit =
        unit_fingerprint(ssam, current.component, current.path, options_hash);
    out.unit[current.component] = unit;
    FingerprintBuilder subtree;
    subtree.mix(unit);
    for (const ObjectId sub : ssam.obj(current.component).refs("subcomponents")) {
      subtree.mix(out.subtree.at(sub));
    }
    out.subtree[current.component] = subtree.finish();
    // Signal adjacency from this component's wiring (impact_of_change's
    // connected-components rule, resolved against the subtree).
    for (const ObjectId rel : ssam.obj(current.component).refs("relationships")) {
      const auto source = node_owner.find(ssam.obj(rel).ref("source"));
      const auto target = node_owner.find(ssam.obj(rel).ref("target"));
      if (source == node_owner.end() || target == node_owner.end()) continue;
      if (source->second == target->second) continue;
      auto link = [&](ObjectId from, ObjectId to) {
        auto& list = out.neighbours[from];
        if (std::find(list.begin(), list.end(), to) == list.end()) list.push_back(to);
      };
      link(source->second, target->second);
      link(target->second, source->second);
    }
  }
  return out;
}

std::vector<ObjectId> fingerprint_diff(const ModelFingerprints& before,
                                       const ModelFingerprints& after) {
  std::vector<ObjectId> changed;
  for (const auto& [component, fp] : after.unit) {
    const auto it = before.unit.find(component);
    if (it == before.unit.end() || it->second != fp) changed.push_back(component);
  }
  for (const auto& [component, fp] : before.unit) {
    if (!after.unit.contains(component)) changed.push_back(component);
  }
  return changed;
}

}  // namespace decisive::session
