#include "decisive/session/cache.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/persist.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::session {

using core::UnitRecord;
using core::UnitSubRecord;
using ssam::ObjectId;

// ---------------------------------------------------------------------------
// Binding + lookup
// ---------------------------------------------------------------------------

void ResultCache::bind(const ModelFingerprints* fingerprints,
                       const std::set<ObjectId>* forced_dirty) {
  fingerprints_ = fingerprints;
  forced_dirty_ = forced_dirty;
}

const UnitRecord* ResultCache::lookup(ObjectId component, const std::string& /*path*/) {
  if (fingerprints_ == nullptr) return nullptr;
  if (forced_dirty_ != nullptr && !forced_dirty_->empty()) {
    if (forced_dirty_->contains(component)) return nullptr;
    // A unit's verdicts embed its direct subcomponents' failure surface, so
    // a forced-dirty leaf invalidates the unit analysing it.
    for (const ObjectId dirty : *forced_dirty_) {
      const auto parent = fingerprints_->parent.find(dirty);
      if (parent != fingerprints_->parent.end() && parent->second == component) return nullptr;
    }
  }
  const auto fp = fingerprints_->unit.find(component);
  if (fp == fingerprints_->unit.end()) return nullptr;
  const auto entry = entries_.find(fp->second);
  return entry == entries_.end() ? nullptr : &entry->second;
}

void ResultCache::store(UnitRecord record) {
  if (fingerprints_ == nullptr) {
    throw ModelError("ResultCache::store called without a bound model snapshot");
  }
  const auto fp = fingerprints_->unit.find(record.component);
  if (fp == fingerprints_->unit.end()) {
    throw ModelError("ResultCache::store for a component outside the fingerprinted subtree");
  }
  entries_[fp->second] = std::move(record);
}

// ---------------------------------------------------------------------------
// Persistence
// ---------------------------------------------------------------------------

namespace {

constexpr const char* kMagic = "decisive-result-cache";
constexpr int kVersion = 1;

core::EffectClass effect_from_token(const std::string& token) {
  const std::uint64_t value = u64_from_token(token);
  if (value > 2) throw ParseError("bad effect class '" + token + "'");
  return static_cast<core::EffectClass>(value);
}

void write_record(std::ostream& out, const Fingerprint& fp, const UnitRecord& record) {
  out << "entry " << to_hex(fp) << ' ' << record.component << ' ' << escape_token(record.path) << ' '
      << record.subs.size() << '\n';
  for (const UnitSubRecord& sub : record.subs) {
    out << "sub " << sub.sub << ' ' << sub.rows.size() << ' ' << sub.warnings.size() << ' '
        << sub.verdicts.size() << '\n';
    for (const core::FmedaRow& row : sub.rows) {
      out << "row " << escape_token(row.component) << ' ' << escape_token(row.component_type) << ' '
          << row.component_id << ' ' << escape_token(row.component_path) << ' '
          << double_to_token(row.fit) << ' ' << escape_token(row.failure_mode) << ' '
          << double_to_token(row.distribution) << ' ' << (row.safety_related ? 1 : 0) << ' '
          << static_cast<int>(row.effect) << ' ' << escape_token(row.safety_mechanism) << ' '
          << double_to_token(row.sm_coverage) << ' ' << double_to_token(row.sm_cost_hours)
          << '\n';
    }
    for (const std::string& warning : sub.warnings) out << "warn " << escape_token(warning) << '\n';
    for (const core::UnitVerdict& verdict : sub.verdicts) {
      out << "verdict " << verdict.failure_mode << ' ' << (verdict.safety_related ? 1 : 0) << ' '
          << static_cast<int>(verdict.effect) << '\n';
    }
  }
}

/// Pull-based tokenizer over the payload lines.
struct LineReader {
  std::vector<std::string> lines;
  size_t next = 0;

  std::vector<std::string> take(const std::string& expected_tag) {
    if (next >= lines.size()) throw ParseError("unexpected end of cache file");
    std::vector<std::string> tokens = split(lines[next++], ' ');
    if (tokens.empty() || tokens.front() != expected_tag) {
      throw ParseError("expected '" + expected_tag + "' record");
    }
    tokens.erase(tokens.begin());
    return tokens;
  }
};

}  // namespace

void ResultCache::save_file(const std::string& path) const {
  std::ostringstream payload;
  payload << kMagic << ' ' << kVersion << ' ' << entries_.size() << '\n';
  for (const auto& [fp, record] : entries_) write_record(payload, fp, record);

  std::string body = payload.str();
  body += "checksum " + hash_to_hex(fnv1a64(body)) + '\n';
  // Atomic replacement: a crash mid-save must leave the previous cache
  // intact, never a truncated file (see persist.hpp).
  atomic_write_file(path, body);
}

ResultCache::LoadReport ResultCache::load_file(const std::string& path) {
  entries_.clear();
  LoadReport report;

  if (!std::filesystem::exists(path)) {
    report.note = "no cache file at '" + path + "'";
    return report;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot read result cache '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Split off the trailing checksum line and verify it before parsing
  // anything — truncated or bit-flipped files must never be trusted.
  const auto checksum_pos = content.rfind("checksum ");
  if (checksum_pos == std::string::npos || (checksum_pos != 0 && content[checksum_pos - 1] != '\n')) {
    report.note = "cache file has no checksum line; rebuilding";
    return report;
  }
  const std::string payload = content.substr(0, checksum_pos);
  const std::string checksum_line(trim(content.substr(checksum_pos)));
  const std::string expected = "checksum " + hash_to_hex(fnv1a64(payload));
  if (checksum_line != expected) {
    report.note = "cache file checksum mismatch; rebuilding";
    return report;
  }

  try {
    LineReader reader;
    for (const auto& line : split(payload, '\n')) {
      if (!trim(line).empty()) reader.lines.push_back(line);
    }
    if (reader.lines.empty()) throw ParseError("empty cache file");
    {
      const std::vector<std::string> header = split(reader.lines[0], ' ');
      if (header.size() != 3 || header[0] != kMagic) throw ParseError("bad magic");
      if (u64_from_token(header[1]) != static_cast<std::uint64_t>(kVersion)) {
        report.note = "cache file version " + header[1] + " != " + std::to_string(kVersion) +
                      "; rebuilding";
        return report;
      }
      reader.next = 1;
      const std::uint64_t entry_count = u64_from_token(header[2]);
      std::map<Fingerprint, UnitRecord> loaded;
      for (std::uint64_t e = 0; e < entry_count; ++e) {
        const auto entry_tokens = reader.take("entry");
        if (entry_tokens.size() != 4) throw ParseError("bad entry record");
        const Fingerprint fp = fingerprint_from_hex(entry_tokens[0]);
        UnitRecord record;
        record.component = u64_from_token(entry_tokens[1]);
        record.path = unescape_token(entry_tokens[2]);
        const std::uint64_t sub_count = u64_from_token(entry_tokens[3]);
        for (std::uint64_t s = 0; s < sub_count; ++s) {
          const auto sub_tokens = reader.take("sub");
          if (sub_tokens.size() != 4) throw ParseError("bad sub record");
          UnitSubRecord sub;
          sub.sub = u64_from_token(sub_tokens[0]);
          const std::uint64_t rows = u64_from_token(sub_tokens[1]);
          const std::uint64_t warnings = u64_from_token(sub_tokens[2]);
          const std::uint64_t verdicts = u64_from_token(sub_tokens[3]);
          for (std::uint64_t r = 0; r < rows; ++r) {
            const auto t = reader.take("row");
            if (t.size() != 12) throw ParseError("bad row record");
            core::FmedaRow row;
            row.component = unescape_token(t[0]);
            row.component_type = unescape_token(t[1]);
            row.component_id = u64_from_token(t[2]);
            row.component_path = unescape_token(t[3]);
            row.fit = double_from_token(t[4]);
            row.failure_mode = unescape_token(t[5]);
            row.distribution = double_from_token(t[6]);
            row.safety_related = u64_from_token(t[7]) != 0;
            row.effect = effect_from_token(t[8]);
            row.safety_mechanism = unescape_token(t[9]);
            row.sm_coverage = double_from_token(t[10]);
            row.sm_cost_hours = double_from_token(t[11]);
            sub.rows.push_back(std::move(row));
          }
          for (std::uint64_t w = 0; w < warnings; ++w) {
            const auto t = reader.take("warn");
            if (t.size() != 1) throw ParseError("bad warn record");
            sub.warnings.push_back(unescape_token(t[0]));
          }
          for (std::uint64_t v = 0; v < verdicts; ++v) {
            const auto t = reader.take("verdict");
            if (t.size() != 3) throw ParseError("bad verdict record");
            sub.verdicts.push_back(
                {u64_from_token(t[0]), u64_from_token(t[1]) != 0, effect_from_token(t[2])});
          }
          record.subs.push_back(std::move(sub));
        }
        loaded[fp] = std::move(record);
      }
      if (reader.next != reader.lines.size()) throw ParseError("trailing cache records");
      entries_ = std::move(loaded);
    }
  } catch (const Error& error) {
    entries_.clear();
    report.note = std::string("cache file corrupt (") + error.what() + "); rebuilding";
    return report;
  }

  report.loaded = true;
  report.entries = entries_.size();
  return report;
}

}  // namespace decisive::session
