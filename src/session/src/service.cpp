#include "decisive/session/service.hpp"

#include <cstdio>
#include <istream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/core/impact.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/fta/engine.hpp"
#include "decisive/fta/lfm.hpp"
#include "decisive/fta/quantify.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/model/xmi.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/obs/log.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/session/incremental.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::session {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

std::string format_ms(double seconds) { return format_number(seconds * 1e3, 3) + "ms"; }

/// Service-level instrumentation. Registered up front (not lazily) so a
/// `metrics` request always exposes the full catalogue — including the
/// session cache and latency series — even before the first reanalyze.
struct ServiceMetrics {
  obs::Counter& requests;
  obs::Counter& request_errors;
  obs::Counter& model_loads;
  obs::Gauge& spfm;
  obs::Gauge& rows;
  obs::Gauge& cache_entries;
  obs::Histogram& request_seconds;

  static ServiceMetrics& get() {
    auto& registry = obs::Registry::global();
    static ServiceMetrics metrics{
        registry.counter("decisive_session_requests_total"),
        registry.counter("decisive_session_request_errors_total"),
        registry.counter("decisive_session_model_loads_total"),
        registry.gauge("decisive_session_spfm"),
        registry.gauge("decisive_session_rows"),
        registry.gauge("decisive_session_cache_entries"),
        registry.histogram("decisive_session_request_seconds")};
    return metrics;
  }

  /// Touches every series other layers register lazily, so the exposition is
  /// complete from the first request of a fresh process.
  static void preregister() {
    auto& registry = obs::Registry::global();
    registry.counter("decisive_session_reanalyses_total");
    registry.counter("decisive_session_short_circuits_total");
    registry.counter("decisive_session_cache_hits_total");
    registry.counter("decisive_session_cache_misses_total");
    registry.counter("decisive_session_invalidations_total");
    registry.counter("decisive_fta_request_cache_hits_total");
    registry.counter("decisive_fta_request_cache_misses_total");
    get();
  }
};

/// The resident state of one service run.
class Service {
 public:
  Service(std::ostream& out, const core::GraphFmeaOptions& analysis,
          std::string default_cache_path)
      : out_(out), analysis_(analysis), default_cache_path_(std::move(default_cache_path)) {
    ServiceMetrics::preregister();
  }

  /// Dispatches one request line; returns false when the loop should end.
  bool handle(const std::string& line) {
    const std::string trimmed{trim(line)};
    if (trimmed.empty() || trimmed.front() == '#') return true;
    const std::vector<std::string> tokens = split(trimmed, ' ');
    const std::string& command = tokens.front();
    ServiceMetrics& metrics = ServiceMetrics::get();
    metrics.requests.add();
    obs::Span span("session.request", &metrics.request_seconds);
    try {
      if (command == "quit") {
        out_ << "ok\n";
        return false;
      }
      if (command == "help") cmd_help();
      else if (command == "load") cmd_load(tokens);
      else if (command == "set-fit") cmd_set_fit(tokens);
      else if (command == "rewire") cmd_rewire(tokens);
      else if (command == "add-failure-mode") cmd_add_failure_mode(tokens);
      else if (command == "deploy-sm") cmd_deploy_sm(tokens);
      else if (command == "impact") cmd_impact(tokens);
      else if (command == "campaign") cmd_campaign(tokens);
      else if (command == "pareto") cmd_pareto(tokens);
      else if (command == "fta") cmd_fta(tokens);
      else if (command == "reanalyze") cmd_reanalyze();
      else if (command == "table") cmd_table();
      else if (command == "result") cmd_result();
      else if (command == "metrics") cmd_metrics();
      else if (command == "stats") cmd_stats();
      else if (command == "save") cmd_save(tokens);
      else if (command == "save-cache") cmd_save_cache(tokens);
      else if (command == "load-cache") cmd_load_cache(tokens);
      else throw ModelError("unknown command '" + command + "' (try: help)");
      out_ << "ok\n";
    } catch (const Error& error) {
      // The protocol answer goes to the client; the stderr diagnostic goes
      // through the leveled logger so scripts piping stdout stay clean.
      metrics.request_errors.add();
      obs::log(obs::LogLevel::Info,
               "session request '" + command + "' failed: " + error.what());
      out_ << "error: " << error.what() << "\n";
    }
    out_.flush();
    return true;
  }

  bool load(const std::string& path, const std::string& component_name) {
    auto model = std::make_unique<SsamModel>();
    model::load_xmi_file(model->repo(), model->meta(), path);
    const ObjectId root = model->find_by_name(ssam::cls::Component, component_name);
    if (root == model::kNullObject) {
      throw ModelError("no component named '" + component_name + "' in " + path);
    }
    session_.reset();  // order matters: the session references the old model
    model_ = std::move(model);
    session_.emplace(*model_, root, analysis_);
    ServiceMetrics::get().model_loads.add();
    out_ << "loaded " << path << " (" << model_->size() << " elements), root '"
         << component_name << "'\n";
    return true;
  }

  void load_cache(const std::string& path) {
    const ResultCache::LoadReport report = require_session().cache().load_file(path);
    if (report.loaded) {
      out_ << "cache loaded: " << report.entries << " entries\n";
    } else {
      obs::log(obs::LogLevel::Warn, "result cache at '" + path + "' rebuilt: " + report.note);
      out_ << "cache rebuilt: " << report.note << "\n";
    }
  }

 private:
  AnalysisSession& require_session() {
    if (!session_.has_value()) {
      throw ModelError("no model loaded (use: load <model.ssam> <component>)");
    }
    return *session_;
  }

  ObjectId component_named(const std::string& name) {
    require_session();
    const ObjectId id = model_->find_by_name(ssam::cls::Component, name);
    if (id == model::kNullObject) throw ModelError("no component named '" + name + "'");
    return id;
  }

  ObjectId io_node_named(const std::string& name) {
    const ObjectId id = model_->find_by_name(ssam::cls::IONode, name);
    if (id == model::kNullObject) throw ModelError("no IONode named '" + name + "'");
    return id;
  }

  static void expect_arity(const std::vector<std::string>& tokens, size_t n,
                           const char* usage) {
    if (tokens.size() != n) throw ModelError(std::string("usage: ") + usage);
  }

  void cmd_help() {
    out_ << "commands:\n"
            "  load <model.ssam> <component>      bind the session to a model\n"
            "  set-fit <component> <fit>          edit: component FIT\n"
            "  rewire <parent> <src-io> <dst-io>  edit: add a connection\n"
            "  add-failure-mode <component> <name> <distribution> <nature>\n"
            "  deploy-sm <component> <name> <coverage> <cost-hours> [<failure-mode>]\n"
            "  impact <component>                 change-impact report\n"
            "  campaign <model.mdl> <reliability-dir> [<journal> [<heartbeat>]]\n"
            "      journal-backed fault-injection campaign on a circuit model;\n"
            "      progress heartbeat JSON lands next to the journal (or at\n"
            "      <heartbeat>), watchable live via `same status`\n"
            "      (resumes from <journal> when it holds a compatible run)\n"
            "  pareto <catalogue> [<epsilon>]     (cost, SPFM) deployment front as CSV\n"
            "  fta [<mission-hours> [<max-order>]]  ZBDD fault tree of the root:\n"
            "      cut sets, exact top-event probability, importance, LFM\n"
            "      (reply cached on the root subtree fingerprint)\n"
            "  reanalyze                          incremental FMEA + stats\n"
            "  table                              last FMEDA table\n"
            "  result                             last SPFM / ASIL\n"
            "  metrics                            Prometheus-style instrumentation dump\n"
            "  stats                              cumulative session stats\n"
            "  save <model.ssam>                  persist the model\n"
            "  save-cache [<path>] / load-cache [<path>]   default: the --cache path\n"
            "  quit\n";
  }

  void cmd_load(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 3, "load <model.ssam> <component>");
    load(tokens[1], tokens[2]);
  }

  void cmd_set_fit(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 3, "set-fit <component> <fit>");
    const ObjectId component = component_named(tokens[1]);
    model_->obj(component).set_real("fit", parse_double(tokens[2]));
    session_->note_edit(component);
    out_ << "fit(" << tokens[1] << ") = " << tokens[2] << "\n";
  }

  void cmd_rewire(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 4, "rewire <parent> <source-io> <target-io>");
    const ObjectId parent = component_named(tokens[1]);
    model_->connect(parent, io_node_named(tokens[2]), io_node_named(tokens[3]));
    session_->note_edit(parent);
    out_ << "wired " << tokens[2] << " -> " << tokens[3] << " in " << tokens[1] << "\n";
  }

  void cmd_add_failure_mode(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 5, "add-failure-mode <component> <name> <distribution> <nature>");
    const ObjectId component = component_named(tokens[1]);
    model_->add_failure_mode(component, tokens[2], parse_double(tokens[3]), tokens[4]);
    session_->note_edit(component);
    out_ << "failure mode '" << tokens[2] << "' added to " << tokens[1] << "\n";
  }

  void cmd_deploy_sm(const std::vector<std::string>& tokens) {
    if (tokens.size() != 5 && tokens.size() != 6) {
      throw ModelError(
          "usage: deploy-sm <component> <name> <coverage> <cost-hours> [<failure-mode>]");
    }
    const ObjectId component = component_named(tokens[1]);
    ObjectId covers = model::kNullObject;
    if (tokens.size() == 6) {
      for (const ObjectId fm : model_->obj(component).refs("failureModes")) {
        if (model_->obj(fm).get_string("name") == tokens[5]) covers = fm;
      }
      if (covers == model::kNullObject) {
        throw ModelError("no failure mode named '" + tokens[5] + "' on '" + tokens[1] + "'");
      }
    }
    model_->add_safety_mechanism(component, tokens[2], parse_double(tokens[3]),
                                 parse_double(tokens[4]), covers);
    session_->note_edit(component);
    out_ << "mechanism '" << tokens[2] << "' deployed on " << tokens[1] << "\n";
  }

  void cmd_impact(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 2, "impact <component>");
    const core::ImpactReport report =
        core::impact_of_change(*model_, component_named(tokens[1]));
    out_ << report.to_text(*model_);
  }

  /// Journal-backed circuit campaign, independent of the resident SSAM
  /// session: it touches neither model_ nor the result cache, so an ongoing
  /// incremental-analysis session (reanalyze etc.) is unaffected by
  /// campaigns run through the same service.
  void cmd_campaign(const std::vector<std::string>& tokens) {
    if (tokens.size() < 3 || tokens.size() > 5) {
      throw ModelError("usage: campaign <model.mdl> <reliability-dir> [<journal> [<heartbeat>]]");
    }
    const auto mdl = drivers::parse_mdl_file(tokens[1]);
    const auto built = sim::build_circuit(mdl);
    const auto workbook = drivers::DriverRegistry::global().open(tokens[2]);
    const auto reliability = core::ReliabilityModel::from_source(*workbook, "Reliability");
    core::CircuitFmeaOptions options;
    options.jobs = analysis_.jobs;
    if (tokens.size() >= 4) options.execution.journal_path = tokens[3];
    if (tokens.size() == 5) options.execution.heartbeat_path = tokens[4];
    // Announce the heartbeat before the (long) run so a client watching the
    // stream knows where `same status` can observe the campaign live.
    std::string heartbeat = options.execution.heartbeat_path;
    if (heartbeat.empty() && !options.execution.journal_path.empty()) {
      heartbeat = options.execution.journal_path + ".heartbeat.json";
    }
    if (!heartbeat.empty()) {
      out_ << "heartbeat " << heartbeat << "\n";
      out_.flush();
    }
    const core::FmedaResult result =
        core::analyze_circuit(built, reliability, nullptr, options);
    out_ << "campaign " << result.outcome_summary() << "\n";
    out_ << "rows " << result.rows.size() << " spfm " << format_percent(result.spfm())
         << " " << core::achieved_asil(result.spfm()) << " warnings "
         << result.warnings.size() << "\n";
  }

  /// Safety-mechanism Pareto front on the session's current analysis,
  /// rendered through the exact same front_to_csv as `same sm-search`, so
  /// both surfaces emit identical artefacts for the same model state.
  void cmd_pareto(const std::vector<std::string>& tokens) {
    if (tokens.size() != 2 && tokens.size() != 3) {
      throw ModelError("usage: pareto <catalogue> [<epsilon>]");
    }
    AnalysisSession& session = require_session();
    if (!session.has_result()) cmd_reanalyze();  // the front needs an FMEA
    const auto source = drivers::DriverRegistry::global().open(tokens[1]);
    const std::string_view table_name =
        source->table("SafetyMechanisms") != nullptr ? "SafetyMechanisms" : "";
    const auto catalogue = core::SafetyMechanismModel::from_source(*source, table_name);
    core::ParetoOptions options;
    options.jobs = analysis_.jobs;
    if (tokens.size() == 3) options.epsilon = parse_double(tokens[2]);
    const auto front = core::pareto_front(session.last_result(), catalogue, options);
    out_ << write_csv(core::front_to_csv(session.last_result(), front));
    out_ << "front: " << front.size() << " deployment(s)\n";
  }

  /// ZBDD fault-tree analysis of the session root: minimal cut sets, exact
  /// quantification and the ISO 26262 latent/multi-point classification
  /// against the session's FMEA. The rendered reply is cached on the root's
  /// *subtree fingerprint* (plus the request parameters), so repeated
  /// requests on an unchanged model replay without re-synthesising — the
  /// same invalidation discipline as the per-unit FMEA cache.
  void cmd_fta(const std::vector<std::string>& tokens) {
    if (tokens.size() > 3) throw ModelError("usage: fta [<mission-hours> [<max-order>]]");
    AnalysisSession& session = require_session();
    if (!session.has_result()) cmd_reanalyze();  // the LFM needs an FMEA
    const double mission = tokens.size() > 1 ? parse_double(tokens[1]) : 10000.0;
    const size_t max_order =
        tokens.size() > 2 ? static_cast<size_t>(parse_int(tokens[2])) : 0;

    auto& registry = obs::Registry::global();
    const ModelFingerprints fps = fingerprint_model(*model_, session.root(), analysis_);
    const std::string key = to_hex(fps.subtree.at(session.root())) + "|" +
                            format_number(mission, 6) + "|" + std::to_string(max_order);
    if (const auto it = fta_replies_.find(key); it != fta_replies_.end()) {
      registry.counter("decisive_fta_request_cache_hits_total").add();
      out_ << it->second;
      return;
    }
    registry.counter("decisive_fta_request_cache_misses_total").add();

    const auto tree =
        fta::synthesize_fault_tree_zbdd(*model_, session.root(), {.max_order = max_order});
    const auto quant = fta::quantify(tree, mission);
    const auto lfm = fta::classify_latent(*model_, tree, session.last_result());
    char line[160];
    std::snprintf(line, sizeof line,
                  "cut-sets %zu exact %.6e rare-event %.6e mission %.0fh\n",
                  tree.cut_sets.size(), quant.exact_probability, quant.rare_event_bound,
                  mission);
    std::string reply = tree.to_text() + std::string(line);
    for (const auto& imp : quant.importance) {
      std::snprintf(line, sizeof line, "importance %s birnbaum %.4e fv %.4f raw %.3f rrw %s\n",
                    imp.label.c_str(), imp.birnbaum, imp.fussell_vesely, imp.raw,
                    imp.indispensable ? "inf" : format_number(imp.rrw, 3).c_str());
      reply += line;
    }
    reply += lfm.to_text();
    // The cache is fingerprint-keyed, so entries for edited models are never
    // replayed — they are merely dead. Bound the footprint anyway.
    if (fta_replies_.size() >= 64) fta_replies_.clear();
    fta_replies_.emplace(key, reply);
    out_ << reply;
  }

  void cmd_reanalyze() {
    AnalysisSession& session = require_session();
    const core::FmedaResult& result = session.reanalyze();
    const AnalysisSession::Stats& stats = session.last_stats();
    ServiceMetrics& metrics = ServiceMetrics::get();
    metrics.spfm.set(result.spfm());
    metrics.rows.set(static_cast<double>(result.rows.size()));
    metrics.cache_entries.set(static_cast<double>(session.cache().size()));
    if (stats.short_circuited) out_ << "short-circuit (model unchanged)\n";
    out_ << "rows " << result.rows.size() << " spfm " << format_percent(result.spfm()) << " "
         << result.asil_label() << "\n";
    out_ << "units " << stats.units << " hits " << stats.cache_hits << " misses "
         << stats.cache_misses << " hit-rate " << format_percent(stats.hit_rate()) << "\n";
    out_ << "dirty changed " << stats.changed_components << " widened "
         << stats.widened_components << "\n";
    out_ << "time fingerprint " << format_ms(stats.fingerprint_seconds) << " analyze "
         << format_ms(stats.analyze_seconds) << " total " << format_ms(stats.total_seconds)
         << "\n";
  }

  void cmd_table() {
    if (!require_session().has_result()) throw ModelError("no analysis yet (use: reanalyze)");
    out_ << session_->last_result().to_text().render() << "\n";
    for (const auto& warning : session_->last_result().warnings) {
      out_ << "note: " << warning << "\n";
    }
  }

  void cmd_result() {
    if (!require_session().has_result()) throw ModelError("no analysis yet (use: reanalyze)");
    const core::FmedaResult& result = session_->last_result();
    out_ << "spfm " << format_percent(result.spfm()) << "\n";
    out_ << "asil " << result.asil_label() << "\n";
    out_ << "rows " << result.rows.size() << " safety-related "
         << result.safety_related_components().size() << " warnings "
         << result.warnings.size() << "\n";
  }

  void cmd_metrics() {
    if (session_.has_value()) {
      ServiceMetrics::get().cache_entries.set(static_cast<double>(session_->cache().size()));
    }
    out_ << obs::Registry::global().to_prometheus();
  }

  void cmd_stats() {
    auto& registry = obs::Registry::global();
    const std::uint64_t hits = registry.counter("decisive_session_cache_hits_total").value();
    const std::uint64_t misses =
        registry.counter("decisive_session_cache_misses_total").value();
    out_ << "requests " << ServiceMetrics::get().requests.value() << " reanalyses "
         << registry.counter("decisive_session_reanalyses_total").value() << " model-loads "
         << ServiceMetrics::get().model_loads.value() << "\n";
    out_ << "cache entries " << (session_.has_value() ? session_->cache().size() : 0)
         << " cumulative-hit-rate "
         << format_percent(hits + misses == 0
                               ? 0.0
                               : static_cast<double>(hits) /
                                     static_cast<double>(hits + misses))
         << "\n";
  }

  void cmd_save(const std::vector<std::string>& tokens) {
    expect_arity(tokens, 2, "save <model.ssam>");
    require_session();
    model::save_xmi_file(tokens[1], model_->repo(), model_->meta());
    out_ << "model saved to " << tokens[1] << "\n";
  }

  /// The explicit argument wins; without one, fall back to the --cache path
  /// the service was started with.
  std::string cache_path_from(const std::vector<std::string>& tokens, const char* usage) {
    if (tokens.size() == 1 && !default_cache_path_.empty()) return default_cache_path_;
    if (tokens.size() != 2) throw ModelError(std::string("usage: ") + usage);
    return tokens[1];
  }

  void cmd_save_cache(const std::vector<std::string>& tokens) {
    const std::string path =
        cache_path_from(tokens, "save-cache <path> (no default: started without --cache)");
    require_session().cache().save_file(path);
    out_ << "cache saved to " << path << " (" << session_->cache().size() << " entries)\n";
  }

  void cmd_load_cache(const std::vector<std::string>& tokens) {
    load_cache(cache_path_from(tokens, "load-cache <path> (no default: started without --cache)"));
  }

  std::ostream& out_;
  core::GraphFmeaOptions analysis_;
  std::string default_cache_path_;
  std::unique_ptr<SsamModel> model_;
  std::optional<AnalysisSession> session_;
  /// Rendered `fta` replies keyed on (root subtree fingerprint, mission,
  /// max-order) — see cmd_fta.
  std::map<std::string, std::string> fta_replies_;
};

}  // namespace

int run_service(std::istream& in, std::ostream& out, const ServiceOptions& options) {
  Service service(out, options.analysis, options.cache_path);
  if (!options.model_path.empty()) {
    try {
      service.load(options.model_path, options.component);
      if (!options.cache_path.empty()) service.load_cache(options.cache_path);
    } catch (const Error& error) {
      obs::log(obs::LogLevel::Error,
               std::string("session initial load failed: ") + error.what());
      out << "error: " << error.what() << "\n";
      return 2;
    }
  }
  out << "same session ready\n";
  out.flush();
  std::string line;
  while (std::getline(in, line)) {
    if (!service.handle(line)) break;
  }
  return 0;
}

}  // namespace decisive::session
