#include "decisive/session/incremental.hpp"

#include <chrono>

#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::session {

using ssam::ObjectId;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Session-layer instrumentation, cached once per process.
struct SessionMetrics {
  obs::Counter& reanalyses;
  obs::Counter& short_circuits;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Counter& invalidations;
  obs::Histogram& dirty_components;
  obs::Histogram& fingerprint_seconds;
  obs::Histogram& reanalyze_seconds;

  static SessionMetrics& get() {
    auto& registry = obs::Registry::global();
    static SessionMetrics metrics{
        registry.counter("decisive_session_reanalyses_total"),
        registry.counter("decisive_session_short_circuits_total"),
        registry.counter("decisive_session_cache_hits_total"),
        registry.counter("decisive_session_cache_misses_total"),
        registry.counter("decisive_session_invalidations_total"),
        registry.histogram("decisive_session_dirty_components",
                           {0.0, 1.0, 2.0, 5.0, 10.0, 25.0, 100.0, 1000.0, 10000.0}),
        registry.histogram("decisive_session_fingerprint_seconds"),
        registry.histogram("decisive_session_reanalyze_seconds")};
    return metrics;
  }
};

}  // namespace

AnalysisSession::AnalysisSession(ssam::SsamModel& model, ObjectId root,
                                 core::GraphFmeaOptions options)
    : model_(model), root_(root), options_(std::move(options)) {}

void AnalysisSession::note_edit(ObjectId component) { edits_.insert(component); }

core::FmedaResult AnalysisSession::cold_analyze() const {
  return core::analyze_component(model_, root_, options_);
}

const core::FmedaResult& AnalysisSession::reanalyze() {
  SessionMetrics& metrics = SessionMetrics::get();
  metrics.reanalyses.add();
  obs::Span reanalyze_span("session.reanalyze", &metrics.reanalyze_seconds);
  const auto total_start = std::chrono::steady_clock::now();
  const size_t previous_units = last_stats_.units;
  last_stats_ = Stats{};

  // One bottom-up model pass: the fingerprint snapshot of the current state.
  const auto fp_start = std::chrono::steady_clock::now();
  ModelFingerprints current;
  {
    obs::Span fingerprint_span("session.fingerprint", &metrics.fingerprint_seconds);
    current = fingerprint_model(model_, root_, options_);
  }
  last_stats_.fingerprint_seconds = seconds_since(fp_start);

  // The dirty seed: components whose fingerprint moved, plus announced edits.
  std::vector<ObjectId> changed;
  if (has_previous_) changed = fingerprint_diff(previous_, current);
  last_stats_.changed_components = changed.size();
  std::set<ObjectId> seeds(changed.begin(), changed.end());
  for (const ObjectId edit : edits_) {
    if (current.unit.contains(edit)) seeds.insert(edit);
  }

  // Hot path: nothing changed anywhere under the root and nothing was
  // announced — replay the previous result without touching the analysis.
  if (has_previous_ && has_result_ && seeds.empty() &&
      current.subtree.at(root_) == previous_.subtree.at(root_)) {
    last_stats_.short_circuited = true;
    last_stats_.units = last_stats_.cache_hits = previous_units;
    last_stats_.total_seconds = seconds_since(total_start);
    metrics.short_circuits.add();
    metrics.cache_hits.add(previous_units);
    metrics.dirty_components.observe(0.0);
    previous_ = std::move(current);
    edits_.clear();
    return last_result_;
  }

  // Widen the dirty set along impact_of_change's traceability rules:
  // containment ancestors re-embed the changed component's analysis, and
  // signal neighbours share cut sets with it (paper Section III / ISO 26262
  // Clause 8 change management). Both legs are precomputed by the
  // fingerprint pass (parent chain + signal adjacency), so widening costs
  // O(dirty) instead of a repository scan per seed — the report-facing
  // core::impact_of_change computes the identical sets from the live model.
  std::set<ObjectId> forced = seeds;
  for (const ObjectId seed : seeds) {
    for (auto parent = current.parent.find(seed); parent != current.parent.end();
         parent = current.parent.find(parent->second)) {
      forced.insert(parent->second);
    }
    const auto neighbours = current.neighbours.find(seed);
    if (neighbours == current.neighbours.end()) continue;
    for (const ObjectId neighbour : neighbours->second) forced.insert(neighbour);
  }
  last_stats_.widened_components = forced.size() - seeds.size();
  metrics.dirty_components.observe(static_cast<double>(seeds.size()));
  metrics.invalidations.add(forced.size());

  // Run the analysis with the cache bound to this snapshot.
  const auto analyze_start = std::chrono::steady_clock::now();
  cache_.bind(&current, &forced);
  core::GraphFmeaStats graph_stats;
  try {
    last_result_ = core::analyze_component(model_, root_, options_, &cache_, &graph_stats);
  } catch (...) {
    cache_.bind(nullptr, nullptr);
    throw;
  }
  cache_.bind(nullptr, nullptr);
  last_stats_.analyze_seconds = seconds_since(analyze_start);
  last_stats_.units = graph_stats.units;
  last_stats_.cache_hits = graph_stats.cache_hits;
  last_stats_.cache_misses = graph_stats.cache_misses;
  metrics.cache_hits.add(graph_stats.cache_hits);
  metrics.cache_misses.add(graph_stats.cache_misses);

  has_result_ = true;
  previous_ = std::move(current);
  has_previous_ = true;
  edits_.clear();
  last_stats_.total_seconds = seconds_since(total_start);
  return last_result_;
}

}  // namespace decisive::session
