// Fingerprint-keyed result cache for incremental graph-FMEA.
//
// Entries are content-addressed: the key is the *unit fingerprint* of the
// analysed component (see fingerprint.hpp), the value is the complete
// per-subcomponent record (FMEDA rows, warnings, verdict write-backs) that
// analyze_component emitted for it. Because the fingerprint covers every
// model fact the record depends on — including object identities and the
// analysis options — fingerprint equality implies the record replays
// byte-identically.
//
// The cache implements core::UnitResultCache, so analyze_component consults
// it directly. Before each run it must be bound to the current model
// snapshot (bind()): lookups resolve component → current fingerprint → entry
// and refuse components in the forced-dirty set (the impact_of_change
// widening computed by AnalysisSession).
//
// Persistence is a versioned, checksummed text format. Loading is
// corruption-tolerant by construction: a bad magic line, version skew, a
// checksum mismatch, or any parse anomaly discards the file and leaves the
// cache empty — a poisoned cache is rebuilt, never trusted.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>

#include "decisive/core/graph_fmea.hpp"
#include "decisive/session/fingerprint.hpp"

namespace decisive::session {

class ResultCache final : public core::UnitResultCache {
 public:
  ResultCache() = default;

  /// Binds the cache to a model snapshot for the next analyze_component run:
  /// `fingerprints` maps components to their current unit fingerprints;
  /// `forced_dirty` components (and units containing them) miss
  /// unconditionally. Both pointers must outlive the run; pass nullptr to
  /// unbind.
  void bind(const ModelFingerprints* fingerprints, const std::set<ssam::ObjectId>* forced_dirty);

  // -- core::UnitResultCache --------------------------------------------------
  [[nodiscard]] const core::UnitRecord* lookup(ssam::ObjectId component,
                                               const std::string& path) override;
  void store(core::UnitRecord record) override;

  // -- inspection -------------------------------------------------------------
  [[nodiscard]] size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  // -- persistence ------------------------------------------------------------
  struct LoadReport {
    bool loaded = false;   ///< false: file absent/corrupt — cache left empty
    size_t entries = 0;    ///< entries restored when loaded
    std::string note;      ///< human-readable reason when !loaded
  };

  /// Serialises every entry; throws IoError when the file cannot be written.
  void save_file(const std::string& path) const;

  /// Replaces the cache contents with the file's entries. Never throws on
  /// bad *content*: any corruption empties the cache and reports why.
  /// Throws IoError only when the path exists but cannot be read.
  LoadReport load_file(const std::string& path);

 private:
  std::map<Fingerprint, core::UnitRecord> entries_;
  const ModelFingerprints* fingerprints_ = nullptr;
  const std::set<ssam::ObjectId>* forced_dirty_ = nullptr;
};

}  // namespace decisive::session
