// The `same session` service: a long-lived line-protocol loop that keeps one
// SSAM model and its incremental analysis state resident, so the DECISIVE
// Step 4a/4b iteration (edit → re-analyze → inspect) never pays a model
// reload or a cold analysis again.
//
// Protocol (full grammar in DESIGN.md §9): one request per line; every
// request is answered by zero or more informational lines followed by a
// status line — "ok" or "error: <message>". Blank lines and lines starting
// with '#' are ignored (script-friendly). The loop ends on "quit" or EOF.
#pragma once

#include <iosfwd>
#include <string>

#include "decisive/core/graph_fmea.hpp"

namespace decisive::session {

/// Start-up configuration of one service run.
struct ServiceOptions {
  std::string model_path;  ///< optional: model to load before the loop starts
  std::string component;   ///< root component name (required with model_path)
  std::string cache_path;  ///< optional: result cache to load before the loop
  core::GraphFmeaOptions analysis;  ///< analysis settings for every reanalyze
};

/// Runs the service loop, reading requests from `in` and writing responses
/// to `out`. Returns the process exit code: 0 on a clean quit/EOF, 2 when
/// the initial load specified in `options` fails.
int run_service(std::istream& in, std::ostream& out, const ServiceOptions& options = {});

}  // namespace decisive::session
