// Incremental re-analysis engine: the DECISIVE edit→re-analyze loop, hot.
//
// AnalysisSession owns the iteration state for one (model, root component)
// pair: the fingerprint snapshot of the last run, the fingerprint-keyed
// result cache, and the last FMEDA. reanalyze() recomputes fingerprints
// (one model pass), derives the dirty set as the fingerprint diff *widened
// by impact_of_change traceability* (containment ancestors and signal
// neighbours of every changed component must be revisited — paper Section
// III's change-management requirement), forces those components past the
// cache, and re-runs analyze_component: clean units replay cached rows,
// dirty ones pay for graph construction and single-point analysis. The
// resulting FMEDA table is byte-identical to a cold full run.
#pragma once

#include <set>

#include "decisive/core/graph_fmea.hpp"
#include "decisive/session/cache.hpp"
#include "decisive/session/fingerprint.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::session {

class AnalysisSession {
 public:
  /// Binds the session to a loaded model and the component under analysis.
  /// The model must outlive the session; all edits between reanalyze() calls
  /// should go through the model directly (and ideally be announced via
  /// note_edit for precise impact widening).
  AnalysisSession(ssam::SsamModel& model, ssam::ObjectId root,
                  core::GraphFmeaOptions options = {});

  /// Per-request observability of one reanalyze() call.
  struct Stats {
    size_t units = 0;               ///< composite components visited
    size_t cache_hits = 0;          ///< units replayed from the cache
    size_t cache_misses = 0;        ///< units analysed fresh
    size_t changed_components = 0;  ///< fingerprint diff vs the previous run
    size_t widened_components = 0;  ///< extra dirt added by impact_of_change
    bool short_circuited = false;   ///< subtree fingerprint unchanged: replayed last result
    double fingerprint_seconds = 0.0;
    double analyze_seconds = 0.0;  ///< full analyze_component wall time
    double total_seconds = 0.0;

    [[nodiscard]] double hit_rate() const noexcept {
      return units == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(units);
    }
  };

  /// Announces that `component` was edited. Optional — the fingerprint diff
  /// catches silent edits too — but it feeds impact_of_change widening for
  /// edits whose consequences reach beyond the component's own fingerprint.
  void note_edit(ssam::ObjectId component);

  /// Incremental re-analysis; returns the new FMEDA (byte-identical to a
  /// cold run on the current model state).
  const core::FmedaResult& reanalyze();

  /// Cache-bypassing full analysis of the current model state — the oracle
  /// the incremental path is property-tested against. Does not touch the
  /// cache or the session's fingerprint snapshot.
  [[nodiscard]] core::FmedaResult cold_analyze() const;

  [[nodiscard]] const core::FmedaResult& last_result() const noexcept { return last_result_; }
  [[nodiscard]] bool has_result() const noexcept { return has_result_; }
  [[nodiscard]] const Stats& last_stats() const noexcept { return last_stats_; }
  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] ssam::ObjectId root() const noexcept { return root_; }
  [[nodiscard]] const core::GraphFmeaOptions& options() const noexcept { return options_; }

 private:
  ssam::SsamModel& model_;
  ssam::ObjectId root_;
  core::GraphFmeaOptions options_;

  ResultCache cache_;
  ModelFingerprints previous_;
  bool has_previous_ = false;
  std::set<ssam::ObjectId> edits_;

  core::FmedaResult last_result_;
  bool has_result_ = false;
  Stats last_stats_;
};

}  // namespace decisive::session
