// Content fingerprints for incremental safety analysis.
//
// DECISIVE is iterative: every change to the system definition re-runs the
// analysis (paper Section III). To recompute only what changed, each
// component gets a *unit fingerprint* — a content hash over exactly the
// model surface the graph-FMEA of that component reads:
//
//   - the component's qualified path, name, blockType and FIT,
//   - its boundary IONodes (identity + direction) and internal wiring
//     (ComponentRelationships, in declaration order),
//   - for every direct subcomponent: identity, name, blockType, FIT,
//     IONodes, failure modes (name, distribution, nature,
//     affected-component and hazard links), modelled safety mechanisms
//     (name, coverage, cost, covered modes), and whether it is composite,
//   - the analysis options (loss natures, mechanism deployment, recursion).
//
// Analysis *outputs* (the `safetyRelated` write-back and auto-attached
// FailureEffects) are deliberately excluded, so re-running an analysis never
// invalidates its own cache entries.
//
// A *subtree fingerprint* folds the unit fingerprint with all descendants'
// (bottom-up, one model pass): equal subtree fingerprints at the analysis
// root mean the whole re-analysis can be skipped.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "decisive/core/graph_fmea.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::session {

/// A 128-bit content hash (two independently seeded 64-bit FNV-1a lanes).
/// Wide enough that the fingerprint-keyed result cache can treat equality as
/// content identity.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  auto operator<=>(const Fingerprint&) const = default;
};

/// Lower-case hex rendering, "hhhhhhhhhhhhhhhh:llllllllllllllll".
[[nodiscard]] std::string to_hex(const Fingerprint& fp);

/// Inverse of to_hex; throws ParseError on malformed input.
[[nodiscard]] Fingerprint fingerprint_from_hex(std::string_view text);

/// Incremental hasher used to build fingerprints field by field. Mixing is
/// word-at-a-time (one multiply-xor round per lane per 64 bits): the
/// fingerprint pass hashes every string in the subtree on every reanalyze,
/// so it must stay well under the cost of the analysis it avoids.
class FingerprintBuilder {
 public:
  FingerprintBuilder() = default;

  void mix(std::string_view text);
  void mix(std::uint64_t value) noexcept;
  void mix(double value);  ///< hashes the bit pattern — exact, no rounding
  void mix(bool value);
  void mix(const Fingerprint& other);

  [[nodiscard]] Fingerprint finish() const noexcept { return fp_; }

 private:
  Fingerprint fp_{0xcbf29ce484222325ULL, 0x84222325cbf29ce4ULL};
};

/// Per-component fingerprints of one model snapshot.
struct ModelFingerprints {
  /// Unit fingerprint: the surface the analysis *of this component* reads.
  std::map<ssam::ObjectId, Fingerprint> unit;
  /// Subtree fingerprint: unit hash folded with all descendants'.
  std::map<ssam::ObjectId, Fingerprint> subtree;
  /// Containment parent within the fingerprinted subtree (absent for the
  /// root). Lets callers map an edited leaf to the unit whose analysis
  /// covers it.
  std::map<ssam::ObjectId, ssam::ObjectId> parent;
  /// Qualified path from the analysis root, matching the paths graph-FMEA
  /// rows carry (root name, then "/"-joined component names).
  std::map<ssam::ObjectId, std::string> path;
  /// Signal adjacency within the subtree: components sharing a
  /// ComponentRelationship endpoint, owner resolved during the same pass.
  /// This is the connected_components leg of core::impact_of_change,
  /// precomputed so dirty-set widening costs O(dirty) instead of a full
  /// repository scan per changed component.
  std::map<ssam::ObjectId, std::vector<ssam::ObjectId>> neighbours;
};

/// Fingerprints every component in the containment subtree of `root` in one
/// bottom-up pass. `options` is folded into every hash so a cache can never
/// serve results computed under different analysis settings.
[[nodiscard]] ModelFingerprints fingerprint_model(const ssam::SsamModel& ssam,
                                                  ssam::ObjectId root,
                                                  const core::GraphFmeaOptions& options);

/// Components whose unit fingerprint changed between two snapshots —
/// appeared, disappeared, or hashes differently.
[[nodiscard]] std::vector<ssam::ObjectId> fingerprint_diff(const ModelFingerprints& before,
                                                           const ModelFingerprints& after);

}  // namespace decisive::session
