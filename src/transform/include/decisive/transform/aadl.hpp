// AADL -> SSAM model-to-model transformation (the related-work claim
// "AADL models can also be transformed to SSAM and our approach can also be
// applied", made executable).
//
// Mapping:
//   component implementation  -> composite Component (the system design)
//   subcomponent              -> Component (blockType = AADL type;
//                                componentType by category: device/processor
//                                -> hardware, process/thread -> software,
//                                system/abstract -> system)
//   type features             -> IONodes (direction preserved)
//   connections               -> ComponentRelationships (bare endpoints bind
//                                to the composite's boundary IONodes)
//   Decisive::FIT property    -> Component.fit
// Every subcomponent property is preserved as an ImplementationConstraint
// (language "aadl-property"), mirroring the Simulink transformation's
// losslessness discipline.
#pragma once

#include "decisive/drivers/aadl.hpp"
#include "decisive/transform/simulink.hpp"  // TransformResult, TraceLink

namespace decisive::transform {

/// Transforms the implementation of `type_name` (e.g. "PowerSupplyA",
/// resolving "PowerSupplyA.impl") into a ComponentPackage in `ssam`.
/// Throws TransformError when the implementation or a referenced feature is
/// missing.
TransformResult aadl_to_ssam(const drivers::AadlPackage& package, std::string_view type_name,
                             ssam::SsamModel& ssam);

}  // namespace decisive::transform
