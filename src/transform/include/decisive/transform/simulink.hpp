// Simulink (MDL) <-> SSAM model-to-model transformation.
//
// The forward transformation is lossless (paper: "a comprehensive
// model-to-model transformation to demonstrate how Simulink models can be
// transformed into SSAM models with no information loss"):
//   - every Block becomes a Component (blockType preserved; AnnotatedType
//     wins for annotated subsystems, with the original type retained);
//   - every Block parameter becomes an ImplementationConstraint child with
//     language "simulink-param" (key in `name`, value in `body`);
//   - every Line becomes a ComponentRelationship between the IONodes that
//     represent the blocks' ports (port direction inferred from line usage);
//   - non-annotated SubSystems become composite Components whose `Port`
//     blocks are mapped to boundary IONodes;
//   - simulation-infrastructure blocks are preserved as Components with
//     componentType "simulation".
//
// The reverse transformation regenerates an MDL model from a transformed
// subtree, enabling the paper's "changes in SSAM can be propagated back to
// the original model", and the round-trip audit proves losslessness.
#pragma once

#include <string>
#include <vector>

#include "decisive/drivers/mdl.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::transform {

/// One transformation trace link (source path -> created SSAM element).
struct TraceLink {
  std::string source;       ///< hierarchical MDL path ("Filter/L1")
  ssam::ObjectId target = model::kNullObject;
  std::string rule;         ///< rule name, e.g. "Block2Component"
};

struct TransformResult {
  ssam::ObjectId component_package = model::kNullObject;
  ssam::ObjectId root = model::kNullObject;  ///< root Component (the model)
  std::vector<TraceLink> trace;
  size_t blocks = 0;
  size_t lines = 0;
  size_t params = 0;

  /// First trace target for a source path, or kNullObject.
  [[nodiscard]] ssam::ObjectId resolve(std::string_view source_path) const noexcept;
};

/// Forward transformation. Creates a ComponentPackage in `ssam` holding the
/// transformed design.
TransformResult simulink_to_ssam(const drivers::MdlModel& mdl, ssam::SsamModel& ssam);

/// Reverse transformation of a subtree produced by simulink_to_ssam.
drivers::MdlModel ssam_to_simulink(const ssam::SsamModel& ssam, ssam::ObjectId root);

/// Information-preservation audit: verifies every block, parameter and line
/// of `mdl` is represented in the transformed model. Returns human-readable
/// descriptions of anything missing (empty == lossless).
std::vector<std::string> audit_information_loss(const drivers::MdlModel& mdl,
                                                const ssam::SsamModel& ssam,
                                                const TransformResult& result);

}  // namespace decisive::transform
