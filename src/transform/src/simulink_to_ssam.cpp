#include <map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/transform/simulink.hpp"

namespace decisive::transform {

using drivers::MdlBlock;
using drivers::MdlModel;
using drivers::MdlSystem;
using ssam::ObjectId;
using ssam::SsamModel;

ObjectId TransformResult::resolve(std::string_view source_path) const noexcept {
  for (const auto& link : trace) {
    if (link.source == source_path) return link.target;
  }
  return model::kNullObject;
}

namespace {

/// Attaches a "simulink-*" ImplementationConstraint to any ModelElement.
void attach_constraint(SsamModel& m, ObjectId element, std::string_view language,
                       std::string_view name, std::string_view body) {
  auto& c = m.repo().create(m.meta().get(ssam::cls::ImplementationConstraint));
  c.set_string("name", std::string(name));
  c.set_string("language", std::string(language));
  c.set_string("body", std::string(body));
  m.obj(element).add_ref("implementationConstraints", c.id());
}

class ForwardTransform {
 public:
  ForwardTransform(SsamModel& m, TransformResult& result) : m_(m), result_(result) {}

  void run(const MdlModel& mdl) {
    result_.component_package = m_.create_component_package(mdl.name + "-imported");
    result_.root = m_.create_component(result_.component_package, mdl.name);
    attach_constraint(m_, result_.root, "simulink-blocktype", "BlockType", "Model");
    transform_system(mdl.root, mdl.name, result_.root);
  }

 private:
  void trace(std::string source, ObjectId target, std::string rule) {
    result_.trace.push_back(TraceLink{std::move(source), target, std::move(rule)});
  }

  /// Finds or creates the IONode representing (component, port name).
  ObjectId io_node(ObjectId component, const std::string& port, const std::string& direction) {
    for (const ObjectId node : m_.obj(component).refs("ioNodes")) {
      if (m_.obj(node).get_string("name") == port) return node;
    }
    return m_.add_io_node(component, port, direction);
  }

  void transform_system(const MdlSystem& system, const std::string& path, ObjectId parent) {
    std::map<std::string, ObjectId> components;  // block name -> Component
    std::map<std::string, ObjectId> port_nodes;  // Port block name -> boundary IONode

    // Rule Block2Component / Port2IONode.
    for (const auto& block : system.blocks) {
      const std::string block_path = path + "/" + block.name;
      if (block.type == "Port") {
        // Boundary port of the enclosing (sub)system.
        const ObjectId node = io_node(parent, block.name, "in");
        attach_constraint(m_, node, "simulink-blocktype", "BlockType", "Port");
        for (const auto& [key, value] : block.params) {
          attach_constraint(m_, node, "simulink-param", key, value);
          ++result_.params;
        }
        port_nodes[block.name] = node;
        trace(block_path, node, "Port2IONode");
        ++result_.blocks;
        continue;
      }

      const ObjectId component = m_.create_component(parent, block.name);
      const auto annotated = block.param("AnnotatedType");
      m_.obj(component).set_string("blockType", annotated.value_or(block.type));
      m_.obj(component).set_string(
          "componentType", sim::block_type_infrastructure(block.type) ? "simulation"
                                                                      : "hardware");
      attach_constraint(m_, component, "simulink-blocktype", "BlockType", block.type);
      for (const auto& [key, value] : block.params) {
        attach_constraint(m_, component, "simulink-param", key, value);
        ++result_.params;
      }
      components[block.name] = component;
      trace(block_path, component, "Block2Component");
      ++result_.blocks;

      if (block.subsystem != nullptr) {
        transform_system(*block.subsystem, block_path, component);
      }
    }

    // Rule Line2Relationship.
    for (const auto& line : system.lines) {
      const ObjectId src = endpoint(system, components, port_nodes, line.src_block,
                                    line.src_port, /*is_target=*/false);
      const ObjectId dst = endpoint(system, components, port_nodes, line.dst_block,
                                    line.dst_port, /*is_target=*/true);
      const ObjectId rel = m_.connect(parent, src, dst);
      attach_constraint(m_, rel, "simulink-src", "Src", line.src_block + "|" + line.src_port);
      attach_constraint(m_, rel, "simulink-dst", "Dst", line.dst_block + "|" + line.dst_port);
      trace(path + "/<line:" + line.src_block + "->" + line.dst_block + ">", rel,
            "Line2Relationship");
      ++result_.lines;
    }
  }

  ObjectId endpoint(const MdlSystem& system, std::map<std::string, ObjectId>& components,
                    std::map<std::string, ObjectId>& port_nodes, const std::string& block_name,
                    const std::string& port, bool is_target) {
    const std::string direction = is_target ? "in" : "out";
    // Port boundary block referenced by an internal line.
    if (const auto it = port_nodes.find(block_name); it != port_nodes.end()) return it->second;

    const auto it = components.find(block_name);
    if (it == components.end()) {
      throw TransformError("line references unknown block '" + block_name + "'");
    }
    const MdlBlock* block = system.block(block_name);
    // Non-annotated subsystem: connect to its boundary IONode named `port`.
    if (block != nullptr && block->type == "SubSystem" &&
        block->param("AnnotatedType") == std::nullopt) {
      for (const ObjectId node : m_.obj(it->second).refs("ioNodes")) {
        if (m_.obj(node).get_string("name") == port) return node;
      }
      throw TransformError("subsystem '" + block_name + "' has no boundary port '" + port +
                           "'");
    }
    return io_node(it->second, port, direction);
  }

  SsamModel& m_;
  TransformResult& result_;
};

}  // namespace

TransformResult simulink_to_ssam(const MdlModel& mdl, SsamModel& ssam) {
  TransformResult result;
  ForwardTransform(ssam, result).run(mdl);
  return result;
}

namespace {

void audit_system(const MdlSystem& system, const std::string& path, const SsamModel& ssam,
                  const TransformResult& result, std::vector<std::string>& missing) {
  for (const auto& block : system.blocks) {
    const std::string block_path = path + "/" + block.name;
    const ObjectId target = result.resolve(block_path);
    if (target == model::kNullObject) {
      missing.push_back("block '" + block_path + "' has no transformation target");
      continue;
    }
    for (const auto& [key, value] : block.params) {
      bool found = false;
      for (const ObjectId c : ssam.obj(target).refs("implementationConstraints")) {
        const auto& obj = ssam.obj(c);
        if (obj.get_string("language") == "simulink-param" && obj.get_string("name") == key &&
            obj.get_string("body") == value) {
          found = true;
          break;
        }
      }
      if (!found) {
        missing.push_back("parameter '" + key + "' of '" + block_path + "' was not preserved");
      }
    }
    if (block.subsystem != nullptr) audit_system(*block.subsystem, block_path, ssam, result, missing);
  }
  for (const auto& line : system.lines) {
    const std::string line_path =
        path + "/<line:" + line.src_block + "->" + line.dst_block + ">";
    if (result.resolve(line_path) == model::kNullObject) {
      missing.push_back("line '" + line_path + "' has no transformation target");
    }
  }
}

}  // namespace

std::vector<std::string> audit_information_loss(const MdlModel& mdl, const SsamModel& ssam,
                                                const TransformResult& result) {
  std::vector<std::string> missing;
  audit_system(mdl.root, mdl.name, ssam, result, missing);
  return missing;
}

}  // namespace decisive::transform
