#include <map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/transform/aadl.hpp"

namespace decisive::transform {

using drivers::AadlComponentType;
using drivers::AadlImplementation;
using drivers::AadlPackage;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

/// Maps an AADL feature direction onto the SSAM `direction` attribute. AADL
/// spells the bidirectional case "in out"; SSAM uses "inout".
std::string ssam_direction(const std::string& aadl_direction) {
  if (aadl_direction == "out") return "out";
  if (aadl_direction == "in out") return "inout";
  return "in";
}

std::string component_type_for_category(const std::string& category) {
  if (category == "device" || category == "processor") return "hardware";
  if (category == "process" || category == "thread") return "software";
  return "system";
}

void attach_property(SsamModel& m, ObjectId element, const std::string& key,
                     const std::string& value) {
  auto& c = m.repo().create(m.meta().get(ssam::cls::ImplementationConstraint));
  c.set_string("name", key);
  c.set_string("language", "aadl-property");
  c.set_string("body", value);
  m.obj(element).add_ref("implementationConstraints", c.id());
}

}  // namespace

TransformResult aadl_to_ssam(const AadlPackage& package, std::string_view type_name,
                             SsamModel& ssam) {
  const AadlImplementation* impl = package.implementation(type_name);
  if (impl == nullptr) {
    throw TransformError("package '" + package.name + "' has no implementation of '" +
                         std::string(type_name) + "'");
  }

  TransformResult result;
  result.component_package = ssam.create_component_package(package.name + "-imported");
  result.root = ssam.create_component(result.component_package, impl->type_name);
  ssam.obj(result.root).set_string("componentType", "system");
  result.trace.push_back(
      TraceLink{package.name + "/" + impl->type_name, result.root, "Implementation2Component"});

  // Boundary IONodes from the implementation's component type.
  std::map<std::string, ObjectId> boundary;
  if (const AadlComponentType* type = package.type(impl->type_name)) {
    for (const auto& feature : type->features) {
      const ObjectId node = ssam.add_io_node(result.root, feature.name,
                                             ssam_direction(feature.direction));
      boundary[to_lower(feature.name)] = node;
      result.trace.push_back(TraceLink{package.name + "/" + impl->type_name + "/" +
                                           feature.name,
                                       node, "Feature2IONode"});
    }
  }

  // Subcomponents with their type features.
  std::map<std::string, ObjectId> components;                 // name -> Component
  std::map<std::string, std::map<std::string, ObjectId>> io;  // name -> feature -> IONode
  for (const auto& sub : impl->subcomponents) {
    const ObjectId component = ssam.create_component(result.root, sub.name);
    ssam.obj(component).set_string("blockType", sub.type);
    ssam.obj(component).set_string("componentType", component_type_for_category(sub.category));
    if (const auto fit = sub.property("Decisive::FIT")) {
      ssam.obj(component).set_real("fit", parse_double(*fit));
    }
    for (const auto& [key, value] : sub.properties) {
      attach_property(ssam, component, key, value);
      ++result.params;
    }
    components[to_lower(sub.name)] = component;
    ++result.blocks;
    result.trace.push_back(
        TraceLink{package.name + "/" + impl->type_name + "/" + sub.name, component,
                  "Subcomponent2Component"});

    if (const AadlComponentType* type = package.type(sub.type)) {
      for (const auto& feature : type->features) {
        const ObjectId node = ssam.add_io_node(component, sub.name + "." + feature.name,
                                               ssam_direction(feature.direction));
        io[to_lower(sub.name)][to_lower(feature.name)] = node;
      }
    }
  }

  // Connections.
  auto endpoint = [&](const std::string& component_name,
                      const std::string& feature) -> ObjectId {
    if (component_name.empty()) {
      const auto it = boundary.find(to_lower(feature));
      if (it == boundary.end()) {
        throw TransformError("connection references unknown boundary feature '" + feature +
                             "'");
      }
      return it->second;
    }
    const auto comp_it = io.find(to_lower(component_name));
    if (comp_it == io.end()) {
      throw TransformError("connection references unknown subcomponent '" + component_name +
                           "'");
    }
    const auto feat_it = comp_it->second.find(to_lower(feature));
    if (feat_it == comp_it->second.end()) {
      throw TransformError("subcomponent '" + component_name + "' has no feature '" +
                           feature + "' (declare it on the component type)");
    }
    return feat_it->second;
  };
  for (const auto& conn : impl->connections) {
    const ObjectId src = endpoint(conn.src_component, conn.src_feature);
    const ObjectId dst = endpoint(conn.dst_component, conn.dst_feature);
    const ObjectId rel = ssam.connect(result.root, src, dst);
    ++result.lines;
    result.trace.push_back(TraceLink{package.name + "/" + impl->type_name + "/<conn:" +
                                         conn.name + ">",
                                     rel, "Connection2Relationship"});
  }
  return result;
}

}  // namespace decisive::transform
