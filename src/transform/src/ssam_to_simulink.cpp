// Reverse transformation: regenerate an MDL (Simulink-substitute) model from
// a component subtree produced by simulink_to_ssam. Enables propagating SSAM
// edits back to the original design and proves the forward transformation is
// lossless (round-trip tests).
#include <optional>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/transform/simulink.hpp"

namespace decisive::transform {

using drivers::MdlBlock;
using drivers::MdlLine;
using drivers::MdlModel;
using drivers::MdlSystem;
using ssam::ObjectId;
using ssam::SsamModel;

namespace {

std::optional<std::string> read_constraint(const SsamModel& m, ObjectId element,
                                           std::string_view language, std::string_view name) {
  for (const ObjectId c : m.obj(element).refs("implementationConstraints")) {
    const auto& obj = m.obj(c);
    if (obj.get_string("language") == language &&
        (name.empty() || obj.get_string("name") == name)) {
      return obj.get_string("body");
    }
  }
  return std::nullopt;
}

MdlSystem rebuild_system(const SsamModel& m, ObjectId component);

MdlBlock rebuild_block(const SsamModel& m, ObjectId component) {
  MdlBlock block;
  block.name = m.obj(component).get_string("name");
  block.type = read_constraint(m, component, "simulink-blocktype", "BlockType")
                   .value_or(m.obj(component).get_string("blockType", "SubSystem"));
  for (const ObjectId c : m.obj(component).refs("implementationConstraints")) {
    const auto& obj = m.obj(c);
    if (obj.get_string("language") == "simulink-param") {
      block.params.emplace_back(obj.get_string("name"), obj.get_string("body"));
    }
  }
  if (!m.obj(component).refs("subcomponents").empty() ||
      !m.obj(component).refs("relationships").empty()) {
    block.subsystem = std::make_unique<MdlSystem>(rebuild_system(m, component));
  }
  return block;
}

MdlSystem rebuild_system(const SsamModel& m, ObjectId component) {
  MdlSystem system;
  // Boundary Port blocks (IONodes tagged as Port by the forward transform).
  for (const ObjectId node : m.obj(component).refs("ioNodes")) {
    if (read_constraint(m, node, "simulink-blocktype", "BlockType") == "Port") {
      MdlBlock port;
      port.type = "Port";
      port.name = m.obj(node).get_string("name");
      for (const ObjectId c : m.obj(node).refs("implementationConstraints")) {
        const auto& obj = m.obj(c);
        if (obj.get_string("language") == "simulink-param") {
          port.params.emplace_back(obj.get_string("name"), obj.get_string("body"));
        }
      }
      system.blocks.push_back(std::move(port));
    }
  }
  for (const ObjectId sub : m.obj(component).refs("subcomponents")) {
    system.blocks.push_back(rebuild_block(m, sub));
  }
  for (const ObjectId rel : m.obj(component).refs("relationships")) {
    const auto src = read_constraint(m, rel, "simulink-src", "Src");
    const auto dst = read_constraint(m, rel, "simulink-dst", "Dst");
    if (!src.has_value() || !dst.has_value()) {
      throw TransformError(
          "relationship without simulink endpoint traceability; was this model "
          "produced by simulink_to_ssam?");
    }
    const auto split_endpoint = [](const std::string& text) {
      const size_t bar = text.find('|');
      if (bar == std::string::npos) {
        throw TransformError("malformed endpoint '" + text + "'");
      }
      return std::pair<std::string, std::string>(text.substr(0, bar), text.substr(bar + 1));
    };
    MdlLine line;
    std::tie(line.src_block, line.src_port) = split_endpoint(*src);
    std::tie(line.dst_block, line.dst_port) = split_endpoint(*dst);
    system.lines.push_back(std::move(line));
  }
  return system;
}

}  // namespace

MdlModel ssam_to_simulink(const SsamModel& ssam, ObjectId root) {
  MdlModel model;
  model.name = ssam.obj(root).get_string("name");
  model.root = rebuild_system(ssam, root);
  model.root.name = model.name;
  return model;
}

}  // namespace decisive::transform
