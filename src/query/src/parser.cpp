#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/query/lexer.hpp"
#include "decisive/query/query.hpp"

namespace decisive::query {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Script parse_script() {
    Script script;
    while (at(TokenKind::KwVar)) {
      advance();
      const Token name = expect(TokenKind::Ident, "variable name");
      expect(TokenKind::Assign, "'='");
      ExprPtr init = parse_expr();
      expect(TokenKind::Semicolon, "';'");
      script.bindings.emplace_back(name.text, std::move(init));
    }
    if (at(TokenKind::KwReturn)) advance();
    script.result = parse_expr();
    if (at(TokenKind::Semicolon)) advance();
    expect(TokenKind::End, "end of script");
    return script;
  }

 private:
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  Token advance() { return tokens_[pos_++]; }
  Token expect(TokenKind kind, const std::string& what) {
    if (!at(kind)) {
      throw QueryError("syntax error: expected " + what + " at offset " +
                       std::to_string(peek().offset));
    }
    return advance();
  }

  static ExprPtr make(Expr::Kind kind) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    return e;
  }

  ExprPtr parse_expr() { return parse_ternary(); }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_implies();
    if (!at(TokenKind::Question)) return cond;
    advance();
    ExprPtr then_branch = parse_expr();
    expect(TokenKind::Colon, "':'");
    ExprPtr else_branch = parse_expr();
    ExprPtr e = make(Expr::Kind::Ternary);
    e->a = std::move(cond);
    e->b = std::move(then_branch);
    e->c = std::move(else_branch);
    return e;
  }

  ExprPtr parse_implies() {
    ExprPtr lhs = parse_or();
    while (at(TokenKind::KwImplies)) {
      advance();
      ExprPtr rhs = parse_or();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = BinaryOp::Implies;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (at(TokenKind::KwOr)) {
      advance();
      ExprPtr rhs = parse_and();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = BinaryOp::Or;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_not();
    while (at(TokenKind::KwAnd)) {
      advance();
      ExprPtr rhs = parse_not();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = BinaryOp::And;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_not() {
    if (at(TokenKind::KwNot)) {
      advance();
      ExprPtr e = make(Expr::Kind::Unary);
      e->unary_op = UnaryOp::Not;
      e->a = parse_not();
      return e;
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_additive();
    for (;;) {
      BinaryOp op;
      if (at(TokenKind::Lt)) op = BinaryOp::Lt;
      else if (at(TokenKind::Le)) op = BinaryOp::Le;
      else if (at(TokenKind::Gt)) op = BinaryOp::Gt;
      else if (at(TokenKind::Ge)) op = BinaryOp::Ge;
      else if (at(TokenKind::Eq)) op = BinaryOp::Eq;
      else if (at(TokenKind::Ne)) op = BinaryOp::Ne;
      else if (at(TokenKind::Assign)) op = BinaryOp::Eq;  // EOL uses '=' for equality too
      else break;
      advance();
      ExprPtr rhs = parse_additive();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = op;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_additive() {
    ExprPtr lhs = parse_multiplicative();
    for (;;) {
      BinaryOp op;
      if (at(TokenKind::Plus)) op = BinaryOp::Add;
      else if (at(TokenKind::Minus)) op = BinaryOp::Sub;
      else break;
      advance();
      ExprPtr rhs = parse_multiplicative();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = op;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_multiplicative() {
    ExprPtr lhs = parse_unary();
    for (;;) {
      BinaryOp op;
      if (at(TokenKind::Star)) op = BinaryOp::Mul;
      else if (at(TokenKind::Slash)) op = BinaryOp::Div;
      else if (at(TokenKind::Percent)) op = BinaryOp::Mod;
      else break;
      advance();
      ExprPtr rhs = parse_unary();
      ExprPtr e = make(Expr::Kind::Binary);
      e->binary_op = op;
      e->a = std::move(lhs);
      e->b = std::move(rhs);
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (at(TokenKind::Minus)) {
      advance();
      ExprPtr e = make(Expr::Kind::Unary);
      e->unary_op = UnaryOp::Neg;
      e->a = parse_unary();
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr target = parse_primary();
    while (at(TokenKind::Dot)) {
      advance();
      const Token name = expect(TokenKind::Ident, "property or method name");
      if (at(TokenKind::LParen)) {
        advance();
        ExprPtr e = make(Expr::Kind::Method);
        e->string_value = name.text;
        e->a = std::move(target);
        parse_args(e->args);
        target = std::move(e);
      } else {
        ExprPtr e = make(Expr::Kind::Property);
        e->string_value = name.text;
        e->a = std::move(target);
        target = std::move(e);
      }
    }
    return target;
  }

  // Parses "(arg, arg, ...)" after the opening paren is consumed. Each arg
  // may be a lambda "x | expr".
  void parse_args(std::vector<ExprPtr>& args) {
    if (at(TokenKind::RParen)) {
      advance();
      return;
    }
    for (;;) {
      args.push_back(parse_arg());
      if (at(TokenKind::Comma)) {
        advance();
        continue;
      }
      expect(TokenKind::RParen, "')'");
      return;
    }
  }

  ExprPtr parse_arg() {
    // Lambda: Ident '|' expr
    if (at(TokenKind::Ident) && tokens_[pos_ + 1].kind == TokenKind::Pipe) {
      const Token param = advance();
      advance();  // '|'
      ExprPtr e = make(Expr::Kind::Lambda1);
      e->string_value = param.text;
      e->b = parse_expr();
      return e;
    }
    return parse_expr();
  }

  ExprPtr parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokenKind::Number: {
        advance();
        ExprPtr e = make(Expr::Kind::NumberLit);
        e->number_value = t.number;
        return e;
      }
      case TokenKind::String: {
        ExprPtr e = make(Expr::Kind::StringLit);
        e->string_value = advance().text;
        return e;
      }
      case TokenKind::KwTrue:
      case TokenKind::KwFalse: {
        ExprPtr e = make(Expr::Kind::BoolLit);
        e->bool_value = advance().kind == TokenKind::KwTrue;
        return e;
      }
      case TokenKind::KwNull:
        advance();
        return make(Expr::Kind::NullLit);
      case TokenKind::KwSequence: {
        advance();
        expect(TokenKind::LBrace, "'{'");
        ExprPtr e = make(Expr::Kind::SequenceLit);
        if (!at(TokenKind::RBrace)) {
          for (;;) {
            e->args.push_back(parse_expr());
            if (at(TokenKind::Comma)) {
              advance();
              continue;
            }
            break;
          }
        }
        expect(TokenKind::RBrace, "'}'");
        return e;
      }
      case TokenKind::Ident: {
        const Token name = advance();
        if (at(TokenKind::LParen)) {
          advance();
          ExprPtr e = make(Expr::Kind::Call);
          e->string_value = name.text;
          parse_args(e->args);
          return e;
        }
        ExprPtr e = make(Expr::Kind::Ident);
        e->string_value = name.text;
        return e;
      }
      case TokenKind::LParen: {
        advance();
        ExprPtr inner = parse_expr();
        expect(TokenKind::RParen, "')'");
        return inner;
      }
      default:
        throw QueryError("syntax error: unexpected token at offset " +
                         std::to_string(t.offset));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Script parse_script(std::string_view source) {
  return Parser(tokenize(source)).parse_script();
}

}  // namespace decisive::query
