#include "decisive/query/lexer.hpp"

#include <cctype>
#include <charconv>

#include "decisive/base/error.hpp"

namespace decisive::query {

namespace {
bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}
}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = source.size();

  auto push = [&](TokenKind kind, size_t offset, std::string text = {}) {
    tokens.push_back(Token{kind, std::move(text), 0.0, offset});
  };

  while (i < n) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    // Comments: "--" (EOL-style) and "//".
    if ((c == '-' && i + 1 < n && source[i + 1] == '-') ||
        (c == '/' && i + 1 < n && source[i + 1] == '/')) {
      while (i < n && source[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (is_ident_start(c)) {
      while (i < n && is_ident_char(source[i])) ++i;
      const std::string_view word = source.substr(start, i - start);
      if (word == "var") push(TokenKind::KwVar, start);
      else if (word == "return") push(TokenKind::KwReturn, start);
      else if (word == "true") push(TokenKind::KwTrue, start);
      else if (word == "false") push(TokenKind::KwFalse, start);
      else if (word == "null") push(TokenKind::KwNull, start);
      else if (word == "and") push(TokenKind::KwAnd, start);
      else if (word == "or") push(TokenKind::KwOr, start);
      else if (word == "not") push(TokenKind::KwNot, start);
      else if (word == "implies") push(TokenKind::KwImplies, start);
      else if (word == "Sequence") push(TokenKind::KwSequence, start);
      else push(TokenKind::Ident, start, std::string(word));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      while (i < n && (std::isdigit(static_cast<unsigned char>(source[i])) != 0 ||
                       source[i] == '.' || source[i] == 'e' || source[i] == 'E' ||
                       ((source[i] == '+' || source[i] == '-') && i > start &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      const std::string_view text = source.substr(start, i - start);
      double value = 0.0;
      const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
      if (ec != std::errc() || ptr != text.data() + text.size()) {
        throw QueryError("bad numeric literal '" + std::string(text) + "'");
      }
      Token token{TokenKind::Number, std::string(text), value, start};
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      while (i < n && source[i] != quote) {
        if (source[i] == '\\' && i + 1 < n) {
          ++i;
          switch (source[i]) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '\\': text += '\\'; break;
            case '\'': text += '\''; break;
            case '"': text += '"'; break;
            default: text += source[i];
          }
        } else {
          text += source[i];
        }
        ++i;
      }
      if (i >= n) throw QueryError("unterminated string literal");
      ++i;  // closing quote
      push(TokenKind::String, start, std::move(text));
      continue;
    }
    ++i;
    switch (c) {
      case '+': push(TokenKind::Plus, start); break;
      case '-': push(TokenKind::Minus, start); break;
      case '*': push(TokenKind::Star, start); break;
      case '/': push(TokenKind::Slash, start); break;
      case '%': push(TokenKind::Percent, start); break;
      case '(': push(TokenKind::LParen, start); break;
      case ')': push(TokenKind::RParen, start); break;
      case '{': push(TokenKind::LBrace, start); break;
      case '}': push(TokenKind::RBrace, start); break;
      case '.': push(TokenKind::Dot, start); break;
      case ',': push(TokenKind::Comma, start); break;
      case ';': push(TokenKind::Semicolon, start); break;
      case '|': push(TokenKind::Pipe, start); break;
      case '?': push(TokenKind::Question, start); break;
      case ':': push(TokenKind::Colon, start); break;
      case '<':
        if (i < n && source[i] == '=') { push(TokenKind::Le, start); ++i; }
        else if (i < n && source[i] == '>') { push(TokenKind::Ne, start); ++i; }
        else push(TokenKind::Lt, start);
        break;
      case '>':
        if (i < n && source[i] == '=') { push(TokenKind::Ge, start); ++i; }
        else push(TokenKind::Gt, start);
        break;
      case '=':
        if (i < n && source[i] == '=') { push(TokenKind::Eq, start); ++i; }
        else push(TokenKind::Assign, start);
        break;
      case '!':
        if (i < n && source[i] == '=') { push(TokenKind::Ne, start); ++i; }
        else throw QueryError("unexpected '!' (use 'not' or '!=')");
        break;
      default:
        throw QueryError("illegal character '" + std::string(1, c) + "' at offset " +
                         std::to_string(start));
    }
  }
  push(TokenKind::End, n);
  return tokens;
}

}  // namespace decisive::query
