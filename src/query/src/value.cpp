#include "decisive/query/value.hpp"

#include <cmath>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::query {

Value Value::collection(Collection elements) {
  return Value(std::make_shared<Collection>(std::move(elements)));
}

bool Value::as_bool() const {
  if (const auto* b = std::get_if<bool>(&data_)) return *b;
  throw QueryError("expected a boolean, got " + type_name());
}

double Value::as_number() const {
  if (const auto* d = std::get_if<double>(&data_)) return *d;
  throw QueryError("expected a number, got " + type_name());
}

const std::string& Value::as_string() const {
  if (const auto* s = std::get_if<std::string>(&data_)) return *s;
  throw QueryError("expected a string, got " + type_name());
}

const Collection& Value::as_collection() const {
  if (const auto* c = std::get_if<CollectionPtr>(&data_)) {
    if (*c != nullptr) return **c;
  }
  throw QueryError("expected a collection, got " + type_name());
}

const ObjectPtr& Value::as_object() const {
  if (const auto* o = std::get_if<ObjectPtr>(&data_)) {
    if (*o != nullptr) return *o;
  }
  throw QueryError("expected an object, got " + type_name());
}

bool Value::equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if (is_bool() && other.is_bool()) return std::get<bool>(data_) == std::get<bool>(other.data_);
  if (is_number() && other.is_number()) {
    return std::get<double>(data_) == std::get<double>(other.data_);
  }
  if (is_string() && other.is_string()) {
    return std::get<std::string>(data_) == std::get<std::string>(other.data_);
  }
  if (is_collection() && other.is_collection()) {
    const auto& a = as_collection();
    const auto& b = other.as_collection();
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].equals(b[i])) return false;
    }
    return true;
  }
  if (is_object() && other.is_object()) {
    return std::get<ObjectPtr>(data_).get() == std::get<ObjectPtr>(other.data_).get();
  }
  return false;
}

bool Value::truthy() const {
  if (is_null()) return false;
  if (is_bool()) return std::get<bool>(data_);
  throw QueryError("condition must be a boolean, got " + type_name());
}

std::string Value::to_display() const {
  if (is_null()) return "null";
  if (is_bool()) return std::get<bool>(data_) ? "true" : "false";
  if (is_number()) return format_number(std::get<double>(data_), 10);
  if (is_string()) return std::get<std::string>(data_);
  if (is_collection()) {
    std::string out = "Sequence{";
    const auto& elems = as_collection();
    for (size_t i = 0; i < elems.size(); ++i) {
      if (i != 0) out += ", ";
      out += elems[i].to_display();
    }
    out += '}';
    return out;
  }
  return "<" + as_object()->type_name() + ">";
}

std::string Value::type_name() const {
  if (is_null()) return "null";
  if (is_bool()) return "bool";
  if (is_number()) return "number";
  if (is_string()) return "string";
  if (is_collection()) return "collection";
  const auto& o = std::get<ObjectPtr>(data_);
  return o ? o->type_name() : "null";
}

}  // namespace decisive::query
