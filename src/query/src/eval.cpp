#include <algorithm>
#include <cmath>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/query/query.hpp"

namespace decisive::query {

Env::Env() {
  // Numeric builtins available to every script.
  define_function("abs", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 1) throw QueryError("abs expects 1 argument");
    return Value(std::abs(args[0].as_number()));
  });
  define_function("sqrt", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 1) throw QueryError("sqrt expects 1 argument");
    return Value(std::sqrt(args[0].as_number()));
  });
  define_function("pow", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 2) throw QueryError("pow expects 2 arguments");
    return Value(std::pow(args[0].as_number(), args[1].as_number()));
  });
  define_function("min", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 2) throw QueryError("min expects 2 arguments");
    return Value(std::min(args[0].as_number(), args[1].as_number()));
  });
  define_function("max", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 2) throw QueryError("max expects 2 arguments");
    return Value(std::max(args[0].as_number(), args[1].as_number()));
  });
  define_function("round", [](const std::vector<Value>& args) -> Value {
    if (args.size() != 1) throw QueryError("round expects 1 argument");
    return Value(std::round(args[0].as_number()));
  });
}

void Env::set(std::string name, Value value) { variables_[std::move(name)] = std::move(value); }

void Env::define_function(std::string name, NativeFn fn) {
  functions_[std::move(name)] = std::move(fn);
}

const Value* Env::find_variable(std::string_view name) const noexcept {
  const auto it = variables_.find(name);
  return it == variables_.end() ? nullptr : &it->second;
}

const NativeFn* Env::find_function(std::string_view name) const noexcept {
  const auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

namespace {

class Evaluator {
 public:
  explicit Evaluator(const Env& env) : env_(env) {}

  Value run(const Script& script) {
    for (const auto& [name, expr] : script.bindings) {
      locals_.emplace_back(name, eval(*expr));
    }
    return eval(*script.result);
  }

 private:
  Value eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::NullLit: return Value(nullptr);
      case Expr::Kind::BoolLit: return Value(e.bool_value);
      case Expr::Kind::NumberLit: return Value(e.number_value);
      case Expr::Kind::StringLit: return Value(e.string_value);
      case Expr::Kind::Ident: return lookup(e.string_value);
      case Expr::Kind::Unary: return eval_unary(e);
      case Expr::Kind::Binary: return eval_binary(e);
      case Expr::Kind::Ternary:
        return eval(*e.a).truthy() ? eval(*e.b) : eval(*e.c);
      case Expr::Kind::Property: return eval_property(e);
      case Expr::Kind::Call: return eval_call(e);
      case Expr::Kind::Method: return eval_method(e);
      case Expr::Kind::SequenceLit: {
        Collection elems;
        elems.reserve(e.args.size());
        for (const auto& arg : e.args) elems.push_back(eval(*arg));
        return Value::collection(std::move(elems));
      }
      case Expr::Kind::Lambda1:
        throw QueryError("a lambda is only allowed as a collection-operation argument");
    }
    throw QueryError("internal: unhandled expression kind");
  }

  Value lookup(const std::string& name) {
    for (auto it = locals_.rbegin(); it != locals_.rend(); ++it) {
      if (it->first == name) return it->second;
    }
    if (const Value* v = env_.find_variable(name)) return *v;
    throw QueryError("unknown variable '" + name + "'");
  }

  Value eval_unary(const Expr& e) {
    Value operand = eval(*e.a);
    if (e.unary_op == UnaryOp::Neg) return Value(-operand.as_number());
    return Value(!operand.as_bool());
  }

  Value eval_binary(const Expr& e) {
    // Short-circuiting logical operators.
    if (e.binary_op == BinaryOp::And) {
      return Value(eval(*e.a).as_bool() && eval(*e.b).as_bool());
    }
    if (e.binary_op == BinaryOp::Or) {
      return Value(eval(*e.a).as_bool() || eval(*e.b).as_bool());
    }
    if (e.binary_op == BinaryOp::Implies) {
      return Value(!eval(*e.a).as_bool() || eval(*e.b).as_bool());
    }
    Value lhs = eval(*e.a);
    Value rhs = eval(*e.b);
    switch (e.binary_op) {
      case BinaryOp::Add:
        if (lhs.is_string() || rhs.is_string()) {
          return Value(lhs.to_display() + rhs.to_display());
        }
        return Value(lhs.as_number() + rhs.as_number());
      case BinaryOp::Sub: return Value(lhs.as_number() - rhs.as_number());
      case BinaryOp::Mul: return Value(lhs.as_number() * rhs.as_number());
      case BinaryOp::Div: {
        const double d = rhs.as_number();
        if (d == 0.0) throw QueryError("division by zero");
        return Value(lhs.as_number() / d);
      }
      case BinaryOp::Mod: {
        const double d = rhs.as_number();
        if (d == 0.0) throw QueryError("modulo by zero");
        return Value(std::fmod(lhs.as_number(), d));
      }
      case BinaryOp::Lt: return Value(compare(lhs, rhs) < 0);
      case BinaryOp::Le: return Value(compare(lhs, rhs) <= 0);
      case BinaryOp::Gt: return Value(compare(lhs, rhs) > 0);
      case BinaryOp::Ge: return Value(compare(lhs, rhs) >= 0);
      case BinaryOp::Eq: return Value(lhs.equals(rhs));
      case BinaryOp::Ne: return Value(!lhs.equals(rhs));
      default: throw QueryError("internal: unhandled binary operator");
    }
  }

  static int compare(const Value& a, const Value& b) {
    if (a.is_number() && b.is_number()) {
      const double x = a.as_number();
      const double y = b.as_number();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    if (a.is_string() && b.is_string()) {
      return a.as_string().compare(b.as_string());
    }
    throw QueryError("cannot order " + a.type_name() + " against " + b.type_name());
  }

  Value eval_property(const Expr& e) {
    Value target = eval(*e.a);
    if (target.is_object()) return target.as_object()->property(e.string_value);
    throw QueryError("cannot read property '" + e.string_value + "' of " + target.type_name());
  }

  Value eval_call(const Expr& e) {
    const NativeFn* fn = env_.find_function(e.string_value);
    if (fn == nullptr) throw QueryError("unknown function '" + e.string_value + "'");
    std::vector<Value> args;
    args.reserve(e.args.size());
    for (const auto& arg : e.args) {
      if (arg->kind == Expr::Kind::Lambda1) {
        throw QueryError("host functions do not take lambdas");
      }
      args.push_back(eval(*arg));
    }
    return (*fn)(args);
  }

  Value apply_lambda(const Expr& lambda, const Value& element) {
    locals_.emplace_back(lambda.string_value, element);
    Value result = eval(*lambda.b);
    locals_.pop_back();
    return result;
  }

  static const Expr& require_lambda(const Expr& e, size_t index, const char* method) {
    if (index >= e.args.size() || e.args[index]->kind != Expr::Kind::Lambda1) {
      throw QueryError(std::string(method) + " expects a lambda argument (x | expr)");
    }
    return *e.args[index];
  }

  Value eval_method(const Expr& e) {
    Value target = eval(*e.a);
    const std::string& m = e.string_value;

    if (target.is_collection()) return collection_method(e, target, m);
    if (target.is_string()) return string_method(e, target, m);
    if (target.is_number()) return number_method(e, target, m);
    if (target.is_object()) {
      if (m == "hasProperty") {
        if (e.args.size() != 1) throw QueryError("hasProperty expects 1 argument");
        return Value(target.as_object()->has_property(eval(*e.args[0]).as_string()));
      }
      if (m == "isTypeOf") {
        if (e.args.size() != 1) throw QueryError("isTypeOf expects 1 argument");
        return Value(target.as_object()->type_name() == eval(*e.args[0]).as_string());
      }
      throw QueryError("unknown object method '" + m + "'");
    }
    if (target.is_null() && m == "isDefined") return Value(false);
    if (m == "isDefined") return Value(true);
    throw QueryError("cannot call method '" + m + "' on " + target.type_name());
  }

  Value collection_method(const Expr& e, const Value& target, const std::string& m) {
    const Collection& elems = target.as_collection();
    auto expect_no_args = [&] {
      if (!e.args.empty()) throw QueryError(m + " expects no arguments");
    };
    if (m == "size") { expect_no_args(); return Value(static_cast<double>(elems.size())); }
    if (m == "isEmpty") { expect_no_args(); return Value(elems.empty()); }
    if (m == "notEmpty") { expect_no_args(); return Value(!elems.empty()); }
    if (m == "first") {
      expect_no_args();
      if (elems.empty()) throw QueryError("first() on an empty collection");
      return elems.front();
    }
    if (m == "last") {
      expect_no_args();
      if (elems.empty()) throw QueryError("last() on an empty collection");
      return elems.back();
    }
    if (m == "at") {
      if (e.args.size() != 1) throw QueryError("at expects 1 argument");
      const auto i = static_cast<size_t>(eval(*e.args[0]).as_number());
      if (i >= elems.size()) throw QueryError("collection index out of range");
      return elems[i];
    }
    if (m == "includes") {
      if (e.args.size() != 1) throw QueryError("includes expects 1 argument");
      const Value needle = eval(*e.args[0]);
      for (const auto& v : elems) {
        if (v.equals(needle)) return Value(true);
      }
      return Value(false);
    }
    if (m == "sum") {
      expect_no_args();
      double total = 0.0;
      for (const auto& v : elems) total += v.as_number();
      return Value(total);
    }
    if (m == "avg") {
      expect_no_args();
      if (elems.empty()) throw QueryError("avg() on an empty collection");
      double total = 0.0;
      for (const auto& v : elems) total += v.as_number();
      return Value(total / static_cast<double>(elems.size()));
    }
    if (m == "min" || m == "max") {
      expect_no_args();
      if (elems.empty()) throw QueryError(m + "() on an empty collection");
      double best = elems.front().as_number();
      for (const auto& v : elems) {
        const double x = v.as_number();
        best = (m == "min") ? std::min(best, x) : std::max(best, x);
      }
      return Value(best);
    }
    if (m == "select" || m == "reject") {
      const Expr& lambda = require_lambda(e, 0, m.c_str());
      Collection out;
      for (const auto& v : elems) {
        const bool keep = apply_lambda(lambda, v).as_bool();
        if (keep == (m == "select")) out.push_back(v);
      }
      return Value::collection(std::move(out));
    }
    if (m == "collect") {
      const Expr& lambda = require_lambda(e, 0, "collect");
      Collection out;
      out.reserve(elems.size());
      for (const auto& v : elems) out.push_back(apply_lambda(lambda, v));
      return Value::collection(std::move(out));
    }
    if (m == "exists") {
      const Expr& lambda = require_lambda(e, 0, "exists");
      for (const auto& v : elems) {
        if (apply_lambda(lambda, v).as_bool()) return Value(true);
      }
      return Value(false);
    }
    if (m == "forAll") {
      const Expr& lambda = require_lambda(e, 0, "forAll");
      for (const auto& v : elems) {
        if (!apply_lambda(lambda, v).as_bool()) return Value(false);
      }
      return Value(true);
    }
    if (m == "count") {
      const Expr& lambda = require_lambda(e, 0, "count");
      double n = 0;
      for (const auto& v : elems) {
        if (apply_lambda(lambda, v).as_bool()) ++n;
      }
      return Value(n);
    }
    if (m == "flatten") {
      expect_no_args();
      Collection out;
      for (const auto& v : elems) {
        if (v.is_collection()) {
          const auto& inner = v.as_collection();
          out.insert(out.end(), inner.begin(), inner.end());
        } else {
          out.push_back(v);
        }
      }
      return Value::collection(std::move(out));
    }
    if (m == "distinct") {
      expect_no_args();
      Collection out;
      for (const auto& v : elems) {
        const bool seen = std::any_of(out.begin(), out.end(),
                                      [&](const Value& u) { return u.equals(v); });
        if (!seen) out.push_back(v);
      }
      return Value::collection(std::move(out));
    }
    if (m == "sortBy") {
      const Expr& lambda = require_lambda(e, 0, "sortBy");
      std::vector<std::pair<Value, Value>> keyed;
      keyed.reserve(elems.size());
      for (const auto& v : elems) keyed.emplace_back(apply_lambda(lambda, v), v);
      std::stable_sort(keyed.begin(), keyed.end(), [](const auto& a, const auto& b) {
        return compare(a.first, b.first) < 0;
      });
      Collection out;
      out.reserve(keyed.size());
      for (auto& [k, v] : keyed) out.push_back(std::move(v));
      return Value::collection(std::move(out));
    }
    throw QueryError("unknown collection method '" + m + "'");
  }

  Value string_method(const Expr& e, const Value& target, const std::string& m) {
    const std::string& s = target.as_string();
    auto arg_string = [&](size_t i) { return eval(*e.args.at(i)).as_string(); };
    if (m == "size") return Value(static_cast<double>(s.size()));
    if (m == "toLower") return Value(to_lower(s));
    if (m == "toUpper") {
      std::string out = s;
      std::transform(out.begin(), out.end(), out.begin(),
                     [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
      return Value(std::move(out));
    }
    if (m == "contains") return Value(s.find(arg_string(0)) != std::string::npos);
    if (m == "startsWith") return Value(starts_with(s, arg_string(0)));
    if (m == "endsWith") return Value(ends_with(s, arg_string(0)));
    if (m == "trim") return Value(std::string(trim(s)));
    if (m == "toNumber") return Value(parse_double(s));
    if (m == "isDefined") return Value(true);
    throw QueryError("unknown string method '" + m + "'");
  }

  Value number_method(const Expr& e, const Value& target, const std::string& m) {
    (void)e;
    const double x = target.as_number();
    if (m == "round") return Value(std::round(x));
    if (m == "floor") return Value(std::floor(x));
    if (m == "ceil") return Value(std::ceil(x));
    if (m == "abs") return Value(std::abs(x));
    if (m == "toString") return Value(format_number(x, 10));
    if (m == "isDefined") return Value(true);
    throw QueryError("unknown number method '" + m + "'");
  }

  const Env& env_;
  std::vector<std::pair<std::string, Value>> locals_;
};

}  // namespace

Value evaluate(const Script& script, const Env& env) { return Evaluator(env).run(script); }

Value eval(std::string_view source, const Env& env) {
  return evaluate(parse_script(source), env);
}

}  // namespace decisive::query
