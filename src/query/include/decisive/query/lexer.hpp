// Tokeniser for the query language.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace decisive::query {

enum class TokenKind {
  Ident, Number, String,
  KwVar, KwReturn, KwTrue, KwFalse, KwNull,
  KwAnd, KwOr, KwNot, KwImplies, KwSequence,
  Plus, Minus, Star, Slash, Percent,
  Lt, Le, Gt, Ge, Eq, Ne,
  Assign,           // =
  LParen, RParen, LBrace, RBrace,
  Dot, Comma, Semicolon, Pipe, Question, Colon,
  End,
};

struct Token {
  TokenKind kind;
  std::string text;    // identifier name / string contents / number text
  double number = 0.0;
  size_t offset = 0;   // for diagnostics
};

/// Tokenises the whole input; throws QueryError on illegal characters or
/// unterminated strings. Comments: `--` and `//` to end of line.
std::vector<Token> tokenize(std::string_view source);

}  // namespace decisive::query
