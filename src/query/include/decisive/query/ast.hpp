// Abstract syntax of the query language.
//
// Script      := { "var" Ident "=" Expr ";" } [ "return" ] Expr [ ";" ]
// Expr        := ternary / binary / unary / postfix / primary, see parser.cpp
// Lambda args appear only inside collection operations: coll.select(x | ...).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace decisive::query {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or, Implies,
};

enum class UnaryOp { Neg, Not };

struct Expr {
  enum class Kind {
    NullLit, BoolLit, NumberLit, StringLit,
    Ident,
    Unary, Binary, Ternary,
    Property,      // target.name
    Call,          // callee(args...)  — callee is an Ident (free function)
    Method,        // target.name(args...) — builtin method on a value
    Lambda1,       // name | body  (only as argument of collection methods)
    SequenceLit,   // Sequence{a, b, c}
  };

  Kind kind;

  // literals
  bool bool_value = false;
  double number_value = 0.0;
  std::string string_value;  // also: identifier / property / method names

  UnaryOp unary_op = UnaryOp::Neg;
  BinaryOp binary_op = BinaryOp::Add;

  ExprPtr a;  // unary operand / binary lhs / ternary cond / property+method target
  ExprPtr b;  // binary rhs / ternary then / lambda body
  ExprPtr c;  // ternary else
  std::vector<ExprPtr> args;
};

/// A parsed script: leading `var` bindings plus the result expression.
struct Script {
  std::vector<std::pair<std::string, ExprPtr>> bindings;
  ExprPtr result;
};

}  // namespace decisive::query
