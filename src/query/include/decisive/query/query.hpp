// Public facade of the DECISIVE query language (EOL substitute).
//
// Example — an external-reference extraction rule pulling a component's FIT
// from a reliability workbook:
//
//   var row = rows('Reliability').select(r | r.Component == 'Diode').first();
//   return row.FIT;
//
// Example — the assurance-case SPFM check:
//
//   var spf = fmeda.rows.select(r | r.Safety_Related == 'Yes')
//                       .collect(r | r.Single_Point_Failure_Rate).sum();
//   return 1 - spf / total_fit >= 0.90;
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "decisive/query/ast.hpp"
#include "decisive/query/value.hpp"

namespace decisive::query {

/// Evaluation environment: named variables plus host functions.
class Env {
 public:
  Env();

  /// Binds or rebinds a global variable visible to scripts.
  void set(std::string name, Value value);

  /// Registers a host function callable as `name(args...)`.
  void define_function(std::string name, NativeFn fn);

  [[nodiscard]] const Value* find_variable(std::string_view name) const noexcept;
  [[nodiscard]] const NativeFn* find_function(std::string_view name) const noexcept;

 private:
  std::map<std::string, Value, std::less<>> variables_;
  std::map<std::string, NativeFn, std::less<>> functions_;
};

/// Parses a script; throws QueryError on syntax errors.
Script parse_script(std::string_view source);

/// Evaluates a parsed script against the environment.
Value evaluate(const Script& script, const Env& env);

/// Parse + evaluate in one step.
Value eval(std::string_view source, const Env& env);

}  // namespace decisive::query
