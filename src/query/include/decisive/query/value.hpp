// Runtime values of the DECISIVE query language (the EOL substitute).
//
// The language is dynamically typed: null, boolean, number (double), string,
// collection, and object. Objects are adapted through ObjectRef so the same
// scripts run against SSAM model elements, CSV/workbook rows, JSON documents
// and FMEA result rows alike — this is what "model federation" executes.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace decisive::query {

class Value;
using Collection = std::vector<Value>;
using CollectionPtr = std::shared_ptr<Collection>;

/// Adapter interface giving the query language read access to host objects.
class ObjectRef {
 public:
  virtual ~ObjectRef() = default;

  /// Named property lookup; throws QueryError when the property is unknown.
  [[nodiscard]] virtual Value property(std::string_view name) const = 0;

  /// True when the property exists (used by `hasProperty`).
  [[nodiscard]] virtual bool has_property(std::string_view name) const = 0;

  /// A type tag for diagnostics and `isTypeOf`-style checks.
  [[nodiscard]] virtual std::string type_name() const = 0;
};

using ObjectPtr = std::shared_ptr<const ObjectRef>;

/// A dynamically-typed query value.
class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}                       // NOLINT
  Value(bool b) : data_(b) {}                                     // NOLINT
  Value(double d) : data_(d) {}                                   // NOLINT
  Value(int i) : data_(static_cast<double>(i)) {}                 // NOLINT
  Value(long long i) : data_(static_cast<double>(i)) {}           // NOLINT
  Value(std::string s) : data_(std::move(s)) {}                   // NOLINT
  Value(const char* s) : data_(std::string(s)) {}                 // NOLINT
  Value(CollectionPtr c) : data_(std::move(c)) {}                 // NOLINT
  Value(ObjectPtr o) : data_(std::move(o)) {}                     // NOLINT

  /// Builds a collection value from elements.
  static Value collection(Collection elements);

  [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
  [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
  [[nodiscard]] bool is_number() const noexcept { return std::holds_alternative<double>(data_); }
  [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
  [[nodiscard]] bool is_collection() const noexcept { return std::holds_alternative<CollectionPtr>(data_); }
  [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<ObjectPtr>(data_); }

  /// Checked accessors; throw QueryError with a type diagnostic on mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Collection& as_collection() const;
  [[nodiscard]] const ObjectPtr& as_object() const;

  /// Structural equality (numbers compare exactly; collections elementwise).
  [[nodiscard]] bool equals(const Value& other) const;

  /// "Truthiness": null/false are false; everything else must be a bool
  /// (the language does not coerce numbers to booleans — a misuse guard).
  [[nodiscard]] bool truthy() const;

  /// Human-readable rendering for diagnostics and string concatenation.
  [[nodiscard]] std::string to_display() const;

  /// Type tag name ("null", "bool", "number", "string", "collection", or the
  /// object's type_name()).
  [[nodiscard]] std::string type_name() const;

 private:
  std::variant<std::nullptr_t, bool, double, std::string, CollectionPtr, ObjectPtr> data_;
};

/// A host function callable from scripts.
using NativeFn = std::function<Value(const std::vector<Value>&)>;

}  // namespace decisive::query
