// MDL — the Simulink substitute's model file format.
//
// A block/line text format in the spirit of classic Simulink .mdl files:
//
//   Model {
//     Name "power_supply"
//     System {
//       Block {
//         BlockType DCVoltageSource
//         Name "DC1"
//         Voltage "5"
//       }
//       Block {
//         BlockType SubSystem
//         Name "Filter"
//         AnnotatedType "LCFilter"      // paper's "annotated subsystem" workaround
//         System { ... nested blocks/lines ... }
//       }
//       Line {
//         SrcBlock "DC1"  SrcPort "p"
//         DstBlock "D1"   DstPort "a"
//       }
//     }
//   }
//
// Any Key "value" (or bareword value) pair inside a Block is kept verbatim in
// `params`, which is what makes the Simulink→SSAM transformation lossless.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::drivers {

struct MdlSystem;

/// One block instance. `type` is the BlockType, `name` the instance name.
struct MdlBlock {
  std::string type;
  std::string name;
  /// All other parameters, in declaration order.
  std::vector<std::pair<std::string, std::string>> params;
  /// Present only for BlockType SubSystem.
  std::unique_ptr<MdlSystem> subsystem;

  /// First value of a parameter, or nullopt.
  [[nodiscard]] std::optional<std::string> param(std::string_view key) const;

  /// Numeric parameter with fallback; throws ParseError on non-numeric text.
  [[nodiscard]] double param_real(std::string_view key, double fallback) const;
};

/// A signal/physical connection between two block ports.
struct MdlLine {
  std::string src_block;
  std::string src_port;
  std::string dst_block;
  std::string dst_port;
};

/// A (sub)system: an ordered list of blocks and the lines wiring them.
struct MdlSystem {
  std::string name;
  std::vector<MdlBlock> blocks;
  std::vector<MdlLine> lines;

  /// Block lookup by instance name in this system only; nullptr when absent.
  [[nodiscard]] const MdlBlock* block(std::string_view block_name) const noexcept;

  /// Total number of blocks including nested subsystems.
  [[nodiscard]] size_t total_blocks() const noexcept;
};

/// A complete model document.
struct MdlModel {
  std::string name;
  MdlSystem root;
};

/// Parses MDL text; throws ParseError on malformed input.
MdlModel parse_mdl(std::string_view text);

/// Reads and parses an MDL file; throws IoError/ParseError.
MdlModel parse_mdl_file(const std::string& path);

/// Serialises a model back to MDL text (round-trip stable).
std::string write_mdl(const MdlModel& model);

/// Writes a model file; throws IoError.
void write_mdl_file(const std::string& path, const MdlModel& model);

}  // namespace decisive::drivers
