// Query-language adapters for tabular rows.
#pragma once

#include <memory>
#include <string>

#include "decisive/base/csv.hpp"
#include "decisive/query/value.hpp"

namespace decisive::drivers {

/// Wraps one CSV row as a query object: each column is a property. Cells
/// that parse fully as numbers are surfaced as numbers, everything else as
/// strings (the query language is dynamically typed, like EOL).
class RowRef final : public query::ObjectRef {
 public:
  /// The table must outlive the RowRef; sources keep their tables alive for
  /// their own lifetime, and bound environments hold the source.
  RowRef(std::shared_ptr<const CsvTable> table, size_t row);

  [[nodiscard]] query::Value property(std::string_view name) const override;
  [[nodiscard]] bool has_property(std::string_view name) const override;
  [[nodiscard]] std::string type_name() const override { return "Row"; }

  [[nodiscard]] size_t row_index() const noexcept { return row_; }

 private:
  std::shared_ptr<const CsvTable> table_;
  size_t row_;
};

/// Builds a collection value with one RowRef per data row.
query::Value rows_of(const std::shared_ptr<const CsvTable>& table);

/// Converts cell text to a query value (number when fully numeric).
query::Value cell_to_value(const std::string& cell);

}  // namespace decisive::drivers
