// AADL textual-notation subset parser.
//
// The paper's related-work section notes that "AADL models can also be
// transformed to SSAM and our approach can also be applied" — this module
// makes that concrete for a pragmatic subset of the AADL textual standard:
//
//   package power_supply
//   public
//     device Diode
//       features
//         p: in feature;
//         n: out feature;
//     end Diode;
//
//     system PowerSupplyA
//     end PowerSupplyA;
//
//     system implementation PowerSupplyA.impl
//       subcomponents
//         D1: device Diode { Decisive::FIT => 10; };
//         L1: device Inductor;
//       connections
//         c1: feature D1.n -> L1.p;
//     end PowerSupplyA.impl;
//   end power_supply;
//
// Supported: packages, component types (system/device/process/abstract)
// with feature lists, component implementations with subcomponents (with
// inline property associations) and feature connections. Unsupported AADL
// constructs raise ParseError with the offending construct named.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::drivers {

/// A declared feature (port) of a component type.
struct AadlFeature {
  std::string name;
  std::string direction;  ///< "in", "out", or "in out"
};

/// A component type declaration (system/device/process/abstract).
struct AadlComponentType {
  std::string category;  ///< "system", "device", "process", "abstract"
  std::string name;
  std::vector<AadlFeature> features;
};

/// One subcomponent of an implementation.
struct AadlSubcomponent {
  std::string name;
  std::string category;
  std::string type;  ///< referenced component-type name
  /// Inline property associations, e.g. {"Decisive::FIT", "10"}.
  std::vector<std::pair<std::string, std::string>> properties;

  [[nodiscard]] std::optional<std::string> property(std::string_view key) const;
};

/// A feature connection "a.x -> b.y".
struct AadlConnection {
  std::string name;
  std::string src_component;  ///< empty = the implementation's own feature
  std::string src_feature;
  std::string dst_component;
  std::string dst_feature;
};

/// A component implementation "X.impl".
struct AadlImplementation {
  std::string type_name;  ///< "PowerSupplyA"
  std::string impl_name;  ///< "impl"
  std::vector<AadlSubcomponent> subcomponents;
  std::vector<AadlConnection> connections;
};

/// A parsed AADL package.
struct AadlPackage {
  std::string name;
  std::vector<AadlComponentType> types;
  std::vector<AadlImplementation> implementations;

  [[nodiscard]] const AadlComponentType* type(std::string_view name) const noexcept;
  [[nodiscard]] const AadlImplementation* implementation(
      std::string_view type_name) const noexcept;
};

/// Parses AADL text; throws ParseError on malformed/unsupported input.
AadlPackage parse_aadl(std::string_view text);

/// Reads and parses an AADL file; throws IoError/ParseError.
AadlPackage parse_aadl_file(const std::string& path);

}  // namespace decisive::drivers
