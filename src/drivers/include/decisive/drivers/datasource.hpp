// DataSource / ModelDriver — the Epsilon Model Connectivity substitute.
//
// A DataSource gives uniform, read-only access to an external heterogeneous
// model (CSV table, Excel-style workbook, JSON document, XML document,
// Simulink MDL file). `bind` exposes the source's content to the query
// language, which is how SSAM ExternalReferences execute their extraction
// rules (paper Section IV-B).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/query/query.hpp"

namespace decisive::drivers {

/// Read-only handle on an opened external model.
class DataSource {
 public:
  virtual ~DataSource() = default;

  /// Driver type tag: "csv", "workbook", "json", "xml", "mdl".
  [[nodiscard]] virtual std::string type() const = 0;

  /// The location this source was opened from (diagnostics).
  [[nodiscard]] virtual const std::string& location() const = 0;

  /// Names of row-oriented tables in the source (sheets for workbooks, the
  /// single table name for CSV, empty for tree-shaped sources).
  [[nodiscard]] virtual std::vector<std::string> table_names() const = 0;

  /// Row-oriented view of a table; nullptr when the source has no such table.
  [[nodiscard]] virtual const CsvTable* table(std::string_view name) const = 0;

  /// Exposes the source to scripts. Every driver binds `rows(name)`
  /// (collection of row objects) where applicable; tree drivers bind `root`.
  virtual void bind(query::Env& env) const = 0;
};

/// Factory for DataSources of one technology.
class ModelDriver {
 public:
  virtual ~ModelDriver() = default;

  [[nodiscard]] virtual std::string type() const = 0;

  /// True when this driver recognises the location (usually by extension).
  [[nodiscard]] virtual bool can_open(const std::string& location) const = 0;

  /// Opens the external model; throws IoError/ParseError.
  [[nodiscard]] virtual std::unique_ptr<DataSource> open(const std::string& location) const = 0;
};

/// Registry of available drivers. A process-wide default registry is
/// pre-populated with all built-in drivers.
class DriverRegistry {
 public:
  /// The default registry with csv/workbook/json/xml/mdl drivers installed.
  static DriverRegistry& global();

  /// Registers an additional driver (user extension point, REQ2).
  void register_driver(std::unique_ptr<ModelDriver> driver);

  /// Opens `location`. When `type_hint` is non-empty the named driver is
  /// used; otherwise the first driver whose can_open matches. Throws
  /// ModelError when no driver matches.
  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location,
                                                 std::string_view type_hint = "") const;

  [[nodiscard]] std::vector<std::string> driver_types() const;

 private:
  std::vector<std::unique_ptr<ModelDriver>> drivers_;
};

/// Built-in driver factories (also pre-installed in the global registry).
std::unique_ptr<ModelDriver> make_csv_driver();
std::unique_ptr<ModelDriver> make_workbook_driver();
std::unique_ptr<ModelDriver> make_json_driver();
std::unique_ptr<ModelDriver> make_xml_driver();
std::unique_ptr<ModelDriver> make_mdl_driver();

}  // namespace decisive::drivers
