// MDL driver: exposes a Simulink-style model to the query language.
// Binds `blocks` (all blocks, recursively, as objects with BlockType/Name/
// parameter properties) and `lines` (connection objects).
#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/mdl.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

namespace {

class BlockRef final : public query::ObjectRef {
 public:
  BlockRef(std::shared_ptr<const MdlModel> model, const MdlBlock* block)
      : model_(std::move(model)), block_(block) {}

  [[nodiscard]] query::Value property(std::string_view name) const override {
    if (name == "Name") return query::Value(block_->name);
    if (name == "BlockType") return query::Value(block_->type);
    if (name == "isSubsystem") return query::Value(block_->subsystem != nullptr);
    const auto value = block_->param(name);
    if (!value.has_value()) {
      throw QueryError("block '" + block_->name + "' has no parameter '" + std::string(name) +
                       "'");
    }
    try {
      return query::Value(parse_double(*value));
    } catch (const ParseError&) {
      return query::Value(*value);
    }
  }

  [[nodiscard]] bool has_property(std::string_view name) const override {
    return name == "Name" || name == "BlockType" || name == "isSubsystem" ||
           block_->param(name).has_value();
  }

  [[nodiscard]] std::string type_name() const override { return "Block"; }

 private:
  std::shared_ptr<const MdlModel> model_;
  const MdlBlock* block_;
};

class LineRef final : public query::ObjectRef {
 public:
  LineRef(std::shared_ptr<const MdlModel> model, const MdlLine* line)
      : model_(std::move(model)), line_(line) {}

  [[nodiscard]] query::Value property(std::string_view name) const override {
    if (name == "SrcBlock") return query::Value(line_->src_block);
    if (name == "SrcPort") return query::Value(line_->src_port);
    if (name == "DstBlock") return query::Value(line_->dst_block);
    if (name == "DstPort") return query::Value(line_->dst_port);
    throw QueryError("line has no property '" + std::string(name) + "'");
  }

  [[nodiscard]] bool has_property(std::string_view name) const override {
    return name == "SrcBlock" || name == "SrcPort" || name == "DstBlock" || name == "DstPort";
  }

  [[nodiscard]] std::string type_name() const override { return "Line"; }

 private:
  std::shared_ptr<const MdlModel> model_;
  const MdlLine* line_;
};

void collect_blocks(const std::shared_ptr<const MdlModel>& model, const MdlSystem& system,
                    query::Collection& out) {
  for (const auto& block : system.blocks) {
    out.push_back(query::Value(query::ObjectPtr(std::make_shared<BlockRef>(model, &block))));
    if (block.subsystem != nullptr) collect_blocks(model, *block.subsystem, out);
  }
}

void collect_lines(const std::shared_ptr<const MdlModel>& model, const MdlSystem& system,
                   query::Collection& out) {
  for (const auto& line : system.lines) {
    out.push_back(query::Value(query::ObjectPtr(std::make_shared<LineRef>(model, &line))));
  }
  for (const auto& block : system.blocks) {
    if (block.subsystem != nullptr) collect_lines(model, *block.subsystem, out);
  }
}

class MdlSource final : public DataSource {
 public:
  MdlSource(std::string location, MdlModel model)
      : location_(std::move(location)),
        model_(std::make_shared<const MdlModel>(std::move(model))) {}

  [[nodiscard]] std::string type() const override { return "mdl"; }
  [[nodiscard]] const std::string& location() const override { return location_; }
  [[nodiscard]] std::vector<std::string> table_names() const override { return {}; }
  [[nodiscard]] const CsvTable* table(std::string_view) const override { return nullptr; }

  void bind(query::Env& env) const override {
    query::Collection blocks;
    collect_blocks(model_, model_->root, blocks);
    env.set("blocks", query::Value::collection(std::move(blocks)));
    query::Collection lines;
    collect_lines(model_, model_->root, lines);
    env.set("lines", query::Value::collection(std::move(lines)));
    env.set("modelName", query::Value(model_->name));
  }

  /// The parsed model (used by the simulator and the transformation).
  [[nodiscard]] const std::shared_ptr<const MdlModel>& model() const noexcept { return model_; }

 private:
  std::string location_;
  std::shared_ptr<const MdlModel> model_;
};

class MdlDriver final : public ModelDriver {
 public:
  [[nodiscard]] std::string type() const override { return "mdl"; }

  [[nodiscard]] bool can_open(const std::string& location) const override {
    const std::string lower = to_lower(location);
    return ends_with(lower, ".mdl") || ends_with(lower, ".slx");
  }

  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location) const override {
    static obs::Counter& parses = obs::Registry::global().counter("decisive_parse_mdl_total");
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("decisive_parse_mdl_seconds");
    parses.add();
    obs::Span span("parse.mdl", &seconds);
    return std::make_unique<MdlSource>(location, parse_mdl_file(location));
  }
};

}  // namespace

std::unique_ptr<ModelDriver> make_mdl_driver() { return std::make_unique<MdlDriver>(); }

}  // namespace decisive::drivers
