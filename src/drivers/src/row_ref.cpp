#include "decisive/drivers/row_ref.hpp"

#include <charconv>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::drivers {

RowRef::RowRef(std::shared_ptr<const CsvTable> table, size_t row)
    : table_(std::move(table)), row_(row) {}

query::Value cell_to_value(const std::string& cell) {
  const std::string_view t = trim(cell);
  if (t.empty()) return query::Value(std::string());
  // Numeric cells (including "30%" -> 0.30) become numbers.
  std::string_view numeric = t;
  bool percent = false;
  if (numeric.back() == '%') {
    numeric.remove_suffix(1);
    percent = true;
  }
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(numeric.data(), numeric.data() + numeric.size(), value);
  if (ec == std::errc() && ptr == numeric.data() + numeric.size()) {
    return query::Value(percent ? value / 100.0 : value);
  }
  return query::Value(cell);
}

query::Value RowRef::property(std::string_view name) const {
  const int col = table_->column(name);
  if (col < 0) {
    throw QueryError("row has no column '" + std::string(name) + "'");
  }
  const auto& row = table_->rows[row_];
  if (static_cast<size_t>(col) >= row.size()) return query::Value(std::string());
  return cell_to_value(row[static_cast<size_t>(col)]);
}

bool RowRef::has_property(std::string_view name) const { return table_->column(name) >= 0; }

query::Value rows_of(const std::shared_ptr<const CsvTable>& table) {
  query::Collection out;
  out.reserve(table->rows.size());
  for (size_t i = 0; i < table->rows.size(); ++i) {
    out.push_back(query::Value(query::ObjectPtr(std::make_shared<RowRef>(table, i))));
  }
  return query::Value::collection(std::move(out));
}

}  // namespace decisive::drivers
