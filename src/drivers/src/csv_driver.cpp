// CSV driver: one file = one table named after the file stem, bound to
// scripts as `rows()` / `rows('<stem>')`.
#include <filesystem>
#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/row_ref.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

namespace {

class CsvSource final : public DataSource {
 public:
  CsvSource(std::string location, std::string name, CsvTable table)
      : location_(std::move(location)),
        name_(std::move(name)),
        table_(std::make_shared<const CsvTable>(std::move(table))) {}

  [[nodiscard]] std::string type() const override { return "csv"; }
  [[nodiscard]] const std::string& location() const override { return location_; }
  [[nodiscard]] std::vector<std::string> table_names() const override { return {name_}; }

  [[nodiscard]] const CsvTable* table(std::string_view name) const override {
    if (name.empty() || iequals(name, name_)) return table_.get();
    return nullptr;
  }

  void bind(query::Env& env) const override {
    auto table = table_;
    const std::string name = name_;
    env.define_function("rows", [table, name](const std::vector<query::Value>& args) {
      if (!args.empty() && !iequals(args[0].as_string(), name)) {
        throw QueryError("csv source has no table '" + args[0].as_string() + "'");
      }
      return rows_of(table);
    });
  }

 private:
  std::string location_;
  std::string name_;
  std::shared_ptr<const CsvTable> table_;
};

class CsvDriver final : public ModelDriver {
 public:
  [[nodiscard]] std::string type() const override { return "csv"; }

  [[nodiscard]] bool can_open(const std::string& location) const override {
    return ends_with(to_lower(location), ".csv");
  }

  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location) const override {
    static obs::Counter& parses = obs::Registry::global().counter("decisive_parse_csv_total");
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("decisive_parse_csv_seconds");
    parses.add();
    obs::Span span("parse.csv", &seconds);
    return std::make_unique<CsvSource>(location,
                                       std::filesystem::path(location).stem().string(),
                                       read_csv_file(location));
  }
};

}  // namespace

std::unique_ptr<ModelDriver> make_csv_driver() { return std::make_unique<CsvDriver>(); }

}  // namespace decisive::drivers
