// XML driver: binds the document root as `root`. Element attributes are
// properties; `children` (all) and `text`/`tag` pseudo-properties are also
// exposed, plus children filtered by tag via the `childrenNamed` pattern:
// root.children.select(c | c.tag == 'Component').
#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/xml.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

namespace {

class XmlRef final : public query::ObjectRef {
 public:
  XmlRef(std::shared_ptr<const xml::Element> doc, const xml::Element* node)
      : doc_(std::move(doc)), node_(node) {}

  [[nodiscard]] query::Value property(std::string_view name) const override {
    if (name == "tag") return query::Value(node_->name);
    if (name == "text") return query::Value(node_->text);
    if (name == "children") {
      query::Collection out;
      out.reserve(node_->children.size());
      for (const auto& child : node_->children) {
        out.push_back(
            query::Value(query::ObjectPtr(std::make_shared<XmlRef>(doc_, child.get()))));
      }
      return query::Value::collection(std::move(out));
    }
    if (const std::string* attr = node_->attribute(name)) {
      // Numeric attributes surface as numbers (same policy as RowRef cells).
      const std::string_view t = trim(*attr);
      if (!t.empty()) {
        try {
          return query::Value(parse_double(t));
        } catch (const ParseError&) {
          // fall through to string
        }
      }
      return query::Value(*attr);
    }
    throw QueryError("xml element <" + node_->name + "> has no attribute '" +
                     std::string(name) + "'");
  }

  [[nodiscard]] bool has_property(std::string_view name) const override {
    return name == "tag" || name == "text" || name == "children" ||
           node_->attribute(name) != nullptr;
  }

  [[nodiscard]] std::string type_name() const override { return "XmlElement"; }

 private:
  std::shared_ptr<const xml::Element> doc_;
  const xml::Element* node_;
};

class XmlSource final : public DataSource {
 public:
  XmlSource(std::string location, std::unique_ptr<xml::Element> root)
      : location_(std::move(location)), root_(std::move(root)) {}

  [[nodiscard]] std::string type() const override { return "xml"; }
  [[nodiscard]] const std::string& location() const override { return location_; }
  [[nodiscard]] std::vector<std::string> table_names() const override { return {}; }
  [[nodiscard]] const CsvTable* table(std::string_view) const override { return nullptr; }

  void bind(query::Env& env) const override {
    env.set("root",
            query::Value(query::ObjectPtr(std::make_shared<XmlRef>(root_, root_.get()))));
  }

 private:
  std::string location_;
  std::shared_ptr<const xml::Element> root_;
};

class XmlDriver final : public ModelDriver {
 public:
  [[nodiscard]] std::string type() const override { return "xml"; }

  [[nodiscard]] bool can_open(const std::string& location) const override {
    const std::string lower = to_lower(location);
    return ends_with(lower, ".xml") || ends_with(lower, ".xmi") ||
           ends_with(lower, ".ssam");
  }

  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location) const override {
    static obs::Counter& parses = obs::Registry::global().counter("decisive_parse_xml_total");
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("decisive_parse_xml_seconds");
    parses.add();
    obs::Span span("parse.xml", &seconds);
    return std::make_unique<XmlSource>(location, xml::parse_file(location));
  }
};

}  // namespace

std::unique_ptr<ModelDriver> make_xml_driver() { return std::make_unique<XmlDriver>(); }

}  // namespace decisive::drivers
