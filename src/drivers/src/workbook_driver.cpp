// Workbook driver — the Excel substitute. A "workbook" is a directory whose
// *.csv files are its sheets (the paper stores reliability and safety-
// mechanism models in Excel spreadsheets; this driver plays that role).
#include <algorithm>
#include <filesystem>
#include <map>
#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/drivers/row_ref.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

namespace {

class WorkbookSource final : public DataSource {
 public:
  WorkbookSource(std::string location,
                 std::map<std::string, std::shared_ptr<const CsvTable>, std::less<>> sheets)
      : location_(std::move(location)), sheets_(std::move(sheets)) {}

  [[nodiscard]] std::string type() const override { return "workbook"; }
  [[nodiscard]] const std::string& location() const override { return location_; }

  [[nodiscard]] std::vector<std::string> table_names() const override {
    std::vector<std::string> names;
    names.reserve(sheets_.size());
    for (const auto& [name, sheet] : sheets_) names.push_back(name);
    return names;
  }

  [[nodiscard]] const CsvTable* table(std::string_view name) const override {
    for (const auto& [sheet_name, sheet] : sheets_) {
      if (iequals(sheet_name, name)) return sheet.get();
    }
    return nullptr;
  }

  void bind(query::Env& env) const override {
    auto sheets = sheets_;
    env.define_function("rows", [sheets](const std::vector<query::Value>& args) {
      if (args.size() != 1) throw QueryError("rows(sheet) expects the sheet name");
      const std::string& wanted = args[0].as_string();
      for (const auto& [name, sheet] : sheets) {
        if (iequals(name, wanted)) return rows_of(sheet);
      }
      throw QueryError("workbook has no sheet '" + wanted + "'");
    });
    query::Collection names;
    for (const auto& [name, sheet] : sheets_) names.push_back(query::Value(name));
    env.set("sheets", query::Value::collection(std::move(names)));
  }

 private:
  std::string location_;
  std::map<std::string, std::shared_ptr<const CsvTable>, std::less<>> sheets_;
};

class WorkbookDriver final : public ModelDriver {
 public:
  [[nodiscard]] std::string type() const override { return "workbook"; }

  [[nodiscard]] bool can_open(const std::string& location) const override {
    std::error_code ec;
    return std::filesystem::is_directory(location, ec);
  }

  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location) const override {
    static obs::Counter& parses =
        obs::Registry::global().counter("decisive_parse_workbook_total");
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("decisive_parse_workbook_seconds");
    parses.add();
    obs::Span span("parse.workbook", &seconds);
    std::error_code ec;
    if (!std::filesystem::is_directory(location, ec)) {
      throw IoError("workbook location '" + location + "' is not a directory");
    }
    std::map<std::string, std::shared_ptr<const CsvTable>, std::less<>> sheets;
    std::vector<std::filesystem::path> files;
    for (const auto& entry : std::filesystem::directory_iterator(location)) {
      if (entry.is_regular_file() && to_lower(entry.path().extension().string()) == ".csv") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& file : files) {
      sheets[file.stem().string()] =
          std::make_shared<const CsvTable>(read_csv_file(file.string()));
    }
    if (sheets.empty()) throw IoError("workbook '" + location + "' has no .csv sheets");
    return std::make_unique<WorkbookSource>(location, std::move(sheets));
  }
};

}  // namespace

std::unique_ptr<ModelDriver> make_workbook_driver() {
  return std::make_unique<WorkbookDriver>();
}

}  // namespace decisive::drivers
