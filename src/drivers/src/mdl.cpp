#include "decisive/drivers/mdl.hpp"

#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::drivers {

std::optional<std::string> MdlBlock::param(std::string_view key) const {
  if (key == "Name") return name;
  if (key == "BlockType") return type;
  for (const auto& [k, v] : params) {
    if (k == key) return v;
  }
  return std::nullopt;
}

double MdlBlock::param_real(std::string_view key, double fallback) const {
  const auto value = param(key);
  if (!value.has_value()) return fallback;
  return parse_double(*value);
}

const MdlBlock* MdlSystem::block(std::string_view block_name) const noexcept {
  for (const auto& b : blocks) {
    if (b.name == block_name) return &b;
  }
  return nullptr;
}

size_t MdlSystem::total_blocks() const noexcept {
  size_t count = blocks.size();
  for (const auto& b : blocks) {
    if (b.subsystem != nullptr) count += b.subsystem->total_blocks();
  }
  return count;
}

namespace {

class MdlParser {
 public:
  explicit MdlParser(std::string_view text) : text_(text) {}

  MdlModel parse() {
    expect_word("Model");
    expect_char('{');
    MdlModel model;
    while (!try_char('}')) {
      const std::string key = read_word();
      if (key == "Name") {
        model.name = read_value();
      } else if (key == "System") {
        expect_char('{');
        model.root = parse_system();
      } else {
        read_value();  // tolerated, ignored (e.g. Version headers)
      }
    }
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after Model block");
    if (model.root.name.empty()) model.root.name = model.name;
    return model;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("mdl: " + message + " (line " + std::to_string(line) + ")");
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
              text_[pos_] == '\r')) {
        ++pos_;
      }
      // '#' and '//' comments to end of line.
      if (pos_ < text_.size() && text_[pos_] == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < text_.size() && text_[pos_] == '/' && text_[pos_ + 1] == '/') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  static bool is_word_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
           c == '_' || c == '.' || c == '-' || c == '+';
  }

  std::string read_word() {
    skip_ws();
    const size_t start = pos_;
    while (pos_ < text_.size() && is_word_char(text_[pos_])) ++pos_;
    if (pos_ == start) fail("expected an identifier");
    return std::string(text_.substr(start, pos_ - start));
  }

  void expect_word(std::string_view word) {
    const std::string got = read_word();
    if (got != word) fail("expected '" + std::string(word) + "', got '" + got + "'");
  }

  bool try_char(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect_char(char c) {
    if (!try_char(c)) fail(std::string("expected '") + c + "'");
  }

  // A value is either a quoted string or a bareword.
  std::string read_value() {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      ++pos_;
      std::string out;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        out += text_[pos_++];
      }
      if (pos_ >= text_.size()) fail("unterminated string");
      ++pos_;
      return out;
    }
    return read_word();
  }

  MdlSystem parse_system() {
    MdlSystem system;
    while (!try_char('}')) {
      const std::string key = read_word();
      if (key == "Block") {
        expect_char('{');
        system.blocks.push_back(parse_block());
      } else if (key == "Line") {
        expect_char('{');
        system.lines.push_back(parse_line());
      } else if (key == "Name") {
        system.name = read_value();
      } else {
        read_value();
      }
    }
    return system;
  }

  MdlBlock parse_block() {
    MdlBlock block;
    while (!try_char('}')) {
      const std::string key = read_word();
      if (key == "System") {
        expect_char('{');
        block.subsystem = std::make_unique<MdlSystem>(parse_system());
        continue;
      }
      const std::string value = read_value();
      if (key == "BlockType") block.type = value;
      else if (key == "Name") block.name = value;
      else block.params.emplace_back(key, value);
    }
    if (block.type.empty()) fail("Block without BlockType");
    if (block.name.empty()) fail("Block without Name");
    return block;
  }

  MdlLine parse_line() {
    MdlLine line;
    while (!try_char('}')) {
      const std::string key = read_word();
      const std::string value = read_value();
      if (key == "SrcBlock") line.src_block = value;
      else if (key == "SrcPort") line.src_port = value;
      else if (key == "DstBlock") line.dst_block = value;
      else if (key == "DstPort") line.dst_port = value;
      else fail("unknown Line key '" + key + "'");
    }
    if (line.src_block.empty() || line.dst_block.empty()) {
      fail("Line requires SrcBlock and DstBlock");
    }
    return line;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

std::string quote(const std::string& value) {
  std::string out = "\"";
  for (char c : value) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void write_system(const MdlSystem& system, int depth, std::string& out);

void write_block(const MdlBlock& block, int depth, std::string& out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  const std::string inner(static_cast<size_t>(depth + 1) * 2, ' ');
  out += indent + "Block {\n";
  out += inner + "BlockType " + block.type + "\n";
  out += inner + "Name " + quote(block.name) + "\n";
  for (const auto& [k, v] : block.params) {
    out += inner + k + " " + quote(v) + "\n";
  }
  if (block.subsystem != nullptr) {
    out += inner + "System {\n";
    write_system(*block.subsystem, depth + 2, out);
    out += inner + "}\n";
  }
  out += indent + "}\n";
}

void write_system(const MdlSystem& system, int depth, std::string& out) {
  const std::string indent(static_cast<size_t>(depth) * 2, ' ');
  if (!system.name.empty()) out += indent + "Name " + quote(system.name) + "\n";
  for (const auto& block : system.blocks) write_block(block, depth, out);
  for (const auto& line : system.lines) {
    out += indent + "Line {\n";
    out += indent + "  SrcBlock " + quote(line.src_block) + "\n";
    if (!line.src_port.empty()) out += indent + "  SrcPort " + quote(line.src_port) + "\n";
    out += indent + "  DstBlock " + quote(line.dst_block) + "\n";
    if (!line.dst_port.empty()) out += indent + "  DstPort " + quote(line.dst_port) + "\n";
    out += indent + "}\n";
  }
}

}  // namespace

MdlModel parse_mdl(std::string_view text) { return MdlParser(text).parse(); }

MdlModel parse_mdl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open MDL file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_mdl(buffer.str());
}

std::string write_mdl(const MdlModel& model) {
  std::string out = "Model {\n";
  out += "  Name " + quote(model.name) + "\n";
  out += "  System {\n";
  write_system(model.root, 2, out);
  out += "  }\n";
  out += "}\n";
  return out;
}

void write_mdl_file(const std::string& path, const MdlModel& model) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot write MDL file '" + path + "'");
  out << write_mdl(model);
  if (!out) throw IoError("failed while writing MDL file '" + path + "'");
}

}  // namespace decisive::drivers
