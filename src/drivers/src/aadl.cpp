#include "decisive/drivers/aadl.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

std::optional<std::string> AadlSubcomponent::property(std::string_view key) const {
  for (const auto& [k, v] : properties) {
    if (iequals(k, key)) return v;
  }
  return std::nullopt;
}

const AadlComponentType* AadlPackage::type(std::string_view type_name) const noexcept {
  for (const auto& t : types) {
    if (iequals(t.name, type_name)) return &t;
  }
  return nullptr;
}

const AadlImplementation* AadlPackage::implementation(
    std::string_view type_name) const noexcept {
  for (const auto& impl : implementations) {
    if (iequals(impl.type_name, type_name)) return &impl;
  }
  return nullptr;
}

namespace {

/// Word/punctuation tokenizer for the AADL subset. AADL keywords are
/// case-insensitive; identifiers keep their case.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  [[nodiscard]] bool eof() {
    skip_ws();
    return pos_ >= text_.size();
  }

  /// Peeks the next token without consuming it.
  std::string peek() {
    const size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

  std::string next() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    const char c = text_[pos_];
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return std::string(text_.substr(start, pos_ - start));
    }
    // Multi-char operators.
    if (c == '-' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return "->";
    }
    if (c == '=' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '>') {
      pos_ += 2;
      return "=>";
    }
    if (c == ':' && pos_ + 1 < text_.size() && text_[pos_ + 1] == ':') {
      pos_ += 2;
      return "::";
    }
    ++pos_;
    return std::string(1, c);
  }

  /// Consumes a token and checks it (case-insensitively for keywords).
  void expect(std::string_view token) {
    const std::string got = next();
    if (!iequals(got, token)) {
      fail("expected '" + std::string(token) + "', got '" + got + "'");
    }
  }

  bool accept(std::string_view token) {
    const size_t saved = pos_;
    if (!eof() && iequals(peek(), token)) {
      next();
      return true;
    }
    pos_ = saved;
    return false;
  }

  [[noreturn]] void fail(const std::string& message) {
    size_t line = 1;
    for (size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') ++line;
    }
    throw ParseError("aadl: " + message + " (line " + std::to_string(line) + ")");
  }

 private:
  void skip_ws() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
      }
      // "--" comments to end of line.
      if (pos_ + 1 < text_.size() && text_[pos_] == '-' && text_[pos_ + 1] == '-' &&
          (pos_ + 2 >= text_.size() || text_[pos_ + 2] != '>')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      return;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

bool is_category(const std::string& word) {
  return iequals(word, "system") || iequals(word, "device") || iequals(word, "process") ||
         iequals(word, "abstract") || iequals(word, "thread") || iequals(word, "processor");
}

class Parser {
 public:
  explicit Parser(std::string_view text) : lex_(text) {}

  AadlPackage parse() {
    lex_.expect("package");
    package_.name = lex_.next();
    lex_.accept("public");  // optional section marker

    while (!lex_.eof()) {
      const std::string word = lex_.peek();
      if (iequals(word, "end")) {
        lex_.next();
        const std::string closing = lex_.next();
        if (!iequals(closing, package_.name)) {
          lex_.fail("package ends with '" + closing + "', expected '" + package_.name + "'");
        }
        lex_.expect(";");
        return package_;
      }
      if (is_category(word)) {
        parse_classifier();
      } else {
        lex_.fail("unsupported construct '" + word + "' (supported: component types and "
                  "implementations)");
      }
    }
    lex_.fail("missing 'end " + package_.name + ";'");
  }

 private:
  void parse_classifier() {
    const std::string category = to_lower(lex_.next());
    if (lex_.accept("implementation")) {
      parse_implementation();
      return;
    }
    // Component type declaration.
    AadlComponentType type;
    type.category = category;
    type.name = lex_.next();
    if (lex_.accept("features")) {
      while (!iequals(lex_.peek(), "end")) {
        AadlFeature feature;
        feature.name = lex_.next();
        lex_.expect(":");
        std::string direction = to_lower(lex_.next());
        if (direction == "in" && iequals(lex_.peek(), "out")) {
          lex_.next();
          direction = "in out";
        }
        if (direction != "in" && direction != "out" && direction != "in out") {
          lex_.fail("feature '" + feature.name + "' needs a direction (in/out)");
        }
        feature.direction = direction;
        // "feature" / "data port" / "port" keyword(s) until ';'.
        while (!iequals(lex_.peek(), ";")) lex_.next();
        lex_.expect(";");
        type.features.push_back(std::move(feature));
      }
    }
    lex_.expect("end");
    const std::string closing = lex_.next();
    if (!iequals(closing, type.name)) {
      lex_.fail("type '" + type.name + "' ends with '" + closing + "'");
    }
    lex_.expect(";");
    package_.types.push_back(std::move(type));
  }

  void parse_implementation() {
    AadlImplementation impl;
    impl.type_name = lex_.next();
    lex_.expect(".");
    impl.impl_name = lex_.next();

    for (;;) {
      if (lex_.accept("subcomponents")) {
        while (!iequals(lex_.peek(), "connections") && !iequals(lex_.peek(), "end") &&
               !iequals(lex_.peek(), "properties")) {
          impl.subcomponents.push_back(parse_subcomponent());
        }
        continue;
      }
      if (lex_.accept("connections")) {
        while (!iequals(lex_.peek(), "end") && !iequals(lex_.peek(), "properties") &&
               !iequals(lex_.peek(), "subcomponents")) {
          impl.connections.push_back(parse_connection());
        }
        continue;
      }
      if (lex_.accept("properties")) {
        // Implementation-level properties: skip to 'end'.
        while (!iequals(lex_.peek(), "end")) lex_.next();
        continue;
      }
      break;
    }

    lex_.expect("end");
    const std::string closing_type = lex_.next();
    lex_.expect(".");
    const std::string closing_impl = lex_.next();
    if (!iequals(closing_type, impl.type_name) || !iequals(closing_impl, impl.impl_name)) {
      lex_.fail("implementation '" + impl.type_name + "." + impl.impl_name +
                "' has mismatched end");
    }
    lex_.expect(";");
    package_.implementations.push_back(std::move(impl));
  }

  AadlSubcomponent parse_subcomponent() {
    AadlSubcomponent sub;
    sub.name = lex_.next();
    lex_.expect(":");
    const std::string category = lex_.next();
    if (!is_category(category)) {
      lex_.fail("subcomponent '" + sub.name + "' has unsupported category '" + category + "'");
    }
    sub.category = to_lower(category);
    sub.type = lex_.next();
    // Optional qualified type "pkg::Type".
    while (lex_.accept("::")) sub.type = lex_.next();
    // Optional ".impl" qualifier.
    if (lex_.accept(".")) lex_.next();
    // Optional inline property associations { Key => value; ... }.
    if (lex_.accept("{")) {
      while (!lex_.accept("}")) {
        std::string key = lex_.next();
        while (lex_.accept("::")) key += "::" + lex_.next();
        lex_.expect("=>");
        std::string value;
        while (!iequals(lex_.peek(), ";")) {
          if (!value.empty()) value += ' ';
          value += lex_.next();
        }
        lex_.expect(";");
        sub.properties.emplace_back(std::move(key), std::move(value));
      }
    }
    lex_.expect(";");
    return sub;
  }

  AadlConnection parse_connection() {
    AadlConnection conn;
    conn.name = lex_.next();
    lex_.expect(":");
    // "feature"/"port" keyword(s) before the endpoints.
    while (!iequals(lex_.peek(), ";")) {
      const std::string word = lex_.next();
      if (iequals(word, "feature") || iequals(word, "port")) continue;
      // First endpoint: word is either "comp" (followed by .feature) or a
      // bare feature of the implementation itself.
      conn.src_component = word;
      if (lex_.accept(".")) {
        conn.src_feature = lex_.next();
      } else {
        conn.src_feature = conn.src_component;
        conn.src_component.clear();
      }
      lex_.expect("->");
      conn.dst_component = lex_.next();
      if (lex_.accept(".")) {
        conn.dst_feature = lex_.next();
      } else {
        conn.dst_feature = conn.dst_component;
        conn.dst_component.clear();
      }
      break;
    }
    lex_.expect(";");
    return conn;
  }

  Lexer lex_;
  AadlPackage package_;
};

}  // namespace

AadlPackage parse_aadl(std::string_view text) {
  static obs::Counter& parses = obs::Registry::global().counter("decisive_parse_aadl_total");
  static obs::Histogram& seconds =
      obs::Registry::global().histogram("decisive_parse_aadl_seconds");
  parses.add();
  obs::Span span("parse.aadl", &seconds);
  return Parser(text).parse();
}

AadlPackage parse_aadl_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open AADL file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_aadl(buffer.str());
}

}  // namespace decisive::drivers
