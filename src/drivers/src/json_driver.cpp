// JSON driver: binds the document root as `root`; objects expose members as
// properties, arrays become collections. Arrays of flat objects can also be
// viewed as tables via rows('<member>') on the root object.
#include <memory>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/drivers/datasource.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::drivers {

namespace {

query::Value json_to_query(const std::shared_ptr<const json::Value>& doc,
                           const json::Value& node);

/// Adapts a JSON object node. The shared_ptr keeps the whole document alive
/// while any node reference is held by a script value.
class JsonRef final : public query::ObjectRef {
 public:
  JsonRef(std::shared_ptr<const json::Value> doc, const json::Value* node)
      : doc_(std::move(doc)), node_(node) {}

  [[nodiscard]] query::Value property(std::string_view name) const override {
    const json::Value* member = node_->find(name);
    if (member == nullptr) {
      throw QueryError("json object has no member '" + std::string(name) + "'");
    }
    return json_to_query(doc_, *member);
  }

  [[nodiscard]] bool has_property(std::string_view name) const override {
    return node_->find(name) != nullptr;
  }

  [[nodiscard]] std::string type_name() const override { return "JsonObject"; }

 private:
  std::shared_ptr<const json::Value> doc_;
  const json::Value* node_;
};

query::Value json_to_query(const std::shared_ptr<const json::Value>& doc,
                           const json::Value& node) {
  if (node.is_null()) return query::Value(nullptr);
  if (node.is_bool()) return query::Value(node.as_bool());
  if (node.is_number()) return query::Value(node.as_number());
  if (node.is_string()) return query::Value(node.as_string());
  if (node.is_array()) {
    query::Collection out;
    out.reserve(node.as_array().size());
    for (const auto& element : node.as_array()) out.push_back(json_to_query(doc, element));
    return query::Value::collection(std::move(out));
  }
  return query::Value(query::ObjectPtr(std::make_shared<JsonRef>(doc, &node)));
}

class JsonSource final : public DataSource {
 public:
  JsonSource(std::string location, json::Value document)
      : location_(std::move(location)),
        document_(std::make_shared<const json::Value>(std::move(document))) {}

  [[nodiscard]] std::string type() const override { return "json"; }
  [[nodiscard]] const std::string& location() const override { return location_; }
  [[nodiscard]] std::vector<std::string> table_names() const override { return {}; }
  [[nodiscard]] const CsvTable* table(std::string_view) const override { return nullptr; }

  void bind(query::Env& env) const override {
    env.set("root", json_to_query(document_, *document_));
  }

 private:
  std::string location_;
  std::shared_ptr<const json::Value> document_;
};

class JsonDriver final : public ModelDriver {
 public:
  [[nodiscard]] std::string type() const override { return "json"; }

  [[nodiscard]] bool can_open(const std::string& location) const override {
    return ends_with(to_lower(location), ".json");
  }

  [[nodiscard]] std::unique_ptr<DataSource> open(const std::string& location) const override {
    static obs::Counter& parses = obs::Registry::global().counter("decisive_parse_json_total");
    static obs::Histogram& seconds =
        obs::Registry::global().histogram("decisive_parse_json_seconds");
    parses.add();
    obs::Span span("parse.json", &seconds);
    return std::make_unique<JsonSource>(location, json::parse_file(location));
  }
};

}  // namespace

std::unique_ptr<ModelDriver> make_json_driver() { return std::make_unique<JsonDriver>(); }

}  // namespace decisive::drivers
