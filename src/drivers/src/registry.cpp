#include "decisive/base/error.hpp"
#include "decisive/drivers/datasource.hpp"

namespace decisive::drivers {

DriverRegistry& DriverRegistry::global() {
  static DriverRegistry registry = [] {
    DriverRegistry r;
    r.register_driver(make_csv_driver());
    r.register_driver(make_workbook_driver());
    r.register_driver(make_json_driver());
    r.register_driver(make_xml_driver());
    r.register_driver(make_mdl_driver());
    return r;
  }();
  return registry;
}

void DriverRegistry::register_driver(std::unique_ptr<ModelDriver> driver) {
  drivers_.push_back(std::move(driver));
}

std::unique_ptr<DataSource> DriverRegistry::open(const std::string& location,
                                                 std::string_view type_hint) const {
  if (!type_hint.empty()) {
    for (const auto& driver : drivers_) {
      if (driver->type() == type_hint) return driver->open(location);
    }
    throw ModelError("no driver of type '" + std::string(type_hint) + "' is registered");
  }
  for (const auto& driver : drivers_) {
    if (driver->can_open(location)) return driver->open(location);
  }
  throw ModelError("no registered driver can open '" + location + "'");
}

std::vector<std::string> DriverRegistry::driver_types() const {
  std::vector<std::string> types;
  types.reserve(drivers_.size());
  for (const auto& driver : drivers_) types.push_back(driver->type());
  return types;
}

}  // namespace decisive::drivers
