#include "decisive/obs/trace.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/obs/shard.hpp"

namespace decisive::obs {

namespace {

/// Per-thread cache of the buffer handed out by one (collector, epoch) pair.
/// A stale epoch means enable() started a new trace since this thread last
/// recorded, so the cached pointer is invalid and the thread re-registers.
struct LocalRef {
  const TraceCollector* owner = nullptr;
  std::uint64_t epoch = 0;
  void* buffer = nullptr;
};

thread_local LocalRef t_local;

std::string escape_json(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

TraceCollector& TraceCollector::global() {
  static TraceCollector instance;
  return instance;
}

void TraceCollector::enable() {
  const std::lock_guard<std::mutex> lock(mutex_);
  buffers_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
  origin_ = std::chrono::steady_clock::now();
  enabled_.store(true, std::memory_order_relaxed);
}

TraceCollector::ThreadBuffer* TraceCollector::local_buffer() {
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (t_local.owner != this || t_local.epoch != epoch) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<int>(buffers_.size()) + 1;
    buffers_.push_back(std::move(buffer));
    t_local = LocalRef{this, epoch, buffers_.back().get()};
  }
  return static_cast<ThreadBuffer*>(t_local.buffer);
}

void TraceCollector::record(const char* name, char phase) {
  if (!enabled()) return;
  ThreadBuffer* buffer = local_buffer();
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t ts_ns =
      static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                     now - origin_)
                                     .count());
  buffer->events.push_back(Event{name, phase, ts_ns});
}

std::string TraceCollector::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  // A `--shard i/N` campaign process exports pid = i + 1, so the per-shard
  // traces occupy disjoint process lanes and `same merge-traces` can fold
  // them into one document without remapping collisions. The identity is
  // additionally stamped on the document itself (trailing "shard" object —
  // Chrome ignores unknown top-level keys).
  const ShardIdentity shard = shard_identity();
  const int pid = shard.index + 1;
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char line[160];
  for (const auto& buffer : buffers_) {
    for (const Event& event : buffer->events) {
      std::snprintf(line, sizeof line,
                    "%s\n{\"name\":\"%s\",\"cat\":\"decisive\",\"ph\":\"%c\","
                    "\"ts\":%.3f,\"pid\":%d,\"tid\":%d}",
                    first ? "" : ",", escape_json(event.name).c_str(), event.phase,
                    static_cast<double>(event.ts_ns) / 1e3, pid, buffer->tid);
      out += line;
      first = false;
    }
  }
  std::snprintf(line, sizeof line,
                "\n],\"displayTimeUnit\":\"ms\",\"shard\":{\"index\":%d,\"count\":%d}}\n",
                shard.index, shard.count);
  out += line;
  return out;
}

void TraceCollector::write_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open trace output file '" + path + "'");
  out << to_chrome_json();
  if (!out) throw IoError("failed writing trace output file '" + path + "'");
}

std::size_t TraceCollector::event_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& buffer : buffers_) count += buffer->events.size();
  return count;
}

std::string validate_chrome_trace(std::string_view text) {
  json::Value document;
  try {
    document = json::parse(text);
  } catch (const Error& error) {
    return std::string("not valid JSON: ") + error.what();
  }
  const json::Value* events = document.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return "missing 'traceEvents' array";
  }

  // Per-(pid, tid) stack of open 'B' names: every 'E' must close the
  // innermost one. Keying on the pair (not the tid alone) matters for merged
  // multi-shard traces, where distinct processes legitimately reuse tids and
  // only interleave within their own lane.
  using Lane = std::pair<int, int>;
  std::map<Lane, std::vector<std::string>> open;
  std::map<Lane, double> last_ts;
  size_t index = 0;
  for (const json::Value& event : events->as_array()) {
    const std::string where = "event #" + std::to_string(index++);
    const json::Value* name = event.find("name");
    const json::Value* phase = event.find("ph");
    const json::Value* ts = event.find("ts");
    const json::Value* pid = event.find("pid");
    const json::Value* tid = event.find("tid");
    if (name == nullptr || !name->is_string()) return where + ": missing 'name'";
    if (phase == nullptr || !phase->is_string()) return where + ": missing 'ph'";
    if (ts == nullptr || !ts->is_number()) return where + ": missing 'ts'";
    if (pid == nullptr || !pid->is_number()) return where + ": missing 'pid'";
    if (tid == nullptr || !tid->is_number()) return where + ": missing 'tid'";
    if (ts->as_number() < 0.0) return where + ": negative timestamp";
    const Lane lane{static_cast<int>(pid->as_number()), static_cast<int>(tid->as_number())};
    const std::string lane_text =
        "pid " + std::to_string(lane.first) + " tid " + std::to_string(lane.second);
    if (last_ts.contains(lane) && ts->as_number() < last_ts[lane]) {
      return where + ": timestamps not monotonic within " + lane_text;
    }
    last_ts[lane] = ts->as_number();
    const std::string& ph = phase->as_string();
    if (ph == "B") {
      open[lane].push_back(name->as_string());
    } else if (ph == "E") {
      auto& stack = open[lane];
      if (stack.empty()) {
        return where + ": 'E' for '" + name->as_string() + "' with no open span on " + lane_text;
      }
      if (stack.back() != name->as_string()) {
        return where + ": 'E' for '" + name->as_string() + "' but innermost open span is '" +
               stack.back() + "' on " + lane_text;
      }
      stack.pop_back();
    } else if (ph != "M" && ph != "X" && ph != "i" && ph != "C") {
      return where + ": unsupported phase '" + ph + "'";
    }
  }
  for (const auto& [lane, stack] : open) {
    if (!stack.empty()) {
      return "unclosed span '" + stack.back() + "' on pid " + std::to_string(lane.first) +
             " tid " + std::to_string(lane.second);
    }
  }
  return "";
}

}  // namespace decisive::obs
