#include "decisive/obs/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace decisive::obs {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::Debug: return "debug";
    case LogLevel::Info: return "info";
    case LogLevel::Warn: return "warn";
    case LogLevel::Error: return "error";
    case LogLevel::Off: return "off";
  }
  return "warn";
}

LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept {
  char lower[16] = {};
  if (text.size() >= sizeof lower) return fallback;
  for (size_t i = 0; i < text.size(); ++i) {
    lower[i] = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  }
  const std::string_view t{lower, text.size()};
  if (t == "debug") return LogLevel::Debug;
  if (t == "info") return LogLevel::Info;
  if (t == "warn" || t == "warning") return LogLevel::Warn;
  if (t == "error") return LogLevel::Error;
  if (t == "off" || t == "none") return LogLevel::Off;
  return fallback;
}

namespace {

std::atomic<int>& threshold_slot() noexcept {
  static std::atomic<int> threshold{[] {
    const char* env = std::getenv("SAME_LOG");
    return static_cast<int>(env == nullptr ? LogLevel::Warn
                                           : parse_log_level(env, LogLevel::Warn));
  }()};
  return threshold;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_slot().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_slot().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log(LogLevel level, std::string_view message) {
  if (!log_enabled(level)) return;
  std::fprintf(stderr, "same [%.*s] %.*s\n", static_cast<int>(to_string(level).size()),
               to_string(level).data(), static_cast<int>(message.size()), message.data());
}

}  // namespace decisive::obs
