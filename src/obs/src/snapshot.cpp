#include "decisive/obs/snapshot.hpp"

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "decisive/base/error.hpp"

namespace decisive::obs {

namespace {

constexpr int kSnapshotSchemaVersion = 1;

json::Value shard_value(ShardIdentity shard) {
  json::Object object;
  object["index"] = json::Value(shard.index);
  object["count"] = json::Value(shard.count);
  return json::Value(std::move(object));
}

const json::Object& require_object(const json::Value& document, const char* key,
                                   const char* what) {
  const json::Value* value = document.find(key);
  if (value == nullptr || !value->is_object()) {
    throw ParseError(std::string(what) + ": missing or invalid '" + key + "'");
  }
  return value->as_object();
}

double require_number(const json::Value& document, const char* key, const char* what) {
  const json::Value* value = document.find(key);
  if (value == nullptr || !value->is_number()) {
    throw ParseError(std::string(what) + ": missing or invalid '" + key + "'");
  }
  return value->as_number();
}

/// Same bucket-resolution estimate Histogram::percentile() computes, applied
/// to merged bucket counts, so a merged snapshot is byte-identical to the
/// snapshot one process observing all events would have written.
double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& counts, double p) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank && counts[i] > 0) {
      return i < bounds.size() ? bounds[i] : bounds.empty() ? 0.0 : bounds.back();
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

}  // namespace

std::string registry_snapshot_json(const Registry& registry) {
  json::Object root;
  root["schema_version"] = json::Value(kSnapshotSchemaVersion);
  root["kind"] = json::Value("metrics-snapshot");
  root["shard"] = shard_value(shard_identity());
  root["metrics"] = json::parse(registry.to_json());
  return json::write(json::Value(std::move(root)));
}

json::Value parse_registry_snapshot(std::string_view text, ShardIdentity* shard) {
  const json::Value document = json::parse(text);
  const json::Value* kind = document.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "metrics-snapshot") {
    throw ParseError("snapshot: document is not a metrics-snapshot (missing kind)");
  }
  const int version = static_cast<int>(require_number(document, "schema_version", "snapshot"));
  if (version != kSnapshotSchemaVersion) {
    throw ParseError("snapshot: unsupported schema_version " + std::to_string(version));
  }
  if (shard != nullptr) {
    const json::Value* stamp = document.find("shard");
    if (stamp == nullptr || !stamp->is_object()) throw ParseError("snapshot: missing 'shard'");
    shard->index = static_cast<int>(require_number(*stamp, "index", "snapshot shard"));
    shard->count = static_cast<int>(require_number(*stamp, "count", "snapshot shard"));
  }
  const json::Value* metrics = document.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) throw ParseError("snapshot: missing 'metrics'");
  return *metrics;
}

std::string merge_registry_snapshots(const std::vector<std::string>& texts) {
  if (texts.empty()) throw AnalysisError("merge: no snapshots to merge");

  std::map<std::string, double> counters;
  // value, updated_unix_ms, input order — last-write-wins needs all three.
  struct GaugeState {
    double value = 0.0;
    double updated_unix_ms = 0.0;
    size_t input = 0;
    bool seen = false;
  };
  std::map<std::string, GaugeState> gauges;
  struct HistogramState {
    std::vector<double> bounds;
    std::vector<std::uint64_t> bucket_counts;
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  std::map<std::string, HistogramState> histograms;

  for (size_t input = 0; input < texts.size(); ++input) {
    const json::Value metrics = parse_registry_snapshot(texts[input]);
    for (const auto& [name, value] : require_object(metrics, "counters", "snapshot")) {
      if (!value.is_number()) throw ParseError("snapshot: non-numeric counter '" + name + "'");
      counters[name] += value.as_number();
    }
    for (const auto& [name, value] : require_object(metrics, "gauges", "snapshot")) {
      const double v = require_number(value, "value", "snapshot gauge");
      const double ts = require_number(value, "updated_unix_ms", "snapshot gauge");
      GaugeState& state = gauges[name];
      // Later timestamp wins; on a tie the later input wins, keeping the
      // merge deterministic for a fixed input order.
      if (!state.seen || ts >= state.updated_unix_ms) {
        state = GaugeState{v, ts, input, true};
      }
    }
    for (const auto& [name, value] : require_object(metrics, "histograms", "snapshot")) {
      const json::Value* bounds = value.find("bounds");
      const json::Value* buckets = value.find("bucket_counts");
      if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
          !buckets->is_array()) {
        throw ParseError("snapshot: histogram '" + name + "' lacks bucket-level data");
      }
      HistogramState& state = histograms[name];
      if (state.bounds.empty() && state.bucket_counts.empty()) {
        for (const json::Value& b : bounds->as_array()) state.bounds.push_back(b.as_number());
        state.bucket_counts.assign(buckets->as_array().size(), 0);
      } else {
        std::vector<double> incoming;
        for (const json::Value& b : bounds->as_array()) incoming.push_back(b.as_number());
        if (incoming != state.bounds) {
          throw AnalysisError("merge: histogram '" + name +
                              "' bucket layout differs between shards (" +
                              std::to_string(state.bounds.size()) + " vs " +
                              std::to_string(incoming.size()) + " bounds)");
        }
      }
      const json::Array& incoming_counts = buckets->as_array();
      if (incoming_counts.size() != state.bucket_counts.size()) {
        throw AnalysisError("merge: histogram '" + name +
                            "' bucket layout differs between shards (" +
                            std::to_string(state.bucket_counts.size()) + " vs " +
                            std::to_string(incoming_counts.size()) + " buckets)");
      }
      for (size_t i = 0; i < incoming_counts.size(); ++i) {
        state.bucket_counts[i] += static_cast<std::uint64_t>(incoming_counts[i].as_number());
      }
      state.sum += require_number(value, "sum", "snapshot histogram");
      state.count += static_cast<std::uint64_t>(require_number(value, "count", "snapshot histogram"));
    }
  }

  json::Object merged_counters;
  for (const auto& [name, value] : counters) merged_counters[name] = json::Value(value);
  json::Object merged_gauges;
  for (const auto& [name, state] : gauges) {
    json::Object g;
    g["value"] = json::Value(state.value);
    g["updated_unix_ms"] = json::Value(state.updated_unix_ms);
    merged_gauges[name] = json::Value(std::move(g));
  }
  json::Object merged_histograms;
  for (const auto& [name, state] : histograms) {
    json::Object h;
    h["count"] = json::Value(static_cast<double>(state.count));
    h["sum"] = json::Value(state.sum);
    h["p50"] = json::Value(percentile_from_buckets(state.bounds, state.bucket_counts, 0.50));
    h["p90"] = json::Value(percentile_from_buckets(state.bounds, state.bucket_counts, 0.90));
    h["p99"] = json::Value(percentile_from_buckets(state.bounds, state.bucket_counts, 0.99));
    json::Array bounds;
    for (const double b : state.bounds) bounds.push_back(json::Value(b));
    json::Array buckets;
    for (const std::uint64_t c : state.bucket_counts) {
      buckets.push_back(json::Value(static_cast<double>(c)));
    }
    h["bounds"] = json::Value(std::move(bounds));
    h["bucket_counts"] = json::Value(std::move(buckets));
    merged_histograms[name] = json::Value(std::move(h));
  }
  json::Object metrics;
  metrics["counters"] = json::Value(std::move(merged_counters));
  metrics["gauges"] = json::Value(std::move(merged_gauges));
  metrics["histograms"] = json::Value(std::move(merged_histograms));

  json::Object root;
  root["schema_version"] = json::Value(kSnapshotSchemaVersion);
  root["kind"] = json::Value("metrics-snapshot");
  // The merged view is the whole run, so it carries the unsharded identity.
  root["shard"] = shard_value(ShardIdentity{0, 1});
  root["metrics"] = json::Value(std::move(metrics));
  return json::write(json::Value(std::move(root)));
}

std::string merge_chrome_traces(const std::vector<std::string>& texts) {
  if (texts.empty()) throw AnalysisError("merge: no traces to merge");

  json::Array merged_events;
  std::set<int> used_pids;
  for (size_t input = 0; input < texts.size(); ++input) {
    const json::Value document = json::parse(texts[input]);
    const json::Value* events = document.find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      throw ParseError("trace #" + std::to_string(input) + ": missing 'traceEvents' array");
    }
    // Preferred lane for this input: its shard stamp when present, else its
    // own recorded pid. Collisions bump to the next free lane, so the merge
    // never interleaves two shards into one process lane.
    int preferred = static_cast<int>(input) + 1;
    if (const json::Value* stamp = document.find("shard");
        stamp != nullptr && stamp->is_object()) {
      if (const json::Value* index = stamp->find("index");
          index != nullptr && index->is_number()) {
        preferred = static_cast<int>(index->as_number()) + 1;
      }
    }
    std::map<int, int> pid_map;
    for (const json::Value& event : events->as_array()) {
      if (!event.is_object()) {
        throw ParseError("trace #" + std::to_string(input) + ": non-object event");
      }
      const json::Value* pid = event.find("pid");
      const int original = (pid != nullptr && pid->is_number())
                               ? static_cast<int>(pid->as_number())
                               : 1;
      auto [it, inserted] = pid_map.try_emplace(original, 0);
      if (inserted) {
        int lane = pid_map.size() == 1 ? preferred : original;
        while (used_pids.contains(lane)) ++lane;
        used_pids.insert(lane);
        it->second = lane;
      }
      json::Object out = event.as_object();
      out["pid"] = json::Value(it->second);
      merged_events.push_back(json::Value(std::move(out)));
    }
  }

  json::Object root;
  root["traceEvents"] = json::Value(std::move(merged_events));
  root["displayTimeUnit"] = json::Value("ms");
  root["shard"] = shard_value(ShardIdentity{0, 1});
  return json::write(json::Value(std::move(root)));
}

}  // namespace decisive::obs
