#include "decisive/obs/bench_diff.hpp"

#include <cmath>
#include <cstdio>
#include <set>
#include <utility>

#include "decisive/base/error.hpp"

namespace decisive::obs {

namespace {

constexpr int kBenchSchemaVersion = 1;

/// Symmetric relative delta: 0 when both sides are 0, and the same number
/// whichever side regressed — a sentinel should flag drift in either
/// direction (a counter that halved usually means the bench stopped
/// exercising the path it claims to measure).
double relative_delta(double baseline, double fresh) {
  const double scale = std::max(std::fabs(baseline), std::fabs(fresh));
  if (scale == 0.0) return 0.0;
  return std::fabs(fresh - baseline) / scale;
}

/// Looks a metric up across counters (plain numbers) and gauges
/// ({value, updated_unix_ms} objects). Returns false when absent.
bool find_metric(const json::Value& metrics, const std::string& name, double* out) {
  if (const json::Value* counters = metrics.find("counters")) {
    if (const json::Value* value = counters->find(name); value != nullptr && value->is_number()) {
      *out = value->as_number();
      return true;
    }
  }
  if (const json::Value* gauges = metrics.find("gauges")) {
    if (const json::Value* entry = gauges->find(name); entry != nullptr) {
      if (const json::Value* value = entry->find("value");
          value != nullptr && value->is_number()) {
        *out = value->as_number();
        return true;
      }
    }
  }
  return false;
}

double require_metric(const json::Value& metrics, const std::string& name, const char* side) {
  double value = 0.0;
  if (!find_metric(metrics, name, &value)) {
    throw AnalysisError(std::string("bench-diff: metric '") + name + "' missing from " + side +
                        " snapshot");
  }
  return value;
}

std::string format_value(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

BenchDiffRow make_row(std::string label, double baseline, double fresh, double tolerance) {
  BenchDiffRow row;
  row.label = std::move(label);
  row.baseline = baseline;
  row.fresh = fresh;
  row.delta = relative_delta(baseline, fresh);
  row.tolerance = tolerance;
  row.regression = row.delta > tolerance;
  return row;
}

void collect_names(const json::Value& metrics, const char* section,
                   std::set<std::string>* names) {
  if (const json::Value* object = metrics.find(section); object != nullptr && object->is_object()) {
    for (const auto& [name, value] : object->as_object()) names->insert(name);
  }
}

}  // namespace

BenchSnapshot parse_bench_snapshot(std::string_view text) {
  const json::Value document = json::parse(text);
  const json::Value* kind = document.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "bench-snapshot") {
    throw ParseError("bench snapshot: document is not a bench-snapshot (missing kind)");
  }
  const json::Value* version = document.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    throw ParseError("bench snapshot: missing 'schema_version'");
  }
  BenchSnapshot snapshot;
  snapshot.schema_version = static_cast<int>(version->as_number());
  if (snapshot.schema_version != kBenchSchemaVersion) {
    throw ParseError("bench snapshot: unsupported schema_version " +
                     std::to_string(snapshot.schema_version));
  }
  const json::Value* bench = document.find("bench");
  if (bench == nullptr || !bench->is_string()) {
    throw ParseError("bench snapshot: missing 'bench' name");
  }
  snapshot.bench = bench->as_string();
  const json::Value* metrics = document.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    throw ParseError("bench snapshot: missing 'metrics'");
  }
  snapshot.metrics = *metrics;
  return snapshot;
}

bool BenchDiffReport::regression() const {
  for (const BenchDiffRow& row : rows) {
    if (row.regression) return true;
  }
  return false;
}

std::string BenchDiffReport::render() const {
  std::string out = "bench '" + bench + "': " + std::to_string(rows.size()) + " checks\n";
  for (const BenchDiffRow& row : rows) {
    char line[256];
    std::snprintf(line, sizeof line, "  %-6s %-52s base=%s fresh=%s delta=%.1f%% tol=%.1f%%\n",
                  row.regression ? "FAIL" : "ok", row.label.c_str(),
                  format_value(row.baseline).c_str(), format_value(row.fresh).c_str(),
                  row.delta * 100.0, row.tolerance * 100.0);
    out += line;
  }
  out += regression() ? "RESULT: regression\n" : "RESULT: ok\n";
  return out;
}

std::string BenchDiffReport::to_json() const {
  json::Object root;
  root["schema_version"] = json::Value(1);
  root["kind"] = json::Value("bench-diff");
  root["bench"] = json::Value(bench);
  root["regression"] = json::Value(regression());
  json::Array checks;
  for (const BenchDiffRow& row : rows) {
    json::Object check;
    check["label"] = json::Value(row.label);
    check["baseline"] = json::Value(row.baseline);
    check["fresh"] = json::Value(row.fresh);
    check["delta"] = json::Value(row.delta);
    check["tolerance"] = json::Value(row.tolerance);
    check["regression"] = json::Value(row.regression);
    checks.push_back(json::Value(std::move(check)));
  }
  root["checks"] = json::Value(std::move(checks));
  return json::write(json::Value(std::move(root)));
}

BenchDiffReport diff_bench_snapshots(const BenchSnapshot& fresh, const BenchSnapshot& baseline,
                                     const BenchDiffOptions& options) {
  if (fresh.bench != baseline.bench) {
    throw AnalysisError("bench-diff: snapshots name different benches ('" + fresh.bench +
                        "' vs '" + baseline.bench + "')");
  }
  BenchDiffReport report;
  report.bench = fresh.bench;

  if (!options.checks.empty()) {
    for (const BenchCheck& check : options.checks) {
      const double tolerance =
          check.tolerance >= 0.0 ? check.tolerance : options.default_tolerance;
      if (check.per.empty()) {
        report.rows.push_back(make_row(check.metric,
                                       require_metric(baseline.metrics, check.metric, "baseline"),
                                       require_metric(fresh.metrics, check.metric, "fresh"),
                                       tolerance));
      } else {
        const double base_den = require_metric(baseline.metrics, check.per, "baseline");
        const double fresh_den = require_metric(fresh.metrics, check.per, "fresh");
        if (base_den == 0.0 || fresh_den == 0.0) {
          throw AnalysisError("bench-diff: ratio divisor '" + check.per + "' is zero");
        }
        report.rows.push_back(
            make_row(check.metric + " / " + check.per,
                     require_metric(baseline.metrics, check.metric, "baseline") / base_den,
                     require_metric(fresh.metrics, check.metric, "fresh") / fresh_den,
                     tolerance));
      }
    }
    return report;
  }

  // Default mode: every counter and gauge present on either side, absolute
  // compare (a metric missing on one side reads as 0, which flags it).
  std::set<std::string> names;
  collect_names(fresh.metrics, "counters", &names);
  collect_names(baseline.metrics, "counters", &names);
  collect_names(fresh.metrics, "gauges", &names);
  collect_names(baseline.metrics, "gauges", &names);
  for (const std::string& name : names) {
    double base = 0.0;
    double now = 0.0;
    find_metric(baseline.metrics, name, &base);
    find_metric(fresh.metrics, name, &now);
    report.rows.push_back(make_row(name, base, now, options.default_tolerance));
  }
  if (options.check_wall) {
    std::set<std::string> histogram_names;
    collect_names(fresh.metrics, "histograms", &histogram_names);
    collect_names(baseline.metrics, "histograms", &histogram_names);
    for (const std::string& name : histogram_names) {
      for (const char* quantile : {"p50", "p99"}) {
        double base = 0.0;
        double now = 0.0;
        if (const json::Value* h = baseline.metrics.find("histograms")) {
          if (const json::Value* entry = h->find(name)) {
            if (const json::Value* q = entry->find(quantile); q != nullptr && q->is_number()) {
              base = q->as_number();
            }
          }
        }
        if (const json::Value* h = fresh.metrics.find("histograms")) {
          if (const json::Value* entry = h->find(name)) {
            if (const json::Value* q = entry->find(quantile); q != nullptr && q->is_number()) {
              now = q->as_number();
            }
          }
        }
        report.rows.push_back(
            make_row(name + " " + quantile, base, now, options.default_tolerance));
      }
    }
  }
  return report;
}

std::vector<BenchCheck> parse_bench_checks(std::string_view text, std::string_view bench,
                                           double* default_tolerance) {
  const json::Value document = json::parse(text);
  const json::Value* kind = document.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "bench-checks") {
    throw ParseError("bench checks: document is not a bench-checks file (missing kind)");
  }
  if (const json::Value* tolerance = document.find("default_tolerance");
      tolerance != nullptr && tolerance->is_number() && default_tolerance != nullptr) {
    *default_tolerance = tolerance->as_number();
  }
  std::vector<BenchCheck> checks;
  const json::Value* table = document.find("checks");
  if (table == nullptr || !table->is_object()) return checks;
  const json::Value* entries = table->find(bench);
  if (entries == nullptr) return checks;
  if (!entries->is_array()) {
    throw ParseError("bench checks: entry for '" + std::string(bench) + "' is not an array");
  }
  for (const json::Value& entry : entries->as_array()) {
    BenchCheck check;
    const json::Value* metric = entry.find("metric");
    if (metric == nullptr || !metric->is_string()) {
      throw ParseError("bench checks: check without a 'metric' name");
    }
    check.metric = metric->as_string();
    if (const json::Value* per = entry.find("per"); per != nullptr && per->is_string()) {
      check.per = per->as_string();
    }
    if (const json::Value* tolerance = entry.find("tolerance");
        tolerance != nullptr && tolerance->is_number()) {
      check.tolerance = tolerance->as_number();
    }
    checks.push_back(std::move(check));
  }
  return checks;
}

}  // namespace decisive::obs
