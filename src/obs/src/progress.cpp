#include "decisive/obs/progress.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/persist.hpp"

namespace decisive::obs {

namespace {

std::uint64_t unix_ms_now() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

double monotonic_seconds_now() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::uint64_t require_uint(const json::Value& document, const char* key) {
  const json::Value* value = document.find(key);
  if (value == nullptr || !value->is_number() || value->as_number() < 0.0) {
    throw ParseError(std::string("heartbeat: missing or invalid '") + key + "'");
  }
  return static_cast<std::uint64_t>(value->as_number());
}

double optional_number(const json::Value& document, const char* key) {
  const json::Value* value = document.find(key);
  return (value != nullptr && value->is_number()) ? value->as_number() : 0.0;
}

std::string require_string(const json::Value& document, const char* key) {
  const json::Value* value = document.find(key);
  if (value == nullptr || !value->is_string()) {
    throw ParseError(std::string("heartbeat: missing or invalid '") + key + "'");
  }
  return value->as_string();
}

std::string format_rate(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof buffer, "%.1f", value);
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// ProgressReporter
// ---------------------------------------------------------------------------

ProgressReporter::ProgressReporter(ProgressReporterOptions options)
    : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  worker_done_.assign(static_cast<size_t>(options_.workers), 0);
  worker_last_active_ms_.assign(static_cast<size_t>(options_.workers), 0);
  started_unix_ms_ = unix_ms_now();
  started_monotonic_s_ = monotonic_seconds_now();
  // Publish the initial "0 done" beat so observers see the shard as alive
  // from the moment it starts, not only after the first task lands.
  const std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

void ProgressReporter::task_done(int worker, std::string_view outcome) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  ++done_;
  ++outcomes_[std::string(outcome)];
  const size_t slot = static_cast<size_t>(
      std::clamp(worker, 0, options_.workers - 1));
  ++worker_done_[slot];
  worker_last_active_ms_[slot] = unix_ms_now();
  const double now_s = monotonic_seconds_now();
  if (options_.interval_seconds <= 0.0 ||
      now_s - last_publish_monotonic_s_ >= options_.interval_seconds) {
    publish_locked();
  }
}

void ProgressReporter::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  publish_locked();
}

void ProgressReporter::finish() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  finished_ = true;
  publish_locked();
}

std::string ProgressReporter::render() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return render_locked();
}

std::string ProgressReporter::render_locked() const {
  const double elapsed =
      std::max(0.0, monotonic_seconds_now() - started_monotonic_s_);
  const double throughput = elapsed > 0.0 ? static_cast<double>(done_) / elapsed : 0.0;
  const std::uint64_t remaining = options_.total > done_ ? options_.total - done_ : 0;
  const double eta =
      throughput > 0.0 ? static_cast<double>(remaining) / throughput : 0.0;
  const ShardIdentity shard = shard_identity();

  json::Object root;
  root["schema_version"] = json::Value(1);
  root["kind"] = json::Value("heartbeat");
  root["phase"] = json::Value(options_.phase);
  json::Object shard_object;
  shard_object["index"] = json::Value(shard.index);
  shard_object["count"] = json::Value(shard.count);
  root["shard"] = json::Value(std::move(shard_object));
  root["pid"] = json::Value(static_cast<long long>(::getpid()));
  root["state"] = json::Value(finished_ ? "done" : "running");
  root["total"] = json::Value(static_cast<double>(options_.total));
  root["done"] = json::Value(static_cast<double>(done_));
  json::Object outcomes;
  for (const auto& [label, count] : outcomes_) {
    outcomes[label] = json::Value(static_cast<double>(count));
  }
  root["outcomes"] = json::Value(std::move(outcomes));
  root["started_unix_ms"] = json::Value(static_cast<double>(started_unix_ms_));
  root["updated_unix_ms"] = json::Value(static_cast<double>(unix_ms_now()));
  root["elapsed_seconds"] = json::Value(elapsed);
  root["throughput_per_second"] = json::Value(throughput);
  root["eta_seconds"] = json::Value(eta);
  json::Array workers;
  for (size_t i = 0; i < worker_done_.size(); ++i) {
    json::Object worker;
    worker["id"] = json::Value(static_cast<int>(i));
    worker["done"] = json::Value(static_cast<double>(worker_done_[i]));
    worker["last_active_unix_ms"] =
        json::Value(static_cast<double>(worker_last_active_ms_[i]));
    workers.push_back(json::Value(std::move(worker)));
  }
  root["workers"] = json::Value(std::move(workers));
  return json::write(json::Value(std::move(root)));
}

void ProgressReporter::publish_locked() {
  last_publish_monotonic_s_ = monotonic_seconds_now();
  if (options_.path.empty()) return;
  // A heartbeat is best-effort telemetry: a full disk must not abort the
  // analysis that is being observed.
  try {
    atomic_write_file(options_.path, render_locked());
  } catch (const Error&) {
  }
}

// ---------------------------------------------------------------------------
// Heartbeat parsing + status folding
// ---------------------------------------------------------------------------

Heartbeat parse_heartbeat(std::string_view text) {
  const json::Value document = json::parse(text);
  const json::Value* kind = document.find("kind");
  if (kind == nullptr || !kind->is_string() || kind->as_string() != "heartbeat") {
    throw ParseError("heartbeat: document is not a heartbeat (missing kind)");
  }
  Heartbeat beat;
  beat.schema_version = static_cast<int>(require_uint(document, "schema_version"));
  if (beat.schema_version != 1) {
    throw ParseError("heartbeat: unsupported schema_version " +
                     std::to_string(beat.schema_version));
  }
  beat.phase = require_string(document, "phase");
  const json::Value* shard = document.find("shard");
  if (shard == nullptr || !shard->is_object()) {
    throw ParseError("heartbeat: missing 'shard'");
  }
  beat.shard.index = static_cast<int>(require_uint(*shard, "index"));
  beat.shard.count = static_cast<int>(require_uint(*shard, "count"));
  beat.pid = static_cast<std::int64_t>(require_uint(document, "pid"));
  beat.state = require_string(document, "state");
  if (beat.state != "running" && beat.state != "done") {
    throw ParseError("heartbeat: unknown state '" + beat.state + "'");
  }
  beat.total = require_uint(document, "total");
  beat.done = require_uint(document, "done");
  if (const json::Value* outcomes = document.find("outcomes");
      outcomes != nullptr && outcomes->is_object()) {
    for (const auto& [label, count] : outcomes->as_object()) {
      if (!count.is_number()) throw ParseError("heartbeat: non-numeric outcome count");
      beat.outcomes[label] = static_cast<std::uint64_t>(count.as_number());
    }
  }
  beat.started_unix_ms = require_uint(document, "started_unix_ms");
  beat.updated_unix_ms = require_uint(document, "updated_unix_ms");
  beat.elapsed_seconds = optional_number(document, "elapsed_seconds");
  beat.throughput_per_second = optional_number(document, "throughput_per_second");
  beat.eta_seconds = optional_number(document, "eta_seconds");
  if (const json::Value* workers = document.find("workers");
      workers != nullptr && workers->is_array()) {
    for (const json::Value& row : workers->as_array()) {
      Heartbeat::Worker worker;
      worker.id = static_cast<int>(require_uint(row, "id"));
      worker.done = require_uint(row, "done");
      worker.last_active_unix_ms = require_uint(row, "last_active_unix_ms");
      beat.workers.push_back(worker);
    }
  }
  return beat;
}

StatusView fold_status(const std::vector<std::pair<std::string, Heartbeat>>& beats,
                       std::uint64_t now_unix_ms, double stale_seconds) {
  StatusView view;
  for (const auto& [file, beat] : beats) {
    ShardStatus status;
    status.file = file;
    status.beat = beat;
    status.age_seconds =
        now_unix_ms > beat.updated_unix_ms
            ? static_cast<double>(now_unix_ms - beat.updated_unix_ms) / 1e3
            : 0.0;
    status.dead = beat.state == "running" && status.age_seconds > stale_seconds;
    view.total += beat.total;
    view.done += beat.done;
    for (const auto& [label, count] : beat.outcomes) view.outcomes[label] += count;
    if (status.dead) {
      ++view.dead_shards;
    } else if (beat.state == "done") {
      ++view.done_shards;
    } else {
      ++view.running_shards;
      view.throughput_per_second += beat.throughput_per_second;
    }
    view.shards.push_back(std::move(status));
  }
  const std::uint64_t remaining = view.total > view.done ? view.total - view.done : 0;
  view.eta_seconds = view.throughput_per_second > 0.0
                         ? static_cast<double>(remaining) / view.throughput_per_second
                         : 0.0;
  return view;
}

std::string StatusView::render() const {
  std::string out;
  for (const ShardStatus& status : shards) {
    const Heartbeat& beat = status.beat;
    char line[256];
    if (status.dead) {
      std::snprintf(line, sizeof line,
                    "shard %d/%d  DEAD     %llu/%llu tasks  last beat %ss ago  (%s)\n",
                    beat.shard.index, beat.shard.count,
                    static_cast<unsigned long long>(beat.done),
                    static_cast<unsigned long long>(beat.total),
                    format_rate(status.age_seconds).c_str(), beat.phase.c_str());
    } else if (beat.state == "done") {
      std::snprintf(line, sizeof line, "shard %d/%d  done     %llu/%llu tasks  (%s)\n",
                    beat.shard.index, beat.shard.count,
                    static_cast<unsigned long long>(beat.done),
                    static_cast<unsigned long long>(beat.total), beat.phase.c_str());
    } else {
      std::snprintf(line, sizeof line,
                    "shard %d/%d  running  %llu/%llu tasks  %s/s  eta %ss  (%s)\n",
                    beat.shard.index, beat.shard.count,
                    static_cast<unsigned long long>(beat.done),
                    static_cast<unsigned long long>(beat.total),
                    format_rate(beat.throughput_per_second).c_str(),
                    format_rate(beat.eta_seconds).c_str(), beat.phase.c_str());
    }
    out += line;
  }
  char totals[256];
  std::snprintf(totals, sizeof totals,
                "total      %llu/%llu tasks  %d running, %d done, %d dead\n",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total), running_shards, done_shards,
                dead_shards);
  out += totals;
  if (!outcomes.empty()) {
    out += "outcomes  ";
    bool first = true;
    for (const auto& [label, count] : outcomes) {
      if (!first) out += ", ";
      out += label + "=" + std::to_string(count);
      first = false;
    }
    out += "\n";
  }
  return out;
}

}  // namespace decisive::obs
