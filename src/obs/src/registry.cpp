#include "decisive/obs/registry.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/obs/shard.hpp"

namespace decisive::obs {

namespace {

std::atomic<int> g_shard_index{0};
std::atomic<int> g_shard_count{1};

}  // namespace

void set_shard_identity(ShardIdentity identity) noexcept {
  g_shard_index.store(identity.index, std::memory_order_relaxed);
  g_shard_count.store(identity.count, std::memory_order_relaxed);
}

ShardIdentity shard_identity() noexcept {
  return ShardIdentity{g_shard_index.load(std::memory_order_relaxed),
                       g_shard_count.load(std::memory_order_relaxed)};
}

namespace {

std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.9g", value);
  return buffer;
}

std::string format_count(std::uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%" PRIu64, value);
  return buffer;
}

}  // namespace

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

void Gauge::set(double value) noexcept {
  value_.store(value, std::memory_order_relaxed);
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  updated_unix_ms_.store(
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(now).count()),
      std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw AnalysisError("histogram bucket bounds must be strictly increasing");
    }
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t bucket = static_cast<size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value, std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1);
  for (size_t i = 0; i < counts.size(); ++i) {
    counts[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::percentile(double p) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double rank = p * static_cast<double>(total);
  std::uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (static_cast<double>(seen) >= rank && counts[i] > 0) {
      // Overflow bucket has no upper bound; report the largest finite one.
      return i < bounds_.size() ? bounds_[i] : bounds_.empty() ? 0.0 : bounds_.back();
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() noexcept {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::latency_buckets() {
  return {1e-6, 1e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
          1e-1, 2.5e-1, 1.0,  2.5,   10.0, 30.0};
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out.front() >= '0' && out.front() <= '9') out.insert(out.begin(), '_');
  return out;
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[sanitize_metric_name(name)];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[sanitize_metric_name(name)];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[sanitize_metric_name(name)];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::string Registry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "# TYPE " + name + " counter\n";
    out += name + " " + format_count(counter->value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + format_double(gauge->value()) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    out += "# TYPE " + name + " histogram\n";
    const auto& bounds = histogram->bounds();
    const auto counts = histogram->bucket_counts();
    std::uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      out += name + "_bucket{le=\"" + format_double(bounds[i]) + "\"} " +
             format_count(cumulative) + "\n";
    }
    cumulative += counts[bounds.size()];
    out += name + "_bucket{le=\"+Inf\"} " + format_count(cumulative) + "\n";
    out += name + "_sum " + format_double(histogram->sum()) + "\n";
    out += name + "_count " + format_count(histogram->count()) + "\n";
  }
  return out;
}

std::string Registry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json::Object counters;
  for (const auto& [name, counter] : counters_) {
    counters[name] = json::Value(static_cast<double>(counter->value()));
  }
  json::Object gauges;
  for (const auto& [name, gauge] : gauges_) {
    json::Object g;
    g["value"] = json::Value(gauge->value());
    g["updated_unix_ms"] = json::Value(static_cast<double>(gauge->updated_unix_ms()));
    gauges[name] = json::Value(std::move(g));
  }
  json::Object histograms;
  for (const auto& [name, histogram] : histograms_) {
    json::Object h;
    h["count"] = json::Value(static_cast<double>(histogram->count()));
    h["sum"] = json::Value(histogram->sum());
    h["p50"] = json::Value(histogram->percentile(0.50));
    h["p90"] = json::Value(histogram->percentile(0.90));
    h["p99"] = json::Value(histogram->percentile(0.99));
    // Bucket-level data: what makes per-shard snapshots mergeable
    // (bucket-wise addition) instead of merely human-readable.
    json::Array bounds;
    for (const double b : histogram->bounds()) bounds.push_back(json::Value(b));
    json::Array buckets;
    for (const std::uint64_t c : histogram->bucket_counts()) {
      buckets.push_back(json::Value(static_cast<double>(c)));
    }
    h["bounds"] = json::Value(std::move(bounds));
    h["bucket_counts"] = json::Value(std::move(buckets));
    histograms[name] = json::Value(std::move(h));
  }
  json::Object root;
  root["counters"] = json::Value(std::move(counters));
  root["gauges"] = json::Value(std::move(gauges));
  root["histograms"] = json::Value(std::move(histograms));
  return json::write(json::Value(std::move(root)));
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

}  // namespace decisive::obs
