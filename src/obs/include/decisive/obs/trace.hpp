// Chrome trace-event collector: per-thread timelines of obs::Span begin/end
// events, exported as trace-event JSON that chrome://tracing and Perfetto
// load directly.
//
// Recording is designed for the campaign/graph-FMEA worker pools:
//  - when disabled (the default), record() is one relaxed atomic load;
//  - when enabled, each thread appends to its own buffer — no lock on the
//    hot path after the first event of a thread;
//  - event names must be string literals (the collector stores the pointer).
//
// enable()/disable()/export must bracket the traced region from a single
// thread while no worker is mid-record (the CLI enables before the analysis
// starts and exports after it finishes, when every pool has been joined).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace decisive::obs {

class TraceCollector {
 public:
  static TraceCollector& global();

  /// Starts a new trace: drops previously collected events and re-arms the
  /// clock origin.
  void enable();
  void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one duration event ('B' begin / 'E' end) to the calling
  /// thread's buffer. No-op when disabled. `name` must be a string literal.
  void record(const char* name, char phase);

  /// Renders the collected events as Chrome trace-event JSON
  /// ({"traceEvents": [...]}), threads sorted by registration order.
  [[nodiscard]] std::string to_chrome_json() const;
  /// Writes to_chrome_json() to `path`; throws IoError on failure.
  void write_file(const std::string& path) const;

  /// Total recorded events (diagnostics / tests).
  [[nodiscard]] std::size_t event_count() const;

 private:
  struct Event {
    const char* name;
    char phase;  ///< 'B' or 'E'
    std::uint64_t ts_ns;
  };
  struct ThreadBuffer {
    int tid = 0;
    std::vector<Event> events;
  };

  ThreadBuffer* local_buffer();

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> epoch_{1};  ///< bumped by enable(); invalidates cached buffers
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::chrono::steady_clock::time_point origin_{};
};

/// Validates Chrome trace-event JSON: the document parses, every event has
/// name/ph/ts/pid/tid, timestamps are non-negative, and per thread the B/E
/// events balance with LIFO nesting (every E matches the innermost open B of
/// the same name). Returns an empty string when valid, else a description of
/// the first problem. Shared by `same check-trace` and the test suite.
[[nodiscard]] std::string validate_chrome_trace(std::string_view text);

}  // namespace decisive::obs
