// Minimal leveled logger: every diagnostic that is not part of a command's
// result goes to stderr through here, so stdout stays reserved for analysis
// artefacts and protocol responses.
//
// The threshold comes from the SAME_LOG environment variable
// (debug|info|warn|error|off; default warn), read once per process.
#pragma once

#include <string_view>

namespace decisive::obs {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parses a SAME_LOG value; unknown strings return `fallback`.
[[nodiscard]] LogLevel parse_log_level(std::string_view text, LogLevel fallback) noexcept;

/// The active threshold (SAME_LOG, cached) unless overridden.
[[nodiscard]] LogLevel log_threshold() noexcept;

/// Overrides the threshold for the rest of the process (tests, CLI flags).
void set_log_threshold(LogLevel level) noexcept;

[[nodiscard]] inline bool log_enabled(LogLevel level) noexcept {
  return level >= log_threshold() && log_threshold() != LogLevel::Off;
}

/// Writes "same [level] message\n" to stderr when `level` passes the
/// threshold.
void log(LogLevel level, std::string_view message);

}  // namespace decisive::obs
