// Process-wide shard identity of a distributed (multi-process) analysis.
//
// A `--shard i/N` campaign runs as N cooperating processes, each producing
// its own observability artefacts: a heartbeat JSON, a registry snapshot and
// a Chrome trace. Those artefacts carry the shard identity so the fold side
// (`same status`, `same merge-metrics`, `same merge-traces`) can aggregate
// them back into the single view an unsharded run would have produced — e.g.
// the trace exporter renders pid = index + 1, giving each shard its own
// process lane in Perfetto after a merge.
//
// The identity is set once, by whoever parses the shard spec (the campaign
// runner, or the CLI), before artefacts are exported. Default: 0/1, an
// unsharded process.
#pragma once

namespace decisive::obs {

struct ShardIdentity {
  int index = 0;
  int count = 1;
};

void set_shard_identity(ShardIdentity identity) noexcept;
[[nodiscard]] ShardIdentity shard_identity() noexcept;

}  // namespace decisive::obs
