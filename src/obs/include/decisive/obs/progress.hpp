// Flight-recorder progress heartbeats for long-running analyses.
//
// A ProgressReporter is ticked by the campaign runner (and the scaled
// graph-FMEA) as tasks complete, and periodically publishes a heartbeat JSON
// document — done/total, per-outcome counts, throughput, ETA, per-worker
// liveness — next to the shard's journal. The file is replaced via
// atomic_write_file, so an observer (`same status <dir>`) always reads a
// complete document, never a torn write; a shard that dies mid-run simply
// stops refreshing its heartbeat, and staleness is how the fold side flags
// it dead (mirroring the circuit-breaker philosophy: absence of progress is
// itself a signal).
//
// Heartbeat document (schema_version 1):
//   {"schema_version":1,"kind":"heartbeat","phase":"campaign",
//    "shard":{"index":0,"count":4},"pid":12345,"state":"running",
//    "total":100,"done":42,"outcomes":{"Converged":40,"Singular":2},
//    "started_unix_ms":...,"updated_unix_ms":...,"elapsed_seconds":1.9,
//    "throughput_per_second":22.1,"eta_seconds":2.6,
//    "workers":[{"id":0,"done":21,"last_active_unix_ms":...}, ...]}
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "decisive/obs/shard.hpp"

namespace decisive::obs {

struct ProgressReporterOptions {
  /// Heartbeat file path; empty disables publishing (ticks become no-ops
  /// except for the in-memory tallies, still readable via render()).
  std::string path;
  /// Analysis phase label, e.g. "campaign" or "graph-fmea".
  std::string phase = "campaign";
  /// Total number of tasks this shard will process.
  std::uint64_t total = 0;
  /// Number of workers; per-worker liveness rows are pre-sized to this.
  int workers = 1;
  /// Minimum seconds between heartbeat writes; task_done() calls inside the
  /// window only update the in-memory tallies. 0 publishes on every tick.
  double interval_seconds = 1.0;
};

/// Thread-safe progress tally + throttled heartbeat publisher. Workers call
/// task_done() concurrently; publishing happens inline on the ticking thread
/// (an atomic rename of a few hundred bytes — negligible next to a solve).
class ProgressReporter {
 public:
  explicit ProgressReporter(ProgressReporterOptions options);

  /// Record completion of one task by `worker` (0-based; out-of-range ids are
  /// clamped into the configured range) with its outcome label, then publish
  /// a heartbeat if the throttle window has elapsed.
  void task_done(int worker, std::string_view outcome);

  /// Publish a heartbeat immediately, ignoring the throttle.
  void flush();

  /// Publish the final heartbeat with state "done". Idempotent.
  void finish();

  /// Current heartbeat document text (what flush() would write).
  [[nodiscard]] std::string render() const;

 private:
  [[nodiscard]] std::string render_locked() const;
  void publish_locked();

  ProgressReporterOptions options_;
  mutable std::mutex mutex_;
  std::uint64_t done_ = 0;
  std::map<std::string, std::uint64_t> outcomes_;
  std::vector<std::uint64_t> worker_done_;
  std::vector<std::uint64_t> worker_last_active_ms_;
  std::uint64_t started_unix_ms_ = 0;
  double started_monotonic_s_ = 0.0;
  double last_publish_monotonic_s_ = -1.0;
  bool finished_ = false;
};

/// Parsed heartbeat document.
struct Heartbeat {
  int schema_version = 0;
  std::string phase;
  ShardIdentity shard;
  std::int64_t pid = 0;
  std::string state;  ///< "running" or "done"
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::map<std::string, std::uint64_t> outcomes;
  std::uint64_t started_unix_ms = 0;
  std::uint64_t updated_unix_ms = 0;
  double elapsed_seconds = 0.0;
  double throughput_per_second = 0.0;
  double eta_seconds = 0.0;
  struct Worker {
    int id = 0;
    std::uint64_t done = 0;
    std::uint64_t last_active_unix_ms = 0;
  };
  std::vector<Worker> workers;
};

/// Parses a heartbeat document. Throws ParseError on malformed JSON or a
/// document that is not a schema_version-1 heartbeat.
[[nodiscard]] Heartbeat parse_heartbeat(std::string_view text);

/// One shard's row in the folded status view.
struct ShardStatus {
  std::string file;  ///< heartbeat file (label only)
  Heartbeat beat;
  double age_seconds = 0.0;  ///< now - updated_unix_ms
  bool dead = false;         ///< state "running" but heartbeat older than the threshold
};

/// All shards folded into one live view.
struct StatusView {
  std::vector<ShardStatus> shards;
  std::uint64_t total = 0;
  std::uint64_t done = 0;
  std::map<std::string, std::uint64_t> outcomes;
  double throughput_per_second = 0.0;  ///< sum over live running shards
  double eta_seconds = 0.0;            ///< remaining / throughput; 0 when unknown
  int running_shards = 0;
  int done_shards = 0;
  int dead_shards = 0;

  /// Human-readable multi-line rendering (what `same status` prints).
  [[nodiscard]] std::string render() const;
};

/// Folds per-shard heartbeats into one view. `now_unix_ms` is the observer's
/// clock; a shard in state "running" whose heartbeat is older than
/// `stale_seconds` is flagged dead. Input order is preserved.
[[nodiscard]] StatusView fold_status(const std::vector<std::pair<std::string, Heartbeat>>& beats,
                                     std::uint64_t now_unix_ms, double stale_seconds);

}  // namespace decisive::obs
