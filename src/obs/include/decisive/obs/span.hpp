// RAII scoped timer: the one instrumentation primitive engines sprinkle on
// hot paths.
//
//   obs::Span span("campaign.task", &task_latency_histogram);
//
// On construction the span optionally records a trace 'B' event (when the
// global TraceCollector is enabled) and reads the monotonic clock (when it
// will need a duration — i.e. when traced or when a histogram is attached).
// On destruction it observes the elapsed seconds into the histogram and
// records the matching 'E' event. A span that is neither traced nor
// histogram-backed costs exactly one relaxed atomic load.
//
// Spans nest per thread (the trace collector keeps one buffer per thread, so
// B/E events are LIFO-balanced by construction); `name` must be a string
// literal.
#pragma once

#include <chrono>

#include "decisive/obs/registry.hpp"
#include "decisive/obs/trace.hpp"

namespace decisive::obs {

class Span {
 public:
  explicit Span(const char* name, Histogram* latency = nullptr) noexcept
      : name_(name), latency_(latency), traced_(TraceCollector::global().enabled()) {
    if (traced_) TraceCollector::global().record(name_, 'B');
    timed_ = traced_ || latency_ != nullptr;
    if (timed_) start_ = std::chrono::steady_clock::now();
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (timed_ && latency_ != nullptr) latency_->observe(seconds());
    // Only close what was opened: if tracing was enabled mid-span the 'E'
    // would have no matching 'B' and unbalance the thread's timeline.
    if (traced_) TraceCollector::global().record(name_, 'E');
  }

  /// Elapsed seconds since construction; 0 for an un-timed span.
  [[nodiscard]] double seconds() const noexcept {
    if (!timed_) return 0.0;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  const char* name_;
  Histogram* latency_;
  bool traced_;
  bool timed_ = false;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace decisive::obs
