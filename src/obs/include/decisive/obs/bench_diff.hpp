// Perf-regression sentinel: diffs a fresh BENCH_*.json snapshot against a
// checked-in baseline with per-metric noise tolerances.
//
// Bench snapshot document (schema_version 1, written by bench/obs_bench.hpp):
//   {"schema_version":1,"kind":"bench-snapshot","bench":"campaign",
//    "metrics":<Registry::to_json object>}
//
// Two comparison modes:
//  - absolute: |fresh - baseline| / max(|baseline|, |fresh|) <= tolerance
//    (symmetric relative delta; 0 when both sides are 0). Meaningful when
//    fresh and baseline ran on comparable hardware.
//  - ratio ("per"): compare fresh.metric/fresh.per against
//    baseline.metric/baseline.per. google-benchmark picks iteration counts
//    adaptively, so raw counters scale with machine speed — but a ratio like
//    batch fallbacks per task or solver iterations per solve is
//    iteration-invariant, which is what CI checks across machines.
//
// A mismatched document (wrong kind, schema_version, or bench name between
// fresh and baseline) is a structured error, distinct from a regression.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/json.hpp"

namespace decisive::obs {

struct BenchSnapshot {
  int schema_version = 0;
  std::string bench;
  json::Value metrics;
};

/// Parses a bench snapshot; throws ParseError on malformed input or a
/// document that is not a schema_version-1 bench-snapshot.
[[nodiscard]] BenchSnapshot parse_bench_snapshot(std::string_view text);

/// One configured comparison. `metric` (and `per`, when set) name counters
/// or gauges in the snapshot's metrics object; a missing metric is an
/// AnalysisError — a sentinel that silently skips is no sentinel.
struct BenchCheck {
  std::string metric;
  std::string per;         ///< empty = absolute compare
  double tolerance = -1.0; ///< < 0 = use the default tolerance
};

struct BenchDiffOptions {
  double default_tolerance = 0.25;
  /// Compare p50/p99 of every histogram too (wall-clock; machine-dependent,
  /// so opt-in). Only applies in default mode (no explicit checks).
  bool check_wall = false;
  /// When non-empty, ONLY these checks run; default mode (all common
  /// counters + gauges) is skipped.
  std::vector<BenchCheck> checks;
};

struct BenchDiffRow {
  std::string label;       ///< "metric" or "metric / per"
  double baseline = 0.0;
  double fresh = 0.0;
  double delta = 0.0;      ///< symmetric relative delta
  double tolerance = 0.0;
  bool regression = false; ///< delta exceeded tolerance
};

struct BenchDiffReport {
  std::string bench;
  std::vector<BenchDiffRow> rows;

  [[nodiscard]] bool regression() const;
  /// Human-readable table (what bench_compare prints).
  [[nodiscard]] std::string render() const;
  /// Machine-readable report document (uploaded as a CI artifact).
  [[nodiscard]] std::string to_json() const;
};

/// Diffs fresh against baseline. Throws AnalysisError when the two snapshots
/// name different benches or a configured check references a missing metric.
[[nodiscard]] BenchDiffReport diff_bench_snapshots(const BenchSnapshot& fresh,
                                                   const BenchSnapshot& baseline,
                                                   const BenchDiffOptions& options);

/// Parses a checks file:
///   {"schema_version":1,"kind":"bench-checks","default_tolerance":0.25,
///    "checks":{"campaign":[{"metric":...,"per":...,"tolerance":...}, ...]}}
/// Returns the checks for `bench` (empty when the bench has no entry) and
/// overwrites `default_tolerance` when the file sets one.
[[nodiscard]] std::vector<BenchCheck> parse_bench_checks(std::string_view text,
                                                         std::string_view bench,
                                                         double* default_tolerance);

}  // namespace decisive::obs
