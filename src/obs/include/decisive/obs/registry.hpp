// Unified instrumentation registry: named counters, gauges and fixed-bucket
// histograms shared by every analysis engine.
//
// Design rules (DESIGN.md §10):
//  - always-on: the hot-path cost of an un-traced metric update is a couple
//    of relaxed atomic operations — engines never check a feature flag;
//  - registration is idempotent and thread-safe, and returned references
//    stay valid for the registry's lifetime, so call sites cache them in
//    function-local statics;
//  - metrics never feed analysis results. FMEDA/CSV artefacts must be
//    byte-identical whether or not anybody reads the registry (enforced by
//    test), so a metric is strictly write-only from the engines' side.
//
// Exposition: to_prometheus() renders the Prometheus text format (served by
// the `same session` `metrics` command and the one-shot `--metrics` dump);
// to_json() renders the same data as a JSON object (embedded into the
// BENCH_<name>.json trajectory artefacts).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace decisive::obs {

/// Monotonically increasing event count. All operations are relaxed atomics.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value. Every set() also stamps the wall
/// clock, so cross-shard snapshot merging can resolve "last write wins"
/// between processes (merge_registry_snapshots); a never-set gauge carries
/// timestamp 0.
class Gauge {
 public:
  void set(double value) noexcept;
  [[nodiscard]] double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  /// Wall-clock milliseconds since the Unix epoch of the last set(); 0 when
  /// the gauge has never been written.
  [[nodiscard]] std::uint64_t updated_unix_ms() const noexcept {
    return updated_unix_ms_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0.0, std::memory_order_relaxed);
    updated_unix_ms_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
  std::atomic<std::uint64_t> updated_unix_ms_{0};
};

/// Fixed-bucket histogram: strictly increasing upper bounds plus an overflow
/// bucket. observe() is lock-free (one relaxed fetch_add per observation plus
/// a CAS loop for the sum); readers see a consistent-enough snapshot for
/// monitoring purposes.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket (non-cumulative) counts; size() == bounds().size() + 1, the
  /// last entry being the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  /// Bucket-resolution percentile estimate (upper bound of the bucket that
  /// contains the p-quantile observation); 0 when empty. p in [0, 1].
  [[nodiscard]] double percentile(double p) const;
  void reset() noexcept;

  /// Default log-spaced latency buckets, 1 µs … 30 s.
  [[nodiscard]] static std::vector<double> latency_buckets();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Canonicalises a metric name to the Prometheus-safe alphabet
/// [a-zA-Z0-9_:]: every other byte becomes '_', a leading digit gains a '_'
/// prefix and an empty name becomes "_". Registration applies this, so a
/// hostile name (quotes, newlines) can never corrupt the text exposition or
/// a BENCH_*.json snapshot.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Thread-safe name → metric registry. Instantiable for tests; production
/// code uses the process-wide global() instance.
class Registry {
 public:
  static Registry& global();

  /// Idempotent: returns the existing metric when `name` is already
  /// registered. References stay valid for the registry's lifetime. Names
  /// are passed through sanitize_metric_name(), so two spellings that
  /// sanitize identically alias the same metric.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` is only consulted on first registration.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = Histogram::latency_buckets());

  /// Prometheus text exposition (metrics sorted by name; deterministic for a
  /// fixed set of values).
  [[nodiscard]] std::string to_prometheus() const;
  /// The same data as a JSON object: {"counters": {...}, "gauges":
  /// {name: {value, updated_unix_ms}}, "histograms": {name: {count, sum,
  /// p50, p90, p99, bounds, bucket_counts}}}. Bucket-level data makes the
  /// snapshot mergeable across shards (merge_registry_snapshots).
  [[nodiscard]] std::string to_json() const;

  /// Zeroes every registered metric (registrations survive). Benches use
  /// this to scope counter snapshots to one measured section.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace decisive::obs
