// Versioned registry snapshots and the cross-shard merge algebra.
//
// A sharded campaign runs as N processes, each with its own process-local
// obs::Registry and TraceCollector. To make a sharded run emit the *same*
// artefact shapes as an unsharded one, every per-shard artefact is stamped
// with the shard identity and a schema version, and the fold side merges:
//
//   metrics  — counters summed; gauges last-write-wins by their
//              updated_unix_ms stamp (ties: later input wins, so the merge
//              is deterministic for a fixed input order); histograms added
//              bucket-wise, with percentiles recomputed from the merged
//              buckets by the same algorithm Histogram::percentile uses.
//              A bucket-layout mismatch between shards is a structured
//              AnalysisError, not a silent mis-merge.
//   traces   — events concatenated with pids remapped so every input shard
//              occupies a distinct process lane; the merged document passes
//              validate_chrome_trace.
//
// Snapshot document (schema_version 1):
//   {"schema_version":1,"kind":"metrics-snapshot","shard":{"index":i,
//    "count":n},"metrics":<Registry::to_json object>}
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/json.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/shard.hpp"

namespace decisive::obs {

/// Renders `registry` as a versioned, shard-stamped snapshot document.
[[nodiscard]] std::string registry_snapshot_json(const Registry& registry);

/// Parses and validates a snapshot document, returning its "metrics" object.
/// When `shard` is non-null it receives the snapshot's shard stamp. Throws
/// ParseError on malformed input or a wrong kind/schema_version.
[[nodiscard]] json::Value parse_registry_snapshot(std::string_view text,
                                                  ShardIdentity* shard = nullptr);

/// Folds per-shard snapshot documents into one merged snapshot (stamped
/// shard 0/1, the shape an unsharded run produces). Throws ParseError on a
/// malformed input and AnalysisError on a histogram bucket-layout mismatch.
[[nodiscard]] std::string merge_registry_snapshots(const std::vector<std::string>& texts);

/// Folds per-shard Chrome trace documents into one, remapping pids so each
/// input occupies distinct process lanes. Throws ParseError on malformed
/// input; the result passes validate_chrome_trace whenever every input does.
[[nodiscard]] std::string merge_chrome_traces(const std::vector<std::string>& texts);

}  // namespace decisive::obs
