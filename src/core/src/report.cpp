#include "decisive/core/report.hpp"

#include <filesystem>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::core {

CsvTable metrics_table(const FmedaResult& result) {
  CsvTable table;
  table.header = {"Metric", "Value"};
  table.rows = {
      {"SPFM", format_number(result.spfm(), 6)},
      {"SPFM_percent", format_percent(result.spfm())},
      {"Achieved_ASIL", result.asil_label()},
      {"Single_Point_FIT", format_number(result.single_point_fit(), 6)},
      {"Safety_Related_FIT", format_number(result.total_safety_related_fit(), 6)},
      {"Safety_Related_Components",
       std::to_string(result.safety_related_components().size())},
      {"Rows", std::to_string(result.rows.size())},
      {"Warnings", std::to_string(result.warnings.size())},
  };
  // Campaign outcome counts (appended so existing row indices stay stable).
  const auto counts = result.outcome_counts();
  for (size_t i = 0; i < kFaultOutcomeCount; ++i) {
    table.rows.push_back({"Faults_" + std::string(to_string(static_cast<FaultOutcome>(i))),
                          std::to_string(counts[i])});
  }
  return table;
}

void write_report_workbook(const std::string& directory, const FmedaResult& result) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) throw IoError("cannot create report directory '" + directory + "'");

  write_csv_file(directory + "/FMEDA.csv", result.to_csv());
  write_csv_file(directory + "/Metrics.csv", metrics_table(result));

  CsvTable warnings;
  warnings.header = {"Warning"};
  for (const auto& warning : result.warnings) warnings.rows.push_back({warning});
  write_csv_file(directory + "/Warnings.csv", warnings);
}

}  // namespace decisive::core
