#include "decisive/core/fmeda.hpp"

#include <algorithm>
#include <set>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::core {

std::string_view to_string(EffectClass effect) noexcept {
  switch (effect) {
    case EffectClass::None: return "";
    case EffectClass::DVF: return "DVF";
    case EffectClass::IVF: return "IVF";
  }
  return "";
}

std::string_view to_string(FaultOutcome outcome) noexcept {
  switch (outcome) {
    case FaultOutcome::Converged: return "Converged";
    case FaultOutcome::RecoveredViaLadder: return "RecoveredViaLadder";
    case FaultOutcome::BudgetExhausted: return "BudgetExhausted";
    case FaultOutcome::Singular: return "Singular";
    case FaultOutcome::NotApplicable: return "NotApplicable";
    case FaultOutcome::Crashed: return "Crashed";
  }
  return "Converged";
}

std::array<size_t, kFaultOutcomeCount> FmedaResult::outcome_counts() const {
  std::array<size_t, kFaultOutcomeCount> counts{};
  for (const auto& row : rows) counts[static_cast<size_t>(row.outcome)]++;
  return counts;
}

std::string FmedaResult::outcome_summary() const {
  const auto counts = outcome_counts();
  std::string out;
  static constexpr const char* kLabels[kFaultOutcomeCount] = {
      "converged", "recovered via ladder", "budget-exhausted", "singular",
      "not applicable", "crashed"};
  for (size_t i = 0; i < kFaultOutcomeCount; ++i) {
    if (counts[i] == 0 && i != static_cast<size_t>(FaultOutcome::Converged)) continue;
    if (!out.empty()) out += ", ";
    out += std::to_string(counts[i]) + " " + kLabels[i];
  }
  return out;
}

namespace {

/// Aggregation key for one component instance: the stable ObjectId when the
/// producer supplied one, the display name otherwise (id 0 — e.g. circuit
/// FMEA rows, where names are unique by construction).
using ComponentKey = std::pair<std::uint64_t, std::string>;

ComponentKey component_key(const FmedaRow& row) {
  return {row.component_id, row.component_id == 0 ? row.component : std::string()};
}

}  // namespace

std::vector<std::string> FmedaResult::safety_related_components() const {
  std::vector<std::string> out;
  std::set<ComponentKey> seen;
  for (const auto& row : rows) {
    if (row.safety_related && seen.insert(component_key(row)).second) {
      out.push_back(row.component);
    }
  }
  return out;
}

double FmedaResult::total_safety_related_fit() const {
  // Total FIT of each safety-related component, counted once per component
  // *identity* — duplicate names across recursion levels stay distinct.
  std::set<ComponentKey> counted;
  double total = 0.0;
  for (const auto& row : rows) {
    if (row.safety_related && counted.insert(component_key(row)).second) {
      total += row.fit;
    }
  }
  return total;
}

double FmedaResult::single_point_fit() const {
  double total = 0.0;
  for (const auto& row : rows) total += row.single_point_fit();
  return total;
}

bool FmedaResult::has_safety_related() const {
  return std::any_of(rows.begin(), rows.end(),
                     [](const FmedaRow& row) { return row.safety_related; });
}

double FmedaResult::spfm() const {
  const double denominator = total_safety_related_fit();
  // Documented convention: an empty denominator (no safety-related hardware)
  // yields 1.0. Callers must not read that as ASIL-D — see asil_label().
  if (denominator <= 0.0) return 1.0;
  return 1.0 - single_point_fit() / denominator;
}

std::string FmedaResult::asil_label() const {
  if (!has_safety_related()) return "no safety-related hardware";
  return achieved_asil(spfm());
}

std::vector<const FmedaRow*> FmedaResult::rows_of(std::string_view component) const {
  std::vector<const FmedaRow*> out;
  for (const auto& row : rows) {
    if (row.component == component) out.push_back(&row);
  }
  return out;
}

std::vector<const FmedaRow*> FmedaResult::rows_of(std::uint64_t component_id) const {
  std::vector<const FmedaRow*> out;
  for (const auto& row : rows) {
    if (row.component_id == component_id) out.push_back(&row);
  }
  return out;
}

namespace {

std::vector<std::string> render_row(const FmedaRow& row, bool first_of_component) {
  return {
      first_of_component ? row.component : "",
      first_of_component ? format_number(row.fit) : "",
      row.safety_related ? "Yes" : "No",
      row.failure_mode,
      format_percent(row.distribution, 0),
      row.safety_related ? (row.safety_mechanism.empty() ? "No SM" : row.safety_mechanism) : "",
      row.safety_related && !row.safety_mechanism.empty() ? format_percent(row.sm_coverage, 0)
                                                          : "",
      row.safety_related ? format_number(row.single_point_fit(), 3) + " FIT" : "",
  };
}

const std::vector<std::string> kFmedaHeader = {
    "Component",        "FIT",         "Safety_Related",
    "Failure_Mode",     "Distribution", "Safety_Mechanism",
    "SM_Coverage",      "Single_Point_Failure_Rate"};

}  // namespace

CsvTable FmedaResult::to_csv() const {
  // Machine-readable layout: every row fully populated, numeric columns
  // without unit suffixes, so downstream queries (assurance-case evidence
  // checks) can recompute metrics directly.
  CsvTable table;
  table.header = {"Component",   "Component_Type", "FIT",
                  "Safety_Related", "Failure_Mode", "Distribution",
                  "Safety_Mechanism", "SM_Coverage", "Mode_FIT",
                  "Single_Point_FIT", "Effect", "Fault_Outcome",
                  "Outcome_Detail"};
  for (const auto& row : rows) {
    table.rows.push_back({row.component, row.component_type, format_number(row.fit),
                          row.safety_related ? "Yes" : "No", row.failure_mode,
                          format_number(row.distribution, 6), row.safety_mechanism,
                          format_number(row.sm_coverage, 6), format_number(row.mode_fit(), 6),
                          format_number(row.single_point_fit(), 6),
                          std::string(to_string(row.effect)),
                          std::string(to_string(row.outcome)), row.outcome_detail});
  }
  return table;
}

TextTable FmedaResult::to_text() const {
  TextTable table(kFmedaHeader);
  std::string previous;
  for (const auto& row : rows) {
    table.add_row(render_row(row, row.component != previous));
    previous = row.component;
  }
  return table;
}

double spfm_target(std::string_view asil) {
  std::string a = to_lower(trim(asil));
  if (starts_with(a, "asil-")) a = a.substr(5);
  else if (starts_with(a, "asil ")) a = a.substr(5);
  else if (starts_with(a, "asil")) a = a.substr(4);
  if (a == "qm" || a == "a") return 0.0;
  if (a == "b") return kSpfmTargetAsilB;
  if (a == "c") return kSpfmTargetAsilC;
  if (a == "d") return kSpfmTargetAsilD;
  throw AnalysisError("unknown ASIL '" + std::string(asil) + "'");
}

bool meets_asil(double spfm, std::string_view asil) { return spfm >= spfm_target(asil); }

std::string achieved_asil(double spfm) {
  if (spfm >= kSpfmTargetAsilD) return "ASIL-D";
  if (spfm >= kSpfmTargetAsilC) return "ASIL-C";
  if (spfm >= kSpfmTargetAsilB) return "ASIL-B";
  return "ASIL-A";
}

double lfm_target(std::string_view asil) {
  std::string a = to_lower(trim(asil));
  if (starts_with(a, "asil-")) a = a.substr(5);
  else if (starts_with(a, "asil ")) a = a.substr(5);
  else if (starts_with(a, "asil")) a = a.substr(4);
  if (a == "qm" || a == "a") return 0.0;
  if (a == "b") return kLfmTargetAsilB;
  if (a == "c") return kLfmTargetAsilC;
  if (a == "d") return kLfmTargetAsilD;
  throw AnalysisError("unknown ASIL '" + std::string(asil) + "'");
}

bool meets_asil_lfm(double lfm, std::string_view asil) { return lfm >= lfm_target(asil); }

std::string achieved_asil_lfm(double lfm) {
  if (lfm >= kLfmTargetAsilD) return "ASIL-D";
  if (lfm >= kLfmTargetAsilC) return "ASIL-C";
  if (lfm >= kLfmTargetAsilB) return "ASIL-B";
  return "ASIL-A";
}

}  // namespace decisive::core
