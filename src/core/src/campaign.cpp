#include "decisive/core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/persist.hpp"
#include "decisive/obs/log.hpp"
#include "decisive/obs/progress.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/shard.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

namespace decisive::core {

namespace {

/// Campaign-level instrumentation, cached once per process.
struct CampaignMetrics {
  obs::Counter& runs;
  obs::Counter& tasks;
  obs::Counter& outcome_converged;
  obs::Counter& outcome_recovered;
  obs::Counter& outcome_budget_exhausted;
  obs::Counter& outcome_singular;
  obs::Counter& outcome_not_applicable;
  obs::Counter& outcome_crashed;
  obs::Counter& batched_rows;
  obs::Counter& batch_fallbacks;
  obs::Counter& batch_near_threshold;
  obs::Counter& sparse_rows;
  obs::Counter& sparse_fallbacks;
  obs::Counter& retries;
  obs::Counter& checkpoint_replays;
  obs::Counter& journal_appends;
  obs::Counter& journal_trims;
  obs::Counter& breaker_trips;
  obs::Gauge& jobs;
  obs::Gauge& shards;
  obs::Histogram& task_seconds;
  obs::Histogram& run_seconds;

  static CampaignMetrics& get() {
    auto& registry = obs::Registry::global();
    static CampaignMetrics metrics{
        registry.counter("decisive_campaign_runs_total"),
        registry.counter("decisive_campaign_tasks_total"),
        registry.counter("decisive_campaign_outcome_converged_total"),
        registry.counter("decisive_campaign_outcome_recovered_total"),
        registry.counter("decisive_campaign_outcome_budget_exhausted_total"),
        registry.counter("decisive_campaign_outcome_singular_total"),
        registry.counter("decisive_campaign_outcome_not_applicable_total"),
        registry.counter("decisive_campaign_outcome_crashed_total"),
        registry.counter("decisive_campaign_batched_rows_total"),
        registry.counter("decisive_campaign_batch_fallback_total"),
        registry.counter("decisive_campaign_batch_near_threshold_total"),
        registry.counter("decisive_campaign_sparse_rows_total"),
        registry.counter("decisive_campaign_sparse_fallback_total"),
        registry.counter("decisive_campaign_retries_total"),
        registry.counter("decisive_campaign_checkpoint_replays_total"),
        registry.counter("decisive_campaign_journal_appends_total"),
        registry.counter("decisive_campaign_journal_trims_total"),
        registry.counter("decisive_campaign_breaker_trips_total"),
        registry.gauge("decisive_campaign_jobs"),
        registry.gauge("decisive_campaign_shards"),
        registry.histogram("decisive_campaign_task_seconds"),
        registry.histogram("decisive_campaign_run_seconds")};
    return metrics;
  }
};

void count_outcome(const FmedaRow& row) {
  CampaignMetrics& metrics = CampaignMetrics::get();
  switch (row.outcome) {
    case FaultOutcome::Converged: metrics.outcome_converged.add(); break;
    case FaultOutcome::RecoveredViaLadder: metrics.outcome_recovered.add(); break;
    case FaultOutcome::BudgetExhausted: metrics.outcome_budget_exhausted.add(); break;
    case FaultOutcome::Singular: metrics.outcome_singular.add(); break;
    case FaultOutcome::NotApplicable: metrics.outcome_not_applicable.add(); break;
    case FaultOutcome::Crashed: metrics.outcome_crashed.add(); break;
  }
}

/// Classifies one injected fault by comparing operating points. When
/// `margin_out` is non-null it receives the smallest distance of any
/// observable's deviation from the classification threshold — the batched
/// path falls back to the naive solve when a reading sits on that knife
/// edge, so ulp-level solver differences can never flip an effect class.
EffectClass classify(const CircuitFmeaOptions& options, const sim::OperatingPoint& baseline,
                     const sim::OperatingPoint& faulted, double* margin_out = nullptr) {
  bool goal_deviated = false;
  bool other_deviated = false;
  double margin = std::numeric_limits<double>::infinity();
  for (const auto& [name, before] : baseline.readings) {
    const auto it = faulted.readings.find(name);
    if (it == faulted.readings.end()) continue;
    const double deviation = observable_deviation(before, it->second, options.absolute_floor);
    margin = std::min(margin, std::abs(deviation - options.relative_threshold));
    if (deviation > options.relative_threshold) {
      if (options.is_goal_observable(name)) goal_deviated = true;
      else other_deviated = true;
    }
  }
  if (margin_out != nullptr) *margin_out = margin;
  if (goal_deviated) return EffectClass::DVF;
  if (other_deviated) return EffectClass::IVF;
  return EffectClass::None;
}

/// Classification knife-edge band for the batched path: deviations this
/// close to relative_threshold are re-decided by the naive solve.
constexpr double kClassifyGuard = 1e-6;

/// Campaign fault-injection hooks (for the containment tests: the campaign
/// engine eats its own dog food and is itself tested by fault injection).
/// Read fresh per run so tests can flip them between campaigns in-process.
///
///  - DECISIVE_CAMPAIGN_TASK_THROW="<component-path>/<mode-name>[@k]": the
///    matching task throws std::runtime_error from inside run_task_once —
///    must surface as a structured Crashed outcome, never an exception. With
///    "@k", only the first k attempts throw (retry k succeeds), the
///    deterministic "transient crash" specimen of the retry tests.
///  - DECISIVE_CAMPAIGN_WORKER_DIE=<global-task-index>: the worker thread
///    that picks up that task dies *outside* task containment — must trip
///    the circuit breaker and finish the campaign serially.
struct CrashHooks {
  std::string task_throw;
  long worker_die = -1;

  static CrashHooks from_env() {
    CrashHooks hooks;
    if (const char* spec = std::getenv("DECISIVE_CAMPAIGN_TASK_THROW")) {
      hooks.task_throw = spec;
    }
    if (const char* index = std::getenv("DECISIVE_CAMPAIGN_WORKER_DIE")) {
      hooks.worker_die = std::strtol(index, nullptr, 10);
    }
    return hooks;
  }
};

}  // namespace

std::string outcome_warning(const FmedaRow& row) {
  std::string warning;
  switch (row.outcome) {
    case FaultOutcome::Converged:
      break;
    case FaultOutcome::RecoveredViaLadder:
      warning = "fault '" + row.failure_mode + "' on '" + row.component +
                "' needed the solver recovery ladder (" + row.outcome_detail + ")";
      break;
    case FaultOutcome::BudgetExhausted:
      warning = "fault '" + row.failure_mode + "' on '" + row.component +
                "' exhausted the solve budget (" + row.outcome_detail +
                "); conservatively marked safety-related";
      break;
    case FaultOutcome::Singular:
      warning = "fault '" + row.failure_mode + "' on '" + row.component +
                "' produced a singular system (" + row.outcome_detail +
                "); conservatively marked safety-related";
      break;
    case FaultOutcome::NotApplicable:
      warning = "failure mode '" + row.failure_mode + "' of '" + row.component +
                "': " + row.outcome_detail;
      break;
    case FaultOutcome::Crashed:
      warning = "fault '" + row.failure_mode + "' on '" + row.component +
                "' crashed its campaign worker (" + row.outcome_detail +
                "); conservatively marked safety-related";
      break;
  }
  if (row.retries > 0) {
    const std::string note = "took " + std::to_string(row.retries) + " containment " +
                             (row.retries == 1 ? "retry" : "retries");
    if (warning.empty()) {
      warning = "fault '" + row.failure_mode + "' on '" + row.component + "' " + note;
    } else {
      warning += "; " + note;
    }
  }
  return warning;
}

CampaignRunner::CampaignRunner(const sim::BuiltCircuit& built,
                               const ReliabilityModel& reliability,
                               const SafetyMechanismModel* sm_model,
                               CircuitFmeaOptions options)
    : built_(built), sm_model_(sm_model), options_(std::move(options)) {
  for (const auto& component : built_.components) {
    const ComponentReliability* entry = reliability.find(component.block_type);
    if (entry == nullptr) {
      skip_warnings_.push_back("component '" + component.path + "' of type '" +
                               component.block_type +
                               "' has no reliability data; skipped");
      continue;
    }
    for (const auto& mode : entry->modes) {
      tasks_.push_back(Task{&component, entry, &mode});
    }
  }
}

std::uint64_t CampaignRunner::fingerprint() const {
  // Everything that can change a row's bytes goes in; jobs / shard spec /
  // journal path stay out (they must not change results, so a journal written
  // at --jobs 8 resumes under --jobs 1 and vice versa).
  std::ostringstream ident;
  ident << "campaign-v1";
  for (const auto& element : built_.circuit.elements()) {
    ident << "|e " << static_cast<int>(element.kind) << ' ' << element.name << ' '
          << element.a << ' ' << element.b << ' ' << double_to_token(element.value) << ' '
          << element.closed << ' ' << element.ram_ok << ' '
          << double_to_token(element.min_supply);
  }
  for (const auto& name : built_.observables) ident << "|o " << name;
  for (const auto& task : tasks_) {
    ident << "|t " << task.component->path << ' ' << task.component->block_type << ' '
          << task.component->element << ' ' << task.reliability->component_type << ' '
          << double_to_token(task.reliability->fit) << ' ' << task.mode->name << ' '
          << double_to_token(task.mode->distribution);
  }
  ident << "|c " << double_to_token(options_.relative_threshold) << ' '
        << double_to_token(options_.absolute_floor);
  for (const auto& goal : options_.safety_goal_observables) ident << "|g " << goal;
  const sim::SolveOptions& solver = options_.solver;
  ident << "|s " << solver.max_newton_iterations << ' '
        << double_to_token(solver.newton_tolerance) << ' ' << double_to_token(solver.gmin)
        << ' ' << double_to_token(solver.diode_is) << ' ' << double_to_token(solver.diode_vt)
        << ' ' << double_to_token(solver.open_resistance) << ' '
        << double_to_token(solver.closed_resistance) << ' '
        << double_to_token(solver.max_wall_clock_seconds) << ' ' << solver.recovery_ladder
        << ' ' << solver.gmin_ladder_steps << ' ' << solver.source_ladder_steps;
  ident << "|r " << options_.execution.max_retries << ' '
        << double_to_token(options_.execution.retry_budget_scale);
  return fnv1a64(ident.str());
}

CampaignJournalHeader CampaignRunner::journal_header() const {
  CampaignJournalHeader header;
  header.fingerprint = fingerprint();
  header.task_count = tasks_.size();
  header.shard_index = options_.execution.shard_index;
  header.shard_count = options_.execution.shard_count;
  return header;
}

std::vector<size_t> CampaignRunner::shard_task_indices() const {
  const auto& execution = options_.execution;
  std::vector<size_t> indices;
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (static_cast<int>(i % static_cast<size_t>(execution.shard_count)) ==
        execution.shard_index) {
      indices.push_back(i);
    }
  }
  return indices;
}

FmedaRow CampaignRunner::run_task_once(const Task& task,
                                       const sim::OperatingPoint& baseline,
                                       const sim::SolveOptions& solver, int attempt,
                                       const sim::CampaignSolveContext* batch,
                                       sim::CampaignSolveContext::Workspace* batch_ws,
                                       const sim::CampaignSparseContext* sparse,
                                       sim::CampaignSparseContext::Workspace* sparse_ws) const {
  FmedaRow row;
  row.component = task.component->path;
  row.component_type = task.reliability->component_type;
  row.fit = task.reliability->fit;
  row.failure_mode = task.mode->name;
  row.distribution = task.mode->distribution;

  sim::Fault fault;
  fault.element = task.component->element;
  try {
    if (const char* throw_env = std::getenv("DECISIVE_CAMPAIGN_TASK_THROW")) {
      std::string spec = throw_env;
      long throw_below = std::numeric_limits<long>::max();
      if (const auto at = spec.rfind('@'); at != std::string::npos) {
        throw_below = std::strtol(spec.c_str() + at + 1, nullptr, 10);
        spec.resize(at);
      }
      if (attempt < throw_below && task.component->path + "/" + task.mode->name == spec) {
        throw std::runtime_error("injected task crash (DECISIVE_CAMPAIGN_TASK_THROW)");
      }
    }
    fault.kind = sim::fault_kind_from_name(task.mode->name);
    const sim::Circuit faulted = sim::inject_fault(
        built_.circuit, fault, solver.open_resistance, solver.closed_resistance);

    // Batched fast path: solve against the campaign's shared nominal
    // factorisation. Any fallback reason — structural fault, conditioning,
    // slow convergence, classification knife edge — re-runs the fault
    // through the naive path below, so the row bytes cannot diverge.
    if (batch != nullptr && batch_ws != nullptr) {
      CampaignMetrics& metrics = CampaignMetrics::get();
      sim::SolveDiagnostics batch_diagnostics;
      sim::BatchOutcome batch_outcome = sim::BatchOutcome::Disabled;
      const auto batched =
          batch->try_solve(faulted, fault, *batch_ws, batch_diagnostics, batch_outcome);
      if (batched.has_value()) {
        double margin = std::numeric_limits<double>::infinity();
        const EffectClass effect = classify(options_, baseline, *batched, &margin);
        if (margin > kClassifyGuard) {
          row.solver_iterations = batch_diagnostics.iterations;
          row.ladder_rung = 0;
          row.outcome = FaultOutcome::Converged;
          row.effect = effect;
          row.safety_related = effect != EffectClass::None;
          metrics.batched_rows.add();
          return row;
        }
        metrics.batch_near_threshold.add();
      }
      metrics.batch_fallbacks.add();
    }

    // Sparse middle tier: refactor the fault's numbers through the shared
    // symbolic analysis (or its surviving prefix, for structural faults).
    // Accepted rows pass the same gate ladder as the batched path; anything
    // else falls through to the naive dense solve below.
    if (sparse != nullptr && sparse_ws != nullptr) {
      CampaignMetrics& metrics = CampaignMetrics::get();
      sim::SolveDiagnostics sparse_diagnostics;
      sim::BatchOutcome sparse_outcome = sim::BatchOutcome::Disabled;
      const auto solved =
          sparse->try_solve(faulted, fault, *sparse_ws, sparse_diagnostics, sparse_outcome);
      if (solved.has_value()) {
        double margin = std::numeric_limits<double>::infinity();
        const EffectClass effect = classify(options_, baseline, *solved, &margin);
        if (margin > kClassifyGuard) {
          row.solver_iterations = sparse_diagnostics.iterations;
          row.ladder_rung = 0;
          row.outcome = FaultOutcome::Converged;
          row.effect = effect;
          row.safety_related = effect != EffectClass::None;
          metrics.sparse_rows.add();
          return row;
        }
        metrics.batch_near_threshold.add();
      }
      metrics.sparse_fallbacks.add();
    }

    // Naive oracle: always the dense kernel, whatever the session-level
    // sparse default — the FMEDA byte-identity contract is "same bytes as a
    // dense-only campaign", and every gate above funnels doubt down here.
    sim::SolveOptions naive = solver;
    naive.sparse = false;
    sim::SolveDiagnostics diagnostics;
    const auto after = sim::try_dc_operating_point(faulted, naive, diagnostics);
    row.solver_iterations = diagnostics.iterations;
    row.ladder_rung = diagnostics.ladder_rung;
    if (after.has_value()) {
      row.outcome = diagnostics.ladder_rung == 0 ? FaultOutcome::Converged
                                                 : FaultOutcome::RecoveredViaLadder;
      if (diagnostics.ladder_rung != 0) {
        row.outcome_detail = std::string(to_string(diagnostics.strategy)) + " after " +
                             std::to_string(diagnostics.iterations) + " iterations";
      }
      row.effect = classify(options_, baseline, *after);
      row.safety_related = row.effect != EffectClass::None;
    } else {
      // The faulted circuit did not solve. Conservatively safety-related
      // (the effect cannot be ruled benign), but the *reason* is structured
      // instead of being overloaded onto the effect class.
      row.outcome = diagnostics.failure == sim::SolveFailure::Singular
                        ? FaultOutcome::Singular
                        : FaultOutcome::BudgetExhausted;
      row.outcome_detail = std::string(to_string(diagnostics.failure)) + ": " +
                           diagnostics.message;
      row.safety_related = true;
      row.effect = EffectClass::None;
    }
  } catch (const AnalysisError& error) {
    // Fault kind unknown, or not applicable to this element kind (e.g.
    // RamFailure on a resistor): Algorithm-1-style structured outcome.
    row.outcome = FaultOutcome::NotApplicable;
    row.outcome_detail = error.what();
  } catch (const SimulationError& error) {
    // inject_fault on an unknown element — a model inconsistency, not a
    // solver failure; the injection itself is not applicable.
    row.outcome = FaultOutcome::NotApplicable;
    row.outcome_detail = error.what();
  } catch (const std::exception& error) {
    // Failure containment: anything escaping the classified paths becomes a
    // structured Crashed outcome instead of tearing down the whole campaign.
    // Conservatively safety-related — the effect cannot be ruled benign.
    row.outcome = FaultOutcome::Crashed;
    row.outcome_detail = error.what();
    row.safety_related = true;
    row.effect = EffectClass::None;
  } catch (...) {
    row.outcome = FaultOutcome::Crashed;
    row.outcome_detail = "unknown exception";
    row.safety_related = true;
    row.effect = EffectClass::None;
  }
  return row;
}

FmedaRow CampaignRunner::run_task(const Task& task, const sim::OperatingPoint& baseline,
                                  const sim::CampaignSolveContext* batch,
                                  sim::CampaignSolveContext::Workspace* batch_ws,
                                  const sim::CampaignSparseContext* sparse,
                                  sim::CampaignSparseContext::Workspace* sparse_ws) const {
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.tasks.add();
  obs::Span span("campaign.task", &metrics.task_seconds);

  FmedaRow row =
      run_task_once(task, baseline, options_.solver, 0, batch, batch_ws, sparse, sparse_ws);

  // Containment retries: a crashed or budget-exhausted task gets up to
  // max_retries re-runs, each with a fresh solve (the ladder restarts from
  // scratch) under a budget scaled by retry_budget_scale — a hung solve must
  // not hang twice as long on retry. The *last* attempt wins; its retry
  // count is carried on the row so the journal and the warnings reflect what
  // actually happened.
  const CampaignExecution& execution = options_.execution;
  for (int attempt = 1;
       attempt <= execution.max_retries && (row.outcome == FaultOutcome::Crashed ||
                                            row.outcome == FaultOutcome::BudgetExhausted);
       ++attempt) {
    metrics.retries.add();
    sim::SolveOptions tighter = options_.solver;
    tighter.max_newton_iterations = std::max(
        1, static_cast<int>(tighter.max_newton_iterations * execution.retry_budget_scale));
    if (tighter.max_wall_clock_seconds > 0) {
      tighter.max_wall_clock_seconds *= execution.retry_budget_scale;
    }
    // Retries deliberately skip the batched and sparse paths: a crash/budget
    // outcome is exactly the suspicious case the naive ladder must re-decide.
    row = run_task_once(task, baseline, tighter, attempt, nullptr, nullptr, nullptr, nullptr);
    row.retries = attempt;
  }

  // Step 4b: deploy the best applicable safety mechanism, if any (const
  // lookup, safe from worker threads).
  if (row.safety_related && sm_model_ != nullptr) {
    if (const SafetyMechanismSpec* sm =
            sm_model_->best(task.component->block_type, task.mode->name)) {
      row.safety_mechanism = sm->name;
      row.sm_coverage = sm->coverage;
      row.sm_cost_hours = sm->cost_hours;
    }
  }
  count_outcome(row);
  return row;
}

FmedaResult CampaignRunner::run() const {
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.runs.add();
  obs::Span run_span("campaign.run", &metrics.run_seconds);

  const CampaignExecution& execution = options_.execution;
  if (execution.shard_count < 1 || execution.shard_index < 0 ||
      execution.shard_index >= execution.shard_count) {
    throw AnalysisError("invalid shard spec " + std::to_string(execution.shard_index) + "/" +
                        std::to_string(execution.shard_count) +
                        " (need 0 <= index < count)");
  }
  metrics.shards.set(static_cast<double>(execution.shard_count));
  // Every artefact this process emits from here on — heartbeat, registry
  // snapshot, Chrome trace — carries the shard identity, so the fold side
  // can reassemble the unsharded view.
  obs::set_shard_identity({execution.shard_index, execution.shard_count});

  FmedaResult result;
  result.system = "circuit";
  result.warnings = skip_warnings_;

  // This shard's slice of the task list; `rows`/`done` are indexed by
  // position within the slice, records in the journal by global task index.
  const std::vector<size_t> shard = shard_task_indices();
  std::vector<FmedaRow> rows(shard.size());
  std::vector<char> done(shard.size(), 0);

  // Flight recorder: a throttled heartbeat next to the journal (or wherever
  // heartbeat_path points). Worker rows are sized to the configured job
  // count; the pool may end up smaller when few tasks are pending.
  std::string heartbeat_path = execution.heartbeat_path;
  if (heartbeat_path.empty() && !execution.journal_path.empty()) {
    heartbeat_path = execution.journal_path + ".heartbeat.json";
  }
  const unsigned jobs_configured =
      options_.jobs > 0 ? static_cast<unsigned>(options_.jobs)
                        : std::max(1u, std::thread::hardware_concurrency());
  obs::ProgressReporterOptions reporter_options;
  reporter_options.path = heartbeat_path;
  reporter_options.phase = "campaign";
  reporter_options.total = shard.size();
  reporter_options.workers = static_cast<int>(jobs_configured);
  reporter_options.interval_seconds = execution.heartbeat_interval_seconds;
  obs::ProgressReporter reporter(reporter_options);

  // Resume: replay the journal's checkpointed tasks, then keep appending to
  // its valid prefix. Replay/trim notes go to the log, NOT to
  // result.warnings — a resumed run must stay byte-identical to an
  // uninterrupted one.
  std::unique_ptr<CampaignJournal> journal;
  if (!execution.journal_path.empty()) {
    const CampaignJournalHeader header = journal_header();
    const CampaignJournalReplay replay =
        replay_campaign_journal(execution.journal_path, &header);
    if (replay.compatible) {
      size_t replayed = 0;
      for (size_t s = 0; s < shard.size(); ++s) {
        const auto it = replay.rows.find(shard[s]);
        if (it != replay.rows.end()) {
          rows[s] = it->second;
          done[s] = 1;
          ++replayed;
          reporter.task_done(0, to_string(rows[s].outcome));
        }
      }
      metrics.checkpoint_replays.add(static_cast<double>(replayed));
      if (replay.dropped_lines > 0) metrics.journal_trims.add();
      if (!replay.note.empty()) {
        obs::log(obs::LogLevel::Warn,
                 "campaign journal '" + execution.journal_path + "': " + replay.note);
      }
      obs::log(obs::LogLevel::Info,
               "campaign journal '" + execution.journal_path + "': replayed " +
                   std::to_string(replayed) + " of " + std::to_string(shard.size()) +
                   " task(s)");
      journal = std::make_unique<CampaignJournal>(execution.journal_path, header,
                                                  skip_warnings_, &replay);
    } else {
      if (std::filesystem::exists(execution.journal_path) && !replay.note.empty()) {
        obs::log(obs::LogLevel::Warn, "campaign journal '" + execution.journal_path +
                                          "': " + replay.note + "; starting fresh");
      }
      journal = std::make_unique<CampaignJournal>(execution.journal_path, header,
                                                  skip_warnings_, nullptr);
    }
  }

  std::vector<size_t> pending;
  for (size_t s = 0; s < shard.size(); ++s) {
    if (!done[s]) pending.push_back(s);
  }

  // Step 1: Initialise — baseline operating point (ladder-assisted; a design
  // whose *baseline* does not solve cannot be analysed at all). A fully
  // replayed campaign skips the baseline: there is nothing left to compare.
  std::optional<sim::OperatingPoint> baseline;
  if (!pending.empty()) {
    sim::SolveDiagnostics baseline_diagnostics;
    {
      obs::Span baseline_span("campaign.baseline");
      // The baseline anchors every row's classification, so it always runs
      // on the dense kernel: campaign bytes must not depend on the sparse
      // default (the sparse tier is gated against exactly this baseline).
      sim::SolveOptions baseline_solver = options_.solver;
      baseline_solver.sparse = false;
      baseline = sim::try_dc_operating_point(built_.circuit, baseline_solver,
                                             baseline_diagnostics);
    }
    if (!baseline.has_value()) {
      const std::string detail = "baseline operating point did not solve (" +
                                 std::string(to_string(baseline_diagnostics.failure)) +
                                 ": " + baseline_diagnostics.message + ")";
      if (!execution.best_effort) throw SimulationError(detail);
      // Degraded mode: every pending fault becomes NotApplicable with the
      // baseline failure as its structured detail. Degraded rows are NOT
      // journaled — they carry no computed result, and a later run against a
      // fixed baseline must re-execute them.
      for (const size_t s : pending) {
        const Task& task = tasks_[shard[s]];
        FmedaRow& row = rows[s];
        row.component = task.component->path;
        row.component_type = task.reliability->component_type;
        row.fit = task.reliability->fit;
        row.failure_mode = task.mode->name;
        row.distribution = task.mode->distribution;
        row.outcome = FaultOutcome::NotApplicable;
        row.outcome_detail = detail + "; best-effort degraded result";
        count_outcome(row);
        done[s] = 1;
        reporter.task_done(0, to_string(row.outcome));
      }
      result.warnings.push_back(detail + "; best-effort: " +
                                std::to_string(pending.size()) +
                                " fault(s) degraded to NotApplicable");
      pending.clear();
    }
  }

  // Step 1b: build the factor-once batched solve context (tentpole of the
  // batched campaign). One symbolic analysis + one LU of the nominal
  // Jacobian, shared read-only by every worker; faults that cannot be
  // expressed as low-rank updates (or that trip any correctness gate inside
  // try_solve) fall back to the classic per-fault ladder, so results are
  // byte-identical with the batch on or off.
  std::optional<sim::CampaignSolveContext> batch;
  if (options_.batch && !pending.empty()) {
    obs::Span context_span("campaign.batch_context");
    batch.emplace(built_.circuit, options_.solver);
    if (!batch->usable()) batch.reset();
  }

  // Step 1c: the sparse middle tier — one symbolic analysis of the nominal
  // stamp pattern, shared read-only by every worker. Faults the batch
  // declines (structural ones especially) refactor numerics through it
  // before paying for a naive dense ladder run.
  std::optional<sim::CampaignSparseContext> sparse;
  if (options_.sparse && options_.solver.sparse && !pending.empty()) {
    obs::Span context_span("campaign.sparse_context");
    sparse.emplace(built_.circuit, options_.solver);
    if (!sparse->usable()) sparse.reset();
  }

  // Step 2: execute the pending fault tasks. Faults are independent
  // re-simulations of copies of the circuit, so this is embarrassingly
  // parallel; results land in pre-assigned slots, keeping output
  // deterministic for any job count.
  if (!pending.empty()) {
    auto process = [&](size_t s, sim::CampaignSolveContext::Workspace& ws,
                       sim::CampaignSparseContext::Workspace& sws, int worker_id) {
      rows[s] = run_task(tasks_[shard[s]], *baseline, batch ? &*batch : nullptr,
                         batch ? &ws : nullptr, sparse ? &*sparse : nullptr,
                         sparse ? &sws : nullptr);
      if (journal != nullptr) {
        journal->append(shard[s], rows[s]);
        metrics.journal_appends.add();
      }
      done[s] = 1;
      // Heartbeat tick after the journal append: a shard killed mid-task
      // never reports work its journal does not hold.
      reporter.task_done(worker_id, to_string(rows[s].outcome));
    };

    unsigned jobs = jobs_configured;
    if (pending.size() < jobs) jobs = static_cast<unsigned>(pending.size());
    metrics.jobs.set(static_cast<double>(jobs));

    if (jobs <= 1) {
      sim::CampaignSolveContext::Workspace ws;
      sim::CampaignSparseContext::Workspace sws;
      for (const size_t s : pending) process(s, ws, sws, 0);
    } else {
      const CrashHooks hooks = CrashHooks::from_env();
      std::atomic<size_t> next{0};
      std::atomic<bool> failed{false};
      std::exception_ptr first_error;
      std::mutex error_mutex;
      auto worker = [&](int worker_id) {
        sim::CampaignSolveContext::Workspace ws;
        sim::CampaignSparseContext::Workspace sws;
        try {
          for (size_t i = next.fetch_add(1); i < pending.size(); i = next.fetch_add(1)) {
            const size_t s = pending[i];
            if (hooks.worker_die >= 0 &&
                static_cast<size_t>(hooks.worker_die) == shard[s]) {
              throw std::runtime_error(
                  "injected worker death (DECISIVE_CAMPAIGN_WORKER_DIE)");
            }
            process(s, ws, sws, worker_id);
          }
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!failed.exchange(true)) first_error = std::current_exception();
        }
      };
      std::vector<std::thread> pool;
      pool.reserve(jobs);
      for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker, static_cast<int>(t));
      for (auto& thread : pool) thread.join();

      if (failed.load()) {
        // Circuit breaker: a worker died *outside* task containment (task
        // exceptions are already classified as Crashed rows — this is
        // something worse, e.g. a journal I/O error or an allocator
        // failure). Downgrade to serial execution on this thread and finish
        // whatever the pool left behind rather than losing the campaign.
        metrics.breaker_trips.add();
        std::string reason = "unknown exception";
        try {
          std::rethrow_exception(first_error);
        } catch (const std::exception& error) {
          reason = error.what();
        } catch (...) {
        }
        obs::log(obs::LogLevel::Warn,
                 "campaign worker died (" + reason +
                     "); circuit breaker tripped — finishing serially");
        metrics.jobs.set(1.0);
        sim::CampaignSolveContext::Workspace ws;
        sim::CampaignSparseContext::Workspace sws;
        for (const size_t s : pending) {
          if (!done[s]) process(s, ws, sws, 0);
        }
      }
    }
  }

  // Step 3: assemble — derive the display warnings from the structured
  // outcomes, in task order (single source of truth: the rows themselves).
  for (auto& row : rows) {
    std::string warning = outcome_warning(row);
    if (!warning.empty()) result.warnings.push_back(std::move(warning));
    result.rows.push_back(std::move(row));
  }
  if (!result.has_safety_related()) {
    result.warnings.push_back(
        "no safety-related hardware identified; the SPFM denominator is empty and spfm() "
        "reports 1.0 by convention — this is not an ASIL-D claim");
  }
  reporter.finish();
  return result;
}

}  // namespace decisive::core
