#include "decisive/core/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/sim/fault.hpp"
#include "decisive/sim/solver.hpp"

namespace decisive::core {

namespace {

/// Campaign-level instrumentation, cached once per process.
struct CampaignMetrics {
  obs::Counter& runs;
  obs::Counter& tasks;
  obs::Counter& outcome_converged;
  obs::Counter& outcome_recovered;
  obs::Counter& outcome_budget_exhausted;
  obs::Counter& outcome_singular;
  obs::Counter& outcome_not_applicable;
  obs::Gauge& jobs;
  obs::Histogram& task_seconds;
  obs::Histogram& run_seconds;

  static CampaignMetrics& get() {
    auto& registry = obs::Registry::global();
    static CampaignMetrics metrics{
        registry.counter("decisive_campaign_runs_total"),
        registry.counter("decisive_campaign_tasks_total"),
        registry.counter("decisive_campaign_outcome_converged_total"),
        registry.counter("decisive_campaign_outcome_recovered_total"),
        registry.counter("decisive_campaign_outcome_budget_exhausted_total"),
        registry.counter("decisive_campaign_outcome_singular_total"),
        registry.counter("decisive_campaign_outcome_not_applicable_total"),
        registry.gauge("decisive_campaign_jobs"),
        registry.histogram("decisive_campaign_task_seconds"),
        registry.histogram("decisive_campaign_run_seconds")};
    return metrics;
  }
};

void count_outcome(const FmedaRow& row) {
  CampaignMetrics& metrics = CampaignMetrics::get();
  switch (row.outcome) {
    case FaultOutcome::Converged: metrics.outcome_converged.add(); break;
    case FaultOutcome::RecoveredViaLadder: metrics.outcome_recovered.add(); break;
    case FaultOutcome::BudgetExhausted: metrics.outcome_budget_exhausted.add(); break;
    case FaultOutcome::Singular: metrics.outcome_singular.add(); break;
    case FaultOutcome::NotApplicable: metrics.outcome_not_applicable.add(); break;
  }
}

/// Classifies one injected fault by comparing operating points.
EffectClass classify(const CircuitFmeaOptions& options, const sim::OperatingPoint& baseline,
                     const sim::OperatingPoint& faulted) {
  bool goal_deviated = false;
  bool other_deviated = false;
  for (const auto& [name, before] : baseline.readings) {
    const auto it = faulted.readings.find(name);
    if (it == faulted.readings.end()) continue;
    const double deviation = observable_deviation(before, it->second, options.absolute_floor);
    if (deviation > options.relative_threshold) {
      if (options.is_goal_observable(name)) goal_deviated = true;
      else other_deviated = true;
    }
  }
  if (goal_deviated) return EffectClass::DVF;
  if (other_deviated) return EffectClass::IVF;
  return EffectClass::None;
}

}  // namespace

std::string outcome_warning(const FmedaRow& row) {
  switch (row.outcome) {
    case FaultOutcome::Converged:
      return "";
    case FaultOutcome::RecoveredViaLadder:
      return "fault '" + row.failure_mode + "' on '" + row.component +
             "' needed the solver recovery ladder (" + row.outcome_detail + ")";
    case FaultOutcome::BudgetExhausted:
      return "fault '" + row.failure_mode + "' on '" + row.component +
             "' exhausted the solve budget (" + row.outcome_detail +
             "); conservatively marked safety-related";
    case FaultOutcome::Singular:
      return "fault '" + row.failure_mode + "' on '" + row.component +
             "' produced a singular system (" + row.outcome_detail +
             "); conservatively marked safety-related";
    case FaultOutcome::NotApplicable:
      return "failure mode '" + row.failure_mode + "' of '" + row.component +
             "': " + row.outcome_detail;
  }
  return "";
}

CampaignRunner::CampaignRunner(const sim::BuiltCircuit& built,
                               const ReliabilityModel& reliability,
                               const SafetyMechanismModel* sm_model,
                               CircuitFmeaOptions options)
    : built_(built), sm_model_(sm_model), options_(std::move(options)) {
  for (const auto& component : built_.components) {
    const ComponentReliability* entry = reliability.find(component.block_type);
    if (entry == nullptr) {
      skip_warnings_.push_back("component '" + component.path + "' of type '" +
                               component.block_type +
                               "' has no reliability data; skipped");
      continue;
    }
    for (const auto& mode : entry->modes) {
      tasks_.push_back(Task{&component, entry, &mode});
    }
  }
}

FmedaRow CampaignRunner::run_task(const Task& task,
                                  const sim::OperatingPoint& baseline) const {
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.tasks.add();
  obs::Span span("campaign.task", &metrics.task_seconds);
  FmedaRow row;
  row.component = task.component->path;
  row.component_type = task.reliability->component_type;
  row.fit = task.reliability->fit;
  row.failure_mode = task.mode->name;
  row.distribution = task.mode->distribution;

  sim::Fault fault;
  fault.element = task.component->element;
  try {
    fault.kind = sim::fault_kind_from_name(task.mode->name);
    const sim::Circuit faulted = sim::inject_fault(
        built_.circuit, fault, options_.solver.open_resistance,
        options_.solver.closed_resistance);

    sim::SolveDiagnostics diagnostics;
    const auto after = sim::try_dc_operating_point(faulted, options_.solver, diagnostics);
    row.solver_iterations = diagnostics.iterations;
    row.ladder_rung = diagnostics.ladder_rung;
    if (after.has_value()) {
      row.outcome = diagnostics.ladder_rung == 0 ? FaultOutcome::Converged
                                                 : FaultOutcome::RecoveredViaLadder;
      if (diagnostics.ladder_rung != 0) {
        row.outcome_detail = std::string(to_string(diagnostics.strategy)) + " after " +
                             std::to_string(diagnostics.iterations) + " iterations";
      }
      row.effect = classify(options_, baseline, *after);
      row.safety_related = row.effect != EffectClass::None;
    } else {
      // The faulted circuit did not solve. Conservatively safety-related
      // (the effect cannot be ruled benign), but the *reason* is structured
      // instead of being overloaded onto the effect class.
      row.outcome = diagnostics.failure == sim::SolveFailure::Singular
                        ? FaultOutcome::Singular
                        : FaultOutcome::BudgetExhausted;
      row.outcome_detail = std::string(to_string(diagnostics.failure)) + ": " +
                           diagnostics.message;
      row.safety_related = true;
      row.effect = EffectClass::None;
    }
  } catch (const AnalysisError& error) {
    // Fault kind unknown, or not applicable to this element kind (e.g.
    // RamFailure on a resistor): Algorithm-1-style structured outcome.
    row.outcome = FaultOutcome::NotApplicable;
    row.outcome_detail = error.what();
  } catch (const SimulationError& error) {
    // inject_fault on an unknown element — a model inconsistency, not a
    // solver failure; the injection itself is not applicable.
    row.outcome = FaultOutcome::NotApplicable;
    row.outcome_detail = error.what();
  }

  // Step 4b: deploy the best applicable safety mechanism, if any (const
  // lookup, safe from worker threads).
  if (row.safety_related && sm_model_ != nullptr) {
    if (const SafetyMechanismSpec* sm =
            sm_model_->best(task.component->block_type, task.mode->name)) {
      row.safety_mechanism = sm->name;
      row.sm_coverage = sm->coverage;
      row.sm_cost_hours = sm->cost_hours;
    }
  }
  count_outcome(row);
  return row;
}

FmedaResult CampaignRunner::run() const {
  CampaignMetrics& metrics = CampaignMetrics::get();
  metrics.runs.add();
  obs::Span run_span("campaign.run", &metrics.run_seconds);
  FmedaResult result;
  result.system = "circuit";
  result.warnings = skip_warnings_;

  // Step 1: Initialise — baseline operating point (ladder-assisted; a design
  // whose *baseline* does not solve cannot be analysed at all).
  sim::SolveDiagnostics baseline_diagnostics;
  std::optional<sim::OperatingPoint> baseline;
  {
    obs::Span baseline_span("campaign.baseline");
    baseline = sim::try_dc_operating_point(built_.circuit, options_.solver,
                                           baseline_diagnostics);
  }
  if (!baseline.has_value()) {
    throw SimulationError("baseline operating point did not solve (" +
                          std::string(to_string(baseline_diagnostics.failure)) + ": " +
                          baseline_diagnostics.message + ")");
  }

  // Step 2: execute every fault task. Faults are independent re-simulations
  // of copies of the circuit, so this is embarrassingly parallel; results
  // land in pre-assigned slots, keeping output deterministic for any job
  // count.
  std::vector<FmedaRow> rows(tasks_.size());
  unsigned jobs = options_.jobs > 0 ? static_cast<unsigned>(options_.jobs)
                                    : std::max(1u, std::thread::hardware_concurrency());
  if (tasks_.size() < jobs) jobs = static_cast<unsigned>(std::max<size_t>(tasks_.size(), 1));
  metrics.jobs.set(static_cast<double>(jobs));

  if (jobs <= 1) {
    for (size_t i = 0; i < tasks_.size(); ++i) rows[i] = run_task(tasks_[i], *baseline);
  } else {
    std::atomic<size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;
    auto worker = [&] {
      try {
        for (size_t i = next.fetch_add(1); i < tasks_.size(); i = next.fetch_add(1)) {
          rows[i] = run_task(tasks_[i], *baseline);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!failed.exchange(true)) first_error = std::current_exception();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
    if (failed.load()) std::rethrow_exception(first_error);
  }

  // Step 3: assemble — derive the display warnings from the structured
  // outcomes, in task order (single source of truth: the rows themselves).
  for (auto& row : rows) {
    std::string warning = outcome_warning(row);
    if (!warning.empty()) result.warnings.push_back(std::move(warning));
    result.rows.push_back(std::move(row));
  }
  if (!result.has_safety_related()) {
    result.warnings.push_back(
        "no safety-related hardware identified; the SPFM denominator is empty and spfm() "
        "reports 1.0 by convention — this is not an ASIL-D claim");
  }
  return result;
}

}  // namespace decisive::core
