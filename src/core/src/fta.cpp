#include "decisive/core/fta.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/log.hpp"
#include "decisive/ssam/graph.hpp"

namespace decisive::core {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

/// Summed distribution of a component's loss-nature failure modes.
double loss_fraction(const SsamModel& ssam, ObjectId component) {
  double fraction = 0.0;
  for (const ObjectId fm : ssam.obj(component).refs("failureModes")) {
    if (is_loss_failure_nature(ssam.obj(fm).get_string("nature"))) {
      fraction += ssam.obj(fm).get_real("distribution");
    }
  }
  return std::min(fraction, 1.0);
}

/// True when jointly removing `cut` severs every path.
bool is_cut(const std::vector<std::vector<int>>& path_members,
            const std::vector<size_t>& cut) {
  for (const auto& members : path_members) {
    bool hit = false;
    for (const size_t c : cut) {
      if (std::binary_search(members.begin(), members.end(), static_cast<int>(c))) {
        hit = true;
        break;
      }
    }
    if (!hit) return false;
  }
  return true;
}

bool contains_subset(const std::vector<std::vector<size_t>>& cuts,
                     const std::vector<size_t>& candidate) {
  for (const auto& cut : cuts) {
    if (std::includes(candidate.begin(), candidate.end(), cut.begin(), cut.end())) {
      return true;
    }
  }
  return false;
}

/// Exact truncation probe: after enumerating every minimal cut up to the
/// size bound, a minimal cut *above* the bound exists iff some set A of
/// components that intersects every found cut (a transversal) still carries
/// no complete path — its complement then severs all paths while containing
/// no found cut, so its minimal sub-cut is new. Minimal transversals suffice
/// (shrinking A only removes surviving paths), so the probe DFSes over the
/// found cuts, branching on which member stays alive. The `budget` counts
/// path-membership checks; exhausting it returns the conservative answer
/// (truncated = true) — the flag may over-report, never under-report.
bool probe_truncation(const std::vector<std::vector<int>>& path_members,
                      const std::vector<std::vector<size_t>>& cuts, size_t n,
                      size_t budget, bool& budget_exhausted) {
  std::vector<char> alive(n, 0);
  const std::function<bool()> dfs = [&]() -> bool {
    if (budget == 0) {
      budget_exhausted = true;
      return true;  // unknown → conservative
    }
    // First found cut with no alive member.
    const std::vector<size_t>* open = nullptr;
    for (const auto& cut : cuts) {
      if (budget > 0) --budget;
      if (std::none_of(cut.begin(), cut.end(),
                       [&](size_t m) { return alive[m] != 0; })) {
        open = &cut;
        break;
      }
    }
    if (open == nullptr) {
      // A is a transversal of every found cut: truncated iff no path
      // survives inside A.
      for (const auto& members : path_members) {
        if (budget > 0) --budget;
        if (std::all_of(members.begin(), members.end(),
                        [&](int m) { return alive[static_cast<size_t>(m)] != 0; })) {
          return false;  // a path survives; this transversal proves nothing
        }
      }
      return true;
    }
    for (const size_t m : *open) {
      alive[m] = 1;
      const bool found = dfs();
      alive[m] = 0;
      if (found) return true;
    }
    return false;
  };
  return dfs();
}

}  // namespace

bool is_loss_failure_nature(const std::string& nature) {
  return iequals(nature, "lossOfFunction") || iequals(nature, "loss") ||
         iequals(nature, "open") || iequals(nature, "omission") ||
         iequals(nature, "no output");
}

double loss_failure_rate(const SsamModel& ssam, ObjectId component) {
  return ssam.obj(component).get_real("fit") * loss_fraction(ssam, component) * 1e-9;
}

double FaultTree::top_event_probability(double mission_hours) const {
  // Map component -> failure probability over the mission.
  std::map<ObjectId, double> probability;
  for (const auto& node : nodes) {
    if (node.kind == GateKind::Basic) {
      probability[node.component] = 1.0 - std::exp(-node.failure_rate * mission_hours);
    }
  }
  double total = 0.0;
  for (const auto& cut : cut_sets) {
    double product = 1.0;
    for (const ObjectId member : cut) {
      const auto it = probability.find(member);
      product *= it != probability.end() ? it->second : 0.0;
    }
    total += product;
  }
  return std::min(total, 1.0);
}

namespace {

void render(const FaultTree& tree, size_t index, int depth, std::string& out) {
  const FaultTreeNode& node = tree.nodes[index];
  out.append(static_cast<size_t>(depth) * 2, ' ');
  switch (node.kind) {
    case GateKind::Or: out += "[OR] "; break;
    case GateKind::And: out += "[AND] "; break;
    case GateKind::Basic: out += "( ) "; break;
  }
  out += node.label;
  if (node.kind == GateKind::Basic) {
    out += " (lambda = " + format_number(node.failure_rate * 1e9, 3) + " FIT)";
  }
  out += '\n';
  for (const size_t child : node.children) render(tree, child, depth + 1, out);
}

}  // namespace

std::string FaultTree::to_text() const {
  std::string out;
  if (!nodes.empty()) render(*this, 0, 0, out);
  if (truncated) {
    out += std::string(kFtaTruncationWarning);
    out += '\n';
  }
  return out;
}

FaultTree synthesize_fault_tree(const SsamModel& ssam, ObjectId component,
                                const FtaOptions& options) {
  const ssam::ComponentGraph graph = ssam::build_graph(ssam, component);
  const auto paths = ssam::enumerate_paths(graph, options.max_paths);

  // Components that participate in at least one path, in stable order.
  std::vector<ObjectId> members;
  {
    std::set<ObjectId> seen;
    for (const auto& path : paths) {
      for (const ObjectId node : path) {
        const auto it = graph.owner.find(node);
        if (it != graph.owner.end() && seen.insert(it->second).second) {
          members.push_back(it->second);
        }
      }
    }
  }

  // Per path: sorted member indices (into `members`).
  std::map<ObjectId, int> member_index;
  for (size_t i = 0; i < members.size(); ++i) {
    member_index[members[i]] = static_cast<int>(i);
  }
  std::vector<std::vector<int>> path_members;
  path_members.reserve(paths.size());
  for (const auto& path : paths) {
    std::set<int> indices;
    for (const ObjectId node : path) {
      const auto it = graph.owner.find(node);
      if (it != graph.owner.end()) indices.insert(member_index.at(it->second));
    }
    path_members.emplace_back(indices.begin(), indices.end());
  }

  // Enumerate minimal cut sets up to the size bound. Sizes in increasing
  // order guarantee minimality via subset screening.
  const auto next_combination = [](std::vector<size_t>& combo, size_t n) {
    const size_t k = combo.size();
    size_t i = k;
    while (i-- > 0) {
      if (combo[i] < n - k + i) {
        ++combo[i];
        for (size_t j = i + 1; j < k; ++j) combo[j] = combo[j - 1] + 1;
        return true;
      }
    }
    return false;
  };
  std::vector<std::vector<size_t>> cuts;
  const size_t n = members.size();
  const size_t max_size = std::min(options.max_cut_set_size, n);
  for (size_t size = 1; size <= max_size; ++size) {
    std::vector<size_t> combo(size);
    for (size_t i = 0; i < size; ++i) combo[i] = i;
    do {
      if (!contains_subset(cuts, combo) && is_cut(path_members, combo)) {
        cuts.push_back(combo);
      }
    } while (next_combination(combo, n));
  }

  // Deterministic cut order: each cut sorted by component id, cuts sorted by
  // (order, ids) — so two engines (or two platforms) render identical trees.
  std::vector<std::vector<ObjectId>> sorted_cuts;
  sorted_cuts.reserve(cuts.size());
  for (const auto& cut : cuts) {
    std::vector<ObjectId> cut_components;
    cut_components.reserve(cut.size());
    for (const size_t member : cut) cut_components.push_back(members[member]);
    std::sort(cut_components.begin(), cut_components.end());
    sorted_cuts.push_back(std::move(cut_components));
  }
  std::sort(sorted_cuts.begin(), sorted_cuts.end(),
            [](const std::vector<ObjectId>& a, const std::vector<ObjectId>& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });

  // Build the tree: OR(top) over one child per cut set.
  FaultTree tree;
  if (max_size < n) {
    // The size bound may have clipped the family — probe instead of capping
    // silently (satellite of the ZBDD engine work; see kFtaTruncationWarning).
    bool budget_exhausted = false;
    tree.truncated = probe_truncation(path_members, cuts, n, 100000, budget_exhausted);
    if (tree.truncated) {
      obs::log(obs::LogLevel::Warn,
               "fta: max_cut_set_size=" + std::to_string(options.max_cut_set_size) +
                   (budget_exhausted
                        ? " probe budget exhausted; conservatively flagging truncation"
                        : " clipped the cut-set enumeration") +
                   "; minimal cut sets above the bound may exist");
    }
  }
  const std::string name = ssam.obj(component).get_string("name");
  tree.top_event = "loss of function of '" + name + "'";
  FaultTreeNode top;
  top.kind = GateKind::Or;
  top.label = tree.top_event;
  tree.nodes.push_back(top);

  std::map<ObjectId, size_t> basic_index;
  auto basic_for = [&](ObjectId comp) {
    const auto it = basic_index.find(comp);
    if (it != basic_index.end()) return it->second;
    FaultTreeNode basic;
    basic.kind = GateKind::Basic;
    basic.component = comp;
    basic.label = "loss of '" + ssam.obj(comp).get_string("name") + "'";
    basic.failure_rate = loss_failure_rate(ssam, comp);
    tree.nodes.push_back(basic);
    const size_t index = tree.nodes.size() - 1;
    basic_index[comp] = index;
    return index;
  };

  for (const auto& cut : sorted_cuts) {
    tree.cut_sets.push_back(cut);
    if (cut.size() == 1) {
      const size_t basic = basic_for(cut[0]);
      tree.nodes[0].children.push_back(basic);
    } else {
      FaultTreeNode gate;
      gate.kind = GateKind::And;
      gate.label = "joint loss of " + std::to_string(cut.size()) + " redundant components";
      // Materialise the basic events first: basic_for may grow the node
      // vector, which would invalidate a reference into it.
      for (const ObjectId member : cut) gate.children.push_back(basic_for(member));
      tree.nodes.push_back(std::move(gate));
      tree.nodes[0].children.push_back(tree.nodes.size() - 1);
    }
  }
  return tree;
}

std::vector<BasicEventImportance> importance_measures(const FaultTree& tree,
                                                      double mission_hours) {
  // Per-component failure probability over the mission.
  std::map<ObjectId, double> probability;
  std::map<ObjectId, std::string> labels;
  for (const auto& node : tree.nodes) {
    if (node.kind == GateKind::Basic) {
      probability[node.component] = 1.0 - std::exp(-node.failure_rate * mission_hours);
      labels[node.component] = node.label;
    }
  }
  const double p_top = tree.top_event_probability(mission_hours);

  std::vector<BasicEventImportance> out;
  for (const auto& [component, p_event] : probability) {
    BasicEventImportance imp;
    imp.component = component;
    imp.label = labels[component];
    // Rare-event forms over the minimal cut sets:
    //   Birnbaum       = sum over cut sets containing e of prod(other members)
    //   Fussell-Vesely = sum over cut sets containing e of prod(all members) / P(top)
    double birnbaum = 0.0;
    double contribution = 0.0;
    for (const auto& cut : tree.cut_sets) {
      if (std::find(cut.begin(), cut.end(), component) == cut.end()) continue;
      double others = 1.0;
      double full = 1.0;
      for (const ObjectId member : cut) {
        full *= probability[member];
        if (member != component) others *= probability[member];
      }
      birnbaum += others;
      contribution += full;
    }
    imp.birnbaum = birnbaum;
    imp.fussell_vesely = p_top > 0.0 ? contribution / p_top : 0.0;
    out.push_back(std::move(imp));
  }
  std::sort(out.begin(), out.end(),
            [](const BasicEventImportance& a, const BasicEventImportance& b) {
              return a.fussell_vesely > b.fussell_vesely;
            });
  return out;
}

std::vector<std::string> crosscheck_with_fmea(const SsamModel& ssam, const FaultTree& tree,
                                              const FmedaResult& fmea) {
  std::vector<std::string> issues;

  // Order-1 cut components by name.
  std::set<std::string> single_points;
  for (const auto& cut : tree.cut_sets) {
    if (cut.size() == 1) single_points.insert(ssam.obj(cut[0]).get_string("name"));
  }

  // FMEA loss-mode safety-related components.
  std::set<std::string> fmea_loss_sr;
  for (const auto& row : fmea.rows) {
    if (row.safety_related && row.effect == EffectClass::DVF) {
      fmea_loss_sr.insert(row.component);
    }
  }

  for (const auto& name : single_points) {
    if (!fmea_loss_sr.contains(name)) {
      issues.push_back("FTA order-1 cut '" + name + "' is not loss-safety-related in the FMEA");
    }
  }
  for (const auto& name : fmea_loss_sr) {
    if (!single_points.contains(name)) {
      issues.push_back("FMEA single point '" + name + "' is missing from the FTA order-1 cuts");
    }
  }
  return issues;
}

}  // namespace decisive::core
