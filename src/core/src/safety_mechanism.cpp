#include "decisive/core/safety_mechanism.hpp"

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/core/reliability.hpp"

namespace decisive::core {

void SafetyMechanismModel::add(SafetyMechanismSpec spec) {
  if (spec.coverage < 0.0 || spec.coverage > 1.0) {
    throw AnalysisError("safety-mechanism coverage must be in [0,1]");
  }
  if (spec.cost_hours < 0.0) {
    throw AnalysisError("safety-mechanism cost must be non-negative");
  }
  entries_.push_back(std::move(spec));
}

std::vector<const SafetyMechanismSpec*> SafetyMechanismModel::applicable(
    std::string_view component_type, std::string_view failure_mode) const {
  std::vector<const SafetyMechanismSpec*> out;
  for (const auto& entry : entries_) {
    if (component_type_matches(entry.component_type, component_type) &&
        iequals(entry.failure_mode, failure_mode)) {
      out.push_back(&entry);
    }
  }
  return out;
}

const SafetyMechanismSpec* SafetyMechanismModel::best(std::string_view component_type,
                                                      std::string_view failure_mode) const {
  const SafetyMechanismSpec* best_spec = nullptr;
  for (const SafetyMechanismSpec* spec : applicable(component_type, failure_mode)) {
    if (best_spec == nullptr || spec->coverage > best_spec->coverage) best_spec = spec;
  }
  return best_spec;
}

SafetyMechanismModel SafetyMechanismModel::from_table(const CsvTable& table) {
  for (const char* column : {"Component", "Failure_Mode", "Safety_Mechanism", "Cov."}) {
    if (table.column(column) < 0) {
      throw AnalysisError("safety-mechanism table is missing column '" + std::string(column) +
                          "'");
    }
  }
  const bool has_cost = table.column("Cost(hrs)") >= 0;
  SafetyMechanismModel model;
  for (size_t i = 0; i < table.rows.size(); ++i) {
    SafetyMechanismSpec spec;
    spec.component_type = std::string(trim(table.at(i, "Component")));
    spec.failure_mode = std::string(trim(table.at(i, "Failure_Mode")));
    spec.name = std::string(trim(table.at(i, "Safety_Mechanism")));
    std::string_view cov = trim(table.at(i, "Cov."));
    bool percent = false;
    if (!cov.empty() && cov.back() == '%') {
      cov.remove_suffix(1);
      percent = true;
    }
    spec.coverage = parse_double(cov);
    if (percent || spec.coverage > 1.0) spec.coverage /= 100.0;
    if (has_cost) {
      const std::string_view cost = trim(table.at(i, "Cost(hrs)"));
      spec.cost_hours = cost.empty() ? 0.0 : parse_double(cost);
    }
    model.add(std::move(spec));
  }
  return model;
}

SafetyMechanismModel SafetyMechanismModel::from_source(const drivers::DataSource& source,
                                                       std::string_view table_name) {
  const CsvTable* table = source.table(table_name);
  if (table == nullptr) {
    throw AnalysisError("source '" + source.location() + "' has no table '" +
                        std::string(table_name) + "'");
  }
  return from_table(*table);
}

CsvTable SafetyMechanismModel::to_table() const {
  CsvTable table;
  table.header = {"Component", "Failure_Mode", "Safety_Mechanism", "Cov.", "Cost(hrs)"};
  for (const auto& entry : entries_) {
    table.rows.push_back({entry.component_type, entry.failure_mode, entry.name,
                          format_percent(entry.coverage, 0),
                          format_number(entry.cost_hours, 2)});
  }
  return table;
}

}  // namespace decisive::core
