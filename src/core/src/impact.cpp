#include "decisive/core/impact.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "decisive/base/error.hpp"

namespace decisive::core {

using ssam::ObjectId;
using ssam::SsamModel;

namespace {

void add_unique(std::vector<ObjectId>& list, ObjectId id) {
  if (std::find(list.begin(), list.end(), id) == list.end()) list.push_back(id);
}

/// Reverse indices over the model, built in one repository pass so a report
/// never rescans the repository per ancestor or per relationship endpoint
/// (the session's reanalyze loop widens every dirty seed through here).
struct ImpactIndex {
  std::map<ObjectId, std::vector<ObjectId>> containers;  ///< object -> containing objects
  std::map<ObjectId, ObjectId> node_owner;               ///< IONode -> owning Component
  /// (source, target) of every ComponentRelationship, repository order.
  std::vector<std::pair<ObjectId, ObjectId>> relationships;
  std::vector<ObjectId> requirements;  ///< every Requirement, repository order

  explicit ImpactIndex(const SsamModel& ssam) {
    const auto& component_cls = ssam.meta().get(ssam::cls::Component);
    const auto& relationship_cls = ssam.meta().get(ssam::cls::ComponentRelationship);
    const auto& requirement_cls = ssam.meta().get(ssam::cls::Requirement);
    ssam.repo().for_each([&](const model::ModelObject& obj) {
      for (const auto* ref : obj.meta().all_references()) {
        if (!ref->containment) continue;
        for (const ObjectId target : obj.refs(ref->name)) {
          containers[target].push_back(obj.id());
        }
      }
      if (obj.is_kind_of(component_cls)) {
        for (const ObjectId node : obj.refs("ioNodes")) node_owner[node] = obj.id();
      } else if (obj.is_kind_of(relationship_cls)) {
        relationships.emplace_back(obj.ref("source"), obj.ref("target"));
      } else if (obj.is_kind_of(requirement_cls)) {
        requirements.push_back(obj.id());
      }
    });
  }
};

ImpactReport impact_with_index(const SsamModel& ssam, ObjectId component,
                               const ImpactIndex& index) {
  const auto& comp = ssam.obj(component);
  if (!comp.is_kind_of(ssam.meta().get(ssam::cls::Component))) {
    throw ModelError("impact_of_change expects a Component");
  }

  ImpactReport report;
  report.changed = component;

  // Containment ancestors (transitively).
  std::vector<ObjectId> frontier{component};
  std::set<ObjectId> seen{component};
  while (!frontier.empty()) {
    const ObjectId current = frontier.back();
    frontier.pop_back();
    const auto containers = index.containers.find(current);
    if (containers == index.containers.end()) continue;
    for (const ObjectId container : containers->second) {
      if (seen.insert(container).second) {
        report.ancestors.push_back(container);
        frontier.push_back(container);
      }
    }
  }

  // Signal neighbours: within any parent component's relationships, the
  // other endpoint's owner when one endpoint is ours.
  const std::set<ObjectId> my_nodes(comp.refs("ioNodes").begin(), comp.refs("ioNodes").end());
  auto owner_of_node = [&](ObjectId node) -> ObjectId {
    const auto owner = index.node_owner.find(node);
    return owner == index.node_owner.end() ? model::kNullObject : owner->second;
  };
  for (const auto& [source, target] : index.relationships) {
    if (my_nodes.contains(source) && target != model::kNullObject) {
      const ObjectId other = owner_of_node(target);
      if (other != model::kNullObject && other != component) {
        add_unique(report.connected_components, other);
      }
    }
    if (my_nodes.contains(target) && source != model::kNullObject) {
      const ObjectId other = owner_of_node(source);
      if (other != model::kNullObject && other != component) {
        add_unique(report.connected_components, other);
      }
    }
  }

  // Citations: any Requirement citing the component (or one of its failure
  // modes) is allocation traceability that must be revisited.
  const auto& fms = comp.refs("failureModes");
  const std::set<ObjectId> citation_targets = [&] {
    std::set<ObjectId> targets{component};
    targets.insert(fms.begin(), fms.end());
    return targets;
  }();
  for (const ObjectId requirement : index.requirements) {
    for (const ObjectId cited : ssam.obj(requirement).refs("cites")) {
      if (citation_targets.contains(cited)) {
        add_unique(report.requirements, requirement);
        break;
      }
    }
  }

  // Hazards and mechanisms hanging off the component's failure modes.
  for (const ObjectId fm : fms) {
    const auto& fm_obj = ssam.obj(fm);
    for (const ObjectId hazard : fm_obj.refs("hazards")) {
      add_unique(report.hazards, hazard);
    }
    if (fm_obj.get_bool("safetyRelated")) report.reanalysis_required = true;
  }
  for (const ObjectId sm : comp.refs("safetyMechanisms")) {
    add_unique(report.safety_mechanisms, sm);
  }
  return report;
}

}  // namespace

std::string ImpactReport::to_text(const SsamModel& ssam) const {
  auto names = [&](const std::vector<ObjectId>& ids) {
    std::string out;
    for (const ObjectId id : ids) {
      if (!out.empty()) out += ", ";
      out += ssam.obj(id).get_string("name");
    }
    return out.empty() ? std::string("-") : out;
  };
  std::string out = "Impact of changing '" + ssam.obj(changed).get_string("name") + "':\n";
  out += "  containing designs:   " + names(ancestors) + "\n";
  out += "  connected components: " + names(connected_components) + "\n";
  out += "  requirements:         " + names(requirements) + "\n";
  out += "  hazards:              " + names(hazards) + "\n";
  out += "  safety mechanisms:    " + names(safety_mechanisms) + "\n";
  out += reanalysis_required
             ? "  => safety-related failure modes affected: re-run Step 4a before merging\n"
             : "  => no safety-related failure mode affected\n";
  return out;
}

ImpactReport impact_of_change(const SsamModel& ssam, ObjectId component) {
  return impact_with_index(ssam, component, ImpactIndex(ssam));
}

std::vector<ImpactReport> impact_of_changes(const SsamModel& ssam,
                                            const std::vector<ObjectId>& components) {
  std::vector<ImpactReport> reports;
  if (components.empty()) return reports;
  const ImpactIndex index(ssam);
  reports.reserve(components.size());
  for (const ObjectId component : components) {
    reports.push_back(impact_with_index(ssam, component, index));
  }
  return reports;
}

}  // namespace decisive::core
