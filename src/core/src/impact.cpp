#include "decisive/core/impact.hpp"

#include <algorithm>
#include <set>

#include "decisive/base/error.hpp"

namespace decisive::core {

using ssam::ObjectId;
using ssam::SsamModel;

namespace {

/// Objects that directly contain `target` through any containment reference.
std::vector<ObjectId> containers_of(const SsamModel& ssam, ObjectId target) {
  std::vector<ObjectId> out;
  ssam.repo().for_each([&](const model::ModelObject& obj) {
    for (const auto* ref : obj.meta().all_references()) {
      if (!ref->containment) continue;
      const auto& targets = obj.refs(ref->name);
      if (std::find(targets.begin(), targets.end(), target) != targets.end()) {
        out.push_back(obj.id());
      }
    }
  });
  return out;
}

void add_unique(std::vector<ObjectId>& list, ObjectId id) {
  if (std::find(list.begin(), list.end(), id) == list.end()) list.push_back(id);
}

}  // namespace

std::string ImpactReport::to_text(const SsamModel& ssam) const {
  auto names = [&](const std::vector<ObjectId>& ids) {
    std::string out;
    for (const ObjectId id : ids) {
      if (!out.empty()) out += ", ";
      out += ssam.obj(id).get_string("name");
    }
    return out.empty() ? std::string("-") : out;
  };
  std::string out = "Impact of changing '" + ssam.obj(changed).get_string("name") + "':\n";
  out += "  containing designs:   " + names(ancestors) + "\n";
  out += "  connected components: " + names(connected_components) + "\n";
  out += "  requirements:         " + names(requirements) + "\n";
  out += "  hazards:              " + names(hazards) + "\n";
  out += "  safety mechanisms:    " + names(safety_mechanisms) + "\n";
  out += reanalysis_required
             ? "  => safety-related failure modes affected: re-run Step 4a before merging\n"
             : "  => no safety-related failure mode affected\n";
  return out;
}

ImpactReport impact_of_change(const SsamModel& ssam, ObjectId component) {
  const auto& comp = ssam.obj(component);
  if (!comp.is_kind_of(ssam.meta().get(ssam::cls::Component))) {
    throw ModelError("impact_of_change expects a Component");
  }

  ImpactReport report;
  report.changed = component;

  // Containment ancestors (transitively).
  std::vector<ObjectId> frontier{component};
  std::set<ObjectId> seen{component};
  while (!frontier.empty()) {
    const ObjectId current = frontier.back();
    frontier.pop_back();
    for (const ObjectId container : containers_of(ssam, current)) {
      if (seen.insert(container).second) {
        report.ancestors.push_back(container);
        frontier.push_back(container);
      }
    }
  }

  // Signal neighbours: within any parent component's relationships, the
  // other endpoint's owner when one endpoint is ours.
  const std::set<ObjectId> my_nodes(comp.refs("ioNodes").begin(), comp.refs("ioNodes").end());
  auto owner_of_node = [&](ObjectId node) -> ObjectId {
    ObjectId owner = model::kNullObject;
    ssam.repo().for_each([&](const model::ModelObject& obj) {
      if (owner != model::kNullObject) return;
      if (!obj.is_kind_of(ssam.meta().get(ssam::cls::Component))) return;
      const auto& nodes = obj.refs("ioNodes");
      if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) owner = obj.id();
    });
    return owner;
  };
  ssam.repo().for_each([&](const model::ModelObject& obj) {
    if (!obj.is_kind_of(ssam.meta().get(ssam::cls::ComponentRelationship))) return;
    const ObjectId source = obj.ref("source");
    const ObjectId target = obj.ref("target");
    if (my_nodes.contains(source) && target != model::kNullObject) {
      const ObjectId other = owner_of_node(target);
      if (other != model::kNullObject && other != component) {
        add_unique(report.connected_components, other);
      }
    }
    if (my_nodes.contains(target) && source != model::kNullObject) {
      const ObjectId other = owner_of_node(source);
      if (other != model::kNullObject && other != component) {
        add_unique(report.connected_components, other);
      }
    }
  });

  // Citations: any Requirement citing the component (or one of its failure
  // modes) is allocation traceability that must be revisited.
  const auto& fms = comp.refs("failureModes");
  const std::set<ObjectId> citation_targets = [&] {
    std::set<ObjectId> targets{component};
    targets.insert(fms.begin(), fms.end());
    return targets;
  }();
  ssam.repo().for_each([&](const model::ModelObject& obj) {
    if (!obj.is_kind_of(ssam.meta().get(ssam::cls::Requirement))) return;
    for (const ObjectId cited : obj.refs("cites")) {
      if (citation_targets.contains(cited)) {
        add_unique(report.requirements, obj.id());
        break;
      }
    }
  });

  // Hazards and mechanisms hanging off the component's failure modes.
  for (const ObjectId fm : fms) {
    const auto& fm_obj = ssam.obj(fm);
    for (const ObjectId hazard : fm_obj.refs("hazards")) {
      add_unique(report.hazards, hazard);
    }
    if (fm_obj.get_bool("safetyRelated")) report.reanalysis_required = true;
  }
  for (const ObjectId sm : comp.refs("safetyMechanisms")) {
    add_unique(report.safety_mechanisms, sm);
  }
  return report;
}

}  // namespace decisive::core
