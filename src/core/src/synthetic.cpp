#include "decisive/core/synthetic.hpp"

#include <chrono>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/core/workflow.hpp"
#include "decisive/ssam/metamodel.hpp"

namespace decisive::core {

using ssam::ObjectId;
using ssam::SsamModel;

namespace {

/// A leaf component with boundary nodes, block type and metadata.
struct Leaf {
  ObjectId component = model::kNullObject;
  ObjectId in = model::kNullObject;
  ObjectId out = model::kNullObject;
};

Leaf add_leaf(SsamModel& m, ObjectId parent, const std::string& name,
              const std::string& block_type, const std::string& component_type) {
  Leaf leaf;
  leaf.component = m.create_component(parent, name);
  m.obj(leaf.component).set_string("blockType", block_type);
  m.obj(leaf.component).set_string("componentType", component_type);
  leaf.in = m.add_io_node(leaf.component, name + ".in", "in");
  leaf.out = m.add_io_node(leaf.component, name + ".out", "out");
  return leaf;
}

/// Adds the failure modes + FIT of `reliability` to every leaf (the
/// generator pre-aggregates Step 3 so the element counts include failure
/// modes, as the paper's "elements in the design" do).
void aggregate(SsamModel& m, ObjectId system, const ReliabilityModel& reliability) {
  for (const ObjectId component : m.all_components_under(system)) {
    auto& comp = m.obj(component);
    if (!comp.refs("subcomponents").empty()) continue;
    const ComponentReliability* entry =
        reliability.find(comp.get_string("blockType", comp.get_string("name")));
    if (entry == nullptr) continue;
    comp.set_real("fit", entry->fit);
    for (const auto& mode : entry->modes) {
      const ObjectId fm =
          m.add_failure_mode(component, mode.name, mode.distribution,
                             nature_for_mode(mode.name));
      const std::string lowered = to_lower(mode.name);
      if (lowered.find("ram") != std::string::npos ||
          lowered.find("memory") != std::string::npos) {
        m.obj(fm).add_ref("affectedComponents", component);
      }
    }
  }
}

}  // namespace

ReliabilityModel synthetic_reliability() {
  ReliabilityModel model;
  // Table II values, extended with the additional types the synthetic
  // systems use.
  model.add("Diode", 10, {{"Open", 0.30}, {"Short", 0.70}});
  model.add("Capacitor", 2, {{"Open", 0.30}, {"Short", 0.70}});
  model.add("Inductor", 15, {{"Open", 0.30}, {"Short", 0.70}});
  model.add("MC", 300, {{"RAM Failure", 1.00}});
  model.add("Resistor", 5, {{"Open", 0.60}, {"Short", 0.40}});
  model.add("Switch", 20, {{"Open", 0.55}, {"Short", 0.45}});
  model.add("Sensor", 50, {{"No output", 0.60}, {"Drift", 0.40}});
  model.add("CPU", 400, {{"RAM Failure", 0.60}, {"Crash", 0.40}});
  model.add("SWModule", 80, {{"Crash", 0.70}, {"Wrong output", 0.30}});
  model.add("PowerReg", 120, {{"No output", 0.50}, {"Drift", 0.50}});
  model.add("Actuator", 90, {{"No output", 0.65}, {"Jam", 0.35}});
  model.add("BusIF", 60, {{"No output", 0.50}, {"Babbling", 0.50}});
  return model;
}

SafetyMechanismModel synthetic_sm_catalogue() {
  SafetyMechanismModel catalogue;
  catalogue.add({"MC", "RAM Failure", "ECC", 0.99, 2.0});
  catalogue.add({"CPU", "RAM Failure", "ECC", 0.99, 2.5});
  catalogue.add({"CPU", "Crash", "Time-out watchdog", 0.90, 1.5});
  catalogue.add({"CPU", "Crash", "Dual-core lockstep", 0.99, 8.0});
  catalogue.add({"SWModule", "Crash", "Supervisor restart", 0.90, 1.0});
  catalogue.add({"SWModule", "Wrong output", "Plausibility check", 0.80, 2.0});
  catalogue.add({"Sensor", "No output", "Redundant sensor voting", 0.95, 4.0});
  catalogue.add({"Sensor", "Drift", "Range/plausibility monitor", 0.85, 1.5});
  catalogue.add({"PowerReg", "No output", "Undervoltage monitor", 0.95, 1.0});
  catalogue.add({"PowerReg", "Drift", "Window comparator", 0.90, 1.0});
  catalogue.add({"Diode", "Open", "Redundant diode path", 0.90, 1.0});
  catalogue.add({"Inductor", "Open", "Supply monitor + fallback", 0.90, 1.5});
  catalogue.add({"Actuator", "No output", "Actuation feedback monitor", 0.92, 3.0});
  catalogue.add({"Actuator", "Jam", "Duplex actuator", 0.97, 10.0});
  catalogue.add({"BusIF", "No output", "Bus heartbeat", 0.90, 1.0});
  catalogue.add({"BusIF", "Babbling", "Bus guardian", 0.95, 2.5});
  catalogue.add({"Switch", "Open", "Parallel switch", 0.90, 1.0});
  catalogue.add({"Resistor", "Open", "Redundant divider", 0.85, 0.5});
  return catalogue;
}

SafetyMechanismModel scaled_sm_catalogue() {
  SafetyMechanismModel catalogue;
  catalogue.add({"Subsystem", "Open", "Unit heartbeat", 0.80, 1.0});
  catalogue.add({"Subsystem", "Open", "Unit output monitor", 0.90, 2.5});
  catalogue.add({"Subsystem", "Open", "Redundant unit", 0.99, 12.0});
  catalogue.add({"Sensor", "Open", "Range check", 0.70, 0.5});
  catalogue.add({"Sensor", "Open", "Plausibility monitor", 0.90, 1.5});
  catalogue.add({"Sensor", "Open", "Redundant sensor voting", 0.97, 4.0});
  catalogue.add({"Sensor", "Short", "Supply current monitor", 0.85, 1.0});
  catalogue.add({"Sensor", "Short", "Duplex sensor", 0.96, 5.0});
  catalogue.add({"Resistor", "Open", "Redundant divider", 0.85, 0.5});
  catalogue.add({"Resistor", "Open", "Voltage window comparator", 0.95, 2.0});
  catalogue.add({"Resistor", "Short", "Series fuse", 0.75, 0.25});
  catalogue.add({"Resistor", "Short", "Current limiter", 0.92, 1.5});
  return catalogue;
}

namespace {

/// Deterministically tops a model up to the published element count by
/// documenting component functions (a legitimate Step-2 activity: "identify
/// the function of each component"). Throws AnalysisError when the structure
/// already exceeds the target.
void fill_functions_to(SsamModel& m, ObjectId system, size_t target) {
  if (m.size() > target) {
    throw AnalysisError("synthetic system exceeds target element count: " +
                        std::to_string(m.size()) + " > " + std::to_string(target));
  }
  const auto components = m.all_components_under(system);
  size_t index = 0;
  while (m.size() < target) {
    const ObjectId component = components[index % components.size()];
    m.add_function(component, "documented-function-" + std::to_string(index), "1oo1");
    ++index;
  }
}

}  // namespace

SyntheticSystem make_system_a() {
  SyntheticSystem out;
  out.model = std::make_unique<SsamModel>();
  SsamModel& m = *out.model;

  // Step 1 artefacts.
  const ObjectId req_pkg = m.create_requirement_package("psA-requirements");
  const ObjectId haz_pkg = m.create_hazard_package("psA-hazards");
  const ObjectId comp_pkg = m.create_component_package("psA-design");
  const ObjectId fr1 =
      m.create_requirement(req_pkg, "FR1", "Provide a stable 5 V supply to the sensor", "QM");
  m.create_requirement(req_pkg, "FR2", "Report supply current to the controller", "QM");
  m.create_requirement(req_pkg, "FR3", "Isolate the load on over-current", "QM");
  const ObjectId h1 = m.create_hazard(haz_pkg, "H1", "S2", 1e-6, "ASIL-B");
  m.add_cause(h1, "C1", "component failure in the supply path");
  m.add_cause(h1, "C2", "latent defect in the protection circuitry");
  m.add_control_measure(h1, "CM1", 0.9);
  const ObjectId h2 = m.create_hazard(haz_pkg, "H2", "S1", 1e-5, "ASIL-A");
  m.add_cause(h2, "C3", "sensor reading drift");
  const ObjectId sr1 = m.create_safety_requirement(
      req_pkg, "SR1", "The power supply shall not fail silently", "ASIL-B",
      "detect supply failure");
  m.cite(sr1, h1);
  const ObjectId sr2 = m.create_safety_requirement(
      req_pkg, "SR2", "Supply current shall be monitored continuously", "ASIL-A",
      "monitor current");
  m.cite(sr2, h2);
  m.relate_requirements(req_pkg, "derives", fr1, sr1);

  // Step 2: architecture.
  const ObjectId system = m.create_component(comp_pkg, "PowerSupplyA");
  out.system = system;
  const ObjectId sys_in = m.add_io_node(system, "vin", "in");
  const ObjectId sys_out = m.add_io_node(system, "vout", "out");

  const Leaf sw1 = add_leaf(m, system, "A.SW1", "Switch", "hardware");
  const Leaf d1 = add_leaf(m, system, "A.D1", "Diode", "hardware");
  const Leaf d2 = add_leaf(m, system, "A.D2", "Diode", "hardware");
  const Leaf l1 = add_leaf(m, system, "A.L1", "Inductor", "hardware");
  const Leaf c1 = add_leaf(m, system, "A.C1", "Capacitor", "hardware");
  const Leaf c2 = add_leaf(m, system, "A.C2", "Capacitor", "hardware");
  const Leaf r1 = add_leaf(m, system, "A.R1", "Resistor", "hardware");
  const Leaf r2 = add_leaf(m, system, "A.R2", "Resistor", "hardware");
  const Leaf reg = add_leaf(m, system, "A.REG1", "PowerReg", "hardware");
  const Leaf mc1 = add_leaf(m, system, "A.MC1", "MC", "hardware");
  const Leaf cs1 = add_leaf(m, system, "A.CS1", "Sensor", "hardware");
  const Leaf vs1 = add_leaf(m, system, "A.VS1", "Sensor", "hardware");

  // Serial spine with a parallel filter-capacitor pair; VS1 is a diagnostic
  // sink (observes the regulator, no path to the boundary).
  m.connect(system, sys_in, sw1.in);
  m.connect(system, sw1.out, d1.in);
  m.connect(system, d1.out, d2.in);
  m.connect(system, d2.out, l1.in);
  m.connect(system, l1.out, c1.in);
  m.connect(system, l1.out, c2.in);
  m.connect(system, c1.out, r1.in);
  m.connect(system, c2.out, r1.in);
  m.connect(system, r1.out, r2.in);
  m.connect(system, r2.out, reg.in);
  m.connect(system, reg.out, mc1.in);
  m.connect(system, mc1.out, cs1.in);
  m.connect(system, cs1.out, sys_out);
  m.connect(system, reg.out, vs1.in);

  m.add_external_reference(mc1.component, "assets/reliability_workbook", "workbook",
                           "rows('Reliability').select(r | r.Component == 'MC')"
                           ".first().FIT");

  // Step 3: aggregate reliability (failure modes are design elements).
  aggregate(m, system, synthetic_reliability());

  // Step 2 function documentation fills to the published count.
  fill_functions_to(m, system, 102);
  out.element_count = m.size();
  return out;
}

SyntheticSystem make_system_b() {
  SyntheticSystem out;
  out.model = std::make_unique<SsamModel>();
  SsamModel& m = *out.model;

  const ObjectId req_pkg = m.create_requirement_package("auvB-requirements");
  const ObjectId haz_pkg = m.create_hazard_package("auvB-hazards");
  const ObjectId comp_pkg = m.create_component_package("auvB-design");
  m.create_requirement(req_pkg, "FR1", "Maintain commanded depth and heading", "QM");
  m.create_requirement(req_pkg, "FR2", "Surface on loss of mission control", "QM");
  m.create_requirement(req_pkg, "FR3", "Log navigation state at 10 Hz", "QM");
  const ObjectId h1 = m.create_hazard(haz_pkg, "H1", "S3", 1e-6, "ASIL-B");
  m.add_cause(h1, "C1", "control-unit failure during dive");
  const ObjectId h2 = m.create_hazard(haz_pkg, "H2", "S2", 1e-5, "ASIL-B");
  m.add_cause(h2, "C2", "erroneous actuation command");
  const ObjectId sr1 = m.create_safety_requirement(
      req_pkg, "SR1", "The control unit shall detect loss of control function", "ASIL-B",
      "detect control loss");
  m.cite(sr1, h1);
  const ObjectId sr2 = m.create_safety_requirement(
      req_pkg, "SR2", "Actuation commands shall be plausibility-checked", "ASIL-B",
      "check actuation");
  m.cite(sr2, h2);

  const ObjectId h3 = m.create_hazard(haz_pkg, "H3", "S2", 1e-5, "ASIL-A");
  m.add_cause(h3, "C3", "loss of telemetry during mission");

  const ObjectId system = m.create_component(comp_pkg, "AuvControlB");
  out.system = system;
  const ObjectId sys_in = m.add_io_node(system, "sensors", "in");
  const ObjectId sys_out = m.add_io_node(system, "actuation", "out");

  // Hardware: power conditioning, redundant sensor suites, redundant CAN
  // transceivers + buses, redundant CPUs, actuator drivers, housekeeping MCUs.
  const Leaf reg1 = add_leaf(m, system, "B.REG1", "PowerReg", "hardware");
  const Leaf reg2 = add_leaf(m, system, "B.REG2", "PowerReg", "hardware");
  const Leaf d1 = add_leaf(m, system, "B.D1", "Diode", "hardware");
  const Leaf sw1 = add_leaf(m, system, "B.SW1", "Switch", "hardware");
  const Leaf gps1 = add_leaf(m, system, "B.GPS1", "Sensor", "hardware");
  const Leaf imu1 = add_leaf(m, system, "B.IMU1", "Sensor", "hardware");
  const Leaf imu2 = add_leaf(m, system, "B.IMU2", "Sensor", "hardware");
  const Leaf dep1 = add_leaf(m, system, "B.DEPTH1", "Sensor", "hardware");
  const Leaf dep2 = add_leaf(m, system, "B.DEPTH2", "Sensor", "hardware");
  const Leaf can1 = add_leaf(m, system, "B.CAN1", "BusIF", "hardware");
  const Leaf can2 = add_leaf(m, system, "B.CAN2", "BusIF", "hardware");
  const Leaf bus1 = add_leaf(m, system, "B.BUS1", "BusIF", "hardware");
  const Leaf cpu1 = add_leaf(m, system, "B.CPU1", "CPU", "hardware");
  const Leaf cpu2 = add_leaf(m, system, "B.CPU2", "CPU", "hardware");
  const Leaf act1 = add_leaf(m, system, "B.ACT1", "Actuator", "hardware");
  const Leaf act2 = add_leaf(m, system, "B.ACT2", "Actuator", "hardware");
  const Leaf mc1 = add_leaf(m, system, "B.MC1", "MC", "hardware");
  const Leaf wdg1 = add_leaf(m, system, "B.WDG1", "MC", "hardware");

  // Software (allocated to the CPUs): mission planner, nav filter, depth and
  // heading control loops (redundant per CPU), telemetry, fault detection,
  // logger, supervisor.
  const Leaf msn = add_leaf(m, system, "B.SW.MSN", "SWModule", "software");
  const Leaf nav = add_leaf(m, system, "B.SW.NAV", "SWModule", "software");
  const Leaf dpt = add_leaf(m, system, "B.SW.DPT", "SWModule", "software");
  const Leaf hdg = add_leaf(m, system, "B.SW.HDG", "SWModule", "software");
  const Leaf ctl1 = add_leaf(m, system, "B.SW.CTL1", "SWModule", "software");
  const Leaf ctl2 = add_leaf(m, system, "B.SW.CTL2", "SWModule", "software");
  const Leaf tlm = add_leaf(m, system, "B.SW.TLM", "SWModule", "software");
  const Leaf fdi = add_leaf(m, system, "B.SW.FDI", "SWModule", "software");
  const Leaf log = add_leaf(m, system, "B.SW.LOG", "SWModule", "software");
  const Leaf sup = add_leaf(m, system, "B.SW.SUP", "SWModule", "software");

  // Topology: power spine (REG1 serial; REG2 backs a diagnostic rail),
  // redundant sensing into redundant transceivers, single backbone bus,
  // redundant CPU+control chains, duplex actuation, housekeeping MCU serial
  // at the boundary.
  m.connect(system, sys_in, reg1.in);
  m.connect(system, reg1.out, d1.in);
  m.connect(system, d1.out, sw1.in);
  m.connect(system, sw1.out, gps1.in);
  m.connect(system, sw1.out, imu1.in);
  m.connect(system, sw1.out, imu2.in);
  m.connect(system, sw1.out, dep1.in);
  m.connect(system, sw1.out, dep2.in);
  m.connect(system, gps1.out, can1.in);
  m.connect(system, imu1.out, can1.in);
  m.connect(system, imu2.out, can2.in);
  m.connect(system, dep1.out, can1.in);
  m.connect(system, dep2.out, can2.in);
  m.connect(system, can1.out, bus1.in);
  m.connect(system, can2.out, bus1.in);
  m.connect(system, bus1.out, nav.in);
  m.connect(system, nav.out, msn.in);
  m.connect(system, msn.out, cpu1.in);
  m.connect(system, msn.out, cpu2.in);
  m.connect(system, cpu1.out, dpt.in);
  m.connect(system, cpu2.out, hdg.in);
  m.connect(system, dpt.out, ctl1.in);
  m.connect(system, hdg.out, ctl2.in);
  m.connect(system, ctl1.out, act1.in);
  m.connect(system, ctl2.out, act2.in);
  m.connect(system, act1.out, mc1.in);
  m.connect(system, act2.out, mc1.in);
  m.connect(system, mc1.out, sys_out);
  // Diagnostic / housekeeping side chains (sinks: they observe the control
  // path but are not redundant control paths).
  m.connect(system, reg2.out, wdg1.in);
  m.connect(system, cpu1.out, fdi.in);
  m.connect(system, fdi.out, sup.in);
  m.connect(system, sup.out, log.in);
  m.connect(system, log.out, tlm.in);

  m.add_external_reference(cpu1.component, "assets/reliability_workbook", "workbook",
                           "rows('Reliability').select(r | r.Component == 'MC')"
                           ".first().FIT");

  aggregate(m, system, synthetic_reliability());

  fill_functions_to(m, system, 230);
  out.element_count = m.size();
  return out;
}

SyntheticSystem make_scaled_architecture(size_t composites, size_t leaves, size_t width) {
  SyntheticSystem out;
  out.model = std::make_unique<SsamModel>();
  SsamModel& m = *out.model;
  if (width == 0) width = 1;

  const ObjectId pkg = m.create_component_package("scaled-design");
  out.system = m.create_component(pkg, "System");
  const ObjectId sys_in = m.add_io_node(out.system, "System.in", "in");
  const ObjectId sys_out = m.add_io_node(out.system, "System.out", "out");

  // width == 1: the original serial chain (names unchanged). width > 1: each
  // stage holds `width` parallel redundant units, densely wired to the next
  // stage, so every stage is an order-`width` minimal cut.
  std::vector<ObjectId> previous{sys_in};
  for (size_t c = 0; c < composites; ++c) {
    std::vector<ObjectId> stage_outputs;
    for (size_t k = 0; k < width; ++k) {
      const std::string name = width == 1
                                   ? "Unit" + std::to_string(c)
                                   : "Unit" + std::to_string(c) + "_" + std::to_string(k);
      const ObjectId unit = m.create_component(out.system, name);
      m.obj(unit).set_real("fit", 20.0 + static_cast<double>(c % 7));
      m.obj(unit).set_string("blockType", "Subsystem");
      const ObjectId in = m.add_io_node(unit, name + ".in", "in");
      const ObjectId unit_out = m.add_io_node(unit, name + ".out", "out");
      m.add_failure_mode(unit, "Open", 0.4, "lossOfFunction");
      for (const ObjectId from : previous) m.connect(out.system, from, in);
      stage_outputs.push_back(unit_out);

      ObjectId inner_previous = in;
      for (size_t l = 0; l < leaves; ++l) {
        const std::string leaf_name = name + ".Leaf" + std::to_string(l);
        const ObjectId leaf = m.create_component(unit, leaf_name);
        m.obj(leaf).set_real("fit", 5.0 + static_cast<double>(l % 11));
        m.obj(leaf).set_string("blockType", l % 3 == 0 ? "Sensor" : "Resistor");
        const ObjectId leaf_in = m.add_io_node(leaf, leaf_name + ".in", "in");
        const ObjectId leaf_out = m.add_io_node(leaf, leaf_name + ".out", "out");
        const ObjectId open = m.add_failure_mode(leaf, "Open", 0.6, "lossOfFunction");
        m.add_failure_mode(leaf, "Short", 0.4, "erroneous");
        if (l % 4 == 0) {
          m.add_safety_mechanism(leaf, "Monitor-" + leaf_name, 0.9, 1.0, open);
        }
        m.connect(unit, inner_previous, leaf_in);
        inner_previous = leaf_out;
      }
      m.connect(unit, inner_previous, unit_out);
    }
    previous = std::move(stage_outputs);
  }
  for (const ObjectId from : previous) m.connect(out.system, from, sys_out);

  out.element_count = m.size();
  return out;
}

// ---------------------------------------------------------------------------

ScalabilitySource::ScalabilitySource(std::uint64_t count) : count_(count) {}

bool ScalabilitySource::next(
    const std::function<void(const model::MetaClass&,
                             const std::function<void(model::ModelObject&)>&)>& emit) {
  if (emitted_ >= count_) return false;
  const std::uint64_t i = emitted_++;
  const auto& component = ssam::metamodel().get(ssam::cls::Component);
  emit(component, [i](model::ModelObject& obj) {
    obj.set_real("fit", static_cast<double>(i % 50) + 1.0);
    obj.set_bool("safetyRelated", i % 7 == 0);
  });
  return true;
}

namespace {
double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}
}  // namespace

ScalabilityRun evaluate_full_load(std::uint64_t count, size_t memory_budget_bytes) {
  ScalabilityRun run;
  run.elements = count;
  model::FullLoadRepository repo(memory_budget_bytes);
  ScalabilitySource source(count);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    repo.load_from(source);
  } catch (const CapacityError& error) {
    run.loaded = false;
    run.failure = error.what();
    return run;
  }
  run.load_seconds = seconds_since(t0);
  run.loaded = true;

  const auto t1 = std::chrono::steady_clock::now();
  const auto& component = ssam::metamodel().get(ssam::cls::Component);
  repo.for_each_of(component, [&](const model::ModelObject& obj) {
    run.total_fit += obj.get_real("fit");
    if (obj.get_bool("safetyRelated")) ++run.safety_related;
  });
  run.query_seconds = seconds_since(t1);
  return run;
}

ScalabilityRun evaluate_indexed(std::uint64_t count) {
  ScalabilityRun run;
  run.elements = count;
  const auto& component = ssam::metamodel().get(ssam::cls::Component);
  model::IndexedRepository repo;
  // Aggregate-only columns: O(1) memory regardless of model size, so even
  // the paper's Set5 (569M elements) streams through.
  repo.index_attribute(component, "fit", /*retain_values=*/false);
  repo.index_attribute(component, "safetyRelated", /*retain_values=*/false);
  ScalabilitySource source(count);
  const auto t0 = std::chrono::steady_clock::now();
  repo.load_from(source);
  run.load_seconds = seconds_since(t0);
  run.loaded = true;

  const auto t1 = std::chrono::steady_clock::now();
  run.total_fit = repo.sum(component, "fit");
  run.safety_related = repo.count_true(component, "safetyRelated");
  run.query_seconds = seconds_since(t1);
  return run;
}

}  // namespace decisive::core
