#include "decisive/core/circuit_fmea.hpp"

#include <algorithm>
#include <cmath>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/sim/fault.hpp"

namespace decisive::core {

double observable_deviation(double before, double after, double absolute_floor) {
  const double reference = std::max(std::abs(before), absolute_floor);
  return std::abs(after - before) / reference;
}

namespace {

bool is_goal_observable(const CircuitFmeaOptions& options, const std::string& name) {
  if (options.safety_goal_observables.empty()) return true;
  return std::find(options.safety_goal_observables.begin(),
                   options.safety_goal_observables.end(),
                   name) != options.safety_goal_observables.end();
}

/// Classifies one injected fault by comparing operating points.
EffectClass classify(const CircuitFmeaOptions& options, const sim::OperatingPoint& baseline,
                     const sim::OperatingPoint& faulted) {
  bool goal_deviated = false;
  bool other_deviated = false;
  for (const auto& [name, before] : baseline.readings) {
    const auto it = faulted.readings.find(name);
    if (it == faulted.readings.end()) continue;
    const double deviation = observable_deviation(before, it->second, options.absolute_floor);
    if (deviation > options.relative_threshold) {
      if (is_goal_observable(options, name)) goal_deviated = true;
      else other_deviated = true;
    }
  }
  if (goal_deviated) return EffectClass::DVF;
  if (other_deviated) return EffectClass::IVF;
  return EffectClass::None;
}

}  // namespace

FmedaResult analyze_circuit(const sim::BuiltCircuit& built, const ReliabilityModel& reliability,
                            const SafetyMechanismModel* sm_model,
                            const CircuitFmeaOptions& options) {
  FmedaResult result;
  result.system = "circuit";

  // Step 1: Initialise — baseline operating point.
  const sim::OperatingPoint baseline = sim::dc_operating_point(built.circuit, options.solver);

  // Step 2: iterate components and their failure modes.
  for (const auto& component : built.components) {
    const ComponentReliability* entry = reliability.find(component.block_type);
    if (entry == nullptr) {
      result.warnings.push_back("component '" + component.path + "' of type '" +
                                component.block_type +
                                "' has no reliability data; skipped");
      continue;
    }
    for (const auto& mode : entry->modes) {
      FmedaRow row;
      row.component = component.path;
      row.component_type = entry->component_type;
      row.fit = entry->fit;
      row.failure_mode = mode.name;
      row.distribution = mode.distribution;

      sim::Fault fault;
      fault.element = component.element;
      try {
        fault.kind = sim::fault_kind_from_name(mode.name);
      } catch (const AnalysisError& error) {
        result.warnings.push_back("failure mode '" + mode.name + "' of '" + component.path +
                                  "': " + error.what());
        result.rows.push_back(std::move(row));
        continue;
      }

      try {
        const sim::Circuit faulted = sim::inject_fault(
            built.circuit, fault, options.solver.open_resistance,
            options.solver.closed_resistance);
        const sim::OperatingPoint after = sim::dc_operating_point(faulted, options.solver);
        row.effect = classify(options, baseline, after);
        row.safety_related = row.effect != EffectClass::None;
      } catch (const AnalysisError& error) {
        // Fault kind not applicable to this element kind (e.g. RamFailure on
        // a resistor): Algorithm-1-style warning.
        result.warnings.push_back("failure mode '" + mode.name + "' of '" + component.path +
                                  "': " + error.what());
      } catch (const SimulationError& error) {
        // The faulted circuit failed to converge — conservatively treat as a
        // violation and record why.
        row.safety_related = true;
        row.effect = EffectClass::DVF;
        result.warnings.push_back("fault '" + mode.name + "' on '" + component.path +
                                  "' did not converge (" + error.what() +
                                  "); conservatively marked safety-related");
      }

      // Step 4b: deploy the best applicable safety mechanism, if any.
      if (row.safety_related && sm_model != nullptr) {
        if (const SafetyMechanismSpec* sm = sm_model->best(component.block_type, mode.name)) {
          row.safety_mechanism = sm->name;
          row.sm_coverage = sm->coverage;
          row.sm_cost_hours = sm->cost_hours;
        }
      }
      result.rows.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace decisive::core
