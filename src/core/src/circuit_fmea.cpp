#include "decisive/core/circuit_fmea.hpp"

#include <algorithm>
#include <cmath>

#include "decisive/core/campaign.hpp"

namespace decisive::core {

double observable_deviation(double before, double after, double absolute_floor) {
  const double reference = std::max(std::abs(before), absolute_floor);
  return std::abs(after - before) / reference;
}

bool CircuitFmeaOptions::is_goal_observable(const std::string& name) const {
  if (safety_goal_observables.empty()) return true;
  return std::find(safety_goal_observables.begin(), safety_goal_observables.end(), name) !=
         safety_goal_observables.end();
}

FmedaResult analyze_circuit(const sim::BuiltCircuit& built, const ReliabilityModel& reliability,
                            const SafetyMechanismModel* sm_model,
                            const CircuitFmeaOptions& options) {
  return CampaignRunner(built, reliability, sm_model, options).run();
}

}  // namespace decisive::core
