#include "decisive/core/analyst.hpp"

#include <chrono>
#include <map>
#include <set>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/base/table.hpp"
#include "decisive/core/sm_search.hpp"

namespace decisive::core {

namespace {

/// Rows whose judgement is genuinely subjective: failure modes that do not
/// plainly sever the function (shorts, drifts, degradations). Loss-style
/// modes are unambiguous for a trained analyst.
bool is_equivocal(const FmedaRow& row) {
  const std::string mode = to_lower(row.failure_mode);
  return mode != "open" && mode != "loss of function" && mode != "loss" &&
         mode != "omission" && mode != "no output";
}

size_t component_count(const FmedaResult& fmea) {
  std::set<std::string> names;
  for (const auto& row : fmea.rows) names.insert(row.component);
  return names.size();
}

double full_manual_pass_minutes(const FmedaResult& fmea, size_t element_count,
                                const AnalystProfile& p) {
  return p.speed_factor * (static_cast<double>(element_count) * p.design_review_min_per_element +
                           static_cast<double>(component_count(fmea)) *
                               p.reliability_min_per_component +
                           static_cast<double>(fmea.rows.size()) * p.fmea_min_per_row);
}

}  // namespace

ManualFmea simulate_manual_fmea(const FmedaResult& ground_truth, size_t element_count,
                                const AnalystProfile& profile) {
  Rng rng(profile.seed);
  ManualFmea outcome;
  outcome.result = ground_truth;

  // Safety-related row counts per component, to keep the component-level
  // verdict invariant under row flips.
  std::map<std::string, int> safety_rows_per_component;
  for (const auto& row : ground_truth.rows) {
    if (row.safety_related) ++safety_rows_per_component[row.component];
  }

  for (auto& row : outcome.result.rows) {
    if (!is_equivocal(row)) continue;
    if (!rng.chance(profile.equivocal_misjudge_prob)) continue;
    if (row.safety_related) {
      // A false negative is only possible when the component keeps another
      // safety-related mode (otherwise the component set would change).
      if (safety_rows_per_component[row.component] >= 2) {
        row.safety_related = false;
        row.effect = EffectClass::None;
        --safety_rows_per_component[row.component];
        ++outcome.disagreeing_rows;
      }
    } else {
      // A false positive is only allowed on components that are already
      // safety-related.
      if (safety_rows_per_component[row.component] >= 1) {
        row.safety_related = true;
        row.effect = EffectClass::IVF;
        ++safety_rows_per_component[row.component];
        ++outcome.disagreeing_rows;
      }
    }
  }

  outcome.minutes = full_manual_pass_minutes(ground_truth, element_count, profile);
  outcome.disagreement = ground_truth.rows.empty()
                             ? 0.0
                             : static_cast<double>(outcome.disagreeing_rows) /
                                   static_cast<double>(ground_truth.rows.size());
  return outcome;
}

DesignSession simulate_manual_design(const FmedaResult& undeployed_fmea,
                                     const SafetyMechanismModel& catalogue,
                                     std::string_view target_asil, size_t element_count,
                                     const AnalystProfile& profile) {
  Rng rng(profile.seed ^ 0xD5C151F3ULL);
  const double target = spfm_target(target_asil);

  DesignSession session;
  FmedaResult current = undeployed_fmea;
  session.minutes += full_manual_pass_minutes(current, element_count, profile);
  session.iterations = 1;
  session.final_spfm = current.spfm();

  constexpr int kMaxIterations = 12;
  while (session.final_spfm < target && session.iterations < kMaxIterations) {
    // The analyst hand-picks mechanisms for a random portion of the still
    // uncovered safety-related rows (manual searches are incomplete).
    const double handled_fraction = rng.uniform(0.65, 0.95);
    size_t handled = 0;
    bool progress = false;
    for (auto& row : current.rows) {
      if (!row.safety_related || !row.safety_mechanism.empty()) continue;
      if (!rng.chance(handled_fraction)) continue;
      ++handled;
      if (const SafetyMechanismSpec* sm =
              catalogue.best(row.component_type, row.failure_mode)) {
        row.safety_mechanism = sm->name;
        row.sm_coverage = sm->coverage;
        row.sm_cost_hours = sm->cost_hours;
        progress = true;
      }
    }
    session.minutes += profile.speed_factor *
                       (static_cast<double>(handled) * profile.sm_min_per_safety_row +
                        profile.change_mgmt_min_per_iteration);
    // Partial re-analysis of the updated design.
    session.minutes += profile.rework_fraction *
                       full_manual_pass_minutes(current, element_count, profile);
    ++session.iterations;
    session.final_spfm = current.spfm();
    if (!progress && session.final_spfm < target) {
      // Catalogue exhausted for the remaining rows — the analyst gives up.
      bool any_open = false;
      for (const auto& row : current.rows) {
        if (row.safety_related && row.safety_mechanism.empty() &&
            catalogue.best(row.component_type, row.failure_mode) != nullptr) {
          any_open = true;
          break;
        }
      }
      if (!any_open) break;
    }
  }
  session.target_met = session.final_spfm >= target;
  return session;
}

DesignSession run_automated_design(const std::function<FmedaResult()>& run_tool,
                                   const SafetyMechanismModel& catalogue,
                                   std::string_view target_asil,
                                   const AnalystProfile& profile) {
  Rng rng(profile.seed ^ 0xA07011EDULL);
  const double target = spfm_target(target_asil);

  DesignSession session;
  session.minutes = profile.speed_factor * profile.tool_setup_min;

  constexpr int kMaxIterations = 12;
  FmedaResult current;
  do {
    const auto start = std::chrono::steady_clock::now();
    current = run_tool();
    const auto elapsed = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - start);
    session.minutes += elapsed.count() / 60.0;  // measured tool time
    session.minutes += profile.speed_factor * (profile.result_review_min_per_iteration +
                                               profile.auto_change_mgmt_min_per_iteration);
    ++session.iterations;
    session.final_spfm = current.spfm();

    if (session.final_spfm < target) {
      // Let the tool deploy the missing mechanisms automatically.
      if (const auto deployment = greedy_reach_asil(current, catalogue, target_asil)) {
        current = apply_deployment(current, *deployment);
        session.final_spfm = current.spfm();
      } else {
        break;  // unreachable target
      }
    }
  } while (session.final_spfm < target && session.iterations < kMaxIterations);

  // Iteration is cheap with automation: analysts run extra exploratory
  // iterations (cost/coverage what-ifs) regardless of system complexity —
  // the paper observes iteration counts of 2–6 under automation.
  const int exploratory = 1 + static_cast<int>(rng.below(4));
  for (int i = 0; i < exploratory; ++i) {
    session.minutes += profile.speed_factor * (profile.result_review_min_per_iteration * 0.5 +
                                               profile.auto_change_mgmt_min_per_iteration * 0.5);
    ++session.iterations;
  }

  session.target_met = session.final_spfm >= target;
  return session;
}

}  // namespace decisive::core
