#include "decisive/core/graph_fmea.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/progress.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"
#include "decisive/ssam/graph.hpp"

namespace decisive::core {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

/// Graph-FMEA instrumentation, cached once per process.
struct GraphFmeaMetrics {
  obs::Counter& runs;
  obs::Counter& units;
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  obs::Histogram& collect_seconds;
  obs::Histogram& analyze_seconds;
  obs::Histogram& emit_seconds;
  obs::Histogram& unit_seconds;

  static GraphFmeaMetrics& get() {
    auto& registry = obs::Registry::global();
    static GraphFmeaMetrics metrics{
        registry.counter("decisive_graph_fmea_runs_total"),
        registry.counter("decisive_graph_fmea_units_total"),
        registry.counter("decisive_graph_fmea_unit_cache_hits_total"),
        registry.counter("decisive_graph_fmea_unit_cache_misses_total"),
        registry.histogram("decisive_graph_fmea_collect_seconds"),
        registry.histogram("decisive_graph_fmea_analyze_seconds"),
        registry.histogram("decisive_graph_fmea_emit_seconds"),
        registry.histogram("decisive_graph_fmea_unit_seconds")};
    return metrics;
  }
};

bool is_loss_nature(const GraphFmeaOptions& options, const std::string& nature) {
  return std::any_of(options.loss_natures.begin(), options.loss_natures.end(),
                     [&](const std::string& loss) { return iequals(loss, nature); });
}

/// The highest-coverage SafetyMechanism modelled on `component` that covers
/// `failure_mode` (an SM with no `covers` targets covers every mode of its
/// component).
struct ModelledSm {
  std::string name;
  double coverage = 0.0;
  double cost_hours = 0.0;
};

std::optional<ModelledSm> best_modelled_sm(const SsamModel& ssam, ObjectId component,
                                           ObjectId failure_mode) {
  std::optional<ModelledSm> best;
  for (const ObjectId sm : ssam.obj(component).refs("safetyMechanisms")) {
    const auto& sm_obj = ssam.obj(sm);
    const auto& covers = sm_obj.refs("covers");
    const bool applies =
        covers.empty() || std::find(covers.begin(), covers.end(), failure_mode) != covers.end();
    if (!applies) continue;
    const double coverage = sm_obj.get_real("coverage");
    if (!best.has_value() || coverage > best->coverage) {
      best = ModelledSm{sm_obj.get_string("name"), coverage, sm_obj.get_real("costHours")};
    }
  }
  return best;
}

/// Sets (or refreshes) the auto-attached FailureEffect of a failure mode.
/// Idempotent: re-running the analysis updates the effect created by a
/// previous run instead of accumulating duplicates on the model.
void attach_effect(SsamModel& ssam, ObjectId failure_mode, EffectClass effect) {
  for (const ObjectId existing : ssam.obj(failure_mode).refs("effects")) {
    auto& fe = ssam.obj(existing);
    if (fe.get_string("name") == "effect") {
      fe.set_string("classification", std::string(to_string(effect)));
      return;
    }
  }
  auto& fe = ssam.repo().create(ssam.meta().get(ssam::cls::FailureEffect));
  fe.set_string("name", "effect");
  fe.set_string("classification", std::string(to_string(effect)));
  ssam.obj(failure_mode).add_ref("effects", fe.id());
}

/// One composite component the recursive walk analyses: the component plus
/// its qualified path from the analysis root.
struct Unit {
  ObjectId component = model::kNullObject;
  std::string path;
};

/// Per-unit result of the (parallelisable) analysis phase.
struct UnitAnalysis {
  std::optional<ssam::SinglePointAnalysis> analysis;
  std::exception_ptr error;
};

/// Phase A (serial): collect the analysis units in the exact pre-order the
/// recursive walk visits them. Iterative — nesting depth is bounded by heap.
std::vector<Unit> collect_units(const SsamModel& ssam, ObjectId root,
                                const GraphFmeaOptions& options) {
  std::vector<Unit> units;
  if (ssam.obj(root).refs("subcomponents").empty()) return units;

  std::vector<Unit> stack{{root, ssam.obj(root).get_string("name")}};
  while (!stack.empty()) {
    Unit unit = std::move(stack.back());
    stack.pop_back();
    if (!options.recursive) {
      units.push_back(std::move(unit));
      break;
    }
    const auto& subs = ssam.obj(unit.component).refs("subcomponents");
    // Children in reverse so the LIFO pops them in declaration order.
    for (auto it = subs.rbegin(); it != subs.rend(); ++it) {
      const auto& sub_obj = ssam.obj(*it);
      if (sub_obj.refs("subcomponents").empty()) continue;
      if (sub_obj.refs("ioNodes").empty()) continue;  // warned about in phase C
      stack.push_back({*it, unit.path + "/" + sub_obj.get_string("name")});
    }
    units.push_back(std::move(unit));
  }
  return units;
}

/// Phase B: build each unit's graph and run the single-point analysis —
/// independent const reads of the model, safe to run on a pool. Units with a
/// cached record (`cached[i] != nullptr`) are skipped: their verdicts will be
/// replayed, so paying for the graph again would defeat the cache. Errors are
/// captured per unit; the caller rethrows the first one in walk order so
/// behaviour is deterministic for any job count.
std::vector<UnitAnalysis> analyze_units(const SsamModel& ssam, const std::vector<Unit>& units,
                                        const GraphFmeaOptions& options,
                                        const std::vector<const UnitRecord*>& cached) {
  std::vector<UnitAnalysis> analyses(units.size());
  std::vector<size_t> pending;
  pending.reserve(units.size());
  for (size_t i = 0; i < units.size(); ++i) {
    if (cached[i] == nullptr) pending.push_back(i);
  }

  unsigned jobs = options.jobs > 0 ? static_cast<unsigned>(options.jobs)
                                   : std::max(1u, std::thread::hardware_concurrency());
  const unsigned jobs_configured = jobs;
  if (pending.size() < jobs) jobs = static_cast<unsigned>(std::max<size_t>(pending.size(), 1));

  obs::ProgressReporterOptions reporter_options;
  reporter_options.path = options.heartbeat_path;
  reporter_options.phase = "graph-fmea";
  reporter_options.total = units.size();
  reporter_options.workers = static_cast<int>(jobs_configured);
  reporter_options.interval_seconds = options.heartbeat_interval_seconds;
  obs::ProgressReporter reporter(reporter_options);
  for (size_t i = 0; i < units.size(); ++i) {
    if (cached[i] != nullptr) reporter.task_done(0, "CacheHit");
  }

  const auto analyze_one = [&](size_t i, int worker_id) {
    obs::Span span("graph_fmea.unit", &GraphFmeaMetrics::get().unit_seconds);
    try {
      const ssam::ComponentGraph graph = ssam::build_graph(ssam, units[i].component);
      analyses[i].analysis.emplace(graph);
    } catch (...) {
      analyses[i].error = std::current_exception();
    }
    reporter.task_done(worker_id, analyses[i].error ? "Failed" : "Analyzed");
  };

  if (jobs <= 1) {
    for (const size_t i : pending) analyze_one(i, 0);
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&](int worker_id) {
      for (size_t p = next.fetch_add(1); p < pending.size(); p = next.fetch_add(1)) {
        analyze_one(pending[p], worker_id);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker, static_cast<int>(t));
    for (auto& thread : pool) thread.join();
  }
  reporter.finish();

  for (const auto& ua : analyses) {
    if (ua.error) std::rethrow_exception(ua.error);
  }
  return analyses;
}

/// Produces the record for one subcomponent of one unit (Algorithm 1 lines
/// 5–12): rows, warnings and verdict write-backs, in emission order. Pure
/// function of the model state — what the unit fingerprint covers — so the
/// record can be cached and replayed on a later run.
UnitSubRecord produce_sub_record(const SsamModel& ssam, const Unit& unit,
                                 const ssam::SinglePointAnalysis& analysis, ObjectId sub,
                                 const GraphFmeaOptions& options) {
  UnitSubRecord record;
  record.sub = sub;
  const std::string sub_name = ssam.obj(sub).get_string("name");
  const bool single_point = analysis.is_single_point(sub);

  const std::vector<ObjectId> failure_modes = ssam.obj(sub).refs("failureModes");
  for (const ObjectId fm : failure_modes) {
    FmedaRow row;
    row.component = sub_name;
    row.component_type = ssam.obj(sub).get_string("blockType", sub_name);
    row.component_id = sub;
    row.component_path = unit.path + "/" + sub_name;
    row.fit = ssam.obj(sub).get_real("fit");
    row.failure_mode = ssam.obj(fm).get_string("name");
    row.distribution = ssam.obj(fm).get_real("distribution");

    const std::string nature = ssam.obj(fm).get_string("nature");
    if (is_loss_nature(options, nature)) {
      // Algorithm 1 lines 5–8.
      row.safety_related = single_point;
      row.effect = single_point ? EffectClass::DVF : EffectClass::None;
    } else {
      const std::vector<ObjectId> affected = ssam.obj(fm).refs("affectedComponents");
      if (!affected.empty()) {
        // Figure 9: explicit affected-component traceability lets the FMEA
        // infer single-point faults for non-loss modes.
        bool any_critical = false;
        for (const ObjectId target : affected) {
          if (target == unit.component || analysis.is_single_point(target)) {
            any_critical = true;
            break;
          }
        }
        row.safety_related = any_critical;
        row.effect = any_critical ? EffectClass::IVF : EffectClass::None;
      } else {
        // Algorithm 1 line 11.
        record.warnings.push_back("failure mode '" + row.failure_mode + "' of '" + sub_name +
                                  "' has nature '" + nature +
                                  "' and no affected-component traceability; manual review "
                                  "required");
      }
    }

    if (row.safety_related && options.apply_modelled_mechanisms) {
      if (const auto sm = best_modelled_sm(ssam, sub, fm)) {
        row.safety_mechanism = sm->name;
        row.sm_coverage = sm->coverage;
        row.sm_cost_hours = sm->cost_hours;
      }
    }

    record.verdicts.push_back({fm, row.safety_related, row.effect});
    record.rows.push_back(std::move(row));
  }

  // The walk-level diagnostic belongs to the sub record too, so a cached
  // replay reproduces it at the same position in the warning stream.
  if (options.recursive && !ssam.obj(sub).refs("subcomponents").empty() &&
      ssam.obj(sub).refs("ioNodes").empty()) {
    record.warnings.push_back("composite subcomponent '" + sub_name +
                              "' has no IONodes; cannot recurse");
  }
  return record;
}

/// Applies one sub record: appends its rows/warnings to the result and
/// writes the verdicts back into the model (component safety analysis model,
/// Step 4a output). Both the fresh and the cached path funnel through here,
/// which is what makes incremental output byte-identical by construction.
void apply_sub_record(SsamModel& ssam, const UnitSubRecord& record, FmedaResult& result) {
  result.rows.insert(result.rows.end(), record.rows.begin(), record.rows.end());
  result.warnings.insert(result.warnings.end(), record.warnings.begin(), record.warnings.end());
  for (const UnitVerdict& verdict : record.verdicts) {
    ssam.obj(verdict.failure_mode).set_bool("safetyRelated", verdict.safety_related);
    attach_effect(ssam, verdict.failure_mode, verdict.effect);
  }
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

FmedaResult analyze_component(SsamModel& ssam, ObjectId component,
                              const GraphFmeaOptions& options, UnitResultCache* cache,
                              GraphFmeaStats* stats) {
  GraphFmeaMetrics& metrics = GraphFmeaMetrics::get();
  metrics.runs.add();
  FmedaResult result;
  result.system = ssam.obj(component).get_string("name");

  // Phase A: enumerate the composite components the walk will visit, and ask
  // the cache which of them it can replay.
  const auto collect_start = std::chrono::steady_clock::now();
  std::vector<Unit> units;
  std::vector<const UnitRecord*> cached;
  {
    obs::Span collect_span("graph_fmea.collect", &metrics.collect_seconds);
    units = collect_units(ssam, component, options);
    cached.assign(units.size(), nullptr);
    if (cache != nullptr) {
      for (size_t i = 0; i < units.size(); ++i) {
        cached[i] = cache->lookup(units[i].component, units[i].path);
      }
    }
  }
  size_t hit_count = 0;
  for (const auto* record : cached) hit_count += record != nullptr ? 1 : 0;
  metrics.units.add(units.size());
  metrics.cache_hits.add(hit_count);
  metrics.cache_misses.add(units.size() - hit_count);
  if (stats != nullptr) {
    stats->units = units.size();
    stats->cache_hits = hit_count;
    stats->cache_misses = units.size() - hit_count;
    stats->collect_seconds = seconds_since(collect_start);
  }

  // Phase B: per-unit single-point analyses (parallel, const model reads) —
  // cache hits skip the phase entirely, which is where the incremental
  // speed-up comes from.
  const auto analyze_start = std::chrono::steady_clock::now();
  std::vector<UnitAnalysis> analyses;
  {
    obs::Span analyze_span("graph_fmea.analyze", &metrics.analyze_seconds);
    analyses = analyze_units(ssam, units, options, cached);
  }
  if (stats != nullptr) stats->analyze_seconds = seconds_since(analyze_start);
  std::map<ObjectId, size_t> unit_index;
  for (size_t i = 0; i < units.size(); ++i) unit_index[units[i].component] = i;

  // Phase C (serial): replay the recursive walk of Algorithm 1 with an
  // explicit stack, emitting rows/warnings and mutating the model in the
  // exact order the old recursion used — deterministic for any job count and
  // any cache-hit pattern.
  const auto emit_start = std::chrono::steady_clock::now();
  obs::Span emit_span("graph_fmea.emit", &metrics.emit_seconds);
  std::vector<UnitRecord> fresh(units.size());  ///< records under construction
  struct Frame {
    size_t unit;
    std::vector<ObjectId> subs;  ///< copied: write-backs create repo objects
    size_t next = 0;
  };
  std::vector<Frame> stack;
  if (!units.empty()) {
    stack.push_back({0, ssam.obj(units[0].component).refs("subcomponents"), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.subs.size()) {
      stack.pop_back();
      continue;
    }
    const size_t unit_i = frame.unit;
    const size_t sub_i = frame.next;
    const ObjectId sub = frame.subs[frame.next++];
    if (cached[unit_i] != nullptr) {
      const UnitRecord& record = *cached[unit_i];
      if (sub_i >= record.subs.size() || record.subs[sub_i].sub != sub) {
        throw AnalysisError("stale unit cache record for '" + units[unit_i].path +
                            "' — the cache returned a record for a different model state");
      }
      apply_sub_record(ssam, record.subs[sub_i], result);
    } else {
      fresh[unit_i].subs.push_back(
          produce_sub_record(ssam, units[unit_i], *analyses[unit_i].analysis, sub, options));
      apply_sub_record(ssam, fresh[unit_i].subs.back(), result);
    }

    // Algorithm 1 line 14: repeat for composite subcomponents.
    if (options.recursive && !ssam.obj(sub).refs("subcomponents").empty() &&
        !ssam.obj(sub).refs("ioNodes").empty()) {
      const size_t child = unit_index.at(sub);
      stack.push_back({child, ssam.obj(sub).refs("subcomponents"), 0});
    }
  }
  if (cache != nullptr) {
    for (size_t i = 0; i < units.size(); ++i) {
      if (cached[i] != nullptr) continue;
      fresh[i].component = units[i].component;
      fresh[i].path = units[i].path;
      cache->store(std::move(fresh[i]));
    }
  }
  if (stats != nullptr) stats->emit_seconds = seconds_since(emit_start);

  if (!result.has_safety_related()) {
    result.warnings.push_back(
        "no safety-related hardware identified; the SPFM denominator is empty and spfm() "
        "reports 1.0 by convention — this is not an ASIL-D claim");
  }
  return result;
}

}  // namespace decisive::core
