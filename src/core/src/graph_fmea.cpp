#include "decisive/core/graph_fmea.hpp"

#include <algorithm>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/ssam/graph.hpp"

namespace decisive::core {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

bool is_loss_nature(const GraphFmeaOptions& options, const std::string& nature) {
  return std::any_of(options.loss_natures.begin(), options.loss_natures.end(),
                     [&](const std::string& loss) { return iequals(loss, nature); });
}

/// The highest-coverage SafetyMechanism modelled on `component` that covers
/// `failure_mode` (an SM with no `covers` targets covers every mode of its
/// component).
struct ModelledSm {
  std::string name;
  double coverage = 0.0;
  double cost_hours = 0.0;
};

std::optional<ModelledSm> best_modelled_sm(const SsamModel& ssam, ObjectId component,
                                           ObjectId failure_mode) {
  std::optional<ModelledSm> best;
  for (const ObjectId sm : ssam.obj(component).refs("safetyMechanisms")) {
    const auto& sm_obj = ssam.obj(sm);
    const auto& covers = sm_obj.refs("covers");
    const bool applies =
        covers.empty() || std::find(covers.begin(), covers.end(), failure_mode) != covers.end();
    if (!applies) continue;
    const double coverage = sm_obj.get_real("coverage");
    if (!best.has_value() || coverage > best->coverage) {
      best = ModelledSm{sm_obj.get_string("name"), coverage, sm_obj.get_real("costHours")};
    }
  }
  return best;
}

void attach_effect(SsamModel& ssam, ObjectId failure_mode, EffectClass effect) {
  auto& repo = ssam.repo();
  auto& fe = repo.create(ssam.meta().get(ssam::cls::FailureEffect));
  fe.set_string("name", "effect");
  fe.set_string("classification", std::string(to_string(effect)));
  ssam.obj(failure_mode).add_ref("effects", fe.id());
}

void analyze_into(SsamModel& ssam, ObjectId component, const GraphFmeaOptions& options,
                  FmedaResult& result) {
  const auto& comp = ssam.obj(component);
  if (comp.refs("subcomponents").empty()) return;

  const ssam::ComponentGraph graph = ssam::build_graph(ssam, component);
  const auto paths = ssam::enumerate_paths(graph, options.max_paths);

  for (const ObjectId sub : comp.refs("subcomponents")) {
    const auto& sub_obj = ssam.obj(sub);
    const std::string sub_name = sub_obj.get_string("name");
    const bool single_point = ssam::on_all_paths(graph, paths, sub);

    for (const ObjectId fm : sub_obj.refs("failureModes")) {
      auto& fm_obj = ssam.obj(fm);
      FmedaRow row;
      row.component = sub_name;
      row.component_type = sub_obj.get_string("blockType", sub_name);
      row.fit = sub_obj.get_real("fit");
      row.failure_mode = fm_obj.get_string("name");
      row.distribution = fm_obj.get_real("distribution");

      const std::string nature = fm_obj.get_string("nature");
      if (is_loss_nature(options, nature)) {
        // Algorithm 1 lines 5–8.
        row.safety_related = single_point;
        row.effect = single_point ? EffectClass::DVF : EffectClass::None;
      } else {
        const auto& affected = fm_obj.refs("affectedComponents");
        if (!affected.empty()) {
          // Figure 9: explicit affected-component traceability lets the FMEA
          // infer single-point faults for non-loss modes.
          bool any_critical = false;
          for (const ObjectId target : affected) {
            if (target == component || ssam::on_all_paths(graph, paths, target)) {
              any_critical = true;
              break;
            }
          }
          row.safety_related = any_critical;
          row.effect = any_critical ? EffectClass::IVF : EffectClass::None;
        } else {
          // Algorithm 1 line 11.
          result.warnings.push_back("failure mode '" + row.failure_mode + "' of '" + sub_name +
                                    "' has nature '" + nature +
                                    "' and no affected-component traceability; manual review "
                                    "required");
        }
      }

      if (row.safety_related && options.apply_modelled_mechanisms) {
        if (const auto sm = best_modelled_sm(ssam, sub, fm)) {
          row.safety_mechanism = sm->name;
          row.sm_coverage = sm->coverage;
          row.sm_cost_hours = sm->cost_hours;
        }
      }

      // Write the verdict back into the model (component safety analysis
      // model, Step 4a output).
      fm_obj.set_bool("safetyRelated", row.safety_related);
      attach_effect(ssam, fm, row.effect);

      result.rows.push_back(std::move(row));
    }

    // Algorithm 1 line 14: repeat for composite subcomponents.
    if (options.recursive && !sub_obj.refs("subcomponents").empty()) {
      if (sub_obj.refs("ioNodes").empty()) {
        result.warnings.push_back("composite subcomponent '" + sub_name +
                                  "' has no IONodes; cannot recurse");
      } else {
        analyze_into(ssam, sub, options, result);
      }
    }
  }
}

}  // namespace

FmedaResult analyze_component(SsamModel& ssam, ObjectId component,
                              const GraphFmeaOptions& options) {
  FmedaResult result;
  result.system = ssam.obj(component).get_string("name");
  analyze_into(ssam, component, options, result);
  return result;
}

}  // namespace decisive::core
