#include "decisive/core/graph_fmea.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <map>
#include <optional>
#include <thread>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/ssam/graph.hpp"

namespace decisive::core {

namespace {

using ssam::ObjectId;
using ssam::SsamModel;

bool is_loss_nature(const GraphFmeaOptions& options, const std::string& nature) {
  return std::any_of(options.loss_natures.begin(), options.loss_natures.end(),
                     [&](const std::string& loss) { return iequals(loss, nature); });
}

/// The highest-coverage SafetyMechanism modelled on `component` that covers
/// `failure_mode` (an SM with no `covers` targets covers every mode of its
/// component).
struct ModelledSm {
  std::string name;
  double coverage = 0.0;
  double cost_hours = 0.0;
};

std::optional<ModelledSm> best_modelled_sm(const SsamModel& ssam, ObjectId component,
                                           ObjectId failure_mode) {
  std::optional<ModelledSm> best;
  for (const ObjectId sm : ssam.obj(component).refs("safetyMechanisms")) {
    const auto& sm_obj = ssam.obj(sm);
    const auto& covers = sm_obj.refs("covers");
    const bool applies =
        covers.empty() || std::find(covers.begin(), covers.end(), failure_mode) != covers.end();
    if (!applies) continue;
    const double coverage = sm_obj.get_real("coverage");
    if (!best.has_value() || coverage > best->coverage) {
      best = ModelledSm{sm_obj.get_string("name"), coverage, sm_obj.get_real("costHours")};
    }
  }
  return best;
}

/// Sets (or refreshes) the auto-attached FailureEffect of a failure mode.
/// Idempotent: re-running the analysis updates the effect created by a
/// previous run instead of accumulating duplicates on the model.
void attach_effect(SsamModel& ssam, ObjectId failure_mode, EffectClass effect) {
  for (const ObjectId existing : ssam.obj(failure_mode).refs("effects")) {
    auto& fe = ssam.obj(existing);
    if (fe.get_string("name") == "effect") {
      fe.set_string("classification", std::string(to_string(effect)));
      return;
    }
  }
  auto& fe = ssam.repo().create(ssam.meta().get(ssam::cls::FailureEffect));
  fe.set_string("name", "effect");
  fe.set_string("classification", std::string(to_string(effect)));
  ssam.obj(failure_mode).add_ref("effects", fe.id());
}

/// One composite component the recursive walk analyses: the component plus
/// its qualified path from the analysis root.
struct Unit {
  ObjectId component = model::kNullObject;
  std::string path;
};

/// Per-unit result of the (parallelisable) analysis phase.
struct UnitAnalysis {
  std::optional<ssam::SinglePointAnalysis> analysis;
  std::exception_ptr error;
};

/// Phase A (serial): collect the analysis units in the exact pre-order the
/// recursive walk visits them. Iterative — nesting depth is bounded by heap.
std::vector<Unit> collect_units(const SsamModel& ssam, ObjectId root,
                                const GraphFmeaOptions& options) {
  std::vector<Unit> units;
  if (ssam.obj(root).refs("subcomponents").empty()) return units;

  std::vector<Unit> stack{{root, ssam.obj(root).get_string("name")}};
  while (!stack.empty()) {
    Unit unit = std::move(stack.back());
    stack.pop_back();
    if (!options.recursive) {
      units.push_back(std::move(unit));
      break;
    }
    const auto& subs = ssam.obj(unit.component).refs("subcomponents");
    // Children in reverse so the LIFO pops them in declaration order.
    for (auto it = subs.rbegin(); it != subs.rend(); ++it) {
      const auto& sub_obj = ssam.obj(*it);
      if (sub_obj.refs("subcomponents").empty()) continue;
      if (sub_obj.refs("ioNodes").empty()) continue;  // warned about in phase C
      stack.push_back({*it, unit.path + "/" + sub_obj.get_string("name")});
    }
    units.push_back(std::move(unit));
  }
  return units;
}

/// Phase B: build each unit's graph and run the single-point analysis —
/// independent const reads of the model, safe to run on a pool. Errors are
/// captured per unit; the caller rethrows the first one in walk order so
/// behaviour is deterministic for any job count.
std::vector<UnitAnalysis> analyze_units(const SsamModel& ssam, const std::vector<Unit>& units,
                                        int jobs_option) {
  std::vector<UnitAnalysis> analyses(units.size());
  const auto analyze_one = [&](size_t i) {
    try {
      const ssam::ComponentGraph graph = ssam::build_graph(ssam, units[i].component);
      analyses[i].analysis.emplace(graph);
    } catch (...) {
      analyses[i].error = std::current_exception();
    }
  };

  unsigned jobs = jobs_option > 0 ? static_cast<unsigned>(jobs_option)
                                  : std::max(1u, std::thread::hardware_concurrency());
  if (units.size() < jobs) jobs = static_cast<unsigned>(std::max<size_t>(units.size(), 1));

  if (jobs <= 1) {
    for (size_t i = 0; i < units.size(); ++i) analyze_one(i);
  } else {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < units.size(); i = next.fetch_add(1)) {
        analyze_one(i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t) pool.emplace_back(worker);
    for (auto& thread : pool) thread.join();
  }

  for (const auto& ua : analyses) {
    if (ua.error) std::rethrow_exception(ua.error);
  }
  return analyses;
}

/// Emits the rows for one subcomponent of one unit (Algorithm 1 lines 5–12)
/// and writes the verdicts back into the model.
void emit_subcomponent(SsamModel& ssam, const Unit& unit,
                       const ssam::SinglePointAnalysis& analysis, ObjectId sub,
                       const GraphFmeaOptions& options, FmedaResult& result) {
  const std::string sub_name = ssam.obj(sub).get_string("name");
  const bool single_point = analysis.is_single_point(sub);

  const std::vector<ObjectId> failure_modes = ssam.obj(sub).refs("failureModes");
  for (const ObjectId fm : failure_modes) {
    FmedaRow row;
    row.component = sub_name;
    row.component_type = ssam.obj(sub).get_string("blockType", sub_name);
    row.component_id = sub;
    row.component_path = unit.path + "/" + sub_name;
    row.fit = ssam.obj(sub).get_real("fit");
    row.failure_mode = ssam.obj(fm).get_string("name");
    row.distribution = ssam.obj(fm).get_real("distribution");

    const std::string nature = ssam.obj(fm).get_string("nature");
    if (is_loss_nature(options, nature)) {
      // Algorithm 1 lines 5–8.
      row.safety_related = single_point;
      row.effect = single_point ? EffectClass::DVF : EffectClass::None;
    } else {
      const std::vector<ObjectId> affected = ssam.obj(fm).refs("affectedComponents");
      if (!affected.empty()) {
        // Figure 9: explicit affected-component traceability lets the FMEA
        // infer single-point faults for non-loss modes.
        bool any_critical = false;
        for (const ObjectId target : affected) {
          if (target == unit.component || analysis.is_single_point(target)) {
            any_critical = true;
            break;
          }
        }
        row.safety_related = any_critical;
        row.effect = any_critical ? EffectClass::IVF : EffectClass::None;
      } else {
        // Algorithm 1 line 11.
        result.warnings.push_back("failure mode '" + row.failure_mode + "' of '" + sub_name +
                                  "' has nature '" + nature +
                                  "' and no affected-component traceability; manual review "
                                  "required");
      }
    }

    if (row.safety_related && options.apply_modelled_mechanisms) {
      if (const auto sm = best_modelled_sm(ssam, sub, fm)) {
        row.safety_mechanism = sm->name;
        row.sm_coverage = sm->coverage;
        row.sm_cost_hours = sm->cost_hours;
      }
    }

    // Write the verdict back into the model (component safety analysis
    // model, Step 4a output).
    ssam.obj(fm).set_bool("safetyRelated", row.safety_related);
    attach_effect(ssam, fm, row.effect);

    result.rows.push_back(std::move(row));
  }
}

}  // namespace

FmedaResult analyze_component(SsamModel& ssam, ObjectId component,
                              const GraphFmeaOptions& options) {
  FmedaResult result;
  result.system = ssam.obj(component).get_string("name");

  // Phase A: enumerate the composite components the walk will visit.
  const std::vector<Unit> units = collect_units(ssam, component, options);

  // Phase B: per-unit single-point analyses (parallel, const model reads).
  const std::vector<UnitAnalysis> analyses = analyze_units(ssam, units, options.jobs);
  std::map<ObjectId, size_t> unit_index;
  for (size_t i = 0; i < units.size(); ++i) unit_index[units[i].component] = i;

  // Phase C (serial): replay the recursive walk of Algorithm 1 with an
  // explicit stack, emitting rows/warnings and mutating the model in the
  // exact order the old recursion used — deterministic for any job count.
  struct Frame {
    size_t unit;
    std::vector<ObjectId> subs;  ///< copied: write-backs create repo objects
    size_t next = 0;
  };
  std::vector<Frame> stack;
  if (!units.empty()) {
    stack.push_back({0, ssam.obj(units[0].component).refs("subcomponents"), 0});
  }
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next >= frame.subs.size()) {
      stack.pop_back();
      continue;
    }
    const size_t unit_i = frame.unit;
    const ObjectId sub = frame.subs[frame.next++];
    emit_subcomponent(ssam, units[unit_i], *analyses[unit_i].analysis, sub, options, result);

    // Algorithm 1 line 14: repeat for composite subcomponents.
    if (options.recursive && !ssam.obj(sub).refs("subcomponents").empty()) {
      if (ssam.obj(sub).refs("ioNodes").empty()) {
        result.warnings.push_back("composite subcomponent '" + ssam.obj(sub).get_string("name") +
                                  "' has no IONodes; cannot recurse");
      } else {
        const size_t child = unit_index.at(sub);
        stack.push_back({child, ssam.obj(sub).refs("subcomponents"), 0});
      }
    }
  }

  if (!result.has_safety_related()) {
    result.warnings.push_back(
        "no safety-related hardware identified; the SPFM denominator is empty and spfm() "
        "reports 1.0 by convention — this is not an ASIL-D claim");
  }
  return result;
}

}  // namespace decisive::core
