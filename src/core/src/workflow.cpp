#include "decisive/core/workflow.hpp"

#include <algorithm>
#include <map>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::core {

using ssam::ObjectId;

std::string nature_for_mode(std::string_view failure_mode_name) {
  const std::string mode = to_lower(trim(failure_mode_name));
  if (mode == "open" || mode == "loss of function" || mode == "loss" || mode == "omission" ||
      mode == "no output" || mode == "open circuit" || mode == "crash" || mode == "jam") {
    return "lossOfFunction";
  }
  if (mode.find("drift") != std::string::npos || mode.find("frequency") != std::string::npos ||
      mode.find("jitter") != std::string::npos || mode.find("degrad") != std::string::npos) {
    return "degraded";
  }
  return "erroneous";
}

DecisiveProcess::DecisiveProcess(ssam::SsamModel& model, std::string system_name)
    : model_(model),
      req_pkg_(model.create_requirement_package(system_name + "-requirements")),
      haz_pkg_(model.create_hazard_package(system_name + "-hazards")),
      comp_pkg_(model.create_component_package(system_name + "-design")),
      system_(model.create_component(comp_pkg_, system_name)) {}

void DecisiveProcess::define_system(std::string_view definition) {
  model_.obj(system_).set_string("description", std::string(definition));
}

ObjectId DecisiveProcess::add_function_requirement(std::string_view name,
                                                   std::string_view text) {
  return model_.create_requirement(req_pkg_, name, text, "QM");
}

ObjectId DecisiveProcess::identify_hazard(std::string_view name, std::string_view severity,
                                          double probability, std::string_view target_asil) {
  return model_.create_hazard(haz_pkg_, name, severity, probability, target_asil);
}

ObjectId DecisiveProcess::derive_safety_requirement(ObjectId hazard, std::string_view name,
                                                    std::string_view text,
                                                    std::string_view integrity_level) {
  const ObjectId req =
      model_.create_safety_requirement(req_pkg_, name, text, integrity_level, text);
  model_.cite(req, hazard);
  return req;
}

size_t DecisiveProcess::aggregate_reliability(const ReliabilityModel& reliability) {
  size_t populated = 0;
  for (const ObjectId component : model_.all_components_under(system_)) {
    auto& comp = model_.obj(component);
    if (!comp.refs("subcomponents").empty()) continue;  // data attaches to leaves
    const std::string type = comp.get_string("blockType", comp.get_string("name"));
    const ComponentReliability* entry = reliability.find(type);
    if (entry == nullptr) continue;
    comp.set_real("fit", entry->fit);
    if (!comp.refs("failureModes").empty()) {
      ++populated;
      continue;  // already aggregated in a previous iteration
    }
    for (const auto& mode : entry->modes) {
      const ObjectId fm =
          model_.add_failure_mode(component, mode.name, mode.distribution,
                                  nature_for_mode(mode.name));
      const std::string lowered = to_lower(mode.name);
      if (lowered.find("ram") != std::string::npos ||
          lowered.find("memory") != std::string::npos) {
        // RAM-style corruption affects the owning component's function:
        // record the traceability that lets Algorithm 1 infer criticality.
        model_.obj(fm).add_ref("affectedComponents", component);
      }
    }
    ++populated;
  }
  return populated;
}

FmedaResult DecisiveProcess::evaluate(const GraphFmeaOptions& options) {
  last_result_ = analyze_component(model_, system_, options);
  last_result_.system = model_.obj(system_).get_string("name");
  return last_result_;
}

std::optional<Deployment> DecisiveProcess::refine(const SafetyMechanismModel& catalogue,
                                                  std::string_view target_asil) {
  const auto deployment = greedy_reach_asil(last_result_, catalogue, target_asil);
  if (!deployment.has_value()) return std::nullopt;

  // Write the chosen mechanisms back into the SSAM model.
  for (const auto& choice : deployment->choices) {
    const FmedaRow& row = last_result_.rows[choice.row_index];
    // Prefer the row's stable identity — name lookup would pick the first of
    // several same-named components.
    const ObjectId component = row.component_id != 0
                                   ? ObjectId{row.component_id}
                                   : model_.find_by_name(ssam::cls::Component, row.component);
    if (component == model::kNullObject) continue;
    // Find the matching FailureMode child for `covers` traceability.
    ObjectId covered = model::kNullObject;
    for (const ObjectId fm : model_.obj(component).refs("failureModes")) {
      if (iequals(model_.obj(fm).get_string("name"), row.failure_mode)) {
        covered = fm;
        break;
      }
    }
    model_.add_safety_mechanism(component, choice.mechanism->name,
                                choice.mechanism->coverage, choice.mechanism->cost_hours,
                                covered);
  }
  last_result_ = apply_deployment(last_result_, *deployment);
  return deployment;
}

namespace {

/// Stringency ordering of integrity levels: QM < A < B < C < D.
int asil_rank(std::string_view asil) {
  std::string a = to_lower(trim(asil));
  if (starts_with(a, "asil-") || starts_with(a, "asil ")) a = a.substr(5);
  else if (starts_with(a, "asil")) a = a.substr(4);
  if (a == "a") return 1;
  if (a == "b") return 2;
  if (a == "c") return 3;
  if (a == "d") return 4;
  return 0;  // QM / unknown
}

}  // namespace

void DecisiveProcess::allocate_requirement(ObjectId requirement, ObjectId component) {
  if (!model_.obj(requirement).is_kind_of(model_.meta().get(ssam::cls::Requirement))) {
    throw ModelError("allocate_requirement expects a Requirement");
  }
  if (!model_.obj(component).is_kind_of(model_.meta().get(ssam::cls::Component))) {
    throw ModelError("allocate_requirement expects a Component target");
  }
  model_.cite(requirement, component);
  const std::string req_level = model_.obj(requirement).get_string("integrityLevel", "QM");
  const std::string comp_level = model_.obj(component).get_string("integrityLevel", "QM");
  if (asil_rank(req_level) > asil_rank(comp_level)) {
    model_.obj(component).set_string("integrityLevel", req_level);
  }
}

std::vector<std::string> DecisiveProcess::validate_safety_concept() const {
  std::vector<std::string> issues;
  const auto& component_cls = model_.meta().get(ssam::cls::Component);
  const auto& hazard_cls = model_.meta().get(ssam::cls::HazardousSituation);
  const auto& safety_req_cls = model_.meta().get(ssam::cls::SafetyRequirement);

  // 1. Every ASIL-rated safety requirement must be allocated to a component.
  for (const ObjectId element : model_.obj(req_pkg_).refs("elements")) {
    const auto& req = model_.obj(element);
    if (!req.is_kind_of(safety_req_cls)) continue;
    if (asil_rank(req.get_string("integrityLevel", "QM")) == 0) continue;
    bool allocated = false;
    for (const ObjectId cited : req.refs("cites")) {
      if (model_.obj(cited).is_kind_of(component_cls)) allocated = true;
    }
    if (!allocated) {
      issues.push_back("safety requirement '" + req.get_string("name") +
                       "' is not allocated to any component");
    }
  }

  // 2. Every hazard must be mitigated by some safety requirement citing it.
  for (const ObjectId element : model_.obj(haz_pkg_).refs("elements")) {
    const auto& hazard = model_.obj(element);
    if (!hazard.is_kind_of(hazard_cls)) continue;
    bool mitigated = false;
    model_.repo().for_each([&](const model::ModelObject& obj) {
      if (mitigated || !obj.is_kind_of(safety_req_cls)) return;
      const auto& cites = obj.refs("cites");
      if (std::find(cites.begin(), cites.end(), element) != cites.end()) mitigated = true;
    });
    if (!mitigated) {
      issues.push_back("hazard '" + hazard.get_string("name") +
                       "' has no safety requirement addressing it");
    }
  }

  // 3. Safety-related failure modes without diagnostic coverage.
  for (const ObjectId component : model_.all_components_under(system_)) {
    const auto& comp = model_.obj(component);
    for (const ObjectId fm : comp.refs("failureModes")) {
      if (!model_.obj(fm).get_bool("safetyRelated")) continue;
      bool covered = false;
      for (const ObjectId sm : comp.refs("safetyMechanisms")) {
        const auto& covers = model_.obj(sm).refs("covers");
        if (covers.empty() || std::find(covers.begin(), covers.end(), fm) != covers.end()) {
          covered = true;
        }
      }
      if (!covered) {
        issues.push_back("safety-related failure mode '" +
                         model_.obj(fm).get_string("name") + "' of '" +
                         comp.get_string("name") + "' has no safety mechanism");
      }
    }
  }
  return issues;
}

std::string DecisiveProcess::synthesise_safety_concept() const {
  std::string out = "Safety concept for '" + model_.obj(system_).get_string("name") + "'\n";
  out += "==========================================\n\n";

  out += "Safety requirements:\n";
  for (const ObjectId element : model_.obj(req_pkg_).refs("elements")) {
    const auto& req = model_.obj(element);
    if (!req.is_kind_of(model_.meta().get(ssam::cls::Requirement))) continue;
    out += "  - [" + req.get_string("integrityLevel", "QM") + "] " + req.get_string("name") +
           ": " + req.get_string("text") + "\n";
  }

  out += "\nHazards and mitigations:\n";
  for (const ObjectId element : model_.obj(haz_pkg_).refs("elements")) {
    const auto& haz = model_.obj(element);
    if (!haz.is_kind_of(model_.meta().get(ssam::cls::HazardousSituation))) continue;
    out += "  - " + haz.get_string("name") + " (severity " + haz.get_string("severity") +
           ", target " + haz.get_string("integrityLevel") + ")\n";
  }

  out += "\nDeployed safety mechanisms:\n";
  for (const ObjectId component : model_.all_components_under(system_)) {
    for (const ObjectId sm : model_.obj(component).refs("safetyMechanisms")) {
      const auto& sm_obj = model_.obj(sm);
      out += "  - " + sm_obj.get_string("name") + " on " +
             model_.obj(component).get_string("name") + " (coverage " +
             format_percent(sm_obj.get_real("coverage"), 0) + ", cost " +
             format_number(sm_obj.get_real("costHours"), 1) + " h)\n";
    }
  }

  out += "\nArchitecture metrics:\n";
  out += "  SPFM = " + format_percent(last_result_.spfm()) + " (" +
         last_result_.asil_label() + ")\n";
  out += "  Analysis outcomes: " + last_result_.outcome_summary() + "\n";
  return out;
}

DecisiveProcess::IterationReport DecisiveProcess::iterate_until(
    std::string_view target_asil, const SafetyMechanismModel& catalogue, int max_iterations) {
  IterationReport report;
  const double target = spfm_target(target_asil);
  while (report.iterations < max_iterations) {
    evaluate();
    ++report.iterations;
    report.spfm = last_result_.spfm();
    if (report.spfm >= target) break;
    if (!refine(catalogue, target_asil).has_value()) break;
    report.spfm = last_result_.spfm();
    if (report.spfm >= target) {
      // One confirmation iteration re-evaluates the refined model.
      evaluate();
      ++report.iterations;
      report.spfm = last_result_.spfm();
      break;
    }
  }
  report.target_met = report.spfm >= target;
  return report;
}

}  // namespace decisive::core
