#include "decisive/core/monitor.hpp"

#include <set>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::core {

using ssam::ObjectId;
using ssam::SsamModel;

namespace {

/// Hazard names reachable from a component's failure modes.
std::vector<std::string> hazards_of(const SsamModel& ssam, ObjectId component) {
  std::set<std::string> names;
  for (const ObjectId fm : ssam.obj(component).refs("failureModes")) {
    for (const ObjectId hazard : ssam.obj(fm).refs("hazards")) {
      names.insert(ssam.obj(hazard).get_string("name"));
    }
  }
  return {names.begin(), names.end()};
}

/// Checks contributed by one component (empty when static and not included,
/// or when no IONode declares limits).
std::vector<MonitorCheck> checks_of(const SsamModel& ssam, ObjectId component,
                                    bool include_static) {
  std::vector<MonitorCheck> out;
  const auto& comp = ssam.obj(component);
  if (!include_static && !comp.get_bool("dynamic")) return out;
  const std::string comp_name = comp.get_string("name");
  const auto hazards = hazards_of(ssam, component);
  for (const ObjectId node : comp.refs("ioNodes")) {
    const auto& io = ssam.obj(node);
    const bool has_lower = io.has("lowerLimit");
    const bool has_upper = io.has("upperLimit");
    if (!has_lower && !has_upper) continue;
    MonitorCheck check;
    check.id = comp_name + "." + io.get_string("name");
    check.component = component;
    check.io_node = node;
    if (has_lower) check.lower = io.get_real("lowerLimit");
    if (has_upper) check.upper = io.get_real("upperLimit");
    check.hazards = hazards;
    out.push_back(std::move(check));
  }
  return out;
}

}  // namespace

RuntimeMonitor RuntimeMonitor::generate(const SsamModel& ssam, ObjectId root,
                                        bool include_static) {
  RuntimeMonitor monitor;
  for (const auto& check : checks_of(ssam, root, include_static)) {
    monitor.checks_.push_back(check);
  }
  for (const ObjectId component : ssam.all_components_under(root)) {
    for (const auto& check : checks_of(ssam, component, include_static)) {
      monitor.checks_.push_back(check);
    }
  }
  return monitor;
}

RuntimeMonitor RuntimeMonitor::generate_all(const SsamModel& ssam, bool include_static) {
  RuntimeMonitor monitor;
  const auto& component_cls = ssam.meta().get(ssam::cls::Component);
  ssam.repo().for_each([&](const model::ModelObject& obj) {
    if (!obj.is_kind_of(component_cls)) return;
    for (const auto& check : checks_of(ssam, obj.id(), include_static)) {
      monitor.checks_.push_back(check);
    }
  });
  return monitor;
}

std::optional<MonitorViolation> RuntimeMonitor::feed(const std::string& check_id,
                                                     double value) {
  for (const auto& check : checks_) {
    if (check.id != check_id) continue;
    const std::uint64_t index = samples_++;
    if (check.lower.has_value() && value < *check.lower) {
      ++violations_;
      return MonitorViolation{check.id, value, *check.lower, true, check.hazards, index};
    }
    if (check.upper.has_value() && value > *check.upper) {
      ++violations_;
      return MonitorViolation{check.id, value, *check.upper, false, check.hazards, index};
    }
    return std::nullopt;
  }
  throw AnalysisError("unknown monitor check '" + check_id + "'");
}

std::vector<MonitorViolation> RuntimeMonitor::feed_frame(
    const std::map<std::string, double>& frame) {
  std::vector<MonitorViolation> violations;
  for (const auto& [id, value] : frame) {
    if (auto violation = feed(id, value)) violations.push_back(std::move(*violation));
  }
  return violations;
}

std::string RuntimeMonitor::to_text() const {
  std::string out = "Runtime monitor (" + std::to_string(checks_.size()) + " checks)\n";
  for (const auto& check : checks_) {
    out += "  " + check.id + ": ";
    if (check.lower.has_value()) out += format_number(*check.lower) + " <= ";
    out += "value";
    if (check.upper.has_value()) out += " <= " + format_number(*check.upper);
    if (!check.hazards.empty()) out += "   [hazards: " + join(check.hazards, ", ") + "]";
    out += '\n';
  }
  return out;
}

}  // namespace decisive::core
