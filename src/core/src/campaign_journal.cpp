#include "decisive/core/campaign_journal.hpp"

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "decisive/base/error.hpp"
#include "decisive/base/persist.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/core/campaign.hpp"

namespace decisive::core {

namespace {

constexpr const char* kJournalTag = "journal";
constexpr int kJournalVersion = 1;

/// Number of FmedaRow fields in one "row" record (journal_row_tokens).
constexpr size_t kRowFieldCount = 17;

/// Appends the framing checksum to a record body, producing the full line.
std::string seal_line(const std::string& body) {
  return body + ' ' + hash_to_hex(fnv1a64(body)) + '\n';
}

/// Verifies and strips the trailing checksum token of one line. Returns
/// false (leaving `tokens` untouched) on a short or mismatched line.
bool unseal_line(const std::string& line, std::vector<std::string>& tokens) {
  const auto checksum_pos = line.rfind(' ');
  if (checksum_pos == std::string::npos) return false;
  const std::string body = line.substr(0, checksum_pos);
  if (line.substr(checksum_pos + 1) != hash_to_hex(fnv1a64(body))) return false;
  tokens = split(body, ' ');
  return true;
}

std::string header_line(const CampaignJournalHeader& header) {
  std::ostringstream body;
  body << kJournalTag << ' ' << kJournalVersion << ' ' << hash_to_hex(header.fingerprint)
       << ' ' << header.task_count << ' ' << header.shard_index << ' ' << header.shard_count;
  return seal_line(body.str());
}

FaultOutcome outcome_from_token(const std::string& token) {
  const std::uint64_t value = u64_from_token(token);
  if (value >= kFaultOutcomeCount) throw ParseError("bad fault outcome '" + token + "'");
  return static_cast<FaultOutcome>(value);
}

EffectClass journal_effect_from_token(const std::string& token) {
  const std::uint64_t value = u64_from_token(token);
  if (value > 2) throw ParseError("bad effect class '" + token + "'");
  return static_cast<EffectClass>(value);
}

int int_from_token(const std::string& token) {
  return static_cast<int>(u64_from_token(token));
}

std::uint64_t u64_from_hex(const std::string& token) {
  if (token.empty() || token.size() > 16) throw ParseError("bad hash '" + token + "'");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 16);
  if (end == token.c_str() || *end != '\0') throw ParseError("bad hash '" + token + "'");
  return value;
}

}  // namespace

std::string journal_row_tokens(const FmedaRow& row) {
  std::ostringstream out;
  out << escape_token(row.component) << ' ' << escape_token(row.component_type) << ' '
      << row.component_id << ' ' << escape_token(row.component_path) << ' '
      << double_to_token(row.fit) << ' ' << escape_token(row.failure_mode) << ' '
      << double_to_token(row.distribution) << ' ' << (row.safety_related ? 1 : 0) << ' '
      << static_cast<int>(row.effect) << ' ' << escape_token(row.safety_mechanism) << ' '
      << double_to_token(row.sm_coverage) << ' ' << double_to_token(row.sm_cost_hours) << ' '
      << static_cast<int>(row.outcome) << ' ' << escape_token(row.outcome_detail) << ' '
      << row.solver_iterations << ' ' << row.ladder_rung << ' ' << row.retries;
  return out.str();
}

FmedaRow journal_row_from_tokens(const std::vector<std::string>& tokens, size_t first) {
  if (tokens.size() != first + kRowFieldCount) throw ParseError("bad row record arity");
  FmedaRow row;
  row.component = unescape_token(tokens[first + 0]);
  row.component_type = unescape_token(tokens[first + 1]);
  row.component_id = u64_from_token(tokens[first + 2]);
  row.component_path = unescape_token(tokens[first + 3]);
  row.fit = double_from_token(tokens[first + 4]);
  row.failure_mode = unescape_token(tokens[first + 5]);
  row.distribution = double_from_token(tokens[first + 6]);
  row.safety_related = u64_from_token(tokens[first + 7]) != 0;
  row.effect = journal_effect_from_token(tokens[first + 8]);
  row.safety_mechanism = unescape_token(tokens[first + 9]);
  row.sm_coverage = double_from_token(tokens[first + 10]);
  row.sm_cost_hours = double_from_token(tokens[first + 11]);
  row.outcome = outcome_from_token(tokens[first + 12]);
  row.outcome_detail = unescape_token(tokens[first + 13]);
  row.solver_iterations = int_from_token(tokens[first + 14]);
  row.ladder_rung = int_from_token(tokens[first + 15]);
  row.retries = int_from_token(tokens[first + 16]);
  return row;
}

CampaignJournalReplay replay_campaign_journal(const std::string& path,
                                              const CampaignJournalHeader* expected) {
  CampaignJournalReplay replay;
  if (!std::filesystem::exists(path)) {
    replay.note = "no journal at '" + path + "'";
    return replay;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot read campaign journal '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  // Walk the lines, tracking the byte offset of the end of the last line
  // whose checksum verified: everything after that offset is a torn or
  // corrupt tail to be trimmed before appending resumes.
  size_t offset = 0;
  bool saw_header = false;
  std::uint64_t line_number = 0;
  while (offset < content.size()) {
    const size_t newline = content.find('\n', offset);
    if (newline == std::string::npos) {
      // No terminator: a torn final line (crash mid-append).
      replay.dropped_lines += 1;
      replay.note = "torn tail trimmed at byte " + std::to_string(replay.valid_bytes);
      break;
    }
    const std::string line = content.substr(offset, newline - offset);
    ++line_number;
    std::vector<std::string> tokens;
    bool ok = unseal_line(line, tokens);
    if (ok) {
      try {
        if (!saw_header) {
          if (tokens.size() != 6 || tokens[0] != kJournalTag) {
            throw ParseError("bad journal header");
          }
          if (u64_from_token(tokens[1]) != static_cast<std::uint64_t>(kJournalVersion)) {
            replay.note = "journal version " + tokens[1] + " != " +
                          std::to_string(kJournalVersion) + "; discarded";
            return replay;
          }
          replay.header.fingerprint = u64_from_hex(tokens[2]);
          replay.header.task_count = u64_from_token(tokens[3]);
          replay.header.shard_index = int_from_token(tokens[4]);
          replay.header.shard_count = int_from_token(tokens[5]);
          if (expected != nullptr && !(replay.header == *expected)) {
            replay.note = "journal belongs to a different campaign; discarded";
            return replay;
          }
          saw_header = true;
        } else if (tokens.size() >= 1 && tokens[0] == "skip") {
          if (tokens.size() != 2) throw ParseError("bad skip record");
          replay.skip_warnings.push_back(unescape_token(tokens[1]));
        } else if (tokens.size() >= 1 && tokens[0] == "row") {
          if (tokens.size() != 2 + kRowFieldCount) throw ParseError("bad row record");
          const std::uint64_t index = u64_from_token(tokens[1]);
          if (index >= replay.header.task_count) {
            throw ParseError("row index " + tokens[1] + " out of range");
          }
          replay.rows[index] = journal_row_from_tokens(tokens, 2);
        } else {
          throw ParseError("unknown record tag");
        }
      } catch (const Error&) {
        ok = false;
      }
    }
    if (!ok) {
      // A checksum-valid prefix followed by an invalid line: trim here. Count
      // every remaining line as dropped (they may be fine, but a record after
      // a corrupt one must not be trusted — tasks re-run instead).
      replay.dropped_lines += 1;
      size_t rest = newline + 1;
      while (rest < content.size()) {
        replay.dropped_lines += 1;
        const size_t next = content.find('\n', rest);
        if (next == std::string::npos) break;
        rest = next + 1;
      }
      replay.note = "corrupt record at line " + std::to_string(line_number) +
                    "; tail trimmed (" + std::to_string(replay.dropped_lines) +
                    " line(s) dropped)";
      break;
    }
    offset = newline + 1;
    replay.valid_bytes = offset;
  }

  if (!saw_header) {
    replay.note = replay.note.empty() ? "journal has no valid header; discarded"
                                      : replay.note + "; no valid header, discarded";
    replay.valid_bytes = 0;
    replay.rows.clear();
    replay.skip_warnings.clear();
    return replay;
  }
  replay.compatible = true;
  return replay;
}

CampaignJournal::CampaignJournal(std::string path, const CampaignJournalHeader& header,
                                 const std::vector<std::string>& skip_warnings,
                                 const CampaignJournalReplay* resume)
    : path_(std::move(path)) {
  if (const char* crash = std::getenv("DECISIVE_CAMPAIGN_CRASH_AFTER_APPENDS")) {
    crash_after_appends_ = std::strtol(crash, nullptr, 10);
  }
  const bool resuming = resume != nullptr && resume->compatible;
  if (resuming) {
    // Trim the torn/corrupt tail, then append after the valid prefix.
    std::error_code ec;
    std::filesystem::resize_file(path_, resume->valid_bytes, ec);
    if (ec) throw IoError("cannot trim campaign journal '" + path_ + "': " + ec.message());
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) throw IoError("cannot append to campaign journal '" + path_ + "'");
  } else {
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) throw IoError("cannot write campaign journal '" + path_ + "'");
    out_ << header_line(header);
    for (const std::string& warning : skip_warnings) {
      out_ << seal_line("skip " + escape_token(warning));
    }
    if (!out_.flush()) throw IoError("cannot write campaign journal '" + path_ + "'");
  }
}

void CampaignJournal::append(std::uint64_t task_index, const FmedaRow& row) {
  const std::string line =
      seal_line("row " + std::to_string(task_index) + ' ' + journal_row_tokens(row));
  const std::lock_guard<std::mutex> lock(mutex_);
  out_ << line;
  if (!out_.flush()) throw IoError("cannot append to campaign journal '" + path_ + "'");
  ++appends_;
  if (crash_after_appends_ >= 0 && appends_ >= static_cast<std::uint64_t>(crash_after_appends_)) {
    // Crash injection: die exactly as a preempted worker would — no unwind,
    // no destructors, the journal holding whatever was flushed so far.
    std::raise(SIGKILL);
  }
}

FmedaResult merge_campaign_journals(const std::vector<std::string>& paths) {
  if (paths.empty()) throw AnalysisError("merge: no journals given");

  CampaignJournalHeader campaign;
  std::map<std::uint64_t, FmedaRow> rows;
  std::vector<std::string> skip_warnings;
  std::vector<bool> shard_seen;
  for (size_t i = 0; i < paths.size(); ++i) {
    const CampaignJournalReplay replay = replay_campaign_journal(paths[i], nullptr);
    if (!replay.compatible) {
      throw AnalysisError("merge: '" + paths[i] + "' is not a campaign journal (" +
                          replay.note + ")");
    }
    if (i == 0) {
      campaign = replay.header;
      campaign.shard_index = 0;  // identity is fingerprint/count, not the shard
      if (replay.header.shard_count <= 0) {
        throw AnalysisError("merge: '" + paths[i] + "' has a bad shard count");
      }
      shard_seen.assign(static_cast<size_t>(replay.header.shard_count), false);
      skip_warnings = replay.skip_warnings;
    } else if (replay.header.fingerprint != campaign.fingerprint ||
               replay.header.task_count != campaign.task_count ||
               replay.header.shard_count != campaign.shard_count) {
      throw AnalysisError("merge: '" + paths[i] +
                          "' belongs to a different campaign than '" + paths[0] + "'");
    }
    if (replay.header.shard_index < 0 ||
        replay.header.shard_index >= replay.header.shard_count) {
      throw AnalysisError("merge: '" + paths[i] + "' has a bad shard index");
    }
    shard_seen[static_cast<size_t>(replay.header.shard_index)] = true;
    for (const auto& [index, row] : replay.rows) rows[index] = row;
  }

  for (size_t shard = 0; shard < shard_seen.size(); ++shard) {
    if (!shard_seen[shard]) {
      throw AnalysisError("merge: shard " + std::to_string(shard) + "/" +
                          std::to_string(shard_seen.size()) + " has no journal");
    }
  }
  std::vector<std::uint64_t> missing;
  for (std::uint64_t index = 0; index < campaign.task_count; ++index) {
    if (!rows.contains(index)) missing.push_back(index);
  }
  if (!missing.empty()) {
    throw AnalysisError(
        "merge: " + std::to_string(missing.size()) + " of " +
        std::to_string(campaign.task_count) + " task(s) have no checkpointed result " +
        "(first missing index " + std::to_string(missing.front()) +
        "); resume the incomplete shard(s) before merging");
  }

  // Assemble exactly as CampaignRunner::run() does: skip warnings first,
  // then rows (and their derived warnings) in global task order, then the
  // degenerate-SPFM note.
  FmedaResult result;
  result.system = "circuit";
  result.warnings = skip_warnings;
  for (auto& [index, row] : rows) {
    std::string warning = outcome_warning(row);
    if (!warning.empty()) result.warnings.push_back(std::move(warning));
    result.rows.push_back(std::move(row));
  }
  if (!result.has_safety_related()) {
    result.warnings.push_back(
        "no safety-related hardware identified; the SPFM denominator is empty and spfm() "
        "reports 1.0 by convention — this is not an ASIL-D claim");
  }
  return result;
}

}  // namespace decisive::core
