#include "decisive/core/reliability.hpp"

#include <cmath>

#include "decisive/base/error.hpp"
#include "decisive/base/strings.hpp"

namespace decisive::core {

namespace {

/// Alias groups for component-type names.
const char* const kMcuAliases[] = {"mc", "mcu", "microcontroller", "micro controller"};

bool in_mcu_group(std::string_view name) noexcept {
  for (const char* alias : kMcuAliases) {
    if (iequals(name, alias)) return true;
  }
  return false;
}

double parse_fraction(std::string_view text) {
  std::string_view t = trim(text);
  bool percent = false;
  if (!t.empty() && t.back() == '%') {
    t.remove_suffix(1);
    percent = true;
  }
  double value = parse_double(t);
  if (percent) value /= 100.0;
  // Values like "30" in a Distribution column mean 30%.
  if (!percent && value > 1.0) value /= 100.0;
  return value;
}

}  // namespace

bool component_type_matches(std::string_view a, std::string_view b) noexcept {
  if (iequals(a, b)) return true;
  return in_mcu_group(a) && in_mcu_group(b);
}

void ReliabilityModel::add(std::string component_type, double fit,
                           std::vector<FailureModeSpec> modes) {
  if (fit < 0.0) throw AnalysisError("FIT must be non-negative");
  double total = 0.0;
  for (const auto& mode : modes) {
    if (mode.distribution < 0.0 || mode.distribution > 1.0) {
      throw AnalysisError("failure-mode distribution of '" + mode.name +
                          "' must be in [0,1], got " + format_number(mode.distribution));
    }
    total += mode.distribution;
  }
  if (total > 1.0 + 1e-9) {
    throw AnalysisError("failure-mode distributions of '" + component_type +
                        "' sum to " + format_number(total) + " (> 1)");
  }
  for (auto& entry : entries_) {
    if (component_type_matches(entry.component_type, component_type)) {
      entry.fit = fit;
      for (auto& mode : modes) entry.modes.push_back(std::move(mode));
      return;
    }
  }
  entries_.push_back(ComponentReliability{std::move(component_type), fit, std::move(modes)});
}

const ComponentReliability* ReliabilityModel::find(
    std::string_view component_type) const noexcept {
  for (const auto& entry : entries_) {
    if (component_type_matches(entry.component_type, component_type)) return &entry;
  }
  return nullptr;
}

ReliabilityModel ReliabilityModel::from_table(const CsvTable& table) {
  for (const char* column : {"Component", "FIT", "Failure_Mode", "Distribution"}) {
    if (table.column(column) < 0) {
      throw AnalysisError("reliability table is missing column '" + std::string(column) + "'");
    }
  }
  ReliabilityModel model;
  std::string current_type;
  double current_fit = 0.0;
  std::vector<FailureModeSpec> current_modes;
  auto flush = [&] {
    if (!current_type.empty()) {
      model.add(current_type, current_fit, std::move(current_modes));
      current_modes = {};
    }
  };
  for (size_t i = 0; i < table.rows.size(); ++i) {
    const std::string component = std::string(trim(table.at(i, "Component")));
    const std::string fit_text = std::string(trim(table.at(i, "FIT")));
    const std::string mode = std::string(trim(table.at(i, "Failure_Mode")));
    const std::string dist = std::string(trim(table.at(i, "Distribution")));
    if (!component.empty()) {
      flush();
      current_type = component;
      if (fit_text.empty()) {
        throw AnalysisError("reliability row for '" + component + "' has no FIT");
      }
      current_fit = parse_double(fit_text);
    } else if (current_type.empty()) {
      throw AnalysisError("reliability table starts with a continuation row");
    }
    if (mode.empty()) {
      throw AnalysisError("reliability row " + std::to_string(i + 1) + " has no Failure_Mode");
    }
    current_modes.push_back(FailureModeSpec{mode, parse_fraction(dist)});
  }
  flush();
  return model;
}

ReliabilityModel ReliabilityModel::from_source(const drivers::DataSource& source,
                                               std::string_view table_name) {
  const CsvTable* table = source.table(table_name);
  if (table == nullptr) {
    throw AnalysisError("source '" + source.location() + "' has no table '" +
                        std::string(table_name) + "'");
  }
  return from_table(*table);
}

CsvTable ReliabilityModel::to_table() const {
  CsvTable table;
  table.header = {"Component", "FIT", "Failure_Mode", "Distribution"};
  for (const auto& entry : entries_) {
    bool first = true;
    for (const auto& mode : entry.modes) {
      table.rows.push_back({first ? entry.component_type : "",
                            first ? format_number(entry.fit) : "", mode.name,
                            format_percent(mode.distribution, 0)});
      first = false;
    }
  }
  return table;
}

}  // namespace decisive::core
