// Safety-mechanism deployment search (DECISIVE Step 4b).
//
// Engine layout (DESIGN.md §11):
//  - SpfmEvaluator: residual single-point FIT is additive over rows, so a
//    candidate deployment is evaluated in O(choices) against a precomputed
//    undeployed baseline — no per-candidate allocation.
//  - pareto_front: exact two-objective DP. Each open row reduces to its
//    non-dominated (cost, residual) option list; the rows fold over a
//    balanced binary merge tree of dominance-pruned partial-sum labels. The
//    tree shape depends only on the row count, so any `jobs` value produces
//    byte-identical fronts. `epsilon` coarsens the residual axis per merge
//    to bound front growth.
//  - pareto_front_exhaustive: the seed-era mixed-radix enumerator, retained
//    as the property-test oracle, with the front kept in a cost-sorted map
//    so each dominance check is O(log n).
//  - greedy_reach_asil: gain-per-cost greedy with O(1)-per-move residual
//    updates in both the deploy loop and the trim pass.
//  - optimal_reach_asil: branch-and-bound min-cost search seeded with the
//    greedy incumbent.
//
// Tie handling: (cost, residual) values are compared on a tolerance grid of
// 1e-9 relative to the axis scale (max total cost / undeployed residual), so
// equal-value deployments dedupe deterministically across platforms instead
// of depending on exact double equality. Among grid-equal candidates the
// fewest-choices representative wins, so reported deployments are minimal.
#include "decisive/core/sm_search.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <map>
#include <thread>
#include <utility>

#include "decisive/base/error.hpp"
#include "decisive/base/json.hpp"
#include "decisive/base/strings.hpp"
#include "decisive/obs/registry.hpp"
#include "decisive/obs/span.hpp"

namespace decisive::core {

bool Deployment::dominates(const Deployment& other) const noexcept {
  const bool no_worse = spfm >= other.spfm && total_cost_hours <= other.total_cost_hours;
  const bool better = spfm > other.spfm || total_cost_hours < other.total_cost_hours;
  return no_worse && better;
}

FmedaResult apply_deployment(const FmedaResult& fmea, const Deployment& deployment) {
  FmedaResult out = fmea;
  for (const auto& choice : deployment.choices) {
    if (choice.row_index >= out.rows.size() || choice.mechanism == nullptr) {
      throw AnalysisError("deployment references an invalid FMEA row");
    }
    FmedaRow& row = out.rows[choice.row_index];
    row.safety_mechanism = choice.mechanism->name;
    row.sm_coverage = choice.mechanism->coverage;
    row.sm_cost_hours = choice.mechanism->cost_hours;
  }
  return out;
}

namespace {

/// Search instrumentation, following the registry conventions of DESIGN.md
/// §10 (lazily registered, references cached in a function-local static).
struct SearchMetrics {
  obs::Counter& labels;        ///< candidate labels expanded across merges
  obs::Counter& labels_pruned; ///< labels discarded by dominance/epsilon
  obs::Counter& merges;        ///< merge-tree nodes folded
  obs::Counter& bnb_nodes;     ///< branch-and-bound nodes expanded
  obs::Counter& bnb_pruned;    ///< branch-and-bound subtrees pruned
  obs::Gauge& front_size;      ///< size of the last computed front
  obs::Histogram& pareto_seconds;
  obs::Histogram& merge_seconds;
  obs::Histogram& greedy_seconds;
  obs::Histogram& bnb_seconds;

  static SearchMetrics& get() {
    auto& r = obs::Registry::global();
    static SearchMetrics m{r.counter("decisive_sm_search_labels_total"),
                           r.counter("decisive_sm_search_labels_pruned_total"),
                           r.counter("decisive_sm_search_merges_total"),
                           r.counter("decisive_sm_search_bnb_nodes_total"),
                           r.counter("decisive_sm_search_bnb_pruned_total"),
                           r.gauge("decisive_sm_search_front_size"),
                           r.histogram("decisive_sm_search_pareto_seconds"),
                           r.histogram("decisive_sm_search_merge_seconds"),
                           r.histogram("decisive_sm_search_greedy_seconds"),
                           r.histogram("decisive_sm_search_bnb_seconds")};
    return m;
  }
};

/// Validates ParetoOptions-style row weights (empty = unweighted engine).
void check_row_weights(const FmedaResult& fmea, const std::vector<double>& weights) {
  if (!weights.empty() && weights.size() != fmea.rows.size()) {
    throw AnalysisError("row_weights size " + std::to_string(weights.size()) +
                        " does not match the FMEA's " + std::to_string(fmea.rows.size()) +
                        " rows");
  }
}

/// Candidate rows, not already carrying a mechanism. Unweighted: the
/// safety-related rows (SPFM). Weighted: the rows with weight > 0 — the
/// weights fully define the metric axis, because multi-point objectives
/// target rows the FMEA marks not-safety-related.
std::vector<size_t> open_rows(const FmedaResult& fmea,
                              const std::vector<double>* weights = nullptr) {
  std::vector<size_t> out;
  for (size_t i = 0; i < fmea.rows.size(); ++i) {
    const bool relevant = weights != nullptr ? (*weights)[i] > 0.0
                                             : fmea.rows[i].safety_related;
    if (relevant && fmea.rows[i].safety_mechanism.empty()) out.push_back(i);
  }
  return out;
}

/// O(choices) metric evaluation against the undeployed baseline (the hot
/// inner loop of every search — no per-candidate allocation, no O(rows)
/// rescan). Unweighted: the paper's SPFM (Equation 1). Weighted: the
/// generalised metric 1 − Σ wᵢ·residualᵢ / Σ wᵢ·mode_fitᵢ.
class SpfmEvaluator {
 public:
  explicit SpfmEvaluator(const FmedaResult& base)
      : base_(base),
        denominator_(base.total_safety_related_fit()),
        baseline_residual_(base.single_point_fit()) {}

  SpfmEvaluator(const FmedaResult& base, const std::vector<double>& weights)
      : base_(base) {
    check_row_weights(base, weights);
    if (weights.empty()) {
      denominator_ = base.total_safety_related_fit();
      baseline_residual_ = base.single_point_fit();
      return;
    }
    weights_ = &weights;
    for (size_t i = 0; i < base.rows.size(); ++i) {
      denominator_ += weights[i] * base.rows[i].mode_fit();
      baseline_residual_ +=
          weights[i] * base.rows[i].mode_fit() * (1.0 - base.rows[i].sm_coverage);
    }
  }

  [[nodiscard]] double denominator() const noexcept { return denominator_; }
  [[nodiscard]] double baseline_residual() const noexcept { return baseline_residual_; }
  [[nodiscard]] double weight(size_t row_index) const noexcept {
    return weights_ != nullptr ? (*weights_)[row_index] : 1.0;
  }

  /// Residual (weighted) FIT of one row under `sm` (nullptr = keep the
  /// row's own coverage).
  [[nodiscard]] double row_residual(size_t row_index, const SafetyMechanismSpec* sm) const {
    const FmedaRow& row = base_.rows[row_index];
    const double cov = sm != nullptr ? sm->coverage : row.sm_coverage;
    return weight(row_index) * row.mode_fit() * (1.0 - cov);
  }

  [[nodiscard]] double spfm_of_residual(double residual) const noexcept {
    return denominator_ <= 0.0 ? 1.0 : 1.0 - residual / denominator_;
  }

  /// Canonical candidate evaluation: baseline plus per-choice deltas, summed
  /// in choice (row) order so the value is deterministic for a given choice
  /// set regardless of how the search derived it.
  [[nodiscard]] double spfm(const Deployment& d) const {
    double residual = baseline_residual_;
    for (const auto& choice : d.choices) {
      if (weights_ != nullptr ? (*weights_)[choice.row_index] == 0.0
                              : !base_.rows[choice.row_index].safety_related) {
        continue;
      }
      residual += row_residual(choice.row_index, choice.mechanism) -
                  row_residual(choice.row_index, nullptr);
    }
    return spfm_of_residual(residual);
  }

  [[nodiscard]] static double cost(const Deployment& d) {
    double total = 0.0;
    for (const auto& choice : d.choices) total += choice.mechanism->cost_hours;
    return total;
  }

 private:
  const FmedaResult& base_;
  const std::vector<double>* weights_ = nullptr;  ///< nullptr = unweighted
  double denominator_ = 0.0;
  double baseline_residual_ = 0.0;
};

/// Tolerance grid for tie/dominance comparisons: values snap to kTieRel of
/// the axis scale, so "equal" deployments dedupe identically across
/// platforms and association orders.
constexpr double kTieRel = 1e-9;

struct Quantizer {
  double cost_quantum = 1.0;
  double resid_quantum = 1.0;

  Quantizer(double max_total_cost, double baseline_residual) {
    cost_quantum = kTieRel * std::max(max_total_cost, 1.0);
    resid_quantum = kTieRel * std::max(baseline_residual, 1.0);
  }

  [[nodiscard]] std::int64_t qcost(double c) const { return std::llround(c / cost_quantum); }
  [[nodiscard]] std::int64_t qresid(double r) const { return std::llround(r / resid_quantum); }
};

/// One per-row deployment option (index 0 after pruning is always the
/// cheapest — the "no mechanism" choice or a zero-cost improvement on it).
struct RowOption {
  const SafetyMechanismSpec* mechanism = nullptr;
  double cost = 0.0;
  double residual = 0.0;   ///< this row's residual FIT under the option
  std::uint32_t count = 0; ///< 0 for "none", 1 for a mechanism
};

/// Builds the non-dominated option list of one open row, sorted by cost
/// ascending / residual strictly descending (on the tolerance grid). Ties
/// prefer "none", then catalogue order.
std::vector<RowOption> row_option_front(const FmedaResult& fmea,
                                        const SafetyMechanismModel& catalogue,
                                        size_t row_index, const Quantizer& q,
                                        double weight = 1.0) {
  const FmedaRow& row = fmea.rows[row_index];
  std::vector<RowOption> options;
  options.push_back({nullptr, 0.0, weight * row.mode_fit() * (1.0 - row.sm_coverage), 0});
  for (const SafetyMechanismSpec* sm :
       catalogue.applicable(row.component_type, row.failure_mode)) {
    options.push_back({sm, sm->cost_hours, weight * row.mode_fit() * (1.0 - sm->coverage), 1});
  }
  std::stable_sort(options.begin(), options.end(), [&](const RowOption& a, const RowOption& b) {
    if (q.qcost(a.cost) != q.qcost(b.cost)) return q.qcost(a.cost) < q.qcost(b.cost);
    if (q.qresid(a.residual) != q.qresid(b.residual)) {
      return q.qresid(a.residual) < q.qresid(b.residual);
    }
    return a.count < b.count;  // prefer "none" on exact value ties
  });
  std::vector<RowOption> kept;
  for (const RowOption& option : options) {
    if (kept.empty() || q.qresid(option.residual) < q.qresid(kept.back().residual)) {
      kept.push_back(option);
    }
  }
  return kept;
}

/// The sum of each open row's costliest option — the cost-axis scale.
double max_total_cost(const FmedaResult& fmea, const SafetyMechanismModel& catalogue,
                      const std::vector<size_t>& rows) {
  double total = 0.0;
  for (const size_t index : rows) {
    const FmedaRow& row = fmea.rows[index];
    double row_max = 0.0;
    for (const SafetyMechanismSpec* sm :
         catalogue.applicable(row.component_type, row.failure_mode)) {
      row_max = std::max(row_max, sm->cost_hours);
    }
    total += row_max;
  }
  return total;
}

// ---------------------------------------------------------------------------
// DP Pareto engine
// ---------------------------------------------------------------------------

/// One partial-sum label. For leaf nodes `left` is the row-option index; for
/// internal nodes (`left`, `right`) index into the children's label arrays,
/// which is what makes O(1)-size labels reconstructible without storing
/// choice vectors.
struct Label {
  double cost = 0.0;
  double residual = 0.0;
  std::uint32_t left = 0;
  std::uint32_t right = 0;
  std::uint32_t count = 0;  ///< deployed-mechanism count (tie preference)
};

/// A node of the balanced merge tree over the open-row range [lo, hi). The
/// tree shape is a pure function of the row count — parallelism never
/// changes which labels are formed, only which thread folds which subtree.
struct MergeNode {
  size_t lo = 0;
  size_t hi = 0;
  int left_child = -1;
  int right_child = -1;
  std::vector<Label> labels;
};

int build_tree(size_t lo, size_t hi, std::vector<MergeNode>& nodes) {
  const int index = static_cast<int>(nodes.size());
  nodes.push_back({lo, hi, -1, -1, {}});
  if (hi - lo > 1) {
    const size_t mid = lo + (hi - lo) / 2;
    const int left = build_tree(lo, mid, nodes);
    const int right = build_tree(mid, hi, nodes);
    nodes[index].left_child = left;
    nodes[index].right_child = right;
  }
  return index;
}

/// Dominance-pruned merge of two sorted label fronts under addition. Labels
/// come out sorted by cost with strictly decreasing residual (grid
/// comparisons), so the sweep's dominance check is O(1) amortised; epsilon
/// then keeps one label per residual box to bound growth.
std::vector<Label> merge_fronts(const std::vector<Label>& a, const std::vector<Label>& b,
                                const Quantizer& q, const ParetoOptions& options,
                                double epsilon_box, SearchMetrics& metrics) {
  obs::Span span("sm_search.merge", &metrics.merge_seconds);
  metrics.merges.add();
  const size_t pair_count = a.size() * b.size();
  if (options.max_merge_labels != 0 && pair_count > options.max_merge_labels) {
    throw AnalysisError(
        "pareto merge would expand " + std::to_string(pair_count) +
        " labels (cap " + std::to_string(options.max_merge_labels) +
        "); set ParetoOptions::epsilon to coarsen the front");
  }
  std::vector<Label> pairs;
  pairs.reserve(pair_count);
  for (std::uint32_t i = 0; i < a.size(); ++i) {
    for (std::uint32_t j = 0; j < b.size(); ++j) {
      pairs.push_back({a[i].cost + b[j].cost, a[i].residual + b[j].residual, i, j,
                       a[i].count + b[j].count});
    }
  }
  metrics.labels.add(pairs.size());
  std::sort(pairs.begin(), pairs.end(), [&](const Label& x, const Label& y) {
    if (q.qcost(x.cost) != q.qcost(y.cost)) return q.qcost(x.cost) < q.qcost(y.cost);
    if (q.qresid(x.residual) != q.qresid(y.residual)) {
      return q.qresid(x.residual) < q.qresid(y.residual);
    }
    if (x.count != y.count) return x.count < y.count;  // fewest choices win ties
    if (x.left != y.left) return x.left < y.left;
    return x.right < y.right;
  });
  std::vector<Label> kept;
  for (const Label& label : pairs) {
    if (kept.empty() || q.qresid(label.residual) < q.qresid(kept.back().residual)) {
      kept.push_back(label);
    }
  }
  if (epsilon_box > 0.0) {
    std::vector<Label> coarse;
    for (const Label& label : kept) {
      if (coarse.empty() || std::floor(label.residual / epsilon_box) <
                                std::floor(coarse.back().residual / epsilon_box)) {
        coarse.push_back(label);
      }
    }
    kept = std::move(coarse);
  }
  metrics.labels_pruned.add(pair_count - kept.size());
  return kept;
}

void fold_node(std::vector<MergeNode>& nodes, int index,
               const std::vector<std::vector<RowOption>>& row_options, const Quantizer& q,
               const ParetoOptions& options, double epsilon_box, int jobs,
               SearchMetrics& metrics) {
  MergeNode& node = nodes[index];
  if (node.left_child < 0) {
    const std::vector<RowOption>& opts = row_options[node.lo];
    node.labels.reserve(opts.size());
    for (std::uint32_t i = 0; i < opts.size(); ++i) {
      node.labels.push_back({opts[i].cost, opts[i].residual, i, 0, opts[i].count});
    }
    return;
  }
  if (jobs > 1) {
    // Fold the left subtree on a helper thread while this thread folds the
    // right one. The label values are identical either way; only wall-clock
    // changes.
    std::exception_ptr left_error;
    std::thread left([&] {
      try {
        fold_node(nodes, node.left_child, row_options, q, options, epsilon_box, jobs / 2,
                  metrics);
      } catch (...) {
        left_error = std::current_exception();
      }
    });
    try {
      fold_node(nodes, node.right_child, row_options, q, options, epsilon_box,
                jobs - jobs / 2, metrics);
    } catch (...) {
      left.join();
      throw;
    }
    left.join();
    if (left_error) std::rethrow_exception(left_error);
  } else {
    fold_node(nodes, node.left_child, row_options, q, options, epsilon_box, 1, metrics);
    fold_node(nodes, node.right_child, row_options, q, options, epsilon_box, 1, metrics);
  }
  node.labels = merge_fronts(nodes[node.left_child].labels, nodes[node.right_child].labels,
                             q, options, epsilon_box, metrics);
  // The children's labels are only needed for reconstruction, never for
  // another merge — keep them (the memory is the sum of front sizes).
}

void collect_choices(const std::vector<MergeNode>& nodes, int index, std::uint32_t label_index,
                     const std::vector<std::vector<RowOption>>& row_options,
                     const std::vector<size_t>& rows, std::vector<DeploymentChoice>& out) {
  const MergeNode& node = nodes[index];
  const Label& label = node.labels[label_index];
  if (node.left_child < 0) {
    const RowOption& option = row_options[node.lo][label.left];
    if (option.mechanism != nullptr) out.push_back({rows[node.lo], option.mechanism});
    return;
  }
  collect_choices(nodes, node.left_child, label.left, row_options, rows, out);
  collect_choices(nodes, node.right_child, label.right, row_options, rows, out);
}

}  // namespace

std::vector<Deployment> pareto_front(const FmedaResult& fmea,
                                     const SafetyMechanismModel& catalogue,
                                     const ParetoOptions& options) {
  if (options.epsilon < 0.0 || options.epsilon >= 1.0) {
    throw AnalysisError("ParetoOptions::epsilon must be in [0, 1)");
  }
  SearchMetrics& metrics = SearchMetrics::get();
  obs::Span span("sm_search.pareto", &metrics.pareto_seconds);

  const SpfmEvaluator eval(fmea, options.row_weights);
  const std::vector<double>* weights =
      options.row_weights.empty() ? nullptr : &options.row_weights;
  const std::vector<size_t> rows = open_rows(fmea, weights);
  const Quantizer q(max_total_cost(fmea, catalogue, rows), eval.baseline_residual());

  std::vector<Deployment> front;
  if (rows.empty()) {
    Deployment none;
    none.spfm = eval.spfm(none);
    front.push_back(std::move(none));
    metrics.front_size.set(1.0);
    return front;
  }

  std::vector<std::vector<RowOption>> row_options;
  row_options.reserve(rows.size());
  for (const size_t index : rows) {
    row_options.push_back(row_option_front(fmea, catalogue, index, q, eval.weight(index)));
  }

  const double epsilon_box =
      options.epsilon > 0.0
          ? options.epsilon * std::max(eval.baseline_residual(), q.resid_quantum)
          : 0.0;
  std::vector<MergeNode> nodes;
  nodes.reserve(2 * rows.size());
  const int root = build_tree(0, rows.size(), nodes);
  const int jobs = options.jobs > 0
                       ? options.jobs
                       : static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  fold_node(nodes, root, row_options, q, options, epsilon_box, jobs, metrics);

  front.reserve(nodes[root].labels.size());
  for (std::uint32_t i = 0; i < nodes[root].labels.size(); ++i) {
    Deployment d;
    collect_choices(nodes, root, i, row_options, rows, d.choices);
    // Canonical values: recomputed from the choice set in row order, so the
    // reported numbers are independent of the merge association order.
    d.total_cost_hours = SpfmEvaluator::cost(d);
    d.spfm = eval.spfm(d);
    front.push_back(std::move(d));
  }
  // Final sweep on the canonical values: recomputation can move a value by
  // an ulp across a grid boundary, so re-assert strict dominance order.
  std::vector<Deployment> swept;
  for (Deployment& d : front) {
    const double residual = eval.denominator() <= 0.0
                                ? 0.0
                                : (1.0 - d.spfm) * eval.denominator();
    if (swept.empty()) {
      swept.push_back(std::move(d));
      continue;
    }
    const double last_residual = eval.denominator() <= 0.0
                                     ? 0.0
                                     : (1.0 - swept.back().spfm) * eval.denominator();
    if (q.qresid(residual) < q.qresid(last_residual) &&
        q.qcost(d.total_cost_hours) > q.qcost(swept.back().total_cost_hours)) {
      swept.push_back(std::move(d));
    }
  }
  metrics.front_size.set(static_cast<double>(swept.size()));
  return swept;
}

std::vector<Deployment> pareto_front_exhaustive(const FmedaResult& fmea,
                                                const SafetyMechanismModel& catalogue,
                                                size_t max_combinations,
                                                const std::vector<double>& row_weights) {
  const SpfmEvaluator eval(fmea, row_weights);
  const std::vector<size_t> rows =
      open_rows(fmea, row_weights.empty() ? nullptr : &row_weights);
  const Quantizer q(max_total_cost(fmea, catalogue, rows), eval.baseline_residual());

  // Options per row: index 0 = "no mechanism", then each applicable entry.
  std::vector<std::vector<const SafetyMechanismSpec*>> options;
  options.reserve(rows.size());
  size_t combinations = 1;
  for (const size_t index : rows) {
    const FmedaRow& row = fmea.rows[index];
    std::vector<const SafetyMechanismSpec*> opts{nullptr};
    for (const SafetyMechanismSpec* sm :
         catalogue.applicable(row.component_type, row.failure_mode)) {
      opts.push_back(sm);
    }
    combinations *= opts.size();
    if (combinations > max_combinations) {
      throw AnalysisError("safety-mechanism search space exceeds " +
                          std::to_string(max_combinations) +
                          " combinations; use the DP pareto_front");
    }
    options.push_back(std::move(opts));
  }

  // Front kept sorted by quantised cost with strictly decreasing quantised
  // residual, so a candidate's dominance check is one O(log n) lookup
  // instead of a linear scan.
  struct Entry {
    std::int64_t qresid = 0;
    Deployment deployment;
  };
  std::map<std::int64_t, Entry> front;

  std::vector<size_t> pick(options.size(), 0);
  for (;;) {
    Deployment candidate;
    for (size_t i = 0; i < options.size(); ++i) {
      if (options[i][pick[i]] != nullptr) {
        candidate.choices.push_back(DeploymentChoice{rows[i], options[i][pick[i]]});
      }
    }
    candidate.total_cost_hours = SpfmEvaluator::cost(candidate);
    candidate.spfm = eval.spfm(candidate);
    const double residual = eval.denominator() <= 0.0
                                ? 0.0
                                : (1.0 - candidate.spfm) * eval.denominator();
    const std::int64_t qc = q.qcost(candidate.total_cost_hours);
    const std::int64_t qr = q.qresid(residual);

    bool insert = true;
    auto it = front.upper_bound(qc);
    if (it != front.begin()) {
      const auto& prev = *std::prev(it);
      if (prev.first == qc && prev.second.qresid == qr) {
        // Grid tie: keep the fewest-choices representative (minimal
        // deployments), first-seen among equals.
        insert = candidate.choices.size() <
                 std::prev(it)->second.deployment.choices.size();
      } else if (prev.second.qresid <= qr) {
        insert = false;  // dominated by a no-costlier, no-worse entry
      }
    }
    if (insert) {
      // Drop every entry the candidate dominates (costlier, no better).
      while (it != front.end() && it->second.qresid >= qr) it = front.erase(it);
      front.insert_or_assign(qc, Entry{qr, std::move(candidate)});
    }

    // Advance the mixed-radix counter.
    size_t digit = 0;
    while (digit < pick.size()) {
      if (++pick[digit] < options[digit].size()) break;
      pick[digit] = 0;
      ++digit;
    }
    if (digit == pick.size()) break;
  }

  std::vector<Deployment> out;
  out.reserve(front.size());
  for (auto& [qc, entry] : front) out.push_back(std::move(entry.deployment));
  return out;
}

std::optional<Deployment> greedy_reach_asil(const FmedaResult& fmea,
                                            const SafetyMechanismModel& catalogue,
                                            std::string_view target_asil) {
  SearchMetrics& metrics = SearchMetrics::get();
  obs::Span span("sm_search.greedy", &metrics.greedy_seconds);

  const double target = spfm_target(target_asil);
  const SpfmEvaluator eval(fmea);
  const std::vector<size_t> candidates = open_rows(fmea);

  // Per-row current pick; a row's mechanism may be *upgraded* to a strictly
  // higher-coverage alternative later (committing to the cheapest option and
  // never revisiting it can miss reachable targets). The total residual FIT
  // is maintained incrementally: every move is O(1), not an O(rows) rescan.
  std::vector<const SafetyMechanismSpec*> picked(fmea.rows.size(), nullptr);
  double residual = eval.baseline_residual();

  while (eval.spfm_of_residual(residual) < target) {
    double best_ratio = -1.0;
    std::optional<DeploymentChoice> best_choice;
    for (const size_t index : candidates) {
      const FmedaRow& row = fmea.rows[index];
      const double current_coverage = picked[index] != nullptr ? picked[index]->coverage : 0.0;
      const double current_cost = picked[index] != nullptr ? picked[index]->cost_hours : 0.0;
      for (const SafetyMechanismSpec* sm :
           catalogue.applicable(row.component_type, row.failure_mode)) {
        // Only strictly-better coverage guarantees progress (and termination).
        if (sm->coverage <= current_coverage) continue;
        const double gain = row.mode_fit() * (sm->coverage - current_coverage);
        const double delta_cost = sm->cost_hours - current_cost;
        const double ratio = delta_cost > 0.0 ? gain / delta_cost : 1e18 + gain;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_choice = DeploymentChoice{index, sm};
        }
      }
    }
    if (!best_choice.has_value()) return std::nullopt;  // target unreachable
    residual += eval.row_residual(best_choice->row_index, best_choice->mechanism) -
                eval.row_residual(best_choice->row_index, picked[best_choice->row_index]);
    picked[best_choice->row_index] = best_choice->mechanism;
  }

  // Trim pass: the gain-per-cost heuristic can overshoot; drop or downgrade
  // choices while the target still holds, until no single move helps. Each
  // trial is an O(1) residual delta.
  for (bool changed = true; changed;) {
    changed = false;
    for (const size_t index : candidates) {
      if (picked[index] == nullptr) continue;
      const FmedaRow& row = fmea.rows[index];
      // Candidate replacements: nothing, or any cheaper applicable mechanism.
      std::vector<const SafetyMechanismSpec*> alternatives{nullptr};
      for (const SafetyMechanismSpec* sm :
           catalogue.applicable(row.component_type, row.failure_mode)) {
        if (sm != picked[index] && sm->cost_hours < picked[index]->cost_hours) {
          alternatives.push_back(sm);
        }
      }
      const SafetyMechanismSpec* original = picked[index];
      const SafetyMechanismSpec* best_alternative = original;
      double best_cost = original->cost_hours;
      const double current_row_residual = eval.row_residual(index, original);
      for (const SafetyMechanismSpec* alternative : alternatives) {
        const double trial_residual =
            residual - current_row_residual + eval.row_residual(index, alternative);
        const double cost = alternative != nullptr ? alternative->cost_hours : 0.0;
        if (eval.spfm_of_residual(trial_residual) >= target && cost < best_cost) {
          best_alternative = alternative;
          best_cost = cost;
        }
      }
      if (best_alternative != original) {
        residual += eval.row_residual(index, best_alternative) - current_row_residual;
        picked[index] = best_alternative;
        changed = true;
      }
    }
  }

  Deployment result;
  for (const size_t index : candidates) {
    if (picked[index] != nullptr) result.choices.push_back({index, picked[index]});
  }
  result.total_cost_hours = SpfmEvaluator::cost(result);
  result.spfm = eval.spfm(result);
  return result;
}

std::optional<Deployment> optimal_reach_asil(const FmedaResult& fmea,
                                             const SafetyMechanismModel& catalogue,
                                             std::string_view target_asil,
                                             const OptimalOptions& options) {
  SearchMetrics& metrics = SearchMetrics::get();
  obs::Span span("sm_search.bnb", &metrics.bnb_seconds);

  const double target = spfm_target(target_asil);
  const SpfmEvaluator eval(fmea);

  // The greedy result is the incumbent. When greedy fails, every row is
  // already at its maximum coverage and the target is provably unreachable.
  std::optional<Deployment> incumbent = greedy_reach_asil(fmea, catalogue, target_asil);
  if (!incumbent.has_value()) return std::nullopt;
  if (eval.denominator() <= 0.0) return incumbent;  // SPFM degenerate at 1.0

  const double allowed_residual = (1.0 - target) * eval.denominator();
  const std::vector<size_t> rows = open_rows(fmea);
  const Quantizer q(max_total_cost(fmea, catalogue, rows), eval.baseline_residual());
  const std::int64_t q_allowed = q.qresid(allowed_residual);

  struct BnbRow {
    size_t row_index = 0;
    std::vector<RowOption> options;
  };
  std::vector<BnbRow> order;
  order.reserve(rows.size());
  for (const size_t index : rows) {
    order.push_back({index, row_option_front(fmea, catalogue, index, q)});
  }
  // Branch on the rows with the most residual-reduction potential first —
  // they decide feasibility, so bounds bite early.
  std::stable_sort(order.begin(), order.end(), [](const BnbRow& a, const BnbRow& b) {
    const double ra = a.options.front().residual - a.options.back().residual;
    const double rb = b.options.front().residual - b.options.back().residual;
    return ra > rb;
  });

  const size_t n = order.size();
  // Suffix bounds over the branch order:
  //  - min_resid: residual floor if every remaining row takes its best
  //    option (feasibility bound);
  //  - base_resid/base_cost: residual and cost when every remaining row
  //    takes its cheapest option (the zero-extra-cost floor);
  //  - best_ratio: max residual reduction per extra cost hour among the
  //    remaining paid options (fractional cost lower bound).
  std::vector<double> min_resid(n + 1, 0.0), base_resid(n + 1, 0.0), base_cost(n + 1, 0.0),
      best_ratio(n + 1, 0.0);
  for (size_t i = n; i-- > 0;) {
    const std::vector<RowOption>& opts = order[i].options;
    min_resid[i] = min_resid[i + 1] + opts.back().residual;
    base_resid[i] = base_resid[i + 1] + opts.front().residual;
    base_cost[i] = base_cost[i + 1] + opts.front().cost;
    double row_ratio = 0.0;
    for (size_t o = 1; o < opts.size(); ++o) {
      const double reduction = opts.front().residual - opts[o].residual;
      const double paid = opts[o].cost - opts.front().cost;
      if (paid > 0.0) row_ratio = std::max(row_ratio, reduction / paid);
    }
    best_ratio[i] = std::max(best_ratio[i + 1], row_ratio);
  }

  double incumbent_cost = incumbent->total_cost_hours;
  std::uint64_t nodes = 0;
  std::vector<std::uint32_t> chosen(n, 0);

  const std::function<void(size_t, double, double)> dfs = [&](size_t depth, double residual,
                                                              double cost) {
    ++nodes;
    metrics.bnb_nodes.add();
    if (options.max_nodes != 0 && nodes > options.max_nodes) {
      throw AnalysisError("optimal_reach_asil exceeded " + std::to_string(options.max_nodes) +
                          " search nodes; use greedy_reach_asil");
    }
    // Feasibility: even max coverage everywhere below cannot reach the target.
    if (q.qresid(residual + min_resid[depth]) > q_allowed) {
      metrics.bnb_pruned.add();
      return;
    }
    // Cost bound: the zero-extra-cost floor plus a fractional relaxation of
    // the reduction still needed beyond it.
    double bound = cost + base_cost[depth];
    const double needed = (residual + base_resid[depth]) - allowed_residual;
    if (needed > 0.0 && best_ratio[depth] > 0.0) bound += needed / best_ratio[depth];
    if (q.qcost(bound) >= q.qcost(incumbent_cost)) {
      metrics.bnb_pruned.add();
      return;
    }
    if (depth == n) {
      if (q.qresid(residual) > q_allowed) return;
      Deployment candidate;
      for (size_t i = 0; i < n; ++i) {
        const RowOption& option = order[i].options[chosen[i]];
        if (option.mechanism != nullptr) {
          candidate.choices.push_back({order[i].row_index, option.mechanism});
        }
      }
      std::sort(candidate.choices.begin(), candidate.choices.end(),
                [](const DeploymentChoice& a, const DeploymentChoice& b) {
                  return a.row_index < b.row_index;
                });
      candidate.total_cost_hours = SpfmEvaluator::cost(candidate);
      candidate.spfm = eval.spfm(candidate);
      // Accept on the canonical value only — the incumbent is never replaced
      // by a deployment that fails the target outside the tolerance grid.
      if (candidate.spfm >= target &&
          q.qcost(candidate.total_cost_hours) < q.qcost(incumbent_cost)) {
        incumbent_cost = candidate.total_cost_hours;
        incumbent = std::move(candidate);
      }
      return;
    }
    const std::vector<RowOption>& opts = order[depth].options;
    for (std::uint32_t o = 0; o < opts.size(); ++o) {
      chosen[depth] = o;
      dfs(depth + 1, residual + opts[o].residual, cost + opts[o].cost);
    }
  };
  dfs(0, 0.0, 0.0);
  return incumbent;
}

CsvTable front_to_csv(const FmedaResult& fmea, const std::vector<Deployment>& front,
                      ParetoMetric metric) {
  CsvTable table;
  const bool lfm = metric == ParetoMetric::Lfm;
  table.header = {"Cost(hrs)", lfm ? "LFM" : "SPFM", "ASIL", "Choices", "Deployment"};
  for (const Deployment& d : front) {
    std::vector<std::string> parts;
    parts.reserve(d.choices.size());
    for (const auto& choice : d.choices) {
      const FmedaRow& row = fmea.rows[choice.row_index];
      parts.push_back(row.component + "/" + row.failure_mode + "=" + choice.mechanism->name);
    }
    table.rows.push_back({format_number(d.total_cost_hours, 2), format_percent(d.spfm, 4),
                          lfm ? achieved_asil_lfm(d.spfm) : achieved_asil(d.spfm),
                          std::to_string(d.choices.size()), join(parts, "; ")});
  }
  return table;
}

std::string front_to_json(const FmedaResult& fmea, const std::vector<Deployment>& front) {
  json::Array points;
  for (const Deployment& d : front) {
    json::Array choices;
    for (const auto& choice : d.choices) {
      const FmedaRow& row = fmea.rows[choice.row_index];
      json::Object c;
      c["row"] = static_cast<double>(choice.row_index);
      c["component"] = row.component;
      c["failure_mode"] = row.failure_mode;
      c["mechanism"] = choice.mechanism->name;
      c["coverage"] = choice.mechanism->coverage;
      c["cost_hours"] = choice.mechanism->cost_hours;
      choices.push_back(std::move(c));
    }
    json::Object point;
    point["cost_hours"] = d.total_cost_hours;
    point["spfm"] = d.spfm;
    point["asil"] = achieved_asil(d.spfm);
    point["choices"] = std::move(choices);
    points.push_back(std::move(point));
  }
  json::Object root;
  root["front"] = std::move(points);
  return json::write(json::Value(std::move(root)));
}

}  // namespace decisive::core
