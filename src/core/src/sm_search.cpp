#include "decisive/core/sm_search.hpp"

#include <algorithm>

#include "decisive/base/error.hpp"

namespace decisive::core {

bool Deployment::dominates(const Deployment& other) const noexcept {
  const bool no_worse = spfm >= other.spfm && total_cost_hours <= other.total_cost_hours;
  const bool better = spfm > other.spfm || total_cost_hours < other.total_cost_hours;
  return no_worse && better;
}

FmedaResult apply_deployment(const FmedaResult& fmea, const Deployment& deployment) {
  FmedaResult out = fmea;
  for (const auto& choice : deployment.choices) {
    if (choice.row_index >= out.rows.size() || choice.mechanism == nullptr) {
      throw AnalysisError("deployment references an invalid FMEA row");
    }
    FmedaRow& row = out.rows[choice.row_index];
    row.safety_mechanism = choice.mechanism->name;
    row.sm_coverage = choice.mechanism->coverage;
    row.sm_cost_hours = choice.mechanism->cost_hours;
  }
  return out;
}

namespace {

/// Candidate rows: safety-related and not already carrying a mechanism.
std::vector<size_t> open_rows(const FmedaResult& fmea) {
  std::vector<size_t> out;
  for (size_t i = 0; i < fmea.rows.size(); ++i) {
    if (fmea.rows[i].safety_related && fmea.rows[i].safety_mechanism.empty()) {
      out.push_back(i);
    }
  }
  return out;
}

double spfm_with(const FmedaResult& base, const Deployment& deployment) {
  // Residual single-point FIT under the deployment without copying the rows.
  double numerator = 0.0;
  std::vector<double> coverage(base.rows.size(), -1.0);
  for (const auto& choice : deployment.choices) {
    coverage[choice.row_index] = choice.mechanism->coverage;
  }
  for (size_t i = 0; i < base.rows.size(); ++i) {
    const FmedaRow& row = base.rows[i];
    if (!row.safety_related) continue;
    const double cov = coverage[i] >= 0.0 ? coverage[i] : row.sm_coverage;
    numerator += row.mode_fit() * (1.0 - cov);
  }
  const double denominator = base.total_safety_related_fit();
  return denominator <= 0.0 ? 1.0 : 1.0 - numerator / denominator;
}

double cost_of(const Deployment& deployment) {
  double cost = 0.0;
  for (const auto& choice : deployment.choices) cost += choice.mechanism->cost_hours;
  return cost;
}

}  // namespace

std::optional<Deployment> greedy_reach_asil(const FmedaResult& fmea,
                                            const SafetyMechanismModel& catalogue,
                                            std::string_view target_asil) {
  const double target = spfm_target(target_asil);
  const std::vector<size_t> candidates = open_rows(fmea);

  // Per-row current pick; a row's mechanism may be *upgraded* to a strictly
  // higher-coverage alternative later (committing to the cheapest option and
  // never revisiting it can miss reachable targets).
  std::vector<const SafetyMechanismSpec*> picked(fmea.rows.size(), nullptr);

  auto as_deployment = [&] {
    Deployment d;
    for (const size_t index : candidates) {
      if (picked[index] != nullptr) d.choices.push_back(DeploymentChoice{index, picked[index]});
    }
    d.spfm = spfm_with(fmea, d);
    d.total_cost_hours = cost_of(d);
    return d;
  };

  Deployment current = as_deployment();
  while (current.spfm < target) {
    double best_ratio = -1.0;
    std::optional<DeploymentChoice> best_choice;
    for (const size_t index : candidates) {
      const FmedaRow& row = fmea.rows[index];
      const double current_coverage = picked[index] != nullptr ? picked[index]->coverage : 0.0;
      const double current_cost = picked[index] != nullptr ? picked[index]->cost_hours : 0.0;
      for (const SafetyMechanismSpec* sm :
           catalogue.applicable(row.component_type, row.failure_mode)) {
        // Only strictly-better coverage guarantees progress (and termination).
        if (sm->coverage <= current_coverage) continue;
        const double gain = row.mode_fit() * (sm->coverage - current_coverage);
        const double delta_cost = sm->cost_hours - current_cost;
        const double ratio = delta_cost > 0.0 ? gain / delta_cost : 1e18 + gain;
        if (ratio > best_ratio) {
          best_ratio = ratio;
          best_choice = DeploymentChoice{index, sm};
        }
      }
    }
    if (!best_choice.has_value()) return std::nullopt;  // target unreachable
    picked[best_choice->row_index] = best_choice->mechanism;
    current = as_deployment();
  }

  // Trim pass: the gain-per-cost heuristic can overshoot; drop or downgrade
  // choices while the target still holds, until no single move helps.
  for (bool changed = true; changed;) {
    changed = false;
    for (const size_t index : candidates) {
      if (picked[index] == nullptr) continue;
      const FmedaRow& row = fmea.rows[index];
      // Candidate replacements: nothing, or any cheaper applicable mechanism.
      std::vector<const SafetyMechanismSpec*> alternatives{nullptr};
      for (const SafetyMechanismSpec* sm :
           catalogue.applicable(row.component_type, row.failure_mode)) {
        if (sm != picked[index] && sm->cost_hours < picked[index]->cost_hours) {
          alternatives.push_back(sm);
        }
      }
      const SafetyMechanismSpec* original = picked[index];
      const SafetyMechanismSpec* best_alternative = original;
      double best_cost = original->cost_hours;
      for (const SafetyMechanismSpec* alternative : alternatives) {
        picked[index] = alternative;
        const Deployment trial = as_deployment();
        const double cost = alternative != nullptr ? alternative->cost_hours : 0.0;
        if (trial.spfm >= target && cost < best_cost) {
          best_alternative = alternative;
          best_cost = cost;
        }
      }
      picked[index] = best_alternative;
      if (best_alternative != original) changed = true;
    }
  }
  return as_deployment();
}

std::vector<Deployment> pareto_front(const FmedaResult& fmea,
                                     const SafetyMechanismModel& catalogue,
                                     size_t max_combinations) {
  const std::vector<size_t> rows = open_rows(fmea);

  // Options per row: index 0 = "no mechanism", then each applicable entry.
  std::vector<std::vector<const SafetyMechanismSpec*>> options;
  options.reserve(rows.size());
  size_t combinations = 1;
  for (const size_t index : rows) {
    const FmedaRow& row = fmea.rows[index];
    std::vector<const SafetyMechanismSpec*> opts{nullptr};
    for (const SafetyMechanismSpec* sm :
         catalogue.applicable(row.component_type, row.failure_mode)) {
      opts.push_back(sm);
    }
    combinations *= opts.size();
    if (combinations > max_combinations) {
      throw AnalysisError("safety-mechanism search space exceeds " +
                          std::to_string(max_combinations) +
                          " combinations; use greedy_reach_asil");
    }
    options.push_back(std::move(opts));
  }

  std::vector<Deployment> front;
  std::vector<size_t> pick(options.size(), 0);
  for (;;) {
    Deployment candidate;
    for (size_t i = 0; i < options.size(); ++i) {
      if (options[i][pick[i]] != nullptr) {
        candidate.choices.push_back(DeploymentChoice{rows[i], options[i][pick[i]]});
      }
    }
    candidate.spfm = spfm_with(fmea, candidate);
    candidate.total_cost_hours = cost_of(candidate);

    const bool dominated = std::any_of(front.begin(), front.end(), [&](const Deployment& d) {
      // Exact (cost, SPFM) ties keep only the first representative.
      return d.dominates(candidate) ||
             (d.spfm == candidate.spfm && d.total_cost_hours == candidate.total_cost_hours);
    });
    if (!dominated) {
      std::erase_if(front, [&](const Deployment& d) { return candidate.dominates(d); });
      front.push_back(std::move(candidate));
    }

    // Advance the mixed-radix counter.
    size_t digit = 0;
    while (digit < pick.size()) {
      if (++pick[digit] < options[digit].size()) break;
      pick[digit] = 0;
      ++digit;
    }
    if (digit == pick.size()) break;
    if (options.empty()) break;
  }

  std::sort(front.begin(), front.end(), [](const Deployment& a, const Deployment& b) {
    if (a.total_cost_hours != b.total_cost_hours) {
      return a.total_cost_hours < b.total_cost_hours;
    }
    return a.spfm > b.spfm;
  });
  return front;
}

}  // namespace decisive::core
