// Excel-style report export: writes a complete FME(D)A report as a workbook
// directory (the same format the workbook driver reads back), with sheets
// for the FMEDA rows, the architecture metrics and the analysis warnings —
// "an Excel-based FMEA table is always produced" (paper Step 4a), extended
// to a full report pack.
#pragma once

#include <string>

#include "decisive/core/fmeda.hpp"

namespace decisive::core {

/// Writes `<directory>/FMEDA.csv`, `<directory>/Metrics.csv` and
/// `<directory>/Warnings.csv`. Creates the directory when missing; throws
/// IoError on filesystem failure. The result can be re-opened with the
/// workbook driver and queried (e.g. by assurance-case evidence checks).
void write_report_workbook(const std::string& directory, const FmedaResult& result);

/// The metrics sheet content (also usable standalone): SPFM, residual FIT,
/// safety-related FIT, achieved ASIL, component/row counts.
[[nodiscard]] CsvTable metrics_table(const FmedaResult& result);

}  // namespace decisive::core
