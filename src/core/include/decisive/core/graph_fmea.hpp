// Automated FMEA on SSAM models — the paper's Algorithm 1.
//
// For every subcomponent c of the component under analysis, and every
// failure mode fm of c:
//   - if fm is of loss-of-function (or similar) nature: fm is a single-point
//     failure (safety-related) iff c lies on *all* input→output paths of the
//     parent component;
//   - otherwise a warning is emitted (line 11 of Algorithm 1) — unless the
//     modeller supplied explicit `affectedComponents` traceability (Figure
//     9), in which case the failure mode is safety-related iff one of the
//     affected components lies on all paths (or is the parent itself).
// The algorithm then recurses into composite subcomponents.
//
// The "lies on all paths" decision runs on ssam::SinglePointAnalysis — a
// dominator/cut analysis that never materialises paths, so dense components
// no longer abort with a path-explosion error. The per-component analyses of
// the recursive walk are independent const reads of the model and run on a
// thread pool (`jobs`); rows, warnings and model write-backs are emitted by a
// serial walk afterwards, so the output is byte-identical for any job count.
//
// The analysis also *writes back* its verdicts: each FailureMode's
// `safetyRelated` attribute is set, and a FailureEffect child with the
// DVF/IVF classification is attached — the "component safety analysis
// model" artefact of DECISIVE Step 4a. Re-running updates the previously
// attached effect in place, so the iterative DECISIVE loop does not
// accumulate duplicates.
#pragma once

#include "decisive/core/fmeda.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::core {

struct GraphFmeaOptions {
  /// Recurse into subcomponents that are themselves composite.
  bool recursive = true;
  /// Worker threads for the per-component analyses (0 = hardware
  /// concurrency). Output is identical for any value.
  int jobs = 1;
  /// Natures treated as "loss of function or similar" by Algorithm 1 line 5.
  std::vector<std::string> loss_natures = {"lossOfFunction", "loss", "open",
                                           "omission", "no output"};
  /// When true, deploy each failure mode's highest-coverage SafetyMechanism
  /// already modelled on its component (SSAM-side Step 4b).
  bool apply_modelled_mechanisms = true;
};

/// Runs Algorithm 1 on `component` (a composite SSAM Component). Mutates the
/// model: failure modes get their `safetyRelated` verdict and a
/// FailureEffect. Throws AnalysisError when the component has no boundary
/// IONodes or an IONode carries an invalid `direction`.
FmedaResult analyze_component(ssam::SsamModel& ssam, ssam::ObjectId component,
                              const GraphFmeaOptions& options = {});

}  // namespace decisive::core
