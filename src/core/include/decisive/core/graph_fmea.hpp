// Automated FMEA on SSAM models — the paper's Algorithm 1.
//
// For every subcomponent c of the component under analysis, and every
// failure mode fm of c:
//   - if fm is of loss-of-function (or similar) nature: fm is a single-point
//     failure (safety-related) iff c lies on *all* input→output paths of the
//     parent component;
//   - otherwise a warning is emitted (line 11 of Algorithm 1) — unless the
//     modeller supplied explicit `affectedComponents` traceability (Figure
//     9), in which case the failure mode is safety-related iff one of the
//     affected components lies on all paths (or is the parent itself).
// The algorithm then recurses into composite subcomponents.
//
// The "lies on all paths" decision runs on ssam::SinglePointAnalysis — a
// dominator/cut analysis that never materialises paths, so dense components
// no longer abort with a path-explosion error. The per-component analyses of
// the recursive walk are independent const reads of the model and run on a
// thread pool (`jobs`); rows, warnings and model write-backs are emitted by a
// serial walk afterwards, so the output is byte-identical for any job count.
//
// The analysis also *writes back* its verdicts: each FailureMode's
// `safetyRelated` attribute is set, and a FailureEffect child with the
// DVF/IVF classification is attached — the "component safety analysis
// model" artefact of DECISIVE Step 4a. Re-running updates the previously
// attached effect in place, so the iterative DECISIVE loop does not
// accumulate duplicates.
#pragma once

#include "decisive/core/fmeda.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::core {

struct GraphFmeaOptions {
  /// Recurse into subcomponents that are themselves composite.
  bool recursive = true;
  /// Worker threads for the per-component analyses (0 = hardware
  /// concurrency). Output is identical for any value.
  int jobs = 1;
  /// Natures treated as "loss of function or similar" by Algorithm 1 line 5.
  std::vector<std::string> loss_natures = {"lossOfFunction", "loss", "open",
                                           "omission", "no output"};
  /// When true, deploy each failure mode's highest-coverage SafetyMechanism
  /// already modelled on its component (SSAM-side Step 4b).
  bool apply_modelled_mechanisms = true;
  /// Flight-recorder heartbeat JSON for the scaled analysis ("" = disabled);
  /// ticked once per analysis unit, folded by `same status` like the
  /// campaign heartbeats (obs/progress.hpp).
  std::string heartbeat_path;
  /// Minimum seconds between heartbeat writes (0 = publish on every unit).
  double heartbeat_interval_seconds = 1.0;
};

// ---------------------------------------------------------------------------
// Incremental re-analysis hooks (consumed by decisive::session)
// ---------------------------------------------------------------------------

/// One failure-mode verdict write-back, recorded so a cached unit can replay
/// its model mutations without re-running the analysis.
struct UnitVerdict {
  ssam::ObjectId failure_mode = model::kNullObject;
  bool safety_related = false;
  EffectClass effect = EffectClass::None;
};

/// Everything Algorithm 1 emits for one direct subcomponent of a unit: the
/// FMEDA rows, the diagnostics, and the verdict write-backs — in emission
/// order.
struct UnitSubRecord {
  ssam::ObjectId sub = model::kNullObject;
  std::vector<FmedaRow> rows;
  std::vector<std::string> warnings;
  std::vector<UnitVerdict> verdicts;
};

/// The complete recorded output of one analysis unit — a composite component
/// the recursive walk visits. Replaying the records of every unit, in walk
/// order, reproduces a cold run byte for byte.
struct UnitRecord {
  ssam::ObjectId component = model::kNullObject;
  std::string path;  ///< qualified path from the analysis root
  std::vector<UnitSubRecord> subs;
};

/// Result-cache interface consumed by analyze_component. For every unit the
/// walk visits, lookup() is consulted first: a non-null record is replayed
/// verbatim (graph construction and the single-point analysis are skipped);
/// on nullptr the unit is analysed fresh and store() receives the record.
/// Implementations decide validity — decisive::session keys entries by
/// content fingerprints so a stale record is never returned. Returned
/// pointers must stay valid until analyze_component returns.
class UnitResultCache {
 public:
  virtual ~UnitResultCache() = default;
  [[nodiscard]] virtual const UnitRecord* lookup(ssam::ObjectId component,
                                                 const std::string& path) = 0;
  virtual void store(UnitRecord record) = 0;
};

/// Observability of one analyze_component run.
struct GraphFmeaStats {
  size_t units = 0;        ///< composite components the walk visited
  size_t cache_hits = 0;   ///< units replayed from the cache
  size_t cache_misses = 0; ///< units analysed fresh
  double collect_seconds = 0.0;  ///< phase A: unit enumeration
  double analyze_seconds = 0.0;  ///< phase B: graph + single-point analyses
  double emit_seconds = 0.0;     ///< phase C: row emission / cache replay

  /// Fraction of units served from the cache (0 when no units).
  [[nodiscard]] double hit_rate() const noexcept {
    return units == 0 ? 0.0 : static_cast<double>(cache_hits) / static_cast<double>(units);
  }
};

/// Runs Algorithm 1 on `component` (a composite SSAM Component). Mutates the
/// model: failure modes get their `safetyRelated` verdict and a
/// FailureEffect. Throws AnalysisError when the component has no boundary
/// IONodes or an IONode carries an invalid `direction`.
///
/// `cache` (optional) serves per-unit results across runs — see
/// UnitResultCache; the output is byte-identical with or without it as long
/// as the cache only returns records valid for the current model state.
/// `stats` (optional) receives per-phase timings and hit counts.
FmedaResult analyze_component(ssam::SsamModel& ssam, ssam::ObjectId component,
                              const GraphFmeaOptions& options = {},
                              UnitResultCache* cache = nullptr, GraphFmeaStats* stats = nullptr);

}  // namespace decisive::core
