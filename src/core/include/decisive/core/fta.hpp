// Fault Tree Analysis — the paper's future-work item 1 ("enhance SAME to
// include the model-based support for Fault Tree Analysis (FTA) and how FTA
// and FMEA can be federated for quantitative system safety analysis").
//
// A fault tree is synthesised from the same component graph Algorithm 1
// uses: the top event is "loss of the component's function" (no input→output
// path delivers); its logic is derived from the minimal cut sets of the
// path graph — a cut set is a set of subcomponents whose joint
// loss-of-function severs every path. Quantitatively, each basic event
// carries the loss-mode failure rate from the FMEA data, and the top-event
// probability over a mission time uses the rare-event approximation.
//
// Federation with FMEA: cut sets of size one are exactly the single-point
// failures Algorithm 1 reports, which cross-validates the two analyses
// (`crosscheck_with_fmea`).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/core/fmeda.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::core {

/// Node kinds of a synthesised fault tree.
enum class GateKind { Or, And, Basic };

struct FaultTreeNode {
  GateKind kind = GateKind::Basic;
  std::string label;
  /// Basic events: the failing component + its loss failure rate (per hour).
  ssam::ObjectId component = model::kNullObject;
  double failure_rate = 0.0;  ///< lambda of the loss mode(s), in 1/h
  std::vector<size_t> children;  ///< indices into FaultTree::nodes
};

/// Warning line appended to to_text() / cut-set CSV when a tree is
/// truncated, so capped syntheses are never silent.
inline constexpr std::string_view kFtaTruncationWarning =
    "WARNING: cut-set synthesis truncated by the order bound; "
    "minimal cut sets above the bound may exist";

/// A synthesised fault tree. Node 0 is the top event.
struct FaultTree {
  std::string top_event;
  std::vector<FaultTreeNode> nodes;
  /// Minimal cut sets, as sets of component ids. Deterministically ordered:
  /// each cut sorted by component id, cuts sorted by (order, ids) — so
  /// to_text() is byte-stable across platforms and job counts.
  std::vector<std::vector<ssam::ObjectId>> cut_sets;
  /// True when the synthesis bound clipped the cut family. Conservative:
  /// minimal cut sets above the bound MAY exist (the probe errs towards
  /// flagging when its work budget runs out).
  bool truncated = false;

  /// Probability of the top event over `mission_hours`, using the rare-event
  /// approximation over minimal cut sets: P ~= sum over cut sets of the
  /// product of member failure probabilities (1 - e^{-lambda t} per member).
  [[nodiscard]] double top_event_probability(double mission_hours) const;

  /// Renders the tree as indented text (gates + basic events), with a
  /// trailing kFtaTruncationWarning line when `truncated` is set.
  [[nodiscard]] std::string to_text() const;
};

/// True for the failure-mode natures counted as "loss of function"
/// (lossOfFunction / loss / open / omission / "no output", case-insensitive).
bool is_loss_failure_nature(const std::string& nature);

/// Basic-event failure rate of a component (per hour): component FIT × the
/// summed distribution of its loss-nature failure modes (capped at 1) × 1e-9.
double loss_failure_rate(const ssam::SsamModel& ssam, ssam::ObjectId component);

struct FtaOptions {
  /// Cut sets larger than this are not enumerated (cost guard). When the
  /// bound clips the family the returned tree carries `truncated = true`.
  size_t max_cut_set_size = 3;
  /// Path-enumeration guard (shared with Algorithm 1); exceeding it throws.
  size_t max_paths = 100000;
};

/// Synthesises the fault tree for the loss of `component`'s function by
/// enumerating every input→output path (exponential — retained as the
/// property-test oracle for fta::synthesize_fault_tree_zbdd, the scalable
/// engine; the PR-2 pattern). Basic-event rates come from
/// loss_failure_rate() (components without loss modes get rate zero but
/// still appear structurally). Throws AnalysisError when the component has
/// no boundary IONodes or the path count exceeds FtaOptions::max_paths.
FaultTree synthesize_fault_tree(const ssam::SsamModel& ssam, ssam::ObjectId component,
                                const FtaOptions& options = {});

/// Federation check (FTA <-> FMEA): compares the tree's order-1 cut sets
/// with the loss-mode safety-related components of an FMEA result. Returns
/// human-readable discrepancies (empty = the analyses agree).
std::vector<std::string> crosscheck_with_fmea(const ssam::SsamModel& ssam,
                                              const FaultTree& tree,
                                              const FmedaResult& fmea);

/// Quantitative importance of one basic event.
struct BasicEventImportance {
  ssam::ObjectId component = model::kNullObject;
  std::string label;
  /// Birnbaum importance: dP(top)/dP(event) — the probability the rest of
  /// the system is in a state where this event is decisive.
  double birnbaum = 0.0;
  /// Fussell-Vesely importance: fraction of the top-event probability
  /// contributed by cut sets containing this event.
  double fussell_vesely = 0.0;
};

/// Computes Birnbaum and Fussell-Vesely importance for every basic event
/// over the given mission time (rare-event approximation, consistent with
/// top_event_probability). Sorted by descending Fussell-Vesely.
std::vector<BasicEventImportance> importance_measures(const FaultTree& tree,
                                                      double mission_hours);

}  // namespace decisive::core
