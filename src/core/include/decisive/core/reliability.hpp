// Component reliability model (DECISIVE Step 3).
//
// Maps a component *type* to its FIT rate and failure-mode distribution, as
// aggregated from standards (MIL-HDBK-338B) or manufacturer data. The paper
// stores this in an Excel spreadsheet (Table II); here it loads from any
// row-oriented DataSource (workbook sheet, CSV) or is built programmatically.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/drivers/datasource.hpp"

namespace decisive::core {

/// One failure mode of a component type with its probability share.
struct FailureModeSpec {
  std::string name;     ///< "Open", "Short", "RAM Failure", ...
  double distribution;  ///< fraction of the component FIT, in [0,1]
};

/// Reliability data for one component type.
struct ComponentReliability {
  std::string component_type;  ///< "Diode", "Capacitor", "Inductor", "MC", ...
  double fit = 0.0;            ///< failures-in-time (1e-9 failures/hour)
  std::vector<FailureModeSpec> modes;
};

/// The reliability model: a lookup from component type to reliability data.
/// Type matching is case-insensitive and alias-aware ("MC" == "MCU" ==
/// "Microcontroller").
class ReliabilityModel {
 public:
  /// Adds (or extends) an entry. Throws AnalysisError when a distribution is
  /// outside [0,1] or FIT is negative.
  void add(std::string component_type, double fit, std::vector<FailureModeSpec> modes);

  /// Lookup by type; nullptr when unknown.
  [[nodiscard]] const ComponentReliability* find(std::string_view component_type) const noexcept;

  [[nodiscard]] const std::vector<ComponentReliability>& entries() const noexcept {
    return entries_;
  }

  /// Parses the paper's Table-II layout: columns Component, FIT,
  /// Failure_Mode, Distribution; blank Component/FIT cells continue the
  /// previous component's mode list. Distribution accepts "30%" or "0.3".
  static ReliabilityModel from_table(const CsvTable& table);

  /// Loads from a DataSource table (e.g. workbook sheet "Reliability").
  static ReliabilityModel from_source(const drivers::DataSource& source,
                                      std::string_view table_name);

  /// Serialises back to the Table-II layout.
  [[nodiscard]] CsvTable to_table() const;

 private:
  std::vector<ComponentReliability> entries_;
};

/// True when the two component-type names refer to the same type
/// (case-insensitive, plus the MC/MCU/Microcontroller alias group).
bool component_type_matches(std::string_view a, std::string_view b) noexcept;

}  // namespace decisive::core
