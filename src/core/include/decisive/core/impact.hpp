// Change-impact analysis.
//
// DECISIVE is iterative: "whenever there are changes to the system
// definition or system requirements, or when new hazards are identified,
// the DECISIVE process shall be repeated to determine the impacts of the
// changes" (paper Section III), managed under a proper change-management
// process (ISO 26262 Clause 8). This module computes, for a changed
// component, the set of artefacts the next iteration must revisit — using
// exactly the traceability SSAM records (containment, relationships,
// citations, failure-mode/hazard links, deployed mechanisms).
#pragma once

#include <string>
#include <vector>

#include "decisive/ssam/model.hpp"

namespace decisive::core {

struct ImpactReport {
  ssam::ObjectId changed = model::kNullObject;

  /// Containment ancestors (parent component/package chain): their analyses
  /// embed the changed component.
  std::vector<ssam::ObjectId> ancestors;
  /// Sibling components wired to the changed one (signal neighbours).
  std::vector<ssam::ObjectId> connected_components;
  /// Requirements citing the changed component (allocation traceability).
  std::vector<ssam::ObjectId> requirements;
  /// Hazards reachable from the changed component's failure modes.
  std::vector<ssam::ObjectId> hazards;
  /// Safety mechanisms deployed on the changed component (coverage claims
  /// that must be re-validated).
  std::vector<ssam::ObjectId> safety_mechanisms;
  /// True when any of the component's failure modes carries a safety-related
  /// verdict — the FMEA (Step 4a) must be re-run before the change lands.
  bool reanalysis_required = false;

  [[nodiscard]] std::string to_text(const ssam::SsamModel& ssam) const;
};

/// Computes the impact set of changing `component`.
/// Throws ModelError when `component` is not a Component.
ImpactReport impact_of_change(const ssam::SsamModel& ssam, ssam::ObjectId component);

/// Batch form: one report per component, sharing a single reverse-index pass
/// over the repository. Equivalent to calling impact_of_change per element,
/// but O(model + impacts) instead of O(components × model) — the shape the
/// incremental session's dirty-set widening needs on every reanalyze.
std::vector<ImpactReport> impact_of_changes(const ssam::SsamModel& ssam,
                                            const std::vector<ssam::ObjectId>& components);

}  // namespace decisive::core
