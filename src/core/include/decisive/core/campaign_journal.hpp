// Crash-safe campaign checkpoint journal (ROADMAP item 5).
//
// A large fault-injection campaign must be preemptible: killed, OOM-ed or
// rescheduled mid-run, it resumes from its journal and re-executes only the
// tasks that have no checkpointed result — with the final FMEDA byte-
// identical to an uninterrupted run at any job or shard count.
//
// Format (line/token text, same family as the session result cache):
//
//   journal <version> <fingerprint> <task-count> <shard-index> <shard-count> <cksum>
//   skip <escaped-warning> <cksum>                (one per campaign skip warning)
//   row <task-index> <17 FmedaRow fields> <cksum> (one per completed task)
//
// Every line ends in a 16-hex-digit FNV-1a checksum of the line's content
// before it. The file is append-only and flushed per record, so a crash can
// at worst tear the final line; recovery verifies checksums line by line and
// truncates the file at the first bad one (torn tail OR interior bit-flip —
// a record after a corrupt one cannot be trusted to belong to this campaign
// state, so the tail is dropped and those tasks simply re-run; the journal
// can delay a resume but never make it wrong).
//
// The fingerprint binds the journal to one campaign identity: circuit
// netlist, task list, classification thresholds and solver configuration
// (but not --jobs or the shard spec, which must not change results). A
// journal with a foreign fingerprint is discarded, never merged.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "decisive/core/fmeda.hpp"

namespace decisive::core {

/// Identity of a campaign run, persisted in (and checked against) a
/// journal's header line.
struct CampaignJournalHeader {
  std::uint64_t fingerprint = 0;  ///< campaign identity hash (CampaignRunner::fingerprint)
  std::uint64_t task_count = 0;   ///< global task count across all shards
  int shard_index = 0;            ///< shard this journal belongs to
  int shard_count = 1;

  [[nodiscard]] bool operator==(const CampaignJournalHeader& other) const noexcept {
    return fingerprint == other.fingerprint && task_count == other.task_count &&
           shard_index == other.shard_index && shard_count == other.shard_count;
  }
};

/// Result of replaying one journal file.
struct CampaignJournalReplay {
  /// True when the file held a journal whose header matches the expected
  /// campaign (always true for unchecked replays of a well-formed file).
  bool compatible = false;
  CampaignJournalHeader header;
  std::string note;                ///< why the journal was discarded or trimmed
  std::uint64_t valid_bytes = 0;   ///< length of the checksummed valid prefix
  std::uint64_t dropped_lines = 0; ///< torn/corrupt tail lines discarded
  std::vector<std::string> skip_warnings;   ///< campaign skip warnings, in order
  std::map<std::uint64_t, FmedaRow> rows;   ///< checkpointed tasks by global index
};

/// Replays the journal at `path`. A missing file, a foreign fingerprint or a
/// corrupt header yields {compatible=false, note} — the caller starts a
/// fresh journal. Checksum-invalid records mark the truncation point; the
/// valid prefix is still returned. Pass nullptr for `expected` to accept any
/// well-formed header (merge does this).
[[nodiscard]] CampaignJournalReplay replay_campaign_journal(
    const std::string& path, const CampaignJournalHeader* expected);

/// Append-side of the journal. Construction either resumes a compatible
/// journal (truncating the file to its valid prefix) or replaces it with a
/// fresh header + skip-warning preamble. append() is thread-safe and flushes
/// per record so a crash can tear at most the final line.
///
/// Fault-injection hook: when DECISIVE_CAMPAIGN_CRASH_AFTER_APPENDS=<k> is
/// set, the process raises SIGKILL after the k-th append — the deterministic
/// "preempted mid-campaign" specimen the kill-and-resume tests and the CI
/// smoke job are built on.
class CampaignJournal {
 public:
  /// `resume` is the replay of `path` against this campaign's header, or
  /// nullptr to force a fresh journal. Throws IoError when the file cannot
  /// be opened for appending.
  CampaignJournal(std::string path, const CampaignJournalHeader& header,
                  const std::vector<std::string>& skip_warnings,
                  const CampaignJournalReplay* resume);

  /// Appends one completed task record and flushes it.
  void append(std::uint64_t task_index, const FmedaRow& row);

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::mutex mutex_;
  long crash_after_appends_ = -1;  ///< fault-injection hook, -1 = off
  std::uint64_t appends_ = 0;
  std::ofstream out_;
};

/// Merges per-shard journals into the single campaign FmedaResult, exactly
/// as an unsharded CampaignRunner::run() would have assembled it (rows in
/// global task order; warnings = skip warnings + per-row outcome warnings +
/// the degenerate-SPFM note). Throws AnalysisError when the journals do not
/// share one campaign fingerprint, a shard is missing, or any task has no
/// checkpointed result (resume the incomplete shard first).
[[nodiscard]] FmedaResult merge_campaign_journals(const std::vector<std::string>& paths);

/// Serialises one FmedaRow as the journal's space-separated field list
/// (without the "row" tag, index or checksum). Exposed for tests.
[[nodiscard]] std::string journal_row_tokens(const FmedaRow& row);

/// Inverse of journal_row_tokens; throws ParseError on malformed fields.
[[nodiscard]] FmedaRow journal_row_from_tokens(const std::vector<std::string>& tokens,
                                               size_t first);

}  // namespace decisive::core
