// Automated FMEA on circuit (Simulink-substitute) models by fault injection
// (paper Section IV-D1):
//
//   1. Initialise — record the baseline operating point.
//   2. For each component, for each failure mode found in the reliability
//      model: inject the fault, re-run simulate(), compare every observable
//      reading against the baseline. A deviation beyond the threshold marks
//      the failure mode safety-related.
//   3. Output — the FmedaResult (Component Safety Analysis Model + table).
//
// When a SafetyMechanismModel is supplied (DECISIVE Step 4b), the
// highest-coverage applicable mechanism is deployed on every safety-related
// failure mode, turning the FMEA into an FMEDA.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decisive/core/fmeda.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/solver.hpp"

namespace decisive::core {

/// Resilient-execution controls of a campaign run: crash-safe journaling,
/// deterministic sharding and failure containment (see campaign.hpp and
/// campaign_journal.hpp). All defaults preserve the classic one-shot,
/// single-shard behaviour.
struct CampaignExecution {
  /// Append-only checkpoint journal ("" = no journal). When the file already
  /// holds a compatible journal of the same campaign, completed tasks are
  /// replayed from it and only the remainder is executed; the final FMEDA is
  /// byte-identical to an uninterrupted run.
  std::string journal_path;
  /// Deterministic shard partition: this runner executes the tasks whose
  /// global index i satisfies i % shard_count == shard_index. The per-shard
  /// results merge (merge_journals) into the identical unsharded FMEDA.
  int shard_index = 0;
  int shard_count = 1;
  /// Bounded containment retries for tasks that crash or exhaust their solve
  /// budget: each retry re-runs the task from scratch (restarting the
  /// recovery ladder) under a budget scaled by retry_budget_scale, so a hung
  /// solve cannot hang twice as long on retry. 0 disables retries.
  int max_retries = 1;
  double retry_budget_scale = 0.5;
  /// When true, a baseline that does not solve yields a degraded result with
  /// every row NotApplicable instead of a SimulationError.
  bool best_effort = false;
  /// Flight-recorder heartbeat JSON (obs/progress.hpp), atomically replaced
  /// as tasks complete so `same status` can watch the run live. "" derives
  /// the path from the journal — "<journal_path>.heartbeat.json" — when a
  /// journal is configured, and disables the heartbeat otherwise.
  std::string heartbeat_path;
  /// Minimum seconds between heartbeat writes (0 = publish on every task).
  double heartbeat_interval_seconds = 1.0;
};

struct CircuitFmeaOptions {
  /// Relative deviation of an observable that marks a fault safety-related.
  double relative_threshold = 0.20;
  /// Readings below this magnitude are treated as zero for the relative
  /// comparison (avoids 0-vs-1e-12 blow-ups).
  double absolute_floor = 1e-6;
  /// Observables that embody the safety goal (e.g. the current sensor of the
  /// monitored supply). Deviation on one of these classifies the failure as
  /// DVF; deviation only elsewhere as IVF. Empty = every observable is a
  /// safety-goal observable.
  std::vector<std::string> safety_goal_observables;
  /// Solver configuration used for every simulate() call.
  sim::SolveOptions solver;
  /// Campaign worker threads: 1 = serial, 0 = hardware concurrency. The
  /// FMEDA output is byte-identical for any value.
  int jobs = 1;
  /// Factor-once batched campaign solving (campaign_solver.hpp): solve the
  /// nominal system once and apply eligible faults as low-rank updates,
  /// falling back to the classic per-fault ladder whenever any correctness
  /// gate trips. Output is byte-identical either way, so — like `jobs` and
  /// the shard spec — this flag is deliberately excluded from the campaign
  /// fingerprint and journals interchange freely between the two modes.
  /// `false` is the `--no-batch` escape hatch.
  bool batch = true;
  /// Sparse middle tier of the campaign solve ladder (campaign_solver.hpp):
  /// one symbolic analysis of the nominal stamp pattern, shared read-only by
  /// every worker; same-structure faults refactor numerics only and
  /// structural Open/Short faults reuse the symbolic prefix. Accepted only
  /// behind the same correctness gates as the batched path — the naive
  /// fallback always runs the dense kernel — so output is byte-identical
  /// either way and, like `batch`, the flag is excluded from the campaign
  /// fingerprint. `false` is the `--no-sparse` escape hatch.
  bool sparse = true;
  /// Journal / shard / containment controls of the campaign run.
  CampaignExecution execution;

  /// True when `name` counts toward the safety goal.
  [[nodiscard]] bool is_goal_observable(const std::string& name) const;
};

/// Runs the automated FME(D)A via the campaign engine (see campaign.hpp).
/// `sm_model` may be nullptr for plain FMEA. Components whose type has no
/// reliability entry are skipped with a warning (the paper's "assume DC1 is
/// stable" corresponds to the source having no reliability row). Throws
/// SimulationError if the *baseline* does not solve even via the solver
/// recovery ladder; per-fault solver failure is a classified FaultOutcome on
/// the row (conservatively marked safety-related), never an exception.
FmedaResult analyze_circuit(const sim::BuiltCircuit& built, const ReliabilityModel& reliability,
                            const SafetyMechanismModel* sm_model = nullptr,
                            const CircuitFmeaOptions& options = {});

/// Measures the deviation of `after` vs `before` for one observable:
/// |after-before| / max(|before|, floor). Exposed for tests.
double observable_deviation(double before, double after, double absolute_floor);

}  // namespace decisive::core
