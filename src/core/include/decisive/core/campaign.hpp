// Fault-injection campaign engine (paper Section IV-D1, hardened).
//
// The automated FMEA is a campaign: solve the baseline once, then for every
// (component, failure mode) pair inject the fault, re-solve, and compare.
// The campaign is only as trustworthy as its worst-behaved solve, so the
// runner makes each injection robust and observable:
//
//  - every faulted solve goes through the solver recovery ladder
//    (sim::try_dc_operating_point) with iteration and wall-clock budgets;
//  - each fault is classified into a structured FaultOutcome (Converged /
//    RecoveredViaLadder / BudgetExhausted / Singular / NotApplicable) carried
//    on its FmedaRow, instead of being swallowed into free-text warnings;
//  - faults are independent re-simulations, so the runner executes them on a
//    fixed-size std::thread pool with deterministic result ordering — the
//    FMEDA table is byte-identical for any job count.
//
// Campaigns are additionally *infrastructure-grade* (ROADMAP item 5):
//
//  - with CampaignExecution::journal_path set, every completed task is
//    checkpointed to a crash-safe append-only journal
//    (campaign_journal.hpp); a re-run replays the journal and executes only
//    the remaining tasks, byte-identical to an uninterrupted run;
//  - CampaignExecution::shard_index/shard_count partition the task list
//    deterministically across processes; merge_campaign_journals() folds the
//    per-shard journals into the identical unsharded FMEDA;
//  - failure containment: a task worker that throws outside the classified
//    paths yields a structured Crashed outcome; Crashed/BudgetExhausted
//    tasks get one bounded retry (fresh ladder, tighter budget); and a
//    campaign-level circuit breaker re-runs serially, on the main thread,
//    whatever a dying worker left behind instead of losing the campaign.
//
// Warning strings in the result are *derived* from the structured outcomes
// (single source of truth), so the CSV/report and the warnings can never
// disagree.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decisive/core/campaign_journal.hpp"
#include "decisive/core/circuit_fmea.hpp"
#include "decisive/core/fmeda.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/sim/builder.hpp"
#include "decisive/sim/campaign_solver.hpp"
#include "decisive/sim/solver.hpp"

namespace decisive::core {

/// Runs the fault-injection campaign behind analyze_circuit. Usable directly
/// when the caller wants the task list or parallel execution control.
class CampaignRunner {
 public:
  /// One unit of campaign work: a (component, failure mode) pair, in
  /// deterministic output order.
  struct Task {
    const sim::BuiltComponent* component = nullptr;
    const ComponentReliability* reliability = nullptr;
    const FailureModeSpec* mode = nullptr;
  };

  /// All referenced objects must outlive the runner. `sm_model` may be null.
  CampaignRunner(const sim::BuiltCircuit& built, const ReliabilityModel& reliability,
                 const SafetyMechanismModel* sm_model = nullptr,
                 CircuitFmeaOptions options = {});

  /// The enumerated fault tasks in output order (components without
  /// reliability data are skipped and reported via run()'s warnings).
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }

  /// Solves the baseline, executes this shard's share of the tasks on
  /// `options.jobs` worker threads (0 = hardware concurrency) and assembles
  /// the FmedaResult with rows in task order regardless of the job count.
  /// With a journal configured, checkpointed tasks are replayed instead of
  /// re-run. Throws SimulationError when the *baseline* does not solve even
  /// via the recovery ladder — unless `options.execution.best_effort`, which
  /// degrades every pending row to NotApplicable instead.
  [[nodiscard]] FmedaResult run() const;

  /// Identity hash of this campaign: circuit netlist, observables, task
  /// list, classification thresholds and solver/retry configuration — but
  /// not the job count or shard spec, which must not change results. The
  /// journal refuses to resume under a different fingerprint.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// The journal header a run with these options writes/expects.
  [[nodiscard]] CampaignJournalHeader journal_header() const;

  /// Global indices of the tasks this shard executes
  /// (i % shard_count == shard_index), in task order.
  [[nodiscard]] std::vector<size_t> shard_task_indices() const;

 private:
  /// `batch`/`batch_ws` carry the factor-once campaign context and
  /// `sparse`/`sparse_ws` the shared-symbolic sparse tier (null when the
  /// respective path is disabled or unusable); the first attempt tries the
  /// low-rank solve, then the sparse refactorisation, and every
  /// fallback/retry re-runs the classic dense ladder.
  [[nodiscard]] FmedaRow run_task(const Task& task, const sim::OperatingPoint& baseline,
                                  const sim::CampaignSolveContext* batch,
                                  sim::CampaignSolveContext::Workspace* batch_ws,
                                  const sim::CampaignSparseContext* sparse,
                                  sim::CampaignSparseContext::Workspace* sparse_ws) const;
  [[nodiscard]] FmedaRow run_task_once(const Task& task, const sim::OperatingPoint& baseline,
                                       const sim::SolveOptions& solver, int attempt,
                                       const sim::CampaignSolveContext* batch,
                                       sim::CampaignSolveContext::Workspace* batch_ws,
                                       const sim::CampaignSparseContext* sparse,
                                       sim::CampaignSparseContext::Workspace* sparse_ws) const;

  const sim::BuiltCircuit& built_;
  const SafetyMechanismModel* sm_model_;
  CircuitFmeaOptions options_;
  std::vector<Task> tasks_;
  std::vector<std::string> skip_warnings_;
};

/// The display warning derived from one row's structured outcome; empty when
/// the outcome needs no warning (Converged). Exposed so reports and tests can
/// verify warnings and CSV always agree.
[[nodiscard]] std::string outcome_warning(const FmedaRow& row);

}  // namespace decisive::core
