// Fault-injection campaign engine (paper Section IV-D1, hardened).
//
// The automated FMEA is a campaign: solve the baseline once, then for every
// (component, failure mode) pair inject the fault, re-solve, and compare.
// The campaign is only as trustworthy as its worst-behaved solve, so the
// runner makes each injection robust and observable:
//
//  - every faulted solve goes through the solver recovery ladder
//    (sim::try_dc_operating_point) with iteration and wall-clock budgets;
//  - each fault is classified into a structured FaultOutcome (Converged /
//    RecoveredViaLadder / BudgetExhausted / Singular / NotApplicable) carried
//    on its FmedaRow, instead of being swallowed into free-text warnings;
//  - faults are independent re-simulations, so the runner executes them on a
//    fixed-size std::thread pool with deterministic result ordering — the
//    FMEDA table is byte-identical for any job count.
//
// Warning strings in the result are *derived* from the structured outcomes
// (single source of truth), so the CSV/report and the warnings can never
// disagree.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decisive/core/circuit_fmea.hpp"
#include "decisive/core/fmeda.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/sim/builder.hpp"

namespace decisive::core {

/// Runs the fault-injection campaign behind analyze_circuit. Usable directly
/// when the caller wants the task list or parallel execution control.
class CampaignRunner {
 public:
  /// One unit of campaign work: a (component, failure mode) pair, in
  /// deterministic output order.
  struct Task {
    const sim::BuiltComponent* component = nullptr;
    const ComponentReliability* reliability = nullptr;
    const FailureModeSpec* mode = nullptr;
  };

  /// All referenced objects must outlive the runner. `sm_model` may be null.
  CampaignRunner(const sim::BuiltCircuit& built, const ReliabilityModel& reliability,
                 const SafetyMechanismModel* sm_model = nullptr,
                 CircuitFmeaOptions options = {});

  /// The enumerated fault tasks in output order (components without
  /// reliability data are skipped and reported via run()'s warnings).
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }

  /// Solves the baseline, executes every task on `options.jobs` worker
  /// threads (0 = hardware concurrency) and assembles the FmedaResult with
  /// rows in task order regardless of the job count. Throws SimulationError
  /// when the *baseline* does not solve even via the recovery ladder.
  [[nodiscard]] FmedaResult run() const;

 private:
  [[nodiscard]] FmedaRow run_task(const Task& task,
                                  const sim::OperatingPoint& baseline) const;

  const sim::BuiltCircuit& built_;
  const SafetyMechanismModel* sm_model_;
  CircuitFmeaOptions options_;
  std::vector<Task> tasks_;
  std::vector<std::string> skip_warnings_;
};

/// The display warning derived from one row's structured outcome; empty when
/// the outcome needs no warning (Converged). Exposed so reports and tests can
/// verify warnings and CSV always agree.
[[nodiscard]] std::string outcome_warning(const FmedaRow& row);

}  // namespace decisive::core
