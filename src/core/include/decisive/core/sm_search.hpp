// Automated safety-mechanism deployment (DECISIVE Step 4b).
//
// Given an FMEA result and a safety-mechanism catalogue, SAME searches for
// deployments that reach a target integrity level, and can enumerate the
// Pareto front of (cost, SPFM) trade-offs so analysts pick "the best
// trade-off between safety and cost" (paper Sections III and IV-D2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decisive/core/fmeda.hpp"
#include "decisive/core/safety_mechanism.hpp"

namespace decisive::core {

/// One deployed mechanism: FMEA row index -> catalogue entry.
struct DeploymentChoice {
  size_t row_index = 0;                         ///< index into FmedaResult::rows
  const SafetyMechanismSpec* mechanism = nullptr;  ///< never nullptr in a choice
};

/// A candidate deployment of safety mechanisms onto a design.
struct Deployment {
  std::vector<DeploymentChoice> choices;
  double spfm = 0.0;
  double total_cost_hours = 0.0;

  /// True when this deployment dominates `other` (no worse on both axes,
  /// strictly better on at least one; higher SPFM better, lower cost better).
  [[nodiscard]] bool dominates(const Deployment& other) const noexcept;
};

/// Returns a copy of `fmea` with the deployment applied (rows updated with
/// mechanism name/coverage/cost).
FmedaResult apply_deployment(const FmedaResult& fmea, const Deployment& deployment);

/// Greedy search: repeatedly deploys the mechanism with the best
/// SPFM-gain-per-cost ratio until the target ASIL's SPFM is met or no
/// mechanism remains. Returns nullopt when the target is unreachable with
/// the given catalogue. The input FMEA must be *undeployed* (rows may
/// already carry mechanisms; they are treated as fixed).
std::optional<Deployment> greedy_reach_asil(const FmedaResult& fmea,
                                            const SafetyMechanismModel& catalogue,
                                            std::string_view target_asil);

/// Exhaustively enumerates deployments (each safety-related row chooses
/// "none" or one applicable mechanism) and returns the Pareto front sorted
/// by cost. Throws AnalysisError when the search space exceeds
/// `max_combinations` (use the greedy search instead).
std::vector<Deployment> pareto_front(const FmedaResult& fmea,
                                     const SafetyMechanismModel& catalogue,
                                     size_t max_combinations = 2'000'000);

}  // namespace decisive::core
