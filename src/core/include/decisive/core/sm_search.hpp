// Automated safety-mechanism deployment (DECISIVE Step 4b).
//
// Given an FMEA result and a safety-mechanism catalogue, SAME searches for
// deployments that reach a target integrity level, and can enumerate the
// Pareto front of (cost, SPFM) trade-offs so analysts pick "the best
// trade-off between safety and cost" (paper Sections III and IV-D2).
//
// The front is computed by an exact two-objective dynamic program (DESIGN.md
// §11): residual single-point FIT and deployment cost are both additive over
// FMEA rows, so each open row reduces to its non-dominated (cost, residual)
// option list and the rows fold over a balanced binary merge tree of
// dominance-pruned partial sums. The tree shape depends only on the row
// count, so the result is byte-identical for any `jobs` value; `epsilon`
// trades exactness for a bounded front size on pathological catalogues. The
// seed-era exhaustive enumerator survives as `pareto_front_exhaustive`, the
// property-test oracle.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/core/fmeda.hpp"
#include "decisive/core/safety_mechanism.hpp"

namespace decisive::core {

/// One deployed mechanism: FMEA row index -> catalogue entry.
struct DeploymentChoice {
  size_t row_index = 0;                         ///< index into FmedaResult::rows
  const SafetyMechanismSpec* mechanism = nullptr;  ///< never nullptr in a choice
};

/// A candidate deployment of safety mechanisms onto a design.
struct Deployment {
  std::vector<DeploymentChoice> choices;
  double spfm = 0.0;
  double total_cost_hours = 0.0;

  /// True when this deployment dominates `other` (no worse on both axes,
  /// strictly better on at least one; higher SPFM better, lower cost better).
  [[nodiscard]] bool dominates(const Deployment& other) const noexcept;
};

/// Returns a copy of `fmea` with the deployment applied (rows updated with
/// mechanism name/coverage/cost).
FmedaResult apply_deployment(const FmedaResult& fmea, const Deployment& deployment);

/// Knobs of the DP Pareto engine.
struct ParetoOptions {
  /// Worker threads for the divide-and-conquer merge tree; 0 = all cores.
  /// The output is byte-identical for any value (the tree shape is fixed;
  /// jobs only changes which thread folds which subtree).
  int jobs = 1;
  /// Epsilon-box coarsening of the residual axis, relative to the undeployed
  /// residual FIT. 0 = exact front. With epsilon > 0, every merge keeps one
  /// label per epsilon-box, so each kept front point is within
  /// `epsilon * baseline_residual * tree_depth` residual FIT of any point it
  /// displaced (at no higher cost) and the per-merge front size is bounded by
  /// ~1/epsilon. Must be in [0, 1).
  double epsilon = 0.0;
  /// Guard on the label cross-product of a single merge; exceeding it throws
  /// AnalysisError with a hint to set `epsilon`. 0 = unguarded.
  size_t max_merge_labels = 64'000'000;
  /// Per-row metric weights (empty = the classic SPFM objective, byte-
  /// identical to the unweighted engine). When set (size must equal
  /// rows.size(), else AnalysisError) the metric axis is fully weight-
  /// defined: the denominator is Σ wᵢ·mode_fitᵢ, residuals scale by wᵢ, and
  /// the open rows are those with wᵢ > 0 and no deployed mechanism —
  /// `safety_related` is ignored, because multi-point objectives (LFM, via
  /// fta::lfm_row_weights) target exactly the rows the FMEA marks
  /// not-safety-related.
  std::vector<double> row_weights;
};

/// Which metric a front's quality axis represents (affects rendering only;
/// the engine is weight-driven).
enum class ParetoMetric { Spfm, Lfm };

/// Exact (cost, SPFM) Pareto front over all deployments (each open
/// safety-related row chooses "none" or one applicable mechanism), sorted by
/// cost with strictly increasing SPFM. Equal-value ties (under the
/// documented tolerance grid, DESIGN.md §11) keep the fewest-choices
/// representative, so reported deployments are minimal. Polynomial in the
/// front size — completes on hundreds of open rows where exhaustive
/// enumeration is infeasible.
std::vector<Deployment> pareto_front(const FmedaResult& fmea,
                                     const SafetyMechanismModel& catalogue,
                                     const ParetoOptions& options = {});

/// The seed-era exhaustive mixed-radix enumerator, retained as the test
/// oracle for the DP engine (and for FTA-style what-if sweeps on tiny
/// designs). Throws AnalysisError when the search space exceeds
/// `max_combinations` (use `pareto_front` instead). `row_weights` follows
/// the ParetoOptions::row_weights contract (empty = unweighted), so the
/// oracle covers the weighted engine too.
std::vector<Deployment> pareto_front_exhaustive(const FmedaResult& fmea,
                                                const SafetyMechanismModel& catalogue,
                                                size_t max_combinations = 2'000'000,
                                                const std::vector<double>& row_weights = {});

/// Greedy search: repeatedly deploys the mechanism with the best
/// SPFM-gain-per-cost ratio until the target ASIL's SPFM is met or no
/// mechanism remains. Returns nullopt when the target is unreachable with
/// the given catalogue. The input FMEA must be *undeployed* (rows may
/// already carry mechanisms; they are treated as fixed). The loop and the
/// trim pass both maintain the residual FIT incrementally: one move costs
/// O(1), not O(rows). Always optimises the classic SPFM objective —
/// row_weights apply to the Pareto engines only.
std::optional<Deployment> greedy_reach_asil(const FmedaResult& fmea,
                                            const SafetyMechanismModel& catalogue,
                                            std::string_view target_asil);

/// Knobs of the branch-and-bound optimal search.
struct OptimalOptions {
  /// Hard cap on expanded search nodes; exceeding it throws AnalysisError
  /// (the greedy result is always available as a fallback). 0 = unbounded.
  size_t max_nodes = 20'000'000;
};

/// Provably min-cost deployment meeting the SPFM target of `target_asil`:
/// depth-first branch-and-bound over the open rows (most residual-reduction
/// potential first) with the greedy result as the incumbent, a per-row
/// best-remaining-coverage feasibility bound, and a fractional
/// reduction-per-cost lower bound on the remaining cost. Never returns a
/// costlier deployment than `greedy_reach_asil`; nullopt exactly when the
/// greedy search is nullopt (the target is unreachable).
std::optional<Deployment> optimal_reach_asil(const FmedaResult& fmea,
                                             const SafetyMechanismModel& catalogue,
                                             std::string_view target_asil,
                                             const OptimalOptions& options = {});

/// CSV rendering of a front: Cost(hrs), SPFM, ASIL, Choices, Deployment.
/// Shared by `same sm-search --out` and the session `pareto` request so both
/// emit identical artefacts for the same model. With ParetoMetric::Lfm the
/// quality column is labelled "LFM" and the ASIL column uses the LFM
/// targets (the deployments' `spfm` field then holds the weighted metric).
CsvTable front_to_csv(const FmedaResult& fmea, const std::vector<Deployment>& front,
                      ParetoMetric metric = ParetoMetric::Spfm);

/// The same front as a JSON document (array of {cost_hours, spfm, asil,
/// choices:[{row, component, failure_mode, mechanism, coverage, cost_hours}]}).
std::string front_to_json(const FmedaResult& fmea, const std::vector<Deployment>& front);

}  // namespace decisive::core
