// The DECISIVE process engine (paper Section III, Figure 1).
//
//   Step 1  plan the system: system definition, function requirements, HARA
//           (hazard log).
//   Step 2  design the system: architecture + system safety requirements.
//   Step 3  aggregate reliability data into the design.
//   Step 4a evaluate the design: automated FMEA -> component safety analysis
//           model + architecture metrics (SPFM).
//   Step 4b refine: (automatically) deploy safety mechanisms, re-evaluate.
//   Step 5  synthesise the safety concept and hand artefacts to the system
//           assurance process.
//
// The engine operates on an SsamModel and uses the graph-based FMEA
// (Algorithm 1). Circuit models go through core/circuit_fmea.hpp instead;
// both paths produce the same FmedaResult artefact.
#pragma once

#include <optional>
#include <string>

#include "decisive/core/graph_fmea.hpp"
#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/core/sm_search.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::core {

class DecisiveProcess {
 public:
  /// Binds the process to a model; creates the standard packages.
  explicit DecisiveProcess(ssam::SsamModel& model, std::string system_name);

  // -- Step 1 -----------------------------------------------------------------
  /// Records the system definition (boundaries, environment) on the system
  /// component's description.
  void define_system(std::string_view definition);

  /// Adds a functional requirement to the requirement package.
  ssam::ObjectId add_function_requirement(std::string_view name, std::string_view text);

  /// HARA entry: a hazardous situation with target integrity level.
  ssam::ObjectId identify_hazard(std::string_view name, std::string_view severity,
                                 double probability, std::string_view target_asil);

  // -- Step 2 -----------------------------------------------------------------
  /// The system component under design (already created by the constructor).
  [[nodiscard]] ssam::ObjectId system() const noexcept { return system_; }

  /// Derives a safety requirement from a hazard (cites it).
  ssam::ObjectId derive_safety_requirement(ssam::ObjectId hazard, std::string_view name,
                                           std::string_view text,
                                           std::string_view integrity_level);

  // -- Step 3 -----------------------------------------------------------------
  /// Aggregates reliability data into every component of the design whose
  /// `blockType` has an entry: sets FIT and creates FailureMode children
  /// (Open/loss modes get nature lossOfFunction; shorts and similar get
  /// erroneous; RAM-style modes additionally reference their own component
  /// as affected, enabling the Figure-9 inference).
  /// Returns the number of components populated.
  size_t aggregate_reliability(const ReliabilityModel& reliability);

  // -- Step 4a ----------------------------------------------------------------
  /// Automated FMEA (Algorithm 1) of the system design.
  FmedaResult evaluate(const GraphFmeaOptions& options = {});

  // -- Step 4b ----------------------------------------------------------------
  /// Automated refinement: greedy mechanism deployment to reach the target,
  /// written back into the SSAM model (SafetyMechanism children). Returns
  /// the deployment, or nullopt when the target is unreachable.
  std::optional<Deployment> refine(const SafetyMechanismModel& catalogue,
                                   std::string_view target_asil);

  // -- Step 5 -----------------------------------------------------------------
  /// Allocates a safety requirement to a component ("safety concepts include
  /// all relevant safety requirements and their allocation to functions and
  /// components"). Records the cite and raises the component's integrity
  /// level to at least the requirement's.
  void allocate_requirement(ssam::ObjectId requirement, ssam::ObjectId component);

  /// Validates the safety concept; returns human-readable issues (empty =
  /// valid): every ASIL-rated safety requirement must be allocated, every
  /// hazard must be mitigated by a safety requirement citing it, and every
  /// component with an uncovered safety-related failure mode is flagged.
  [[nodiscard]] std::vector<std::string> validate_safety_concept() const;

  /// Renders the safety concept: requirements, hazard mitigations, deployed
  /// mechanisms and achieved metrics.
  [[nodiscard]] std::string synthesise_safety_concept() const;

  /// One full DECISIVE iteration loop: evaluate, refine, re-evaluate, until
  /// the target ASIL is met or `max_iterations` is reached.
  struct IterationReport {
    int iterations = 0;
    double spfm = 0.0;
    bool target_met = false;
  };
  IterationReport iterate_until(std::string_view target_asil,
                                const SafetyMechanismModel& catalogue, int max_iterations = 8);

  [[nodiscard]] ssam::ObjectId requirement_package() const noexcept { return req_pkg_; }
  [[nodiscard]] ssam::ObjectId hazard_package() const noexcept { return haz_pkg_; }
  [[nodiscard]] ssam::ObjectId component_package() const noexcept { return comp_pkg_; }

  /// The latest Step-4a/4b result.
  [[nodiscard]] const FmedaResult& last_result() const noexcept { return last_result_; }

 private:
  ssam::SsamModel& model_;
  ssam::ObjectId req_pkg_;
  ssam::ObjectId haz_pkg_;
  ssam::ObjectId comp_pkg_;
  ssam::ObjectId system_;
  FmedaResult last_result_;
};

/// Maps a reliability failure-mode name to the SSAM `nature` attribute:
/// open/loss -> "lossOfFunction", short -> "erroneous", drift/frequency ->
/// "degraded", RAM/memory -> "erroneous" (with affected-component inference).
std::string nature_for_mode(std::string_view failure_mode_name);

}  // namespace decisive::core
