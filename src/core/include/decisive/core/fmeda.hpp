// FME(D)A result model and ISO 26262 architecture metrics.
//
// A FmedaResult is the "Component Safety Analysis Model" of DECISIVE Step 4a
// plus the Excel-style FMEA table SAME always produces. The Single Point
// Fault Metric follows the paper's Equation 1:
//
//            sum over safety-related HW of lambda_SPF
//   SPFM = 1 - ---------------------------------------
//            sum over safety-related HW of lambda
//
// where lambda_SPF of a failure mode is FIT * distribution * (1 - diagnostic
// coverage), and the denominator sums the *total* FIT of every component
// with at least one safety-related failure mode.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/base/table.hpp"

namespace decisive::core {

/// Effect classification of a safety-related failure mode
/// (paper Table I: DVF = directly violates safety goal, IVF = indirectly).
enum class EffectClass { None, DVF, IVF };

std::string_view to_string(EffectClass effect) noexcept;

/// Structured outcome of one fault injection in the campaign — how the
/// faulted re-simulation behaved, independent of the effect classification.
/// xSAP-style safety platforms treat per-fault solver failure as a
/// first-class, classified result rather than a free-text warning; so do we.
enum class FaultOutcome {
  Converged,           ///< faulted circuit solved with plain Newton
  RecoveredViaLadder,  ///< solved, but only via gmin/source stepping
  BudgetExhausted,     ///< iteration/wall-clock budget spent without a solution
  Singular,            ///< faulted system is structurally singular
  NotApplicable,       ///< fault kind does not apply to this element
  Crashed,             ///< the task worker threw outside the classified paths
};

/// Number of FaultOutcome enumerators (for count arrays).
inline constexpr size_t kFaultOutcomeCount = 6;

std::string_view to_string(FaultOutcome outcome) noexcept;

/// One FMEDA row: a (component instance, failure mode) pair.
struct FmedaRow {
  std::string component;       ///< instance name, e.g. "D1" (display only)
  std::string component_type;  ///< type matched in the reliability model
  /// Stable identity of the component instance (the SSAM ObjectId for graph
  /// FMEA rows; 0 when the producer has no model object, e.g. circuit FMEA).
  /// Metrics aggregate by identity, never by display name, so two distinct
  /// components that happen to share a name are counted separately.
  std::uint64_t component_id = 0;
  /// Qualified path from the analysis root, e.g. "PSU/Reg/Regulator"
  /// (empty when the producer does not track hierarchy).
  std::string component_path;
  double fit = 0.0;            ///< component FIT (1e-9 failures/hour)
  std::string failure_mode;    ///< e.g. "Open"
  double distribution = 0.0;   ///< mode share of the FIT, in [0,1]
  bool safety_related = false;
  EffectClass effect = EffectClass::None;
  std::string safety_mechanism;  ///< deployed SM name; empty = "No SM"
  double sm_coverage = 0.0;      ///< diagnostic coverage of the deployed SM
  double sm_cost_hours = 0.0;

  // Campaign observability (circuit FMEA only; graph-analysis rows keep the
  // defaults). A non-Converged outcome other than NotApplicable is
  // conservatively safety-related, with `effect` left None — the *reason* is
  // carried here instead of being overloaded onto the effect class.
  FaultOutcome outcome = FaultOutcome::Converged;
  std::string outcome_detail;  ///< solver failure reason / recovery strategy
  int solver_iterations = 0;   ///< Newton iterations spent on the faulted solve
  int ladder_rung = 0;         ///< recovery-ladder rung that produced the result
  int retries = 0;             ///< containment retries spent on this task

  /// FIT apportioned to this failure mode.
  [[nodiscard]] double mode_fit() const noexcept { return fit * distribution; }

  /// Residual single-point-fault FIT after diagnostic coverage; zero when the
  /// mode is not safety-related.
  [[nodiscard]] double single_point_fit() const noexcept {
    return safety_related ? mode_fit() * (1.0 - sm_coverage) : 0.0;
  }
};

/// A complete FME(D)A of one system design.
struct FmedaResult {
  std::string system;
  std::vector<FmedaRow> rows;
  /// Diagnostics from the analysis (e.g. Algorithm 1 line 11 warnings,
  /// components without reliability data).
  std::vector<std::string> warnings;
  /// ISO 26262 Latent Fault Metric, set when an FTA-driven multi-point
  /// classification has been applied (fta::apply_lfm); absent for plain
  /// FMEDAs, which only quantify single-point faults.
  std::optional<double> latent_fault_metric;

  /// Row count per FaultOutcome, indexed by the enumerator value.
  [[nodiscard]] std::array<size_t, kFaultOutcomeCount> outcome_counts() const;

  /// One-line campaign summary, e.g. "10 converged, 1 recovered, 1 singular".
  [[nodiscard]] std::string outcome_summary() const;

  /// Names of components with at least one safety-related failure mode,
  /// deduplicated by component *identity* — a name may appear twice when two
  /// distinct components share it.
  [[nodiscard]] std::vector<std::string> safety_related_components() const;

  /// Denominator of Equation 1: total FIT over safety-related components,
  /// counted once per component identity.
  [[nodiscard]] double total_safety_related_fit() const;

  /// Numerator of Equation 1: residual single-point FIT.
  [[nodiscard]] double single_point_fit() const;

  /// True when at least one row is safety-related. When false the SPFM is
  /// degenerate — see spfm().
  [[nodiscard]] bool has_safety_related() const;

  /// The Single Point Fault Metric. Convention: returns 1.0 when no component
  /// is safety-related (the metric's denominator is empty). That value is NOT
  /// an ASIL-D claim — callers presenting metrics must check
  /// has_safety_related() first, or use asil_label() which does.
  [[nodiscard]] double spfm() const;

  /// achieved_asil(spfm()) when the analysis has safety-related hardware,
  /// "no safety-related hardware" otherwise — never a vacuous ASIL-D claim.
  [[nodiscard]] std::string asil_label() const;

  /// Rows for one component, by display name (matches every identity sharing
  /// the name).
  [[nodiscard]] std::vector<const FmedaRow*> rows_of(std::string_view component) const;

  /// Rows for one component, by stable identity.
  [[nodiscard]] std::vector<const FmedaRow*> rows_of(std::uint64_t component_id) const;

  /// The Excel-style FMEA table (paper Table IV layout).
  [[nodiscard]] CsvTable to_csv() const;

  /// Human-readable rendering of the same table.
  [[nodiscard]] TextTable to_text() const;
};

/// ISO 26262 SPFM targets per ASIL (ASIL-A imposes no SPFM target).
inline constexpr double kSpfmTargetAsilB = 0.90;
inline constexpr double kSpfmTargetAsilC = 0.97;
inline constexpr double kSpfmTargetAsilD = 0.99;

/// SPFM target for an ASIL name ("ASIL-B", "B", case-insensitive).
/// Returns 0.0 for ASIL-A / QM. Throws AnalysisError for unknown names.
double spfm_target(std::string_view asil);

/// True when the SPFM meets the target of the given ASIL.
bool meets_asil(double spfm, std::string_view asil);

/// The most stringent ASIL whose SPFM target the value meets
/// ("ASIL-D", "ASIL-C", "ASIL-B", or "ASIL-A" when below all targets).
std::string achieved_asil(double spfm);

/// ISO 26262 Latent Fault Metric targets per ASIL (ASIL-A imposes none).
inline constexpr double kLfmTargetAsilB = 0.60;
inline constexpr double kLfmTargetAsilC = 0.80;
inline constexpr double kLfmTargetAsilD = 0.90;

/// LFM target for an ASIL name (same spellings as spfm_target).
double lfm_target(std::string_view asil);

/// True when the LFM meets the target of the given ASIL.
bool meets_asil_lfm(double lfm, std::string_view asil);

/// The most stringent ASIL whose LFM target the value meets.
std::string achieved_asil_lfm(double lfm);

}  // namespace decisive::core
