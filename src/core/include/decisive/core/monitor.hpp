// Runtime-monitor generation — the paper's future-work item 4 and the reason
// IONodes carry value limits ("the SSAM model ... can also be easily
// converted to a runtime monitoring algorithm"; "by declaring a Component as
// dynamic, it is possible to generate facilities to receive runtime data for
// the component in a real time manner").
//
// From every Component marked `dynamic`, a RuntimeMonitor is generated with
// one range check per IONode that declares lower/upper limits. Feeding
// samples evaluates the checks; violations are reported together with the
// hazards reachable from the component's failure modes (the monitor knows
// *why* a limit matters, not just that it was crossed).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "decisive/ssam/model.hpp"

namespace decisive::core {

/// One generated range check.
struct MonitorCheck {
  std::string id;             ///< "<component>.<ionode>"
  ssam::ObjectId component = model::kNullObject;
  ssam::ObjectId io_node = model::kNullObject;
  std::optional<double> lower;
  std::optional<double> upper;
  /// Names of hazards linked (via failure modes) to the component.
  std::vector<std::string> hazards;
};

/// A violation raised while feeding samples.
struct MonitorViolation {
  std::string check_id;
  double value = 0.0;
  double bound = 0.0;
  bool below_lower = false;  ///< false = above upper
  std::vector<std::string> hazards;
  std::uint64_t sample_index = 0;
};

/// Generated runtime monitor for the dynamic components of a design.
class RuntimeMonitor {
 public:
  /// Generates checks from every `dynamic` Component under `root` (or every
  /// component when `include_static` is set). Checks require at least one
  /// declared limit; IONodes without limits are skipped.
  static RuntimeMonitor generate(const ssam::SsamModel& ssam, ssam::ObjectId root,
                                 bool include_static = false);

  /// Generates checks from every dynamic Component anywhere in the model
  /// (used by tooling that loads a persisted model without knowing its
  /// root).
  static RuntimeMonitor generate_all(const ssam::SsamModel& ssam,
                                     bool include_static = false);

  [[nodiscard]] const std::vector<MonitorCheck>& checks() const noexcept { return checks_; }

  /// Feeds one sample for a check id; returns the violation, if any.
  /// Unknown check ids throw AnalysisError.
  std::optional<MonitorViolation> feed(const std::string& check_id, double value);

  /// Feeds a batch keyed by check id; returns all violations in order.
  std::vector<MonitorViolation> feed_frame(const std::map<std::string, double>& frame);

  /// Totals since construction.
  [[nodiscard]] std::uint64_t samples_seen() const noexcept { return samples_; }
  [[nodiscard]] std::uint64_t violations_seen() const noexcept { return violations_; }

  /// Renders the generated checks as a human-readable spec (what the paper's
  /// generated Java facilities would subscribe to).
  [[nodiscard]] std::string to_text() const;

 private:
  std::vector<MonitorCheck> checks_;
  std::uint64_t samples_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace decisive::core
