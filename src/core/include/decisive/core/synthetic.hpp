// Synthetic evaluation subjects.
//
// The paper's evaluation systems are proprietary ("which we are not at
// liberty to disclose"), so this module generates stand-ins with the
// published element counts:
//   System A — a sensor power-supply system, 102 model elements;
//   System B — the main control unit (hardware + software) of an autonomous
//              underwater vehicle, 230 model elements.
// Both are mixed serial/parallel architectures so the FMEA produces a
// non-trivial split of safety-related and redundant components.
//
// For the scalability experiment (Table VI) a procedural ElementSource
// generates models of arbitrary size, and evaluate_full_load /
// evaluate_indexed run the same model-wide safety query against the two
// repository back-ends.
#pragma once

#include <cstdint>
#include <memory>

#include "decisive/core/reliability.hpp"
#include "decisive/core/safety_mechanism.hpp"
#include "decisive/model/repository.hpp"
#include "decisive/ssam/model.hpp"

namespace decisive::core {

/// A generated evaluation subject.
struct SyntheticSystem {
  std::unique_ptr<ssam::SsamModel> model;
  ssam::ObjectId system = model::kNullObject;  ///< top-level component
  size_t element_count = 0;                    ///< total SSAM elements
};

/// System A: sensor power supply, exactly 102 SSAM elements.
SyntheticSystem make_system_a();

/// System B: AUV main control unit (HW+SW), exactly 230 SSAM elements.
SyntheticSystem make_system_b();

/// Reliability data covering every component type used by Systems A and B.
ReliabilityModel synthetic_reliability();

/// Safety-mechanism catalogue for Systems A and B (rich enough to reach
/// ASIL-B on both).
SafetyMechanismModel synthetic_sm_catalogue();

/// Safety-mechanism catalogue for make_scaled_architecture subjects: several
/// coverage/cost options per (Subsystem|Sensor|Resistor) × (Open|Short), so
/// a scaled design exposes hundreds of open rows with 3-5 options each — the
/// deployment-search scaling workload of bench_ablation_search.
SafetyMechanismModel scaled_sm_catalogue();

/// A hierarchical Table-VI-style scalability subject for the *incremental*
/// workload: a system of `composites` serial composite units, each wrapping
/// a serial chain of `leaves` leaf components with loss-of-function failure
/// modes and FIT data. Every composite is an independent analysis unit of
/// the graph FMEA, so a single-component edit dirties O(1) of the
/// `composites + 1` units — the shape the fingerprint cache exploits.
/// (composites=40, leaves=16 lands near the paper's Set3 element count.)
///
/// `width` replicates every composite stage into `width` parallel units
/// ("Unit{c}_{k}") with dense bipartite wiring between consecutive stages:
/// width^composites input→output paths but only `composites` minimal cut
/// sets, each of order `width` — the FTA workload where path enumeration is
/// infeasible and ZBDD synthesis is not. width = 1 (the default) preserves
/// the original serial chain byte-for-byte.
SyntheticSystem make_scaled_architecture(size_t composites, size_t leaves,
                                         size_t width = 1);

// ---------------------------------------------------------------------------
// Scalability (Table VI)
// ---------------------------------------------------------------------------

/// Streams `count` synthetic Component elements (fit + safetyRelated attrs)
/// without materialising them.
class ScalabilitySource final : public model::ElementSource {
 public:
  explicit ScalabilitySource(std::uint64_t count);

  [[nodiscard]] std::uint64_t size_hint() const override { return count_; }
  [[nodiscard]] size_t bytes_per_element() const override { return 192; }
  bool next(const std::function<void(const model::MetaClass&,
                                     const std::function<void(model::ModelObject&)>&)>& emit)
      override;

 private:
  std::uint64_t count_;
  std::uint64_t emitted_ = 0;
};

/// Result of one scalability evaluation run.
struct ScalabilityRun {
  std::uint64_t elements = 0;
  bool loaded = false;       ///< false => memory overflow (the paper's "N/A")
  std::string failure;       ///< overflow diagnostic when !loaded
  std::uint64_t safety_related = 0;
  double total_fit = 0.0;
  double load_seconds = 0.0;
  double query_seconds = 0.0;
};

/// Full-load (EMF-style) evaluation: materialise everything, then run the
/// safety query. `memory_budget_bytes` caps the resident model.
ScalabilityRun evaluate_full_load(std::uint64_t count, size_t memory_budget_bytes);

/// Indexed (Hawk-style) evaluation: stream into a columnar index, then run
/// the same query against the index.
ScalabilityRun evaluate_indexed(std::uint64_t count);

}  // namespace decisive::core
