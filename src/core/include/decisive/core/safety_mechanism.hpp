// Safety-mechanism model (DECISIVE Step 4b).
//
// Catalogue of deployable safety mechanisms per (component type, failure
// mode) with diagnostic coverage and engineering cost — the paper's Table III
// spreadsheet. SAME uses it to automate safety-mechanism deployment.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "decisive/base/csv.hpp"
#include "decisive/drivers/datasource.hpp"

namespace decisive::core {

/// One catalogue entry.
struct SafetyMechanismSpec {
  std::string component_type;  ///< e.g. "MCU"
  std::string failure_mode;    ///< e.g. "RAM Failure"
  std::string name;            ///< e.g. "ECC"
  double coverage = 0.0;       ///< diagnostic coverage, in [0,1]
  double cost_hours = 0.0;     ///< deployment cost in engineering hours
};

class SafetyMechanismModel {
 public:
  /// Adds an entry; throws AnalysisError for coverage outside [0,1] or
  /// negative cost.
  void add(SafetyMechanismSpec spec);

  /// All mechanisms applicable to (component type, failure mode), in
  /// catalogue order. Matching is case-insensitive/alias-aware on the type
  /// and case-insensitive on the failure-mode name.
  [[nodiscard]] std::vector<const SafetyMechanismSpec*> applicable(
      std::string_view component_type, std::string_view failure_mode) const;

  /// The highest-coverage applicable mechanism, or nullptr.
  [[nodiscard]] const SafetyMechanismSpec* best(std::string_view component_type,
                                                std::string_view failure_mode) const;

  [[nodiscard]] const std::vector<SafetyMechanismSpec>& entries() const noexcept {
    return entries_;
  }

  /// Parses the Table-III layout: Component, Failure_Mode, Safety_Mechanism,
  /// Cov., Cost(hrs). "Cov." accepts "99%" or "0.99"; Cost(hrs) is optional.
  static SafetyMechanismModel from_table(const CsvTable& table);

  /// Loads from a DataSource table (e.g. workbook sheet "SafetyMechanisms").
  static SafetyMechanismModel from_source(const drivers::DataSource& source,
                                          std::string_view table_name);

  [[nodiscard]] CsvTable to_table() const;

 private:
  std::vector<SafetyMechanismSpec> entries_;
};

}  // namespace decisive::core
