// Manual-analyst cost model — the substitute for the paper's human trials.
//
// The paper's RQ1 (correctness) and RQ3 (efficiency) numbers come from two
// safety professionals performing FMEA manually vs. with SAME. Those trials
// cannot be rerun offline, so this module models an analyst as a seeded
// stochastic process:
//   - time: per-element design review, per-component reliability aggregation,
//     per-row FMEA judgement, per-safety-row mechanism selection, and
//     per-iteration change management; an automated session instead pays a
//     one-off tool setup plus per-iteration result review + change
//     management, with the actual tool runtime measured, not modelled;
//   - correctness: "equivocal" rows (non-loss failure modes, whose system
//     effect is genuinely subjective) are misjudged with a small
//     probability, constrained so the *component-level* safety-related set
//     stays correct — exactly the paper's observation ("the safety-related
//     components ... are all identified correctly by both participants",
//     with a 1.5–2.67 % row-level difference).
//
// Calibration constants live in AnalystProfile and are documented in
// DESIGN.md; the reproduced quantity is the shape (≈10× speed-up, ~2 % row
// disagreement), not the exact minutes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "decisive/core/fmeda.hpp"
#include "decisive/core/safety_mechanism.hpp"

namespace decisive::core {

struct AnalystProfile {
  std::string name = "analyst";
  /// Relative working speed (1.0 = nominal; <1 faster).
  double speed_factor = 1.0;

  // Manual-process costs (minutes). The FMEA judgement time dominates: a
  // trained analyst spends on the order of ten minutes tracing one failure
  // mode's effects through the system.
  double design_review_min_per_element = 0.5;
  double reliability_min_per_component = 2.0;
  double fmea_min_per_row = 11.0;
  double sm_min_per_safety_row = 5.0;
  double change_mgmt_min_per_iteration = 22.0;
  /// Fraction of the first-iteration FMEA effort spent on each re-analysis
  /// iteration (manual re-checks are partial).
  double rework_fraction = 0.25;

  // Automated-process costs (minutes of human time; tool time is measured).
  double tool_setup_min = 15.0;
  double result_review_min_per_iteration = 8.0;
  double auto_change_mgmt_min_per_iteration = 12.0;

  /// Probability of misjudging an equivocal FMEA row.
  double equivocal_misjudge_prob = 0.08;

  uint64_t seed = 42;
};

/// Outcome of a simulated manual FMEA pass.
struct ManualFmea {
  FmedaResult result;        ///< ground truth with injected misjudgements
  double minutes = 0.0;      ///< modelled analyst time for one full pass
  size_t disagreeing_rows = 0;
  double disagreement = 0.0;  ///< fraction of rows differing from ground truth
};

/// Simulates a manual FMEA against the automated ground truth.
/// `element_count` is the total design size (for review time).
ManualFmea simulate_manual_fmea(const FmedaResult& ground_truth, size_t element_count,
                                const AnalystProfile& profile);

/// Outcome of a full DECISIVE design session (Steps 3–4 iterated to target).
struct DesignSession {
  double minutes = 0.0;
  int iterations = 0;
  double final_spfm = 0.0;
  bool target_met = false;
};

/// Simulates the fully manual process: FMEA by hand, manual mechanism
/// selection, iterate until the target ASIL is met (or the catalogue is
/// exhausted).
DesignSession simulate_manual_design(const FmedaResult& undeployed_fmea,
                                     const SafetyMechanismModel& catalogue,
                                     std::string_view target_asil, size_t element_count,
                                     const AnalystProfile& profile);

/// Runs the automated process: the supplied `run_tool` callback performs one
/// real automated FMEA + deployment pass and returns the resulting FMEDA
/// (its wall-clock time is measured and added); human time for review and
/// change management is modelled. Iterates until the target is met.
DesignSession run_automated_design(const std::function<FmedaResult()>& run_tool,
                                   const SafetyMechanismModel& catalogue,
                                   std::string_view target_asil,
                                   const AnalystProfile& profile);

}  // namespace decisive::core
